
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debug/codegen.cc" "src/debug/CMakeFiles/graft_debug.dir/codegen.cc.o" "gcc" "src/debug/CMakeFiles/graft_debug.dir/codegen.cc.o.d"
  "/root/repo/src/debug/end_to_end.cc" "src/debug/CMakeFiles/graft_debug.dir/end_to_end.cc.o" "gcc" "src/debug/CMakeFiles/graft_debug.dir/end_to_end.cc.o.d"
  "/root/repo/src/debug/trace_reader.cc" "src/debug/CMakeFiles/graft_debug.dir/trace_reader.cc.o" "gcc" "src/debug/CMakeFiles/graft_debug.dir/trace_reader.cc.o.d"
  "/root/repo/src/debug/vertex_trace.cc" "src/debug/CMakeFiles/graft_debug.dir/vertex_trace.cc.o" "gcc" "src/debug/CMakeFiles/graft_debug.dir/vertex_trace.cc.o.d"
  "/root/repo/src/debug/views/text_table.cc" "src/debug/CMakeFiles/graft_debug.dir/views/text_table.cc.o" "gcc" "src/debug/CMakeFiles/graft_debug.dir/views/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pregel/CMakeFiles/graft_pregel.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/graft_io.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
