file(REMOVE_RECURSE
  "CMakeFiles/graft_debug.dir/codegen.cc.o"
  "CMakeFiles/graft_debug.dir/codegen.cc.o.d"
  "CMakeFiles/graft_debug.dir/end_to_end.cc.o"
  "CMakeFiles/graft_debug.dir/end_to_end.cc.o.d"
  "CMakeFiles/graft_debug.dir/trace_reader.cc.o"
  "CMakeFiles/graft_debug.dir/trace_reader.cc.o.d"
  "CMakeFiles/graft_debug.dir/vertex_trace.cc.o"
  "CMakeFiles/graft_debug.dir/vertex_trace.cc.o.d"
  "CMakeFiles/graft_debug.dir/views/text_table.cc.o"
  "CMakeFiles/graft_debug.dir/views/text_table.cc.o.d"
  "libgraft_debug.a"
  "libgraft_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graft_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
