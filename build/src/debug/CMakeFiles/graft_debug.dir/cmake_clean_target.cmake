file(REMOVE_RECURSE
  "libgraft_debug.a"
)
