# Empty dependencies file for graft_debug.
# This may be replaced when dependencies are built.
