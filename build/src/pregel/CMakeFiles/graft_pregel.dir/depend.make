# Empty dependencies file for graft_pregel.
# This may be replaced when dependencies are built.
