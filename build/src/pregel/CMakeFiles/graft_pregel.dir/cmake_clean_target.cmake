file(REMOVE_RECURSE
  "libgraft_pregel.a"
)
