file(REMOVE_RECURSE
  "CMakeFiles/graft_pregel.dir/agg_value.cc.o"
  "CMakeFiles/graft_pregel.dir/agg_value.cc.o.d"
  "libgraft_pregel.a"
  "libgraft_pregel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graft_pregel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
