# Empty compiler generated dependencies file for graft_graph.
# This may be replaced when dependencies are built.
