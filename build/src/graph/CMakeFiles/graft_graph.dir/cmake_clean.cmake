file(REMOVE_RECURSE
  "CMakeFiles/graft_graph.dir/builder.cc.o"
  "CMakeFiles/graft_graph.dir/builder.cc.o.d"
  "CMakeFiles/graft_graph.dir/datasets.cc.o"
  "CMakeFiles/graft_graph.dir/datasets.cc.o.d"
  "CMakeFiles/graft_graph.dir/generators.cc.o"
  "CMakeFiles/graft_graph.dir/generators.cc.o.d"
  "CMakeFiles/graft_graph.dir/graph_stats.cc.o"
  "CMakeFiles/graft_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/graft_graph.dir/graph_text.cc.o"
  "CMakeFiles/graft_graph.dir/graph_text.cc.o.d"
  "CMakeFiles/graft_graph.dir/simple_graph.cc.o"
  "CMakeFiles/graft_graph.dir/simple_graph.cc.o.d"
  "libgraft_graph.a"
  "libgraft_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graft_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
