file(REMOVE_RECURSE
  "libgraft_graph.a"
)
