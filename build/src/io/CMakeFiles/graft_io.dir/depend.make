# Empty dependencies file for graft_io.
# This may be replaced when dependencies are built.
