file(REMOVE_RECURSE
  "libgraft_io.a"
)
