file(REMOVE_RECURSE
  "CMakeFiles/graft_io.dir/trace_store.cc.o"
  "CMakeFiles/graft_io.dir/trace_store.cc.o.d"
  "libgraft_io.a"
  "libgraft_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graft_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
