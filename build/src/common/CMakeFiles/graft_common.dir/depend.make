# Empty dependencies file for graft_common.
# This may be replaced when dependencies are built.
