file(REMOVE_RECURSE
  "CMakeFiles/graft_common.dir/binary_io.cc.o"
  "CMakeFiles/graft_common.dir/binary_io.cc.o.d"
  "CMakeFiles/graft_common.dir/json_writer.cc.o"
  "CMakeFiles/graft_common.dir/json_writer.cc.o.d"
  "CMakeFiles/graft_common.dir/logging.cc.o"
  "CMakeFiles/graft_common.dir/logging.cc.o.d"
  "CMakeFiles/graft_common.dir/parallel.cc.o"
  "CMakeFiles/graft_common.dir/parallel.cc.o.d"
  "CMakeFiles/graft_common.dir/random.cc.o"
  "CMakeFiles/graft_common.dir/random.cc.o.d"
  "CMakeFiles/graft_common.dir/status.cc.o"
  "CMakeFiles/graft_common.dir/status.cc.o.d"
  "CMakeFiles/graft_common.dir/string_util.cc.o"
  "CMakeFiles/graft_common.dir/string_util.cc.o.d"
  "libgraft_common.a"
  "libgraft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
