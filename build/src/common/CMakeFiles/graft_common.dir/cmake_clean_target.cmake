file(REMOVE_RECURSE
  "libgraft_common.a"
)
