
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/connected_components.cc" "src/algos/CMakeFiles/graft_algos.dir/connected_components.cc.o" "gcc" "src/algos/CMakeFiles/graft_algos.dir/connected_components.cc.o.d"
  "/root/repo/src/algos/graph_coloring.cc" "src/algos/CMakeFiles/graft_algos.dir/graph_coloring.cc.o" "gcc" "src/algos/CMakeFiles/graft_algos.dir/graph_coloring.cc.o.d"
  "/root/repo/src/algos/max_weight_matching.cc" "src/algos/CMakeFiles/graft_algos.dir/max_weight_matching.cc.o" "gcc" "src/algos/CMakeFiles/graft_algos.dir/max_weight_matching.cc.o.d"
  "/root/repo/src/algos/pagerank.cc" "src/algos/CMakeFiles/graft_algos.dir/pagerank.cc.o" "gcc" "src/algos/CMakeFiles/graft_algos.dir/pagerank.cc.o.d"
  "/root/repo/src/algos/random_walk.cc" "src/algos/CMakeFiles/graft_algos.dir/random_walk.cc.o" "gcc" "src/algos/CMakeFiles/graft_algos.dir/random_walk.cc.o.d"
  "/root/repo/src/algos/sssp.cc" "src/algos/CMakeFiles/graft_algos.dir/sssp.cc.o" "gcc" "src/algos/CMakeFiles/graft_algos.dir/sssp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pregel/CMakeFiles/graft_pregel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
