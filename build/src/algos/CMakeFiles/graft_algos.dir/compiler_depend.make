# Empty compiler generated dependencies file for graft_algos.
# This may be replaced when dependencies are built.
