file(REMOVE_RECURSE
  "CMakeFiles/graft_algos.dir/connected_components.cc.o"
  "CMakeFiles/graft_algos.dir/connected_components.cc.o.d"
  "CMakeFiles/graft_algos.dir/graph_coloring.cc.o"
  "CMakeFiles/graft_algos.dir/graph_coloring.cc.o.d"
  "CMakeFiles/graft_algos.dir/max_weight_matching.cc.o"
  "CMakeFiles/graft_algos.dir/max_weight_matching.cc.o.d"
  "CMakeFiles/graft_algos.dir/pagerank.cc.o"
  "CMakeFiles/graft_algos.dir/pagerank.cc.o.d"
  "CMakeFiles/graft_algos.dir/random_walk.cc.o"
  "CMakeFiles/graft_algos.dir/random_walk.cc.o.d"
  "CMakeFiles/graft_algos.dir/sssp.cc.o"
  "CMakeFiles/graft_algos.dir/sssp.cc.o.d"
  "libgraft_algos.a"
  "libgraft_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graft_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
