file(REMOVE_RECURSE
  "libgraft_algos.a"
)
