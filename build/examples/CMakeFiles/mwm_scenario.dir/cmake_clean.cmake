file(REMOVE_RECURSE
  "CMakeFiles/mwm_scenario.dir/mwm_scenario.cpp.o"
  "CMakeFiles/mwm_scenario.dir/mwm_scenario.cpp.o.d"
  "mwm_scenario"
  "mwm_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwm_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
