# Empty dependencies file for mwm_scenario.
# This may be replaced when dependencies are built.
