# Empty dependencies file for graph_builder_endtoend.
# This may be replaced when dependencies are built.
