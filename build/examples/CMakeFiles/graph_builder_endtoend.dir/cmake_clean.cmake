file(REMOVE_RECURSE
  "CMakeFiles/graph_builder_endtoend.dir/graph_builder_endtoend.cpp.o"
  "CMakeFiles/graph_builder_endtoend.dir/graph_builder_endtoend.cpp.o.d"
  "graph_builder_endtoend"
  "graph_builder_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_builder_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
