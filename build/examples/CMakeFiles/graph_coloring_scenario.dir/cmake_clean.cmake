file(REMOVE_RECURSE
  "CMakeFiles/graph_coloring_scenario.dir/graph_coloring_scenario.cpp.o"
  "CMakeFiles/graph_coloring_scenario.dir/graph_coloring_scenario.cpp.o.d"
  "graph_coloring_scenario"
  "graph_coloring_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_coloring_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
