# Empty dependencies file for graph_coloring_scenario.
# This may be replaced when dependencies are built.
