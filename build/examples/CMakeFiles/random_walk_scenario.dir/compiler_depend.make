# Empty compiler generated dependencies file for random_walk_scenario.
# This may be replaced when dependencies are built.
