file(REMOVE_RECURSE
  "CMakeFiles/random_walk_scenario.dir/random_walk_scenario.cpp.o"
  "CMakeFiles/random_walk_scenario.dir/random_walk_scenario.cpp.o.d"
  "random_walk_scenario"
  "random_walk_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_walk_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
