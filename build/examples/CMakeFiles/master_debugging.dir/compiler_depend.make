# Empty compiler generated dependencies file for master_debugging.
# This may be replaced when dependencies are built.
