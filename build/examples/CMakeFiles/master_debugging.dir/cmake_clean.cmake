file(REMOVE_RECURSE
  "CMakeFiles/master_debugging.dir/master_debugging.cpp.o"
  "CMakeFiles/master_debugging.dir/master_debugging.cpp.o.d"
  "master_debugging"
  "master_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
