# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_builder "/root/repo/build/examples/graph_builder_endtoend")
set_tests_properties(example_graph_builder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_master_debugging "/root/repo/build/examples/master_debugging")
set_tests_properties(example_master_debugging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gc_scenario "/root/repo/build/examples/graph_coloring_scenario")
set_tests_properties(example_gc_scenario PROPERTIES  ENVIRONMENT "GRAFT_SCALE=400" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rw_scenario "/root/repo/build/examples/random_walk_scenario")
set_tests_properties(example_rw_scenario PROPERTIES  ENVIRONMENT "GRAFT_SCALE=150" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mwm_scenario "/root/repo/build/examples/mwm_scenario")
set_tests_properties(example_mwm_scenario PROPERTIES  ENVIRONMENT "GRAFT_SCALE=100" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
