# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/trace_store_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_algos_test[1]_include.cmake")
include("/root/repo/build/tests/instrumenter_test[1]_include.cmake")
include("/root/repo/build/tests/reproducer_test[1]_include.cmake")
include("/root/repo/build/tests/debug_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_checker_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_integration_test[1]_include.cmake")
include("/root/repo/build/tests/mock_and_units_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
