file(REMOVE_RECURSE
  "CMakeFiles/scenario_integration_test.dir/scenario_integration_test.cc.o"
  "CMakeFiles/scenario_integration_test.dir/scenario_integration_test.cc.o.d"
  "scenario_integration_test"
  "scenario_integration_test.pdb"
  "scenario_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
