# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mock_and_units_test.
