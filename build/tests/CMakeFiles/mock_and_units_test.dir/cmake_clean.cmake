file(REMOVE_RECURSE
  "CMakeFiles/mock_and_units_test.dir/mock_and_units_test.cc.o"
  "CMakeFiles/mock_and_units_test.dir/mock_and_units_test.cc.o.d"
  "mock_and_units_test"
  "mock_and_units_test.pdb"
  "mock_and_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mock_and_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
