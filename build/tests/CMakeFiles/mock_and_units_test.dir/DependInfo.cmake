
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mock_and_units_test.cc" "tests/CMakeFiles/mock_and_units_test.dir/mock_and_units_test.cc.o" "gcc" "tests/CMakeFiles/mock_and_units_test.dir/mock_and_units_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algos/CMakeFiles/graft_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/graft_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/graft_io.dir/DependInfo.cmake"
  "/root/repo/build/src/pregel/CMakeFiles/graft_pregel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graft_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
