# Empty dependencies file for mock_and_units_test.
# This may be replaced when dependencies are built.
