file(REMOVE_RECURSE
  "CMakeFiles/debug_smoke_test.dir/debug_smoke_test.cc.o"
  "CMakeFiles/debug_smoke_test.dir/debug_smoke_test.cc.o.d"
  "debug_smoke_test"
  "debug_smoke_test.pdb"
  "debug_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
