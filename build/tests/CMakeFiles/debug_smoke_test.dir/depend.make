# Empty dependencies file for debug_smoke_test.
# This may be replaced when dependencies are built.
