# Empty compiler generated dependencies file for trace_store_test.
# This may be replaced when dependencies are built.
