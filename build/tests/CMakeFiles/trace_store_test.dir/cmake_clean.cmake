file(REMOVE_RECURSE
  "CMakeFiles/trace_store_test.dir/trace_store_test.cc.o"
  "CMakeFiles/trace_store_test.dir/trace_store_test.cc.o.d"
  "trace_store_test"
  "trace_store_test.pdb"
  "trace_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
