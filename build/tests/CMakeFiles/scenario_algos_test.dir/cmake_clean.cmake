file(REMOVE_RECURSE
  "CMakeFiles/scenario_algos_test.dir/scenario_algos_test.cc.o"
  "CMakeFiles/scenario_algos_test.dir/scenario_algos_test.cc.o.d"
  "scenario_algos_test"
  "scenario_algos_test.pdb"
  "scenario_algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
