# Empty compiler generated dependencies file for scenario_algos_test.
# This may be replaced when dependencies are built.
