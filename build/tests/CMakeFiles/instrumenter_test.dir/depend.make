# Empty dependencies file for instrumenter_test.
# This may be replaced when dependencies are built.
