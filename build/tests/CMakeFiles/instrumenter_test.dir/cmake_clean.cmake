file(REMOVE_RECURSE
  "CMakeFiles/instrumenter_test.dir/instrumenter_test.cc.o"
  "CMakeFiles/instrumenter_test.dir/instrumenter_test.cc.o.d"
  "instrumenter_test"
  "instrumenter_test.pdb"
  "instrumenter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumenter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
