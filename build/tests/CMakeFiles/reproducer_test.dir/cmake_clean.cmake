file(REMOVE_RECURSE
  "CMakeFiles/reproducer_test.dir/reproducer_test.cc.o"
  "CMakeFiles/reproducer_test.dir/reproducer_test.cc.o.d"
  "reproducer_test"
  "reproducer_test.pdb"
  "reproducer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
