# Empty compiler generated dependencies file for reproducer_test.
# This may be replaced when dependencies are built.
