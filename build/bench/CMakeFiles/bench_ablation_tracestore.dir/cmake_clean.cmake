file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tracestore.dir/bench_ablation_tracestore.cc.o"
  "CMakeFiles/bench_ablation_tracestore.dir/bench_ablation_tracestore.cc.o.d"
  "bench_ablation_tracestore"
  "bench_ablation_tracestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tracestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
