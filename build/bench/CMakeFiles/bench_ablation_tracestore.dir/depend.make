# Empty dependencies file for bench_ablation_tracestore.
# This may be replaced when dependencies are built.
