# Empty dependencies file for bench_engine_baseline.
# This may be replaced when dependencies are built.
