file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_baseline.dir/bench_engine_baseline.cc.o"
  "CMakeFiles/bench_engine_baseline.dir/bench_engine_baseline.cc.o.d"
  "bench_engine_baseline"
  "bench_engine_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
