// §3.4 "Small Graph Construction and End-To-End Tests": the offline mode of
// the Graft GUI, programmatically. Builds a small test graph (starting from
// a premade-menu graph), edits it, and exports both artifacts the paper
// describes: the adjacency-list text file and the end-to-end test code
// template — here filled in with expected values from an actual run.

#include <cstdio>

#include "algos/connected_components.h"
#include "debug/end_to_end.h"
#include "graph/builder.h"
#include "graph/graph_text.h"

using graft::VertexId;

int main() {
  // The premade-graph menu.
  std::printf("premade graphs:");
  for (const auto& name : graft::graph::PremadeGraphMenu()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Start from a premade ring, then edit: detach vertices 6..7 into their
  // own component and add a weighted chord.
  auto builder = graft::graph::GraphBuilder::FromPremade("ring", 8);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  (void)builder->RemoveEdge(5, 6);
  (void)builder->RemoveEdge(6, 5);
  (void)builder->RemoveEdge(7, 0);
  (void)builder->RemoveEdge(0, 7);
  (void)builder->AddUndirectedEdge(1, 4, 2.5);
  graft::graph::SimpleGraph graph = builder->Build();

  // Artifact 1: the adjacency-list text file.
  std::printf("--- adjacency-list text file ---\n%s\n",
              graft::graph::WriteAdjacencyText(graph).c_str());

  // Round-trip sanity: the text file parses back to the same graph shape.
  auto parsed = graft::graph::ParseAdjacencyText(
      graft::graph::WriteAdjacencyText(graph));
  std::printf("round-trip: %zu vertices, %llu edges (original %zu / %llu)\n\n",
              parsed.ok() ? parsed->NumVertices() : 0,
              parsed.ok()
                  ? static_cast<unsigned long long>(parsed->NumDirectedEdges())
                  : 0ULL,
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumDirectedEdges()));

  // "From actual run": run connected components locally to termination and
  // bake the observed final output into the generated end-to-end test.
  auto result = graft::algos::RunConnectedComponents(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("actual run found %lld components\n\n",
              static_cast<long long>(result->num_components));
  std::map<VertexId, std::string> expected;
  for (const auto& [id, component] : result->component) {
    expected[id] = std::to_string(component);
  }

  graft::debug::EndToEndBinding binding;
  binding.includes = {"algos/connected_components.h"};
  binding.test_suite = "CCEndToEndTest";
  binding.test_name = "TwoComponents";
  binding.runner_snippet =
      "auto result = graft::algos::RunConnectedComponents(graph);\n"
      "ASSERT_TRUE(result.ok()) << result.status();\n"
      "std::map<graft::VertexId, std::string> final_values;\n"
      "for (const auto& [id, component] : result->component) {\n"
      "  final_values[id] = std::to_string(component);\n"
      "}";
  std::printf("--- generated end-to-end test ---\n%s",
              graft::debug::GenerateEndToEndTest(graph, expected, binding)
                  .c_str());

  // Artifact 2b, the "from scratch" flavor with TODO assertions.
  std::printf("\n--- generated end-to-end test (from scratch) ---\n%s",
              graft::debug::GenerateEndToEndTest(graph, {}, binding).c_str());
  return 0;
}
