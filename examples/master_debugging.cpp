// §3.4 "Debugging Master.compute()": Graft captures the master's context —
// the aggregator values — in every superstep automatically, and can
// reproduce any superstep's master.compute() execution.
//
// The paper: "the most common bug inside master.compute() is setting the
// phase of the computation incorrectly, which generally leads to infinite
// superstep executions or premature termination."
//
// Our buggy GraphColoringMaster consults the wrong aggregator after a COLOR
// phase (gc.undecided instead of gc.uncolored) and halts the job after the
// very first color. This walkthrough: run the buggy job, notice most
// vertices are uncolored, step through the captured master contexts, spot
// the halt decision that contradicts the uncolored count, generate the
// master reproduction test, and confirm the fixed master replays
// differently on the very same context.

#include <cstdio>

#include "algos/graph_coloring.h"
#include "debug/codegen.h"
#include "debug/debug_runner.h"
#include "debug/reproducer.h"
#include "debug/trace_reader.h"
#include "graph/generators.h"
#include "io/trace_store.h"

using graft::VertexId;
using graft::algos::GCTraits;

int main() {
  std::printf("== Graft walkthrough: debugging master.compute() ==\n\n");
  graft::graph::SimpleGraph graph =
      graft::graph::GenerateRegularBipartite(2000, 3, /*seed=*/5);

  // 1. Run graph coloring with the BUGGY master under Graft. No vertex
  //    capture configured — master contexts are captured automatically.
  graft::debug::ConfigurableDebugConfig<GCTraits> config;
  graft::InMemoryTraceStore store;
  graft::pregel::JobSpec<GCTraits> spec;
  spec.options.job_id = "gc-master-bug";
  spec.vertices = graft::algos::LoadGraphColoringVertices(graph);
  spec.computation = graft::algos::MakeGraphColoringFactory(/*buggy=*/false);
  spec.master =
      graft::algos::MakeGraphColoringMasterFactory(/*buggy_master=*/true);
  spec.debug_config = &config;
  spec.trace_store = &store;
  int64_t uncolored = 0;
  spec.post_run = [&](graft::pregel::Engine<GCTraits>& engine) {
    engine.ForEachVertex([&](const graft::pregel::Vertex<GCTraits>& v) {
      if (v.value().color < 0) ++uncolored;
    });
  };
  auto summary_or = graft::debug::RunWithGraft(std::move(spec));
  if (!summary_or.ok()) {
    std::fprintf(stderr, "%s\n", summary_or.status().ToString().c_str());
    return 1;
  }
  graft::debug::DebugRunSummary summary = std::move(summary_or).value();
  std::printf("run: %s\n", summary.stats.ToString().c_str());
  std::printf("uncolored vertices at termination: %lld of %zu  <-- premature "
              "termination!\n\n",
              static_cast<long long>(uncolored), graph.NumVertices());

  // 2. Visualize the captured master contexts superstep by superstep.
  auto supersteps = graft::debug::ListCapturedSupersteps(store,
                                                         "gc-master-bug");
  std::printf("captured master contexts: %zu supersteps\n", supersteps.size());
  graft::debug::MasterTrace halting_trace;
  for (int64_t s : supersteps) {
    auto trace = graft::debug::ReadMasterTrace(store, "gc-master-bug", s);
    if (!trace.ok()) continue;
    std::printf("  superstep %3lld: phase=%-19s undecided=%-4s uncolored=%-6s "
                "halted=%s\n",
                static_cast<long long>(s),
                trace->aggregators.at(graft::algos::kGCPhaseAggregator)
                    .ToString().c_str(),
                trace->aggregators.at(graft::algos::kGCUndecidedAggregator)
                    .ToString().c_str(),
                trace->aggregators.at(graft::algos::kGCUncoloredAggregator)
                    .ToString().c_str(),
                trace->halted ? "YES" : "no");
    if (trace->halted) halting_trace = *trace;
  }
  std::printf("\nsuspicious: the master halted while uncolored=%s — the halt "
              "decision used the wrong aggregator\n\n",
              halting_trace.aggregators
                  .at(graft::algos::kGCUncoloredAggregator)
                  .ToString().c_str());

  // 3. "Reproduce Master Context": generate the JUnit-equivalent test file
  //    for the halting superstep.
  graft::debug::MasterCodegenBinding binding;
  binding.includes = {"algos/graph_coloring.h"};
  binding.master_decl =
      "graft::algos::GraphColoringMaster master(/*buggy=*/true);";
  binding.test_suite = "GCMasterGraftTest";
  std::printf("--- generated master reproduction test ---\n%s\n",
              graft::debug::GenerateMasterTestCode(halting_trace, binding)
                  .c_str());

  // 4. Diagnosis via replay: the same captured context, through the buggy
  //    and the fixed master.
  graft::algos::GraphColoringMaster buggy(true);
  graft::algos::GraphColoringMaster fixed(false);
  auto buggy_ctx = graft::debug::ReplayMaster(halting_trace, buggy);
  auto fixed_ctx = graft::debug::ReplayMaster(halting_trace, fixed);
  std::printf("replay (buggy master): halts=%s\n",
              buggy_ctx.IsHalted() ? "YES" : "no");
  std::printf("replay (fixed master): halts=%s, next phase=%s\n\n",
              fixed_ctx.IsHalted() ? "YES" : "no",
              fixed_ctx.GetAggregated(graft::algos::kGCPhaseAggregator)
                  .ToString().c_str());

  // 5. Confirm the fix end to end.
  auto good = graft::algos::RunGraphColoring(graph, false);
  if (good.ok()) {
    int64_t still_uncolored = 0;
    for (const auto& [id, color] : good->color) {
      if (color < 0) ++still_uncolored;
    }
    std::printf("fixed master: %lld uncolored, %d colors, %zu conflicts\n",
                static_cast<long long>(still_uncolored), good->num_colors,
                graft::algos::FindColoringConflicts(graph, good->color)
                    .size());
  }
  return 0;
}
