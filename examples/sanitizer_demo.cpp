// BspSanitizer demo: run a buggy PageRank under checked execution and watch
// the analysis layer attribute the bug to exact (superstep, vertex)
// coordinates — before anyone has to step through traces in the GUI.
//
// The planted bug is the classic "flush after halt": the vertex votes to
// halt on its last iteration and then still sends its rank along the
// out-edges. The job seems fine (it terminates, the ranks look plausible),
// but every send re-activates the neighbors, so the "finished" computation
// silently burns extra supersteps. The sanitizer reports each such send as a
// send_after_halt finding.
//
//   $ ./sanitizer_demo

#include <cstdio>
#include <memory>
#include <vector>

#include "algos/pagerank.h"
#include "analysis/finding.h"
#include "analysis/sanitizer.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/job.h"
#include "pregel/loader.h"

using graft::VertexId;
using graft::algos::PageRankTraits;
using graft::pregel::DoubleValue;

namespace {

// PageRank with the planted contract violation (see tests/analysis_corpus
// for the full buggy-twin suite).
class LeakyPageRank : public graft::pregel::Computation<PageRankTraits> {
 public:
  explicit LeakyPageRank(int max_iterations)
      : max_iterations_(max_iterations) {}

  void Compute(graft::pregel::ComputeContext<PageRankTraits>& ctx,
               graft::pregel::Vertex<PageRankTraits>& vertex,
               const std::vector<DoubleValue>& messages) override {
    const double n = static_cast<double>(ctx.total_num_vertices());
    if (ctx.superstep() == 0) {
      vertex.set_value(DoubleValue{1.0 / n});
    } else {
      double incoming = 0.0;
      for (const DoubleValue& m : messages) incoming += m.value;
      vertex.set_value(DoubleValue{0.15 / n + 0.85 * incoming});
    }
    if (ctx.superstep() >= max_iterations_) vertex.VoteToHalt();
    // BUG: runs in the halt superstep too — each message is a ghost
    // activation of the target.
    if (vertex.num_edges() > 0) {
      ctx.SendMessageToAllEdges(
          vertex, DoubleValue{vertex.value().value /
                              static_cast<double>(vertex.num_edges())});
    }
  }

 private:
  int max_iterations_;
};

}  // namespace

int main() {
  auto graph = graft::graph::GenerateRing(8);
  graft::InMemoryTraceStore store;

  graft::pregel::JobSpec<PageRankTraits> spec;
  spec.options.job_id = "sanitizer_demo";
  spec.options.num_workers = 2;
  spec.options.max_supersteps = 5;  // the ghost activations never converge
  spec.vertices = graft::pregel::LoadUnweighted<PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] { return std::make_unique<LeakyPageRank>(3); };

  // Checked execution: one flag plus a store for the findings. With
  // `fail_on_violation = true` the first finding would abort the run with a
  // kAborted status instead.
  spec.sanitizer.enabled = true;
  spec.trace_store = &store;

  auto summary = graft::pregel::RunJob(std::move(spec));
  if (!summary.ok()) {
    std::fprintf(stderr, "RunJob: %s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("job finished: %lld supersteps, %llu findings\n",
              static_cast<long long>(summary->stats.supersteps),
              static_cast<unsigned long long>(summary->analysis_findings));

  auto findings = graft::analysis::ReadFindings(store, "sanitizer_demo");
  if (!findings.ok()) {
    std::fprintf(stderr, "ReadFindings: %s\n",
                 findings.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              graft::analysis::RenderFindingsTable(*findings).c_str());

  // The run report carries the same numbers for dashboards.
  std::printf("analysis profile (from the run report):\n%s\n",
              summary->stats.report.ToJson().c_str());
  return summary->analysis_findings > 0 ? 0 : 1;  // demo must catch the bug
}
