// §4.1 Graph Coloring scenario, end to end:
//
//   "Our implementation of GC contains a bug that incorrectly puts some
//    adjacent vertices into the same MIS, so they are assigned the same
//    color. [...] We run our implementation on the bipartite-1M-3M graph and
//    use Graft to capture a random set of 10 vertices. We then go to the
//    final superstep from the GUI [...] we see that some vertices and their
//    neighbors are assigned the same color [...] We generate a JUnit test
//    case from the GUI replicating the lines of code that executed [...]"
//
// We run on a scaled-down bipartite-1M-3M (env GRAFT_SCALE, default 1/100),
// capture 10 random vertices + neighbors, detect the same-color conflict in
// the final state, walk the GUI back to the superstep where both conflict
// endpoints entered the MIS, and emit the generated reproduction test.

#include <cstdio>
#include <cstdlib>

#include "algos/graph_coloring.h"
#include "debug/codegen.h"
#include "debug/debug_runner.h"
#include "debug/reproducer.h"
#include "debug/trace_reader.h"
#include "debug/views/gui_views.h"
#include "graph/datasets.h"
#include "io/trace_store.h"

using graft::VertexId;
using graft::algos::GCTraits;

namespace {

uint64_t ScaleFromEnv() {
  const char* env = std::getenv("GRAFT_SCALE");
  if (env != nullptr) {
    long long v = std::atoll(env);
    if (v >= 1) return static_cast<uint64_t>(v);
  }
  return 100;
}

/// The paper-style DebugConfig for this scenario (cf. Figure 2).
class GCDebugConfig : public graft::debug::DebugConfig<GCTraits> {
 public:
  int NumRandomVerticesToCapture() const override { return 10; }
  bool CaptureNeighborsOfVertices() const override { return true; }
  uint64_t RandomSeed() const override { return 20150605; }
};

}  // namespace

int main() {
  uint64_t scale = ScaleFromEnv();
  std::printf("== Graft scenario 4.1: graph coloring ==\n");
  std::printf("dataset bipartite-1M-3M at scale 1/%llu\n\n",
              static_cast<unsigned long long>(scale));
  graft::graph::DatasetOptions dopts;
  dopts.scale_denominator = scale;
  auto graph = graft::graph::MakeDataset("bipartite-1M-3M", dopts);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  graft::InMemoryTraceStore store;
  GCDebugConfig config;
  graft::pregel::JobSpec<GCTraits> spec;
  spec.options.job_id = "gc-scenario";
  spec.options.num_workers = 2;
  spec.vertices = graft::algos::LoadGraphColoringVertices(*graph);
  spec.computation = graft::algos::MakeGraphColoringFactory(/*buggy=*/true);
  spec.master = graft::algos::MakeGraphColoringMasterFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  std::map<VertexId, int32_t> final_color;
  spec.post_run = [&](graft::pregel::Engine<GCTraits>& engine) {
    engine.ForEachVertex([&](const graft::pregel::Vertex<GCTraits>& v) {
      final_color[v.id()] = v.value().color;
    });
  };
  auto summary_or = graft::debug::RunWithGraft(std::move(spec));
  if (!summary_or.ok()) {
    std::fprintf(stderr, "%s\n", summary_or.status().ToString().c_str());
    return 1;
  }
  graft::debug::DebugRunSummary summary = std::move(summary_or).value();
  std::printf("run: %s\n", summary.stats.ToString().c_str());
  std::printf("captures: %llu (%llu trace bytes)\n\n",
              static_cast<unsigned long long>(summary.captures),
              static_cast<unsigned long long>(summary.trace_bytes));

  // "We go to the final superstep from the GUI to verify that the algorithm
  // is correct" — here we verify the whole coloring programmatically.
  auto conflicts = graft::algos::FindColoringConflicts(*graph, final_color);
  std::printf("adjacent same-color pairs: %zu\n", conflicts.size());
  if (conflicts.empty()) {
    std::printf("no conflict manifested at this scale; rerun with a larger "
                "graph (GRAFT_SCALE=10)\n");
    return 0;
  }
  auto [u, v] = conflicts.front();
  std::printf("focusing on conflicting pair (%lld, %lld), both color %d\n\n",
              static_cast<long long>(u), static_cast<long long>(v),
              final_color[u]);

  // "We replay the computation superstep by superstep and investigate how
  // they end up with the same color": find the superstep where a captured
  // vertex entered the MIS next to a same-set neighbor. The conflicting
  // pair may not be among the 10 random captures, so rerun capturing the
  // pair and its neighborhood specifically — the capture-by-id workflow.
  graft::debug::ConfigurableDebugConfig<GCTraits> focus_config;
  focus_config.set_vertices({u, v}).set_capture_neighbors(true);
  graft::InMemoryTraceStore focus_store;
  graft::pregel::JobSpec<GCTraits> focus_spec;
  focus_spec.options.job_id = "gc-scenario-focus";
  focus_spec.options.num_workers = 2;
  focus_spec.vertices = graft::algos::LoadGraphColoringVertices(*graph);
  focus_spec.computation = graft::algos::MakeGraphColoringFactory(true);
  focus_spec.master = graft::algos::MakeGraphColoringMasterFactory();
  focus_spec.debug_config = &focus_config;
  focus_spec.trace_store = &focus_store;
  if (auto focus = graft::debug::RunWithGraft(std::move(focus_spec));
      !focus.ok()) {
    std::fprintf(stderr, "%s\n", focus.status().ToString().c_str());
    return 1;
  }

  int64_t suspicious_superstep = -1;
  for (int64_t s :
       graft::debug::ListCapturedSupersteps(focus_store, "gc-scenario-focus")) {
    auto tu = graft::debug::ReadVertexTrace<GCTraits>(focus_store,
                                                      "gc-scenario-focus", s, u);
    auto tv = graft::debug::ReadVertexTrace<GCTraits>(focus_store,
                                                      "gc-scenario-focus", s, v);
    if (tu.ok() && tv.ok() &&
        tu->value_after.state == graft::algos::GCState::kInSet &&
        tv->value_after.state == graft::algos::GCState::kInSet) {
      suspicious_superstep = s;
      break;
    }
  }
  if (suspicious_superstep < 0) {
    std::printf("could not locate the joint MIS-entry superstep\n");
    return 1;
  }
  std::printf(
      "both vertices entered the MIS in superstep %lld — suspicious!\n\n",
      static_cast<long long>(suspicious_superstep));

  graft::debug::GraftGui<GCTraits> gui(&focus_store, "gc-scenario-focus");
  if (gui.SeekTo(suspicious_superstep).ok()) {
    auto view = gui.NodeLinkView();
    if (view.ok()) std::printf("%s\n", view->c_str());
  }

  // "We generate a JUnit test case from the GUI replicating the lines of
  // code that executed for vertex u in superstep s."
  auto trace = graft::debug::ReadVertexTrace<GCTraits>(
      focus_store, "gc-scenario-focus", suspicious_superstep, u);
  if (trace.ok()) {
    graft::debug::CodegenBinding binding;
    binding.traits_type = "graft::algos::GCTraits";
    binding.includes = {"algos/graph_coloring.h"};
    binding.computation_decl =
        "graft::algos::GraphColoringComputation computation(/*buggy=*/true);";
    binding.test_suite = "GCVertexGraftTest";
    std::printf("--- generated reproduction test (paper Figure 6) ---\n%s\n",
                graft::debug::GenerateVertexTestCode(*trace, binding).c_str());

    // During line-by-line replay the user identifies the buggy code. Here
    // we demonstrate the diagnosis programmatically: replaying the same
    // context through the FIXED computation gives a different outcome.
    graft::algos::GraphColoringComputation buggy(true);
    graft::algos::GraphColoringComputation fixed(false);
    auto buggy_outcome = graft::debug::ReplayVertex(*trace, buggy);
    auto fixed_outcome = graft::debug::ReplayVertex(*trace, fixed);
    std::printf("replay (buggy): state -> %s\n",
                std::string(graft::algos::GCStateName(
                    buggy_outcome.value_after.state)).c_str());
    std::printf("replay (fixed): state -> %s\n",
                std::string(graft::algos::GCStateName(
                    fixed_outcome.value_after.state)).c_str());
  }

  // Confirm the fix end to end.
  auto fixed_run = graft::algos::RunGraphColoring(*graph, /*buggy=*/false);
  if (fixed_run.ok()) {
    auto fixed_conflicts =
        graft::algos::FindColoringConflicts(*graph, fixed_run->color);
    std::printf("\nfixed implementation: %zu conflicts, %d colors\n",
                fixed_conflicts.size(), fixed_run->num_colors);
  }
  return 0;
}
