// §4.3 Maximum-Weight Matching scenario — Graft finding an error in the
// *input graph* rather than in the code:
//
//   "We run MWM on a weighted version of the soc-Epinions graph, which is
//    encoded as undirected by having symmetric directed edges [...] However,
//    a small fraction of the edges incorrectly have different weights on
//    their symmetric edges. We run MWM on our erroneous soc-Epinions graph
//    and see that it enters an infinite loop. We then run MWM with Graft and
//    capture all active vertices after superstep 500, by which point the
//    active graph is fairly small. We notice that some of the edge weights
//    in the small remaining graph are asymmetric, which is the cause of the
//    algorithm not converging."

#include <cstdio>
#include <cstdlib>

#include "algos/max_weight_matching.h"
#include "debug/debug_runner.h"
#include "debug/views/gui_views.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "io/trace_store.h"

using graft::VertexId;
using graft::algos::MWMTraits;

namespace {

uint64_t ScaleFromEnv() {
  const char* env = std::getenv("GRAFT_SCALE");
  if (env != nullptr && std::atoll(env) >= 1) {
    return static_cast<uint64_t>(std::atoll(env));
  }
  return 40;
}

/// Capture every active vertex, but only after the active graph has become
/// small (the paper uses superstep 500; scaled down with the graph).
class MWMDebugConfig : public graft::debug::DebugConfig<MWMTraits> {
 public:
  explicit MWMDebugConfig(int64_t from_superstep)
      : from_superstep_(from_superstep) {}
  bool CaptureAllActiveVertices() const override { return true; }
  bool ShouldCaptureSuperstep(int64_t superstep) const override {
    return superstep >= from_superstep_;
  }

 private:
  int64_t from_superstep_;
};

}  // namespace

int main() {
  uint64_t scale = ScaleFromEnv();
  constexpr int64_t kMaxSupersteps = 700;
  constexpr int64_t kCaptureFrom = 500;
  std::printf("== Graft scenario 4.3: max-weight matching ==\n");
  std::printf("dataset soc-Epinions (undirected, weighted) at scale 1/%llu\n\n",
              static_cast<unsigned long long>(scale));

  // Weighted undirected soc-Epinions with a small fraction of corrupted
  // symmetric weights.
  graft::graph::DatasetOptions dopts;
  dopts.scale_denominator = scale;
  dopts.undirected = true;
  auto graph = graft::graph::MakeDataset("soc-Epinions", dopts);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  graft::graph::AssignRandomWeights(&*graph, 1.0, 100.0, /*seed=*/77,
                                    /*symmetric=*/true);
  graft::graph::SimpleGraph corrupted = *graph;
  uint64_t bad_pairs =
      graft::graph::CorruptSymmetricWeights(&corrupted, 0.001, /*seed=*/13);
  // Among the randomly corrupted pairs, some create circular preferences;
  // inject one such cycle deterministically so the run reliably exhibits
  // the paper's symptom.
  auto cycle = graft::graph::InjectPreferenceCycle(&corrupted);
  if (cycle.ok()) bad_pairs += 3;
  std::printf("corrupted %llu symmetric weight pairs (~0.1%%)\n\n",
              static_cast<unsigned long long>(bad_pairs));

  // 1. Plain run "enters an infinite loop" — i.e. hits the superstep cap.
  auto plain = graft::algos::RunMaxWeightMatching(corrupted, 2, kMaxSupersteps);
  if (!plain.ok()) {
    std::fprintf(stderr, "%s\n", plain.status().ToString().c_str());
    return 1;
  }
  std::printf("plain run: %s\n", plain->stats.ToString().c_str());
  std::printf("converged: %s\n\n", plain->converged ? "yes" : "NO — looping");

  // 2. Rerun under Graft capturing all active vertices after superstep 500.
  graft::InMemoryTraceStore store;
  MWMDebugConfig config(kCaptureFrom);
  graft::pregel::JobSpec<MWMTraits> spec;
  spec.options.job_id = "mwm-scenario";
  spec.options.num_workers = 2;
  spec.options.max_supersteps = kMaxSupersteps;
  spec.vertices = graft::algos::LoadMatchingVertices(corrupted);
  spec.computation = graft::algos::MakeMaxWeightMatchingFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = graft::debug::RunWithGraft(std::move(spec));
  if (!summary_or.ok()) {
    std::fprintf(stderr, "%s\n", summary_or.status().ToString().c_str());
    return 1;
  }
  graft::debug::DebugRunSummary summary = std::move(summary_or).value();
  std::printf("debug run captured %llu active-vertex contexts from superstep "
              "%lld on (%llu trace bytes)\n\n",
              static_cast<unsigned long long>(summary.captures),
              static_cast<long long>(kCaptureFrom),
              static_cast<unsigned long long>(summary.trace_bytes));

  // 3. The tabular view of the small remaining active graph.
  graft::debug::GraftGui<MWMTraits> gui(&store, "mwm-scenario");
  gui.SeekLast();
  auto tabular = gui.TabularView();
  if (tabular.ok()) std::printf("%s\n", tabular->c_str());

  // 4. "We notice that some of the edge weights in the small remaining graph
  //    are asymmetric": check the captured vertices' edges against the
  //    reverse direction in the input graph.
  auto snapshot = gui.Snapshot();
  if (snapshot.ok()) {
    int asymmetric_found = 0;
    for (const auto& t : snapshot->traces) {
      for (const auto& e : t.edges) {
        auto reverse = corrupted.EdgeWeight(e.target, t.id);
        if (reverse.ok() && *reverse != e.value.value) {
          if (asymmetric_found < 5) {
            std::printf(
                "ASYMMETRY: w(%lld->%lld)=%.3f but w(%lld->%lld)=%.3f\n",
                static_cast<long long>(t.id), static_cast<long long>(e.target),
                e.value.value, static_cast<long long>(e.target),
                static_cast<long long>(t.id), *reverse);
          }
          ++asymmetric_found;
        }
      }
    }
    std::printf("asymmetric weight pairs among captured active vertices: %d\n"
                "=> the input graph, not the algorithm, is at fault\n\n",
                asymmetric_found);
  }

  // 5. Fix the input graph and rerun: converges.
  auto fixed = graft::algos::RunMaxWeightMatching(*graph, 2, kMaxSupersteps);
  if (fixed.ok()) {
    std::printf("run on repaired graph: %s\n", fixed->stats.ToString().c_str());
    std::printf("converged: %s, matched pairs: %zu, total weight: %.1f\n",
                fixed->converged ? "yes" : "no", fixed->matching.size(),
                fixed->total_weight);
    std::string validation =
        graft::algos::ValidateMatching(*graph, fixed->matching);
    std::printf("matching valid: %s\n",
                validation.empty() ? "yes" : validation.c_str());
  }
  return 0;
}
