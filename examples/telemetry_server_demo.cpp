// Telemetry server demo (DESIGN.md §11): run a PageRank job with the event
// journal on and the live HTTP telemetry plane serving it, then keep the
// server up until stdin closes so a human (or tools/telemetry_smoke.py) can
// poll it:
//
//   $ ./telemetry_server_demo &
//   TELEMETRY port=43211 job=telemetry-demo
//   $ curl localhost:43211/metrics
//   $ curl localhost:43211/jobs/telemetry-demo/report
//   $ curl localhost:43211/jobs/telemetry-demo/events > trace.json  # Perfetto
//
// Environment knobs (for the CI smoke):
//   GRAFT_TELEMETRY_SUPERSTEPS  PageRank iterations (default 20)
//   GRAFT_TELEMETRY_VERTICES    graph size (default 2000)
//   GRAFT_TELEMETRY_SLEEP_MS    pause per superstep barrier (default 0) —
//                               stretches the run so mid-run polls observe
//                               the superstep counter advancing

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "algos/pagerank.h"
#include "graph/generators.h"
#include "obs/event_journal.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "pregel/job.h"
#include "pregel/loader.h"

using graft::VertexId;
using graft::algos::PageRankTraits;
using graft::pregel::DoubleValue;

namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

}  // namespace

// Stretches each superstep so the run is pollable from outside; subscribed
// via pre_run when GRAFT_TELEMETRY_SLEEP_MS is set.
struct BarrierSleeper
    : graft::pregel::Engine<PageRankTraits>::SuperstepObserver {
  explicit BarrierSleeper(int ms) : ms_(ms) {}
  void OnSuperstepEnd(int64_t, const graft::pregel::SuperstepStats&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
  }
  int ms_;
};

int main() {
  const int supersteps =
      static_cast<int>(EnvOr("GRAFT_TELEMETRY_SUPERSTEPS", 20));
  const uint64_t vertices = EnvOr("GRAFT_TELEMETRY_VERTICES", 2000);
  const int sleep_ms = static_cast<int>(EnvOr("GRAFT_TELEMETRY_SLEEP_MS", 0));

  // 1. Start the telemetry plane on an ephemeral loopback port.
  graft::obs::MetricsRegistry metrics;
  graft::obs::TelemetryServerOptions server_options;
  server_options.metrics = &metrics;
  auto server = graft::obs::TelemetryServer::Start(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start telemetry server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const std::string job_id = "telemetry-demo";
  // One parseable line for scripts; flushed before the job starts so a
  // parent process can begin polling mid-run.
  std::printf("TELEMETRY port=%u job=%s\n", (*server)->port(), job_id.c_str());
  std::fflush(stdout);

  // 2. Run PageRank with the journal on and progress published to the
  //    global job registry the server serves.
  auto graph = graft::graph::MakeUndirected(graft::graph::GenerateErdosRenyi(
      vertices, vertices * 4, /*seed=*/42));
  graft::pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = 4;
  spec.options.job_id = job_id;
  spec.options.metrics = &metrics;
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{a.value + b.value};
  };
  spec.vertices = graft::pregel::LoadUnweighted<PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [supersteps] {
    return std::make_unique<graft::algos::PageRankComputation>(supersteps);
  };
  spec.master = [supersteps]() -> std::unique_ptr<graft::pregel::MasterCompute> {
    return std::make_unique<graft::algos::PageRankMaster>(supersteps);
  };
  spec.telemetry.journal = true;
  spec.telemetry.publish = true;
  BarrierSleeper sleeper(sleep_ms);
  if (sleep_ms > 0) {
    spec.pre_run = [&sleeper](graft::pregel::Engine<PageRankTraits>& engine) {
      engine.AddObserver(&sleeper);
    };
  }

  auto summary = graft::pregel::RunJob(std::move(spec));
  if (!summary.ok()) {
    std::fprintf(stderr, "job failed to start: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  if (!summary->job_status.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 summary->job_status.ToString().c_str());
    return 1;
  }
  std::printf("DONE supersteps=%lld messages=%llu\n",
              static_cast<long long>(summary->stats.supersteps),
              static_cast<unsigned long long>(summary->stats.total_messages));
  std::fflush(stdout);

  // 3. Keep serving the final report + cached Chrome trace until stdin
  //    closes (the smoke script holds the pipe open while it polls).
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  (*server)->Stop();
  return 0;
}
