// §4.2 Random Walk scenario:
//
//   "To optimize the memory and network I/O, our implementation declares the
//    counters and messages as 16-bit short primitive types. However, if a
//    vertex u has a large number of walkers [...] u might send v a negative
//    number of walkers. To detect this bug using Graft, we run RW on the
//    web-BS graph with a simple message value constraint that messages are
//    non-negative. After the run we see that the message value constraint
//    icon is red in some supersteps, and in the Violations and Exceptions
//    View we identify which vertices are sending negative messages."
//
// We run the short-counter RW on a scaled web-BS (env GRAFT_SCALE, default
// 1/100) with the constraint `msg.value >= 0`, walk the GUI to the first
// "red" superstep, show the Violations view, generate the reproduction test
// for an offending vertex, and demonstrate the overflow by replaying it.

#include <cstdio>
#include <cstdlib>

#include "algos/random_walk.h"
#include "debug/codegen.h"
#include "debug/debug_runner.h"
#include "debug/reproducer.h"
#include "debug/views/gui_views.h"
#include "graph/datasets.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

using graft::VertexId;
using graft::algos::RWShortTraits;

namespace {

uint64_t ScaleFromEnv() {
  const char* env = std::getenv("GRAFT_SCALE");
  if (env != nullptr && std::atoll(env) >= 1) {
    return static_cast<uint64_t>(std::atoll(env));
  }
  return 100;
}

/// Paper Figure 2, almost verbatim: the message-value constraint.
class RWDebugConfig : public graft::debug::DebugConfig<RWShortTraits> {
 public:
  bool HasMessageValueConstraint() const override { return true; }
  bool MessageValueConstraint(const graft::pregel::ShortValue& msg,
                              VertexId /*src*/, VertexId /*dst*/,
                              int64_t /*superstep*/) const override {
    return msg.value >= 0;
  }
};

}  // namespace

int main() {
  constexpr int kSteps = 12;
  constexpr int64_t kWalkersPerVertex = 100;
  uint64_t scale = ScaleFromEnv();
  std::printf("== Graft scenario 4.2: random walk (short counters) ==\n");
  std::printf("dataset web-BS at scale 1/%llu, %d steps, %lld walkers/vertex\n\n",
              static_cast<unsigned long long>(scale), kSteps,
              static_cast<long long>(kWalkersPerVertex));
  graft::graph::DatasetOptions dopts;
  dopts.scale_denominator = scale;
  auto graph = graft::graph::MakeDataset("web-BS", dopts);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  graft::InMemoryTraceStore store;
  RWDebugConfig config;
  graft::pregel::JobSpec<RWShortTraits> spec;
  spec.options.job_id = "rw-scenario";
  spec.options.num_workers = 2;
  spec.vertices = graft::pregel::LoadUnweighted<RWShortTraits>(
      *graph, [](VertexId) { return graft::pregel::Int64Value{0}; });
  spec.computation = graft::algos::MakeRandomWalkFactory<RWShortTraits>(
      kSteps, kWalkersPerVertex);
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = graft::debug::RunWithGraft(std::move(spec));
  if (!summary_or.ok()) {
    std::fprintf(stderr, "%s\n", summary_or.status().ToString().c_str());
    return 1;
  }
  graft::debug::DebugRunSummary summary = std::move(summary_or).value();
  std::printf("run: %s\n", summary.stats.ToString().c_str());
  std::printf("constraint violations: %llu across %llu captured contexts\n\n",
              static_cast<unsigned long long>(summary.violations),
              static_cast<unsigned long long>(summary.captures));
  if (summary.violations == 0) {
    std::printf("no overflow manifested at this scale; rerun with "
                "GRAFT_SCALE=20 (bigger hubs funnel more walkers)\n");
    return 0;
  }

  // "The message value constraint icon is red in some supersteps": find the
  // first one and open the Violations & Exceptions view there.
  graft::debug::GraftGui<RWShortTraits> gui(&store, "rw-scenario");
  gui.SeekFirst();
  do {
    auto snapshot = gui.Snapshot();
    if (snapshot.ok() && snapshot->AnyMessageViolation()) break;
  } while (gui.NextSuperstep());
  std::printf("first red [M] superstep: %lld\n\n",
              static_cast<long long>(gui.current_superstep()));
  auto violations_view = gui.ViolationsView();
  if (violations_view.ok()) std::printf("%s\n", violations_view->c_str());

  // "We generate a JUnit test case from a vertex v that has sent a negative
  // message, and detect that the bug is due to overflowing of the short
  // type counters."
  auto snapshot = gui.Snapshot();
  if (!snapshot.ok()) return 1;
  const graft::debug::VertexTrace<RWShortTraits>* offender = nullptr;
  for (const auto& t : snapshot->traces) {
    if ((t.reasons & graft::debug::kReasonMessageValue) != 0) {
      offender = &t;
      break;
    }
  }
  if (offender == nullptr) return 1;
  std::printf("offending vertex %lld held %s walkers before the send\n",
              static_cast<long long>(offender->id),
              offender->value_after.ToString().c_str());

  graft::debug::CodegenBinding binding;
  binding.traits_type = "graft::algos::RWShortTraits";
  binding.includes = {"algos/random_walk.h"};
  binding.computation_decl =
      "graft::algos::RandomWalkComputation<graft::algos::RWShortTraits> "
      "computation(12, 100);";
  binding.test_suite = "RWGraftTest";
  std::printf("--- generated reproduction test ---\n%s\n",
              graft::debug::GenerateVertexTestCode(*offender, binding).c_str());

  // Replaying the context through the fixed (int64) computation shows all
  // counters non-negative — the diagnosis.
  graft::algos::RandomWalkComputation<RWShortTraits> buggy(kSteps,
                                                           kWalkersPerVertex);
  auto outcome = graft::debug::ReplayVertex(*offender, buggy);
  int negative = 0;
  for (const auto& [target, msg] : outcome.sent) {
    (void)target;
    if (msg.value < 0) ++negative;
  }
  std::printf("replay of the captured context re-sends %d negative counters "
              "(short overflow past 32767)\n\n",
              negative);

  // Fixed version: walkers are conserved.
  auto fixed = graft::algos::RunRandomWalk(*graph, kSteps, kWalkersPerVertex);
  if (fixed.ok()) {
    std::printf("fixed implementation: total walkers at end = %lld "
                "(expected %lld)\n",
                static_cast<long long>(fixed->total_walkers),
                static_cast<long long>(
                    kWalkersPerVertex *
                    static_cast<int64_t>(graph->NumVertices())));
  }
  return 0;
}
