// Graft-as-a-service demo (DESIGN.md §13): start the debug service — job
// submission over HTTP plus the paginated DebugSession read API — and keep
// it up until stdin closes so a human (or tools/debug_service_smoke.py) can
// drive it:
//
//   $ ./debug_service_demo &
//   DEBUG_SERVICE port=43211
//   $ curl -X POST localhost:43211/jobs -d '{"algo":"pagerank",
//         "job_id":"pr1","graph":{"vertices":500},"params":{"iterations":5}}'
//   $ curl localhost:43211/jobs/pr1/report
//   $ curl localhost:43211/jobs/pr1/debug/supersteps
//   $ curl 'localhost:43211/jobs/pr1/debug/vertices?superstep=1&limit=10'
//   $ curl localhost:43211/jobs/pr1/debug/vertex/7
//
// Every read goes through the process-wide TraceBlockCache; its hit/miss
// counters are exported on /metrics (tracecache_*).

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "io/trace_block_cache.h"
#include "io/trace_store.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "service/debug_service.h"

int main() {
  graft::InMemoryTraceStore store;
  graft::obs::MetricsRegistry metrics;
  graft::TraceBlockCache& cache = graft::TraceBlockCache::Global();

  graft::service::DebugServiceOptions service_options;
  service_options.store = &store;
  service_options.metrics = &metrics;
  graft::service::DebugService service(service_options);

  graft::obs::TelemetryServerOptions server_options;
  server_options.metrics = &metrics;
  // Scrapes see live cache counters next to the engine + service metrics.
  server_options.before_metrics = [&cache](graft::obs::MetricsRegistry* m) {
    cache.ExportMetrics(m);
  };
  std::unique_ptr<graft::obs::TelemetryServer> server =
      graft::obs::TelemetryServer::Create(server_options);
  service.RegisterRoutes(server.get());
  if (graft::Status served = server->Serve(); !served.ok()) {
    std::fprintf(stderr, "cannot start debug service: %s\n",
                 served.ToString().c_str());
    return 1;
  }

  // One parseable line for scripts, flushed before blocking on stdin.
  std::printf("DEBUG_SERVICE port=%u\n", server->port());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server->Stop();
  service.DrainJobs();
  return 0;
}
