// Quickstart: run a Pregel job under the Graft debugger, step through the
// captured supersteps in the (terminal) GUI, and generate a reproduction
// test for one vertex.
//
//   $ ./quickstart [trace_dir]
//
// With a trace_dir argument, traces are written as real files (the "HDFS"
// layout); otherwise an in-memory store is used.

#include <cstdio>
#include <memory>

#include "algos/connected_components.h"
#include "debug/codegen.h"
#include "debug/debug_runner.h"
#include "debug/debug_session.h"
#include "debug/reproducer.h"
#include "debug/views/gui_views.h"
#include "debug/views/text_table.h"
#include "graph/builder.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

using graft::VertexId;
using graft::algos::CCTraits;

int main(int argc, char** argv) {
  // 1. Build a small input graph: two components (a ring and a path).
  graft::graph::GraphBuilder builder;
  for (VertexId v = 0; v < 6; ++v) (void)builder.AddVertex(v);
  (void)builder.AddUndirectedEdge(0, 1);
  (void)builder.AddUndirectedEdge(1, 2);
  (void)builder.AddUndirectedEdge(2, 0);
  (void)builder.AddUndirectedEdge(3, 4);
  (void)builder.AddUndirectedEdge(4, 5);
  graft::graph::SimpleGraph graph = builder.Build();

  // 2. Pick a trace store (the paper logs to HDFS; we log to a directory or
  //    to memory).
  std::unique_ptr<graft::TraceStore> store;
  if (argc > 1) {
    auto opened = graft::LocalDirTraceStore::Open(argv[1]);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open trace dir: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(opened).value();
  } else {
    store = std::make_unique<graft::InMemoryTraceStore>();
  }

  // 3. Describe what to capture — a DebugConfig, as in the paper's Fig. 2.
  class QuickstartDebugConfig : public graft::debug::DebugConfig<CCTraits> {
   public:
    std::vector<VertexId> VerticesToCapture() const override { return {0, 4}; }
    bool CaptureNeighborsOfVertices() const override { return true; }
  };
  QuickstartDebugConfig config;

  // 4. Run connected components under Graft: one JobSpec carries the
  //    engine options, the input graph, the computation, and the debugger
  //    configuration.
  graft::pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "quickstart-cc";
  spec.options.num_workers = 2;
  spec.vertices = graft::pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return graft::pregel::Int64Value{0}; });
  spec.computation = graft::algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = store.get();
  auto summary_or = graft::debug::RunWithGraft(std::move(spec));
  if (!summary_or.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 summary_or.status().ToString().c_str());
    return 1;
  }
  graft::debug::DebugRunSummary summary = std::move(summary_or).value();
  std::printf("job: %s\n", summary.stats.ToString().c_str());
  std::printf("Graft captured %llu vertex contexts (%llu trace bytes)\n\n",
              static_cast<unsigned long long>(summary.captures),
              static_cast<unsigned long long>(summary.trace_bytes));

  // 4b. Where did the time go? The engine's run report breaks every
  //     superstep into phases, and the capture accounting shows what the
  //     debugger itself cost.
  std::printf("--- per-superstep profile ---\n%s\n",
              graft::debug::RenderSuperstepProfile(summary.stats.report)
                  .c_str());
  std::printf("%s\n",
              graft::debug::RenderCaptureProfile(summary.stats.report)
                  .c_str());

  // 5. Step through the captured supersteps in the GUI.
  graft::debug::GraftGui<CCTraits> gui(store.get(), "quickstart-cc");
  gui.SeekFirst();
  do {
    auto view = gui.NodeLinkView();
    if (view.ok()) std::printf("%s\n", view->c_str());
  } while (gui.NextSuperstep());

  gui.SeekLast();
  auto tabular = gui.TabularView();
  if (tabular.ok()) std::printf("%s\n", tabular->c_str());

  // 6. "Reproduce Vertex Context": open the job's DebugSession (manifest-
  //    indexed point lookups) and generate a standalone test replaying
  //    vertex 4 in superstep 1.
  auto session =
      graft::debug::DebugSession<CCTraits>::Open(store.get(), "quickstart-cc");
  if (session.ok()) {
    graft::debug::CodegenBinding binding;
    binding.traits_type = "graft::algos::CCTraits";
    binding.includes = {"algos/connected_components.h"};
    binding.computation_decl =
        "graft::algos::ConnectedComponentsComputation computation;";
    binding.test_suite = "CCGraftTest";
    auto code = graft::debug::GenerateVertexTestCodeAt(*session, 1, 4, binding);
    if (code.ok()) {
      std::printf("--- generated reproduction test ---\n%s\n", code->c_str());
    }

    // ...and prove in-process that the replay is faithful.
    auto trace = session->FindVertexTrace(1, 4);
    if (trace.ok()) {
      graft::algos::ConnectedComponentsComputation computation;
      auto fidelity = graft::debug::CheckReplayFidelity(*trace, computation);
      std::printf(
          "replay fidelity: %s\n",
          fidelity.Faithful() ? "exact" : fidelity.mismatch_detail.c_str());
    }
  }
  return 0;
}
