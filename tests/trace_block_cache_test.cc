// TraceBlockCache: the shared decoded-block LRU behind the debug service's
// read path (DESIGN.md §13). Covers the byte-budget eviction discipline,
// hit/miss/invalidation counters, store-uid keying (ABA safety), the
// never-cache-absence rule for GetOrLoad, and concurrent readers sharing one
// cache without tearing.

#include "io/trace_block_cache.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/trace_store.h"
#include "obs/metrics.h"

namespace graft {
namespace {

std::string Payload(int i, size_t bytes) {
  std::string s = "record-" + std::to_string(i) + "-";
  s.resize(bytes, 'x');
  return s;
}

TEST(TraceBlockCacheTest, FileBlockHitAvoidsStoreRead) {
  InMemoryTraceStore store;
  ASSERT_TRUE(store.Append("job/a.vtrace", "r0").ok());
  ASSERT_TRUE(store.Append("job/a.vtrace", "r1").ok());

  TraceBlockCache cache;
  auto first = cache.GetFileBlock(store, "job/a.vtrace");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)->size(), 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  auto second = cache.GetFileBlock(store, "job/a.vtrace");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared block
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TraceBlockCacheTest, ReadRecordWarmDoesZeroStoreReads) {
  InMemoryTraceStore store;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store.Append("job/a.vtrace", Payload(i, 16)).ok());
  }
  TraceBlockCache cache;
  auto cold = cache.ReadRecord(store, "job/a.vtrace", 3);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->substr(0, 9), "record-3-");

  const auto warm_misses = cache.stats().misses;
  for (uint64_t i = 0; i < 16; ++i) {
    auto record = cache.ReadRecord(store, "job/a.vtrace", i);
    ASSERT_TRUE(record.ok());
  }
  EXPECT_EQ(cache.stats().misses, warm_misses);  // all from the cached block
  EXPECT_GE(cache.stats().hits, 16u);

  auto out_of_range = cache.ReadRecord(store, "job/a.vtrace", 99);
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);
}

TEST(TraceBlockCacheTest, MissingFileIsNotFoundAndNotCached) {
  InMemoryTraceStore store;
  TraceBlockCache cache;
  EXPECT_EQ(cache.GetFileBlock(store, "no/such").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().entries, 0u);

  // The file appearing later must become visible — absence is never cached.
  ASSERT_TRUE(store.Append("no/such", "r0").ok());
  auto block = cache.GetFileBlock(store, "no/such");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 1u);
}

TEST(TraceBlockCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  InMemoryTraceStore store;
  constexpr size_t kRecordBytes = 1024;
  for (int f = 0; f < 8; ++f) {
    const std::string file = "job/f" + std::to_string(f);
    ASSERT_TRUE(store.Append(file, Payload(f, kRecordBytes)).ok());
  }
  // One shard, budget for ~3 blocks: inserting 8 must evict.
  TraceBlockCacheOptions options;
  options.byte_budget = 3 * kRecordBytes + 512;
  options.shards = 1;
  TraceBlockCache cache(options);

  for (int f = 0; f < 8; ++f) {
    auto block = cache.GetFileBlock(store, "job/f" + std::to_string(f));
    ASSERT_TRUE(block.ok());
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, options.byte_budget);
  EXPECT_LT(stats.entries, 8u);

  // The most recently inserted block survived; the oldest was evicted.
  EXPECT_EQ(cache.stats().misses, 8u);
  auto newest = cache.GetFileBlock(store, "job/f7");
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(cache.stats().misses, 8u);  // hit
  auto oldest = cache.GetFileBlock(store, "job/f0");
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(cache.stats().misses, 9u);  // had to reload
}

TEST(TraceBlockCacheTest, OversizedEntryStillServedOnceThenDropped) {
  InMemoryTraceStore store;
  ASSERT_TRUE(store.Append("job/huge", Payload(0, 4096)).ok());
  TraceBlockCacheOptions options;
  options.byte_budget = 256;  // smaller than the single block
  options.shards = 1;
  TraceBlockCache cache(options);
  auto block = cache.GetFileBlock(store, "job/huge");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 1u);
  EXPECT_LE(cache.stats().bytes, options.byte_budget);
}

TEST(TraceBlockCacheTest, StoreUidKeysPreventAliasing) {
  TraceBlockCache cache;
  auto store_a = std::make_unique<InMemoryTraceStore>();
  ASSERT_TRUE(store_a->Append("job/a", "from-a").ok());
  auto block_a = cache.GetFileBlock(*store_a, "job/a");
  ASSERT_TRUE(block_a.ok());

  // A different store with the same file name must not see store_a's block.
  InMemoryTraceStore store_b;
  ASSERT_TRUE(store_b.Append("job/a", "from-b").ok());
  auto block_b = cache.GetFileBlock(store_b, "job/a");
  ASSERT_TRUE(block_b.ok());
  EXPECT_EQ((*block_b)->at(0), "from-b");
  EXPECT_EQ((*block_a)->at(0), "from-a");
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(TraceBlockCacheTest, InvalidatePrefixDropsOnlyThatJob) {
  InMemoryTraceStore store;
  ASSERT_TRUE(store.Append("job1/a", "r").ok());
  ASSERT_TRUE(store.Append("job2/a", "r").ok());
  TraceBlockCache cache;
  ASSERT_TRUE(cache.GetFileBlock(store, "job1/a").ok());
  ASSERT_TRUE(cache.GetFileBlock(store, "job2/a").ok());
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.InvalidatePrefix(store, "job1/");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // job1 reloads (miss), job2 still hits.
  const auto before = cache.stats();
  ASSERT_TRUE(cache.GetFileBlock(store, "job2/a").ok());
  EXPECT_EQ(cache.stats().misses, before.misses);
  ASSERT_TRUE(cache.GetFileBlock(store, "job1/a").ok());
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(TraceBlockCacheTest, GetOrLoadCachesValueButNeverAbsence) {
  InMemoryTraceStore store;
  TraceBlockCache cache;
  std::atomic<int> loads{0};

  auto loader = [&]() -> Result<std::pair<TraceBlockCache::AnyPtr, size_t>> {
    loads.fetch_add(1);
    auto value = std::make_shared<const std::string>("decoded");
    return std::make_pair(TraceBlockCache::AnyPtr(value), value->size());
  };
  auto first = cache.GetOrLoad(store.store_uid(), "manifest/job", loader);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrLoad(store.store_uid(), "manifest/job", loader);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(first->get(), second->get());

  // A loader returning null (absent manifest) is retried every time.
  auto null_loader =
      [&]() -> Result<std::pair<TraceBlockCache::AnyPtr, size_t>> {
    loads.fetch_add(1);
    return std::make_pair(TraceBlockCache::AnyPtr(), size_t{0});
  };
  ASSERT_TRUE(
      cache.GetOrLoad(store.store_uid(), "manifest/absent", null_loader).ok());
  ASSERT_TRUE(
      cache.GetOrLoad(store.store_uid(), "manifest/absent", null_loader).ok());
  EXPECT_EQ(loads.load(), 3);  // both null calls ran the loader
}

TEST(TraceBlockCacheTest, ExportMetricsPublishesCounters) {
  InMemoryTraceStore store;
  ASSERT_TRUE(store.Append("job/a", "r").ok());
  TraceBlockCache cache;
  ASSERT_TRUE(cache.GetFileBlock(store, "job/a").ok());
  ASSERT_TRUE(cache.GetFileBlock(store, "job/a").ok());

  obs::MetricsRegistry metrics;
  cache.ExportMetrics(&metrics);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("tracecache.hits_total")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("tracecache.misses_total")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("tracecache.hit_rate")->value(), 0.5);
  EXPECT_GT(metrics.GetGauge("tracecache.bytes")->value(), 0.0);
  // Set() snapshots: a second export is idempotent.
  cache.ExportMetrics(&metrics);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("tracecache.hits_total")->value(), 1.0);
}

TEST(TraceBlockCacheTest, ConcurrentReadersShareOneDecode) {
  InMemoryTraceStore store;
  constexpr int kFiles = 8;
  for (int f = 0; f < kFiles; ++f) {
    const std::string file = "job/f" + std::to_string(f);
    for (int r = 0; r < 8; ++r) {
      ASSERT_TRUE(store.Append(file, Payload(r, 64)).ok());
    }
  }
  TraceBlockCache cache;
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        const std::string file =
            "job/f" + std::to_string((t + i) % kFiles);
        auto record = cache.ReadRecord(store, file,
                                       static_cast<uint64_t>(i % 8));
        if (!record.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  // Every thread read every file, but each file decoded at most a handful of
  // times (racing first misses) — not once per read.
  EXPECT_LE(stats.misses, static_cast<uint64_t>(kFiles * kThreads));
  EXPECT_GE(stats.hits,
            static_cast<uint64_t>(kThreads * kReadsPerThread) - stats.misses);
}

}  // namespace
}  // namespace graft
