// ISSUE 5 read-path suite: the versioned record framing, the per-job
// manifest index, the DebugSession API over both, and the SpoolingTraceSink.
// The version-skew tests pin forward- and backward-compatibility: a
// checked-in seed-format ("v0") blob must keep loading, records with unknown
// header fields must decode, and records with an unknown version or kind
// must be skipped rather than fail the whole query.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/binary_io.h"
#include "common/fault_injector.h"
#include "debug/codegen.h"
#include "debug/debug_config.h"
#include "debug/debug_runner.h"
#include "debug/debug_session.h"
#include "debug/end_to_end.h"
#include "debug/reproducer.h"
#include "graph/generators.h"
#include "io/fault_injecting_trace_store.h"
#include "io/trace_sink.h"
#include "io/trace_store.h"
#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace {

using algos::CCTraits;
using algos::PageRankTraits;
using debug::DebugSession;
using debug::ParsedTraceRecord;
using debug::TraceManifest;
using debug::TraceManifestEntry;
using debug::TraceRecordHeader;
using debug::TraceRecordKind;
using debug::VertexTrace;
using pregel::DoubleValue;
using pregel::Int64Value;

// ------------------------------------------------------------ record frame --

VertexTrace<CCTraits> SampleTrace(int64_t superstep, VertexId id) {
  VertexTrace<CCTraits> t;
  t.superstep = superstep;
  t.id = id;
  t.reasons = debug::kReasonSpecified;
  t.value_before = {id + 100};
  t.value_after = {id + 200};
  t.total_vertices = 10;
  t.total_edges = 20;
  return t;
}

TEST(TraceFramingTest, FramedRecordRoundtrips) {
  VertexTrace<CCTraits> trace = SampleTrace(4, 9);
  std::string framed = trace.SerializeFramed();
  ASSERT_FALSE(framed.empty());
  EXPECT_EQ(static_cast<uint8_t>(framed[0]), debug::kTraceRecordMagic);

  auto parsed = debug::ParseTraceRecord(framed);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->header.has_value());
  EXPECT_EQ(parsed->header->version, debug::kTraceFormatVersion);
  EXPECT_EQ(parsed->header->kind, TraceRecordKind::kVertex);
  EXPECT_EQ(parsed->header->superstep, 4);
  EXPECT_EQ(parsed->header->vertex_id, 9);
  EXPECT_FALSE(parsed->ShouldSkip());

  auto decoded = VertexTrace<CCTraits>::Deserialize(framed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 9);
  EXPECT_EQ(decoded->value_after, (Int64Value{209}));
}

TEST(TraceFramingTest, LegacyRecordParsesWithEmptyHeader) {
  VertexTrace<CCTraits> trace = SampleTrace(2, 5);
  std::string legacy = trace.Serialize();  // bare body, no frame
  ASSERT_NE(static_cast<uint8_t>(legacy[0]), debug::kTraceRecordMagic);

  auto parsed = debug::ParseTraceRecord(legacy);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_FALSE(parsed->header.has_value());
  EXPECT_EQ(parsed->body, std::string_view(legacy));

  auto decoded = VertexTrace<CCTraits>::Deserialize(legacy);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->superstep, 2);
  EXPECT_EQ(decoded->id, 5);
}

/// A frame whose header carries fields this build has never heard of:
/// header_len bounds the header, so the known fields parse and the rest is
/// skipped — the forward-compatibility contract of DESIGN.md §10.
TEST(TraceFramingTest, UnknownTrailingHeaderFieldsAreSkipped) {
  VertexTrace<CCTraits> trace = SampleTrace(6, 3);
  std::string body = trace.Serialize();

  BinaryWriter header;
  header.WriteU8(debug::kTraceFormatVersion);
  header.WriteU8(static_cast<uint8_t>(TraceRecordKind::kVertex));
  header.WriteSignedVarint(6);
  header.WriteSignedVarint(3);
  header.WriteString("future-field");  // unknown to this build
  header.WriteFixed64(0x1234);         // and another one
  std::string header_bytes = std::move(header.TakeBuffer());

  BinaryWriter record;
  record.WriteU8(debug::kTraceRecordMagic);
  record.WriteVarint(header_bytes.size());
  record.WriteRaw(header_bytes.data(), header_bytes.size());
  record.WriteRaw(body.data(), body.size());
  std::string framed = std::move(record.TakeBuffer());

  auto parsed = debug::ParseTraceRecord(framed);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->header.has_value());
  EXPECT_EQ(parsed->header->superstep, 6);
  EXPECT_FALSE(parsed->ShouldSkip());

  auto decoded = VertexTrace<CCTraits>::Deserialize(framed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 3);
}

TEST(TraceFramingTest, UnknownVersionAndKindAreSkippableNotFatal) {
  std::string body = SampleTrace(0, 1).Serialize();

  auto frame_with = [&](uint8_t version, uint8_t kind) {
    BinaryWriter header;
    header.WriteU8(version);
    header.WriteU8(kind);
    header.WriteSignedVarint(0);
    header.WriteSignedVarint(1);
    std::string header_bytes = std::move(header.TakeBuffer());
    BinaryWriter record;
    record.WriteU8(debug::kTraceRecordMagic);
    record.WriteVarint(header_bytes.size());
    record.WriteRaw(header_bytes.data(), header_bytes.size());
    record.WriteRaw(body.data(), body.size());
    return std::move(record.TakeBuffer());
  };

  auto future_version = debug::ParseTraceRecord(
      frame_with(debug::kTraceFormatVersion + 1, 0));
  ASSERT_TRUE(future_version.ok()) << future_version.status();
  EXPECT_TRUE(future_version->ShouldSkip());

  auto future_kind = debug::ParseTraceRecord(frame_with(
      debug::kTraceFormatVersion,
      static_cast<uint8_t>(TraceRecordKind::kManifest) + 1));
  ASSERT_TRUE(future_kind.ok()) << future_kind.status();
  EXPECT_TRUE(future_kind->ShouldSkip());

  EXPECT_FALSE(debug::ParseTraceRecord("").ok());
}

TEST(TraceFramingTest, ManifestRoundtripsAndIgnoresTrailingBytes) {
  TraceManifest manifest;
  manifest.entries.push_back({TraceRecordKind::kVertex, 0, 7, 1, 0});
  manifest.entries.push_back({TraceRecordKind::kMaster, 1, 0, -1, 0});

  std::string serialized = manifest.Serialize();
  auto parsed = TraceManifest::Deserialize(serialized);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->entries, manifest.entries);

  // A future writer appends fields after the entry array; old readers must
  // not choke on them.
  auto extended = TraceManifest::Deserialize(serialized + "future-bytes");
  ASSERT_TRUE(extended.ok()) << extended.status();
  EXPECT_EQ(extended->entries, manifest.entries);

  EXPECT_FALSE(TraceManifest::Deserialize(SampleTrace(0, 0).SerializeFramed())
                   .ok())
      << "a vertex record is not a manifest";
}

// ------------------------------------------------------------ version skew --

/// Seed-format v0 vertex trace, generated by the pre-ISSUE-5 serializer and
/// checked in as bytes: superstep 3, vertex 7, reasons=kReasonSpecified,
/// value 5 -> 6, edges {8, 9}, incoming {4, 5}, aggregator pi=3.5,
/// totals 10/20, rng 0xDEADBEEF, halted, outgoing {(8, 6)}. If this stops
/// decoding, the format change broke every pre-upgrade trace on disk.
constexpr char kV0VertexTraceBlob[] =
    "\x01\x06\x0e\x01\x0a\x02\x10\x12\x02\x08\x0a\x01\x02\x70\x69\x02\x00"
    "\x00\x00\x00\x00\x00\x0c\x40\x14\x28\xef\xbe\xad\xde\x00\x00\x00\x00"
    "\x00\x0c\x01\x01\x10\x0c\x00\x00\x00";
constexpr size_t kV0VertexTraceBlobSize = sizeof(kV0VertexTraceBlob) - 1;

TEST(VersionSkewTest, CheckedInV0BlobStillDecodes) {
  std::string_view blob(kV0VertexTraceBlob, kV0VertexTraceBlobSize);
  auto trace = VertexTrace<CCTraits>::Deserialize(blob);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->superstep, 3);
  EXPECT_EQ(trace->id, 7);
  EXPECT_EQ(trace->reasons, debug::kReasonSpecified);
  EXPECT_EQ(trace->value_before, (Int64Value{5}));
  EXPECT_EQ(trace->value_after, (Int64Value{6}));
  ASSERT_EQ(trace->edges.size(), 2u);
  EXPECT_EQ(trace->edges[0].target, 8);
  EXPECT_EQ(trace->edges[1].target, 9);
  ASSERT_EQ(trace->incoming.size(), 2u);
  EXPECT_EQ(trace->incoming[0], (Int64Value{4}));
  EXPECT_DOUBLE_EQ(trace->aggregators.at("pi").AsDouble(), 3.5);
  EXPECT_EQ(trace->total_vertices, 10);
  EXPECT_EQ(trace->total_edges, 20);
  EXPECT_EQ(trace->rng_state, 0xDEADBEEFull);
  EXPECT_TRUE(trace->halted_after);
  ASSERT_EQ(trace->outgoing.size(), 1u);
  EXPECT_EQ(trace->outgoing[0].first, 8);
  EXPECT_FALSE(trace->exception.has_value());
}

/// A v0 job directory (bare-body records, no manifest) read through the new
/// DebugSession: Open falls back to the directory scan and every query works.
TEST(VersionSkewTest, DebugSessionReadsV0JobWithoutManifest) {
  InMemoryTraceStore store;
  const std::string job = "v0-job";
  std::string_view blob(kV0VertexTraceBlob, kV0VertexTraceBlobSize);
  ASSERT_TRUE(
      store.Append(debug::VertexTraceFile(job, 3, 0), std::string(blob)).ok());
  ASSERT_TRUE(store
                  .Append(debug::VertexTraceFile(job, 4, 1),
                          SampleTrace(4, 7).Serialize())
                  .ok());

  auto session = DebugSession<CCTraits>::Open(&store, job);
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_FALSE(session->has_manifest());
  EXPECT_EQ(session->supersteps(), (std::vector<int64_t>{3, 4}));

  auto trace = session->FindVertexTrace(3, 7);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->value_after, (Int64Value{6}));

  auto history = session->VertexHistory(7);
  ASSERT_TRUE(history.ok()) << history.status();
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ((*history)[0].superstep, 3);
  EXPECT_EQ((*history)[1].superstep, 4);

  EXPECT_TRUE(session->FindVertexTrace(3, 999).status().IsNotFound());
}

/// Mixed files — v0 bodies, v2 frames, and frames from the future — in one
/// job. Unknown records are invisible to queries, never an error.
TEST(VersionSkewTest, UnknownRecordsAreSkippedInScans) {
  InMemoryTraceStore store;
  const std::string job = "mixed-job";
  const std::string file = debug::VertexTraceFile(job, 0, 0);
  ASSERT_TRUE(store.Append(file, SampleTrace(0, 1).Serialize()).ok());
  ASSERT_TRUE(store.Append(file, SampleTrace(0, 2).SerializeFramed()).ok());
  // A record only a future build understands: version bumped past ours.
  BinaryWriter header;
  header.WriteU8(debug::kTraceFormatVersion + 1);
  header.WriteU8(0);
  header.WriteSignedVarint(0);
  header.WriteSignedVarint(3);
  std::string header_bytes = std::move(header.TakeBuffer());
  BinaryWriter record;
  record.WriteU8(debug::kTraceRecordMagic);
  record.WriteVarint(header_bytes.size());
  record.WriteRaw(header_bytes.data(), header_bytes.size());
  record.WriteRaw("opaque future payload", 21);
  ASSERT_TRUE(store.Append(file, std::move(record.TakeBuffer())).ok());

  auto session = DebugSession<CCTraits>::Open(&store, job);
  ASSERT_TRUE(session.ok()) << session.status();
  auto traces = session->VertexTraces(0);
  ASSERT_TRUE(traces.ok()) << traces.status();
  ASSERT_EQ(traces->size(), 2u) << "future record skipped, not fatal";
  EXPECT_EQ((*traces)[0].id, 1);
  EXPECT_EQ((*traces)[1].id, 2);
}

// ---------------------------------------------- DebugSession over real jobs --

struct SessionJob {
  InMemoryTraceStore traces;
  pregel::JobRunSummary summary;
};

/// PageRank (has a master) with captures on a handful of vertices.
void RunPageRankJob(SessionJob* out, const TraceSinkOptions& capture_io = {}) {
  static const debug::ConfigurableDebugConfig<PageRankTraits> config = [] {
    debug::ConfigurableDebugConfig<PageRankTraits> c;
    c.set_vertices({0, 1, 2, 50});
    return c;
  }();
  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = 3;
  spec.options.job_id = "pr-session";
  spec.capture_io = capture_io;
  spec.vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph::MakeUndirected(graph::GenerateErdosRenyi(120, 480, /*seed=*/3)),
      [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<algos::PageRankComputation>(/*max_iterations=*/5);
  };
  spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<algos::PageRankMaster>(/*max_iterations=*/5);
  };
  spec.debug_config = &config;
  spec.trace_store = &out->traces;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;
  out->summary = *std::move(summary);
}

/// Supersteps holding at least one vertex capture. The halting superstep can
/// be master-only (the master runs once more after every vertex halts), so
/// this may be one less than session.supersteps().size().
size_t VertexCaptureSteps(const DebugSession<PageRankTraits>& session) {
  size_t steps = 0;
  for (int64_t s : session.supersteps()) {
    auto traces = session.VertexTraces(s);
    if (traces.ok() && !traces->empty()) ++steps;
  }
  return steps;
}

TEST(DebugSessionTest, ManifestBackedPointLookups) {
  SessionJob job;
  RunPageRankJob(&job);
  auto session = DebugSession<PageRankTraits>::Open(&job.traces, "pr-session");
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE(session->has_manifest()) << "successful runs write a manifest";
  ASSERT_FALSE(session->supersteps().empty());

  const int64_t step = session->supersteps().front();
  auto trace = session->FindVertexTrace(step, 50);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->id, 50);
  EXPECT_EQ(trace->superstep, step);
  EXPECT_TRUE(session->FindVertexTrace(step, 777).status().IsNotFound());

  auto history = session->VertexHistory(2);
  ASSERT_TRUE(history.ok()) << history.status();
  EXPECT_EQ(history->size(), VertexCaptureSteps(*session));
  for (size_t i = 0; i < history->size(); ++i) {
    EXPECT_EQ((*history)[i].superstep, session->supersteps()[i]);
    EXPECT_EQ((*history)[i].id, 2);
  }

  auto master = session->Master(step);
  ASSERT_TRUE(master.ok()) << master.status();
  EXPECT_EQ(master->superstep, step);
}

/// The same queries must return the same records with the manifest deleted
/// (scan fallback) — the manifest is an index, not the data.
TEST(DebugSessionTest, ManifestAndScanAgree) {
  SessionJob job;
  RunPageRankJob(&job);
  auto indexed = DebugSession<PageRankTraits>::Open(&job.traces, "pr-session");
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  ASSERT_TRUE(indexed->has_manifest());

  ASSERT_TRUE(
      job.traces.DeletePrefix(debug::ManifestFile("pr-session")).ok());
  auto scanned = DebugSession<PageRankTraits>::Open(&job.traces, "pr-session");
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_FALSE(scanned->has_manifest());

  EXPECT_EQ(indexed->supersteps(), scanned->supersteps());
  for (int64_t step : indexed->supersteps()) {
    for (VertexId id : {0, 1, 2, 50}) {
      auto a = indexed->FindVertexTrace(step, id);
      auto b = scanned->FindVertexTrace(step, id);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        EXPECT_EQ(a->id, b->id);
        EXPECT_EQ(a->superstep, b->superstep);
        EXPECT_EQ(a->Serialize(), b->Serialize()) << "identical records";
      }
    }
  }
}

TEST(DebugSessionTest, SelectFiltersBySuperstepVertexAndReason) {
  SessionJob job;
  RunPageRankJob(&job);
  auto session = DebugSession<PageRankTraits>::Open(&job.traces, "pr-session");
  ASSERT_TRUE(session.ok()) << session.status();

  debug::TraceQuery by_vertex;
  by_vertex.vertex = 1;
  auto history = session->Select(by_vertex);
  ASSERT_TRUE(history.ok()) << history.status();
  EXPECT_EQ(history->size(), VertexCaptureSteps(*session));

  debug::TraceQuery point;
  point.vertex = 1;
  point.superstep = session->supersteps().front();
  auto one = session->Select(point);
  ASSERT_TRUE(one.ok()) << one.status();
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].id, 1);

  debug::TraceQuery by_reason;
  by_reason.superstep = session->supersteps().front();
  by_reason.reason_mask = debug::kReasonSpecified;
  auto specified = session->Select(by_reason);
  ASSERT_TRUE(specified.ok()) << specified.status();
  EXPECT_EQ(specified->size(), 4u) << "the four listed vertices";

  debug::TraceQuery exceptions_only;
  exceptions_only.only_exceptions = true;
  auto none = session->Select(exceptions_only);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_TRUE(none->empty()) << "PageRank does not throw";

  auto missing = DebugSession<PageRankTraits>::Open(&job.traces, "no-such");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_TRUE(missing->supersteps().empty());
}

/// The session consumers added by ISSUE 5: replay, fidelity check, and test
/// codegen all resolve their capture through the same point lookup.
TEST(DebugSessionTest, ReplayAndCodegenResolveThroughSession) {
  SessionJob job;
  RunPageRankJob(&job);
  auto session = DebugSession<PageRankTraits>::Open(&job.traces, "pr-session");
  ASSERT_TRUE(session.ok()) << session.status();
  const int64_t step = session->supersteps().front();

  algos::PageRankComputation computation(/*max_iterations=*/5);
  auto fidelity = debug::CheckReplayFidelityAt(*session, step, 50,
                                               computation);
  ASSERT_TRUE(fidelity.ok()) << fidelity.status();
  EXPECT_TRUE(fidelity->Faithful()) << fidelity->mismatch_detail;

  debug::CodegenBinding binding;
  binding.traits_type = "graft::algos::PageRankTraits";
  binding.includes = {"algos/pagerank.h"};
  binding.computation_decl =
      "graft::algos::PageRankComputation computation(5);";
  binding.test_suite = "PageRankGraftTest";
  auto code = debug::GenerateVertexTestCodeAt(*session, step, 50, binding);
  ASSERT_TRUE(code.ok()) << code.status();
  EXPECT_NE(code->find("ReproduceVertex50"), std::string::npos);
  EXPECT_TRUE(
      debug::GenerateVertexTestCodeAt(*session, step, 777, binding).status()
          .IsNotFound());

  algos::PageRankMaster master(/*max_iterations=*/5);
  auto master_fidelity =
      debug::CheckMasterReplayFidelityAt(*session, step, master);
  ASSERT_TRUE(master_fidelity.ok()) << master_fidelity.status();
  EXPECT_TRUE(master_fidelity->Faithful())
      << master_fidelity->mismatch_detail;

  auto expected = debug::ExpectedValuesFromSession(*session);
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_EQ(expected->size(), 4u);
}

// ------------------------------------------------------- SpoolingTraceSink --

TEST(SpoolingTraceSinkTest, PreservesPerFileAppendOrder) {
  InMemoryTraceStore sync_store, async_store;
  SyncTraceSink sync_sink(&sync_store);
  TraceSinkOptions options;
  options.async = true;
  options.max_batch_bytes = 8;  // seal nearly every record
  options.queue_capacity = 2;
  SpoolingTraceSink async_sink(&async_store, options);

  for (int i = 0; i < 200; ++i) {
    const std::string file = (i % 3 == 0) ? "job/a" : "job/b";
    const std::string record = "record-" + std::to_string(i);
    ASSERT_TRUE(sync_sink.Append(file, record).ok());
    ASSERT_TRUE(async_sink.Append(file, record).ok());
  }
  ASSERT_TRUE(async_sink.Quiesce().ok());

  for (const std::string& file : {"job/a", "job/b"}) {
    auto sync_records = sync_store.ReadAll(file);
    auto async_records = async_store.ReadAll(file);
    ASSERT_TRUE(sync_records.ok() && async_records.ok());
    EXPECT_EQ(*sync_records, *async_records);
  }
  EXPECT_EQ(sync_sink.stats().appends, async_sink.stats().appends);
  EXPECT_EQ(sync_sink.stats().bytes, async_sink.stats().bytes);
  EXPECT_GT(async_sink.stats().batches, 1u);
}

/// A store whose appends block until released — forces the queue to fill so
/// backpressure accounting is exercised deterministically.
class GatedTraceStore final : public InMemoryTraceStore {
 public:
  Status Append(const std::string& file, std::string_view record) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    }
    return InMemoryTraceStore::Append(file, record);
  }
  void OpenGate() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(SpoolingTraceSinkTest, BackpressureBlocksUntilQueueDrains) {
  GatedTraceStore store;
  TraceSinkOptions options;
  options.async = true;
  options.max_batch_bytes = 1;  // every append seals a batch
  options.queue_capacity = 1;
  SpoolingTraceSink sink(&store, options);

  // Batch 1 occupies the flusher (blocked on the gate), batch 2 fills the
  // queue; batch 3 must wait. Open the gate only once that wait is visible.
  std::thread opener([&] {
    while (sink.stats().backpressure_waits == 0) {
      std::this_thread::yield();
    }
    store.OpenGate();
  });
  ASSERT_TRUE(sink.Append("f", "one").ok());
  ASSERT_TRUE(sink.Append("f", "two").ok());
  ASSERT_TRUE(sink.Append("f", "three").ok());
  opener.join();
  ASSERT_TRUE(sink.Quiesce().ok());

  EXPECT_GE(sink.stats().backpressure_waits, 1u);
  EXPECT_GE(sink.stats().max_queue_depth, 1u);
  auto records = store.ReadAll("f");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(SpoolingTraceSinkTest, FlushErrorIsLatchedAndClearedByDiscard) {
  InMemoryTraceStore inner;
  FaultInjector injector;
  FaultInjectingTraceStore store(&inner, &injector);
  TraceSinkOptions options;
  options.async = true;
  options.max_batch_bytes = 1;
  SpoolingTraceSink sink(&store, options);

  injector.Arm({FaultSite::kStoreAppend, /*superstep=*/-1, /*partition=*/-1,
                /*hits=*/1});
  ASSERT_TRUE(sink.Append("f", "doomed").ok()) << "error surfaces later";
  Status drained = sink.Quiesce();
  EXPECT_TRUE(drained.IsUnavailable()) << drained;
  // The latch makes every later call fail fast until the error is handled.
  EXPECT_TRUE(sink.Append("f", "after").IsUnavailable());
  EXPECT_TRUE(sink.Quiesce().IsUnavailable());

  // Recovery's protocol: drop spooled work, clear the latch, start over.
  sink.DiscardPending();
  ASSERT_TRUE(sink.Append("f", "retried").ok());
  ASSERT_TRUE(sink.Quiesce().ok());
  auto records = inner.ReadAll("f");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, (std::vector<std::string>{"retried"}));
}

TEST(SpoolingTraceSinkTest, StatsSnapshotAndRestoreRewindAccounting) {
  InMemoryTraceStore store;
  TraceSinkOptions options;
  options.async = true;
  SpoolingTraceSink sink(&store, options);
  ASSERT_TRUE(sink.Append("f", "one").ok());
  ASSERT_TRUE(sink.Quiesce().ok());
  TraceSinkStats snapshot = sink.stats();
  EXPECT_EQ(snapshot.appends, 1u);

  ASSERT_TRUE(sink.Append("f", "two").ok());
  ASSERT_TRUE(sink.Quiesce().ok());
  EXPECT_EQ(sink.stats().appends, 2u);

  sink.RestoreStats(snapshot);
  EXPECT_EQ(sink.stats(), snapshot)
      << "checkpoint rewind must not double-count the replayed appends";
}

}  // namespace
}  // namespace graft
