// Tests for the §7 "complex constraints" extension: cross-vertex adjacency
// invariants (e.g. no two adjacent vertices share a color) and global
// invariants, evaluated at superstep boundaries.
#include <gtest/gtest.h>

#include "algos/graph_coloring.h"
#include "algos/random_walk.h"
#include "debug/debug_runner.h"
#include "debug/invariant_checker.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace graft {
namespace debug {
namespace {

using algos::GCState;
using algos::GCTraits;
using algos::GCVertexValue;

/// Spec for a debugged graph-coloring run with an attached checker.
pregel::JobSpec<GCTraits> GCSpec(const graph::SimpleGraph& g, bool buggy,
                                 const DebugConfig<GCTraits>& config,
                                 InMemoryTraceStore* store,
                                 InvariantChecker<GCTraits>* checker,
                                 const std::string& job) {
  pregel::JobSpec<GCTraits> spec;
  spec.options.job_id = job;
  spec.vertices = algos::LoadGraphColoringVertices(g);
  spec.computation = algos::MakeGraphColoringFactory(buggy);
  spec.master = algos::MakeGraphColoringMasterFactory();
  spec.debug_config = &config;
  spec.trace_store = store;
  spec.pre_run = [checker](pregel::Engine<GCTraits>& engine) {
    checker->AttachTo(&engine);
  };
  return spec;
}

/// The invariant the paper's users asked for (§7): once two adjacent
/// vertices are both colored, their colors must differ.
InvariantChecker<GCTraits>::AdjacencyPredicate DistinctColors() {
  return [](const pregel::Vertex<GCTraits>& u,
            const pregel::Vertex<GCTraits>& v, const pregel::NullValue&) {
    const GCVertexValue& a = u.value();
    const GCVertexValue& b = v.value();
    if (a.state != GCState::kColored || b.state != GCState::kColored) {
      return true;
    }
    return a.color != b.color;
  };
}

TEST(InvariantCheckerTest, CleanRunHasNoViolations) {
  graph::SimpleGraph g = graph::GenerateRegularBipartite(60, 3, 2);
  InMemoryTraceStore store;
  ConfigurableDebugConfig<GCTraits> config;
  InvariantChecker<GCTraits> checker(&store, "inv-clean");
  checker.AddAdjacencyInvariant("distinct-colors", DistinctColors());
  auto summary = RunWithGraft(
      GCSpec(g, /*buggy=*/false, config, &store, &checker, "inv-clean"));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_EQ(checker.num_violations(), 0u);
}

TEST(InvariantCheckerTest, BuggyColoringTripsAdjacencyInvariant) {
  // Find a seed where the §4.1 bug manifests, then assert the invariant
  // checker catches it DURING the run — strictly more powerful than
  // inspecting the final output.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    graph::SimpleGraph g =
        graph::MakeUndirected(graph::GeneratePowerLaw(300, 4, seed));
    auto run = algos::RunGraphColoring(g, true, 2, seed);
    ASSERT_TRUE(run.ok());
    auto conflicts = algos::FindColoringConflicts(g, run->color);
    if (conflicts.empty()) continue;

    InMemoryTraceStore store;
    ConfigurableDebugConfig<GCTraits> config;
    InvariantChecker<GCTraits> checker(&store, "inv-buggy");
    checker.AddAdjacencyInvariant("distinct-colors", DistinctColors());
    auto spec =
        GCSpec(g, /*buggy=*/true, config, &store, &checker, "inv-buggy");
    spec.options.seed = seed;
    auto summary = RunWithGraft(std::move(spec));
    ASSERT_TRUE(summary.ok()) << summary.status();
    ASSERT_TRUE(summary->job_status.ok());
    ASSERT_GT(checker.num_violations(), 0u);
    // Both directions of the conflicting pair are reported per superstep
    // from the moment of coloring; the recorded pair matches a real final
    // conflict.
    const InvariantViolation& first = checker.violations().front();
    EXPECT_EQ(first.invariant, "distinct-colors");
    bool matches_final = false;
    for (auto [u, v] : conflicts) {
      if ((first.u == u && first.v == v) || (first.u == v && first.v == u)) {
        matches_final = true;
      }
    }
    EXPECT_TRUE(matches_final)
        << "checker flagged (" << first.u << "," << first.v
        << ") which is not a final conflict";

    // Violations were persisted to the trace store and read back.
    auto stored = InvariantChecker<GCTraits>::ReadViolations(
        store, "inv-buggy", first.superstep);
    ASSERT_TRUE(stored.ok());
    ASSERT_FALSE(stored->empty());
    EXPECT_EQ(stored->front(), first);
    return;
  }
  GTEST_FAIL() << "GC bug never manifested across 10 seeds";
}

TEST(InvariantCheckerTest, GlobalInvariantWalkerConservation) {
  using Traits = algos::RWTraits;
  graph::SimpleGraph g = graph::GenerateRing(30);
  InMemoryTraceStore store;
  ConfigurableDebugConfig<Traits> config;
  pregel::Engine<Traits>::Options options;
  options.job_id = "inv-rw";
  InvariantChecker<Traits> checker(&store, "inv-rw");
  const int64_t expected_total = 30 * 100;
  checker.AddGlobalInvariant(
      "walker-conservation",
      [expected_total](const pregel::Engine<Traits>& engine) {
        int64_t total = 0;
        engine.ForEachVertex([&](const pregel::Vertex<Traits>& v) {
          total += v.value().value;
        });
        return total == expected_total;
      });
  pregel::JobSpec<Traits> spec;
  spec.options = options;
  spec.vertices = pregel::LoadUnweighted<Traits>(
      g, [](VertexId) { return pregel::Int64Value{0}; });
  spec.computation = algos::MakeRandomWalkFactory<Traits>(6, 100);
  spec.debug_config = &config;
  spec.trace_store = &store;
  spec.pre_run = [&](pregel::Engine<Traits>& engine) {
    checker.AttachTo(&engine);
  };
  auto summary = RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_EQ(checker.num_violations(), 0u);
}

TEST(InvariantCheckerTest, GlobalInvariantCatchesShortOverflowLoss) {
  using Traits = algos::RWShortTraits;
  // Funnel graph: leaves feed the hub, hub feeds leaf 1 -> counter overflow
  // destroys walkers, so conservation fails mid-run.
  graph::SimpleGraph g;
  for (VertexId v = 1; v <= 500; ++v) g.AddEdge(v, 0);
  g.AddEdge(0, 1);
  InMemoryTraceStore store;
  ConfigurableDebugConfig<Traits> config;
  pregel::Engine<Traits>::Options options;
  options.job_id = "inv-rw-short";
  InvariantChecker<Traits> checker(&store, "inv-rw-short");
  const int64_t expected_total = 501 * 100;
  checker.AddGlobalInvariant(
      "walker-conservation",
      [expected_total](const pregel::Engine<Traits>& engine) {
        int64_t total = 0;
        engine.ForEachVertex([&](const pregel::Vertex<Traits>& v) {
          total += v.value().value;
        });
        return total == expected_total;
      });
  pregel::JobSpec<Traits> spec;
  spec.options = options;
  spec.vertices = pregel::LoadUnweighted<Traits>(
      g, [](VertexId) { return pregel::Int64Value{0}; });
  spec.computation = algos::MakeRandomWalkFactory<Traits>(5, 100);
  spec.debug_config = &config;
  spec.trace_store = &store;
  spec.pre_run = [&](pregel::Engine<Traits>& engine) {
    checker.AttachTo(&engine);
  };
  auto summary = RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_GT(checker.num_violations(), 0u);
}

TEST(InvariantCheckerTest, CheckEverySkipsSuperstepsAndCapRespected) {
  graph::SimpleGraph g = graph::GenerateComplete(4);
  InMemoryTraceStore store;
  InvariantChecker<GCTraits> checker(&store, "inv-cfg");
  checker.set_check_every(1000);  // never hits superstep % 1000 == 0 except 0
  checker.set_max_violations(1);
  checker.AddAdjacencyInvariant(
      "always-fails", [](const pregel::Vertex<GCTraits>&,
                         const pregel::Vertex<GCTraits>&,
                         const pregel::NullValue&) { return false; });
  ConfigurableDebugConfig<GCTraits> config;
  auto summary = RunWithGraft(
      GCSpec(g, /*buggy=*/false, config, &store, &checker, "inv-cfg"));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  // Only superstep 0 is checked, and the cap stops after one record.
  EXPECT_EQ(checker.num_violations(), 1u);
  EXPECT_EQ(checker.violations().front().superstep, 0);
}

TEST(InvariantViolationTest, SerializationRoundTrip) {
  InvariantViolation v{41, "distinct-colors", 672, 673, "u={c=3} v={c=3}"};
  BinaryWriter w;
  v.Write(w);
  BinaryReader r(w.buffer());
  auto decoded = InvariantViolation::Read(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

}  // namespace
}  // namespace debug
}  // namespace graft
