// Tests for the TraceStore ("HDFS" substitute), parameterized over both
// backends, plus durability checks specific to the local-directory backend.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "io/trace_store.h"

namespace graft {
namespace {

namespace fs = std::filesystem;

struct BackendParam {
  std::string name;
  std::function<std::unique_ptr<TraceStore>(const std::string& dir)> make;
};

class TraceStoreTest : public ::testing::TestWithParam<BackendParam> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/graft_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    store_ = GetParam().make(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<TraceStore> store_;
};

TEST_P(TraceStoreTest, AppendAndReadBackInOrder) {
  ASSERT_TRUE(store_->Append("job/a", "first").ok());
  ASSERT_TRUE(store_->Append("job/a", "second").ok());
  ASSERT_TRUE(store_->Append("job/a", "third").ok());
  auto records = store_->ReadAll("job/a");
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0], "first");
  EXPECT_EQ((*records)[1], "second");
  EXPECT_EQ((*records)[2], "third");
}

TEST_P(TraceStoreTest, EmptyAndBinaryRecordsSurvive) {
  std::string binary("\x00\x01\xff\x80", 4);
  ASSERT_TRUE(store_->Append("f", "").ok());
  ASSERT_TRUE(store_->Append("f", binary).ok());
  auto records = store_->ReadAll("f");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0], "");
  EXPECT_EQ((*records)[1], binary);
}

TEST_P(TraceStoreTest, MissingFileIsNotFound) {
  EXPECT_TRUE(store_->ReadAll("nope").status().IsNotFound());
  EXPECT_FALSE(store_->Exists("nope"));
  EXPECT_EQ(store_->RecordCount("nope"), 0u);
}

TEST_P(TraceStoreTest, ExistsAfterAppend) {
  ASSERT_TRUE(store_->Append("x/y/z", "r").ok());
  EXPECT_TRUE(store_->Exists("x/y/z"));
  EXPECT_EQ(store_->RecordCount("x/y/z"), 1u);
}

TEST_P(TraceStoreTest, ListFilesFiltersByPrefixSorted) {
  ASSERT_TRUE(store_->Append("job1/superstep_000001/w0", "r").ok());
  ASSERT_TRUE(store_->Append("job1/superstep_000002/w0", "r").ok());
  ASSERT_TRUE(store_->Append("job2/superstep_000001/w0", "r").ok());
  auto files = store_->ListFiles("job1/");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "job1/superstep_000001/w0");
  EXPECT_EQ(files[1], "job1/superstep_000002/w0");
  EXPECT_EQ(store_->ListFiles("").size(), 3u);
  EXPECT_TRUE(store_->ListFiles("nothing/").empty());
}

TEST_P(TraceStoreTest, TotalBytesGrowsWithData) {
  EXPECT_EQ(store_->TotalBytes("j/"), 0u);
  ASSERT_TRUE(store_->Append("j/a", std::string(100, 'x')).ok());
  ASSERT_TRUE(store_->Flush().ok());
  uint64_t bytes = store_->TotalBytes("j/");
  EXPECT_GE(bytes, 100u);
  EXPECT_LE(bytes, 110u);  // payload + small framing
}

TEST_P(TraceStoreTest, DeletePrefixRemovesOnlyMatching) {
  ASSERT_TRUE(store_->Append("j1/a", "r").ok());
  ASSERT_TRUE(store_->Append("j2/a", "r").ok());
  ASSERT_TRUE(store_->DeletePrefix("j1/").ok());
  EXPECT_FALSE(store_->Exists("j1/a"));
  EXPECT_TRUE(store_->Exists("j2/a"));
}

TEST_P(TraceStoreTest, AppendAfterDeleteStartsFresh) {
  ASSERT_TRUE(store_->Append("j/a", "old").ok());
  ASSERT_TRUE(store_->DeletePrefix("j/").ok());
  ASSERT_TRUE(store_->Append("j/a", "new").ok());
  auto records = store_->ReadAll("j/a");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "new");
}

TEST_P(TraceStoreTest, ConcurrentAppendsToDistinctFiles) {
  // The instrumenter appends from every worker thread; per-worker files.
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      std::string file = "job/worker_" + std::to_string(w);
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(store_->Append(file, std::to_string(i)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < 4; ++w) {
    auto records = store_->ReadAll("job/worker_" + std::to_string(w));
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 200u);
    for (int i = 0; i < 200; ++i) EXPECT_EQ((*records)[i], std::to_string(i));
  }
}

TEST_P(TraceStoreTest, ConcurrentAppendsToSameFileKeepAllRecords) {
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(store_->Append("shared", "r").ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store_->RecordCount("shared"), 400u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TraceStoreTest,
    ::testing::Values(
        BackendParam{"InMemory",
                     [](const std::string&) -> std::unique_ptr<TraceStore> {
                       return std::make_unique<InMemoryTraceStore>();
                     }},
        BackendParam{"LocalDir",
                     [](const std::string& dir) -> std::unique_ptr<TraceStore> {
                       auto store = LocalDirTraceStore::Open(dir);
                       GRAFT_CHECK(store.ok());
                       return std::move(store).value();
                     }}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return info.param.name;
    });

TEST(LocalDirTraceStoreTest, DataSurvivesReopen) {
  std::string dir = ::testing::TempDir() + "/graft_store_reopen";
  fs::remove_all(dir);
  {
    auto store = LocalDirTraceStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append("job/traces", "persistent record").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto store = LocalDirTraceStore::Open(dir);
    ASSERT_TRUE(store.ok());
    auto records = (*store)->ReadAll("job/traces");
    ASSERT_TRUE(records.ok()) << records.status();
    ASSERT_EQ(records->size(), 1u);
    EXPECT_EQ((*records)[0], "persistent record");
  }
  fs::remove_all(dir);
}

TEST(LocalDirTraceStoreTest, TruncatedFileReportsIOError) {
  std::string dir = ::testing::TempDir() + "/graft_store_trunc";
  fs::remove_all(dir);
  {
    auto store = LocalDirTraceStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append("f", std::string(100, 'x')).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Chop the file mid-record.
  fs::resize_file(dir + "/f", 20);
  {
    auto store = LocalDirTraceStore::Open(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->ReadAll("f").status().IsIOError());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace graft
