#ifndef GRAFT_TESTS_TINY_JSON_H_
#define GRAFT_TESTS_TINY_JSON_H_

// Minimal validating JSON parser for tests: parses a document into a value
// tree so exporter output (Chrome trace JSON, report JSON, JSONL) can be
// round-trip checked without an external dependency. Not a production
// parser — no \uXXXX decoding beyond pass-through, doubles via strtod.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace graft {
namespace testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<ValuePtr> items;
  std::map<std::string, ValuePtr> members;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  const Value* Get(const std::string& key) const {
    auto it = members.find(key);
    return it == members.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses the whole document; returns nullptr on any syntax error or
  /// trailing garbage.
  ValuePtr Parse() {
    ValuePtr v = ParseValue();
    if (v == nullptr) return nullptr;
    SkipSpace();
    if (pos_ != text_.size()) return nullptr;
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return nullptr;
      auto v = std::make_shared<Value>();
      v->type = Value::Type::kNull;
      return v;
    }
    return ParseNumber();
  }

  ValuePtr ParseObject() {
    if (!Consume('{')) return nullptr;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kObject;
    SkipSpace();
    if (Consume('}')) return v;
    for (;;) {
      ValuePtr key = ParseString();
      if (key == nullptr) return nullptr;
      if (!Consume(':')) return nullptr;
      ValuePtr val = ParseValue();
      if (val == nullptr) return nullptr;
      v->members[key->str] = val;
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return nullptr;
    }
  }

  ValuePtr ParseArray() {
    if (!Consume('[')) return nullptr;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kArray;
    SkipSpace();
    if (Consume(']')) return v;
    for (;;) {
      ValuePtr item = ParseValue();
      if (item == nullptr) return nullptr;
      v->items.push_back(item);
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return nullptr;
    }
  }

  ValuePtr ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return nullptr;
    ++pos_;
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) return nullptr;
        char e = text_[pos_++];
        switch (e) {
          case '"': v->str.push_back('"'); break;
          case '\\': v->str.push_back('\\'); break;
          case '/': v->str.push_back('/'); break;
          case 'b': v->str.push_back('\b'); break;
          case 'f': v->str.push_back('\f'); break;
          case 'n': v->str.push_back('\n'); break;
          case 'r': v->str.push_back('\r'); break;
          case 't': v->str.push_back('\t'); break;
          case 'u': {
            // Pass the escape through undecoded; tests don't rely on it.
            if (pos_ + 4 > text_.size()) return nullptr;
            v->str += "\\u";
            v->str += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return nullptr;
        }
      } else {
        v->str.push_back(c);
      }
    }
    return nullptr;  // unterminated
  }

  ValuePtr ParseBool() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kBool;
    if (ConsumeLiteral("true")) {
      v->boolean = true;
      return v;
    }
    if (ConsumeLiteral("false")) {
      v->boolean = false;
      return v;
    }
    return nullptr;
  }

  ValuePtr ParseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double d = std::strtod(start, &end);
    if (end == start) return nullptr;
    pos_ += static_cast<size_t>(end - start);
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kNumber;
    v->number = d;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline ValuePtr ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace testjson
}  // namespace graft

#endif  // GRAFT_TESTS_TINY_JSON_H_
