// Integration tests reproducing the paper's three demo scenarios (§4) end
// to end, in miniature: each test performs the full capture → visualize →
// reproduce cycle and asserts the artifact at every step.
#include <gtest/gtest.h>

#include "algos/graph_coloring.h"
#include "algos/max_weight_matching.h"
#include "algos/random_walk.h"
#include "debug/codegen.h"
#include "debug/debug_runner.h"
#include "debug/reproducer.h"
#include "debug/trace_reader.h"
#include "debug/views/gui_views.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace graft {
namespace {

using algos::GCTraits;
using algos::MWMTraits;
using algos::RWShortTraits;

// ------------------------------------------------------- §4.1 graph coloring --

TEST(Scenario41GraphColoring, CaptureVisualizeReproduce) {
  // Scaled bipartite-1M-3M; the bug needs several seeds to manifest at this
  // size, exactly like a real debugging hunt.
  graph::DatasetOptions dopts;
  dopts.scale_denominator = 250;
  uint64_t seed = 0;
  graph::SimpleGraph graph;
  std::map<VertexId, int32_t> color;
  std::vector<std::pair<VertexId, VertexId>> conflicts;
  for (uint64_t s = 1; s <= 12 && conflicts.empty(); ++s) {
    auto g = graph::MakeDataset("bipartite-1M-3M", dopts);
    ASSERT_TRUE(g.ok());
    auto run = algos::RunGraphColoring(*g, /*buggy=*/true, 2, s);
    ASSERT_TRUE(run.ok());
    conflicts = algos::FindColoringConflicts(*g, run->color);
    if (!conflicts.empty()) {
      seed = s;
      graph = std::move(g).value();
      color = run->color;
    }
  }
  ASSERT_FALSE(conflicts.empty()) << "bug never manifested across 12 seeds";
  auto [u, v] = conflicts.front();
  EXPECT_EQ(color[u], color[v]);

  // Capture the conflicting pair + neighbors across the whole run.
  debug::ConfigurableDebugConfig<GCTraits> config;
  config.set_vertices({u, v}).set_capture_neighbors(true);
  InMemoryTraceStore store;
  pregel::JobSpec<GCTraits> spec;
  spec.options.job_id = "s41";
  spec.options.seed = seed;
  spec.vertices = algos::LoadGraphColoringVertices(graph);
  spec.computation = algos::MakeGraphColoringFactory(true);
  spec.master = algos::MakeGraphColoringMasterFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  ASSERT_GT(summary->captures, 0u);

  // Visualize: find the superstep where both entered the MIS together.
  int64_t suspicious = -1;
  for (int64_t s : debug::ListCapturedSupersteps(store, "s41")) {
    auto tu = debug::ReadVertexTrace<GCTraits>(store, "s41", s, u);
    auto tv = debug::ReadVertexTrace<GCTraits>(store, "s41", s, v);
    if (tu.ok() && tv.ok() &&
        tu->value_after.state == algos::GCState::kInSet &&
        tv->value_after.state == algos::GCState::kInSet) {
      suspicious = s;
      break;
    }
  }
  ASSERT_GE(suspicious, 0) << "joint MIS entry not found in traces";

  // The node-link view of that superstep shows both vertices.
  debug::GraftGui<GCTraits> gui(&store, "s41");
  ASSERT_TRUE(gui.SeekTo(suspicious).ok());
  auto view = gui.NodeLinkView();
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find("(" + std::to_string(u) + ")"), std::string::npos);

  // Reproduce: at least one of the two vertices behaves differently under
  // the fixed computation in some captured superstep <= suspicious (the
  // wrong MIS entry may happen at either endpoint).
  algos::GraphColoringComputation buggy(true);
  algos::GraphColoringComputation fixed(false);
  bool diverges = false;
  for (int64_t s : debug::ListCapturedSupersteps(store, "s41")) {
    if (s > suspicious) break;
    for (VertexId w : {u, v}) {
      auto trace = debug::ReadVertexTrace<GCTraits>(store, "s41", s, w);
      if (!trace.ok()) continue;
      EXPECT_TRUE(debug::CheckReplayFidelity(*trace, buggy).Faithful());
      if (!debug::CheckReplayFidelity(*trace, fixed).Faithful()) {
        diverges = true;
      }
    }
  }
  EXPECT_TRUE(diverges);

  // The generated test file names the suspicious superstep and vertex.
  auto trace = debug::ReadVertexTrace<GCTraits>(store, "s41", suspicious, u);
  ASSERT_TRUE(trace.ok());
  debug::CodegenBinding binding;
  binding.traits_type = "graft::algos::GCTraits";
  binding.includes = {"algos/graph_coloring.h"};
  binding.computation_decl =
      "graft::algos::GraphColoringComputation computation(true);";
  binding.test_suite = "GCVertexGraftTest";
  std::string code = debug::GenerateVertexTestCode(*trace, binding);
  EXPECT_NE(code.find(StrFormat("ReproduceVertex%lldSuperstep%lld",
                                static_cast<long long>(u),
                                static_cast<long long>(suspicious))),
            std::string::npos);

  // And the fix closes the loop.
  auto fixed_run = algos::RunGraphColoring(graph, false, 2, seed);
  ASSERT_TRUE(fixed_run.ok());
  EXPECT_TRUE(algos::FindColoringConflicts(graph, fixed_run->color).empty());
}

// --------------------------------------------------------- §4.2 random walk --

TEST(Scenario42RandomWalk, MessageConstraintCatchesShortOverflow) {
  graph::DatasetOptions dopts;
  dopts.scale_denominator = 400;  // small but hub-y enough to overflow
  auto graph = graph::MakeDataset("web-BS", dopts);
  ASSERT_TRUE(graph.ok());

  debug::ConfigurableDebugConfig<RWShortTraits> config;
  config.set_message_value_constraint(
      [](const pregel::ShortValue& m, VertexId, VertexId, int64_t) {
        return m.value >= 0;
      });
  InMemoryTraceStore store;
  pregel::JobSpec<RWShortTraits> spec;
  spec.options.job_id = "s42";
  spec.vertices = pregel::LoadUnweighted<RWShortTraits>(
      *graph, [](VertexId) { return pregel::Int64Value{0}; });
  // 400 walkers/vertex keeps the total walker mass of a 4x larger run, so
  // the funnel chain overflows a short counter within a few supersteps.
  spec.computation = algos::MakeRandomWalkFactory<RWShortTraits>(10, 400);
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  ASSERT_GT(summary->violations, 0u) << "no overflow at this scale";

  // The GUI finds a red-[M] superstep; its violations view lists negative
  // counters.
  debug::GraftGui<RWShortTraits> gui(&store, "s42");
  gui.SeekFirst();
  while (true) {
    auto snapshot = gui.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    if (snapshot->AnyMessageViolation()) break;
    ASSERT_TRUE(gui.NextSuperstep()) << "no red superstep found";
  }
  auto violations = gui.ViolationsView();
  ASSERT_TRUE(violations.ok());
  EXPECT_NE(violations->find("message-value"), std::string::npos);
  EXPECT_NE(violations->find("-"), std::string::npos);

  // Reproduce: replaying an offender resends the negative counter.
  auto snapshot = gui.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const debug::VertexTrace<RWShortTraits>* offender = nullptr;
  for (const auto& t : snapshot->traces) {
    if ((t.reasons & debug::kReasonMessageValue) != 0) {
      offender = &t;
      break;
    }
  }
  ASSERT_NE(offender, nullptr);
  EXPECT_GT(offender->value_after.value, 32767)
      << "offender should hold more walkers than a short can count";
  algos::RandomWalkComputation<RWShortTraits> computation(10, 400);
  auto outcome = debug::ReplayVertex(*offender, computation);
  bool negative = false;
  for (const auto& [target, m] : outcome.sent) {
    (void)target;
    if (m.value < 0) negative = true;
  }
  EXPECT_TRUE(negative);

  // The fixed (64-bit) variant conserves walkers on the same graph.
  auto fixed = algos::RunRandomWalk(*graph, 10, 400);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->total_walkers,
            400 * static_cast<int64_t>(graph->NumVertices()));
}

// ------------------------------------------------------------- §4.3 MWM --

TEST(Scenario43Matching, CaptureAllActiveFindsInputGraphError) {
  graph::DatasetOptions dopts;
  dopts.scale_denominator = 150;
  dopts.undirected = true;
  auto clean = graph::MakeDataset("soc-Epinions", dopts);
  ASSERT_TRUE(clean.ok());
  graph::AssignRandomWeights(&*clean, 1.0, 100.0, 7, /*symmetric=*/true);
  graph::SimpleGraph corrupted = *clean;
  auto cycle = graph::InjectPreferenceCycle(&corrupted);
  ASSERT_TRUE(cycle.ok());

  // Plain run "enters an infinite loop" (superstep cap).
  auto looping = algos::RunMaxWeightMatching(corrupted, 2, 120);
  ASSERT_TRUE(looping.ok());
  EXPECT_FALSE(looping->converged);

  // Debug run: capture all active vertices late in the run.
  debug::ConfigurableDebugConfig<MWMTraits> config;
  config.set_capture_all_active(true).set_superstep_filter(
      [](int64_t s) { return s >= 100; });
  InMemoryTraceStore store;
  pregel::JobSpec<MWMTraits> spec;
  spec.options.job_id = "s43";
  spec.options.max_supersteps = 120;
  spec.vertices = algos::LoadMatchingVertices(corrupted);
  spec.computation = algos::MakeMaxWeightMatchingFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  ASSERT_GT(summary->captures, 0u);

  // The active remnant contains the corrupted triangle, and inspecting the
  // captured edges against the input graph reveals the weight asymmetry.
  debug::GraftGui<MWMTraits> gui(&store, "s43");
  gui.SeekLast();
  auto snapshot = gui.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto [u, v, w] = *cycle;
  std::set<VertexId> active_ids;
  for (const auto& t : snapshot->traces) active_ids.insert(t.id);
  EXPECT_TRUE(active_ids.count(u) != 0 || active_ids.count(v) != 0 ||
              active_ids.count(w) != 0)
      << "cycle vertices not among the active remnant";
  int asymmetric = 0;
  for (const auto& t : snapshot->traces) {
    for (const auto& e : t.edges) {
      auto reverse = corrupted.EdgeWeight(e.target, t.id);
      if (reverse.ok() && *reverse != e.value.value) ++asymmetric;
    }
  }
  EXPECT_GT(asymmetric, 0) << "asymmetric weights not visible in traces";

  // Repairing the input graph fixes convergence (no code change!).
  auto repaired = algos::RunMaxWeightMatching(*clean, 2, 1000);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->converged);
  EXPECT_EQ(algos::ValidateMatching(*clean, repaired->matching), "");
}

}  // namespace
}  // namespace graft
