// Tests for the Pregel engine's BSP contract (DESIGN.md §4) plus the value
// types, aggregator values, and the graph loader.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "graph/generators.h"
#include "pregel/agg_value.h"
#include "pregel/engine.h"
#include "pregel/loader.h"
#include "pregel/value_types.h"

namespace graft {
namespace pregel {
namespace {

// ------------------------------------------------------------ value types --

template <typename T>
T RoundTrip(const T& value) {
  BinaryWriter w;
  value.Write(w);
  BinaryReader r(w.buffer());
  auto decoded = T::Read(r);
  EXPECT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  return decoded.value();
}

TEST(ValueTypesTest, RoundTrips) {
  EXPECT_EQ(RoundTrip(NullValue{}), NullValue{});
  EXPECT_EQ(RoundTrip(Int64Value{-1234567890123}), (Int64Value{-1234567890123}));
  EXPECT_EQ(RoundTrip(DoubleValue{3.25}), (DoubleValue{3.25}));
  EXPECT_EQ(RoundTrip(ShortValue{-32768}), (ShortValue{-32768}));
  EXPECT_EQ(RoundTrip(TextValue{"hello world"}), (TextValue{"hello world"}));
}

TEST(ValueTypesTest, ShortValueWrapsLikeJavaShort) {
  ShortValue v{32767};
  ++v.value;
  EXPECT_EQ(v.value, -32768);
}

TEST(ValueTypesTest, ToStringAndToCpp) {
  EXPECT_EQ(Int64Value{42}.ToString(), "42");
  EXPECT_EQ(Int64Value{42}.ToCpp(), "graft::pregel::Int64Value{42}");
  EXPECT_EQ(NullValue{}.ToString(), "-");
  EXPECT_EQ((TextValue{"a\"b"}).ToCpp(),
            "graft::pregel::TextValue{\"a\\\"b\"}");
}

// --------------------------------------------------------------- AggValue --

TEST(AggValueTest, TypePredicatesAndAccessors) {
  EXPECT_TRUE(AggValue{}.IsNull());
  EXPECT_EQ(AggValue{int64_t{5}}.AsInt(), 5);
  EXPECT_EQ(AggValue{2.5}.AsDouble(), 2.5);
  EXPECT_EQ(AggValue{true}.AsBool(), true);
  EXPECT_EQ(AggValue{std::string("p")}.AsText(), "p");
}

TEST(AggValueTest, SerializationRoundTripsAllVariants) {
  for (const AggValue& v :
       {AggValue{}, AggValue{int64_t{-7}}, AggValue{1.5}, AggValue{true},
        AggValue{std::string("PHASE-2")}}) {
    BinaryWriter w;
    v.Write(w);
    BinaryReader r(w.buffer());
    auto decoded = AggValue::Read(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(AggValueTest, BadTagIsError) {
  std::string data = "\x09";
  BinaryReader r(data);
  EXPECT_FALSE(AggValue::Read(r).ok());
}

TEST(AggValueTest, MergeOps) {
  using enum AggregatorOp;
  EXPECT_EQ(MergeAggValue(kSum, AggValue{int64_t{2}}, AggValue{int64_t{3}}),
            AggValue{int64_t{5}});
  EXPECT_EQ(MergeAggValue(kSum, AggValue{1.5}, AggValue{2.0}), AggValue{3.5});
  EXPECT_EQ(MergeAggValue(kMin, AggValue{int64_t{2}}, AggValue{int64_t{3}}),
            AggValue{int64_t{2}});
  EXPECT_EQ(MergeAggValue(kMax, AggValue{2.0}, AggValue{3.0}), AggValue{3.0});
  EXPECT_EQ(MergeAggValue(kMax, AggValue{std::string("a")},
                          AggValue{std::string("b")}),
            AggValue{std::string("b")});
  EXPECT_EQ(MergeAggValue(kAnd, AggValue{true}, AggValue{false}),
            AggValue{false});
  EXPECT_EQ(MergeAggValue(kOr, AggValue{false}, AggValue{true}),
            AggValue{true});
  EXPECT_EQ(MergeAggValue(kOverwrite, AggValue{int64_t{1}},
                          AggValue{std::string("x")}),
            AggValue{std::string("x")});
}

TEST(AggValueTest, NullAccumulatorAdoptsUpdate) {
  EXPECT_EQ(MergeAggValue(AggregatorOp::kSum, AggValue{}, AggValue{1.0}),
            AggValue{1.0});
  EXPECT_EQ(MergeAggValue(AggregatorOp::kSum, AggValue{1.0}, AggValue{}),
            AggValue{1.0});
}

// ----------------------------------------------------------------- loader --

struct EchoTraits {
  using VertexValue = Int64Value;
  using EdgeValue = DoubleValue;
  using Message = Int64Value;
};

TEST(LoaderTest, MapsValuesAndWeights) {
  graph::SimpleGraph g;
  g.AddEdge(1, 2, 0.5);
  g.AddEdge(2, 1, 1.5);
  auto vertices = LoadVertices<EchoTraits>(
      g, [](VertexId id) { return Int64Value{id * 10}; },
      [](VertexId, VertexId, double w) { return DoubleValue{w * 2}; });
  ASSERT_EQ(vertices.size(), 2u);
  EXPECT_EQ(vertices[0].id(), 1);
  EXPECT_EQ(vertices[0].value().value, 10);
  ASSERT_EQ(vertices[0].edges().size(), 1u);
  EXPECT_EQ(vertices[0].edges()[0].value.value, 1.0);
}

// ------------------------------------------------------------------ engine --

/// Test computation: counts supersteps in the vertex value, sends its id to
/// all neighbors every superstep, halts after `max_steps`.
struct CounterTraits {
  using VertexValue = Int64Value;
  using EdgeValue = NullValue;
  using Message = Int64Value;
};

class CounterComputation : public Computation<CounterTraits> {
 public:
  explicit CounterComputation(int max_steps) : max_steps_(max_steps) {}
  void Compute(ComputeContext<CounterTraits>& ctx,
               Vertex<CounterTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    vertex.set_value(Int64Value{vertex.value().value + 1});
    (void)messages;
    if (ctx.superstep() + 1 >= max_steps_) {
      vertex.VoteToHalt();
    } else {
      ctx.SendMessageToAllEdges(vertex, Int64Value{vertex.id()});
    }
  }

 private:
  int max_steps_;
};

std::vector<Vertex<CounterTraits>> RingVertices(uint64_t n) {
  return LoadUnweighted<CounterTraits>(graph::GenerateRing(n),
                                       [](VertexId) { return Int64Value{0}; });
}

TEST(EngineTest, RunsExactSuperstepCountAndDeliversMessages) {
  Engine<CounterTraits>::Options options;
  options.num_workers = 3;
  Engine<CounterTraits> engine(options, RingVertices(10), [] {
    return std::make_unique<CounterComputation>(5);
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->termination, TerminationReason::kAllHalted);
  // 5 vertex phases ran; termination is detected at the start of the 6th
  // superstep, before any vertex executes.
  EXPECT_EQ(stats->supersteps, 5);
  engine.ForEachVertex([](const Vertex<CounterTraits>& v) {
    EXPECT_EQ(v.value().value, 5);
  });
  // Each of 10 vertices sends 2 messages in supersteps 0..3.
  EXPECT_EQ(stats->total_messages, 10u * 2u * 4u);
}

TEST(EngineTest, ResultIndependentOfWorkerCount) {
  std::map<VertexId, int64_t> reference;
  for (int workers : {1, 2, 5}) {
    Engine<CounterTraits>::Options options;
    options.num_workers = workers;
    Engine<CounterTraits> engine(options, RingVertices(23), [] {
      return std::make_unique<CounterComputation>(7);
    });
    ASSERT_TRUE(engine.Run().ok());
    std::map<VertexId, int64_t> values;
    engine.ForEachVertex([&](const Vertex<CounterTraits>& v) {
      values[v.id()] = v.value().value;
    });
    if (reference.empty()) {
      reference = values;
    } else {
      EXPECT_EQ(values, reference) << "workers=" << workers;
    }
  }
}

/// Messages sent in superstep S must arrive in S+1, not earlier/later.
class DeliveryTimingComputation : public Computation<CounterTraits> {
 public:
  void Compute(ComputeContext<CounterTraits>& ctx,
               Vertex<CounterTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    if (ctx.superstep() == 0) {
      EXPECT_TRUE(messages.empty());
      ctx.SendMessageToAllEdges(vertex, Int64Value{100 + vertex.id()});
    } else if (ctx.superstep() == 1) {
      // Ring: both neighbors sent one message tagged with their id.
      EXPECT_EQ(messages.size(), 2u);
      for (const auto& m : messages) EXPECT_GE(m.value, 100);
    }
    vertex.VoteToHalt();
  }
};

TEST(EngineTest, MessagesDeliveredExactlyNextSuperstep) {
  Engine<CounterTraits>::Options options;
  Engine<CounterTraits> engine(options, RingVertices(6), [] {
    return std::make_unique<DeliveryTimingComputation>();
  });
  ASSERT_TRUE(engine.Run().ok());
}

/// Halted vertices are only re-activated by messages.
class HaltingComputation : public Computation<CounterTraits> {
 public:
  void Compute(ComputeContext<CounterTraits>& ctx,
               Vertex<CounterTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    vertex.set_value(Int64Value{vertex.value().value + 1});
    if (ctx.superstep() == 0 && vertex.id() == 0) {
      // Only vertex 0 sends; to one neighbor; at superstep 2 it wakes.
      ctx.SendMessage(1, Int64Value{7});
    }
    (void)messages;
    vertex.VoteToHalt();
  }
};

TEST(EngineTest, MessageReactivatesHaltedVertexOthersStayAsleep) {
  Engine<CounterTraits>::Options options;
  Engine<CounterTraits> engine(options, RingVertices(5), [] {
    return std::make_unique<HaltingComputation>();
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  engine.ForEachVertex([](const Vertex<CounterTraits>& v) {
    // Vertex 1 computed twice (superstep 0 + reactivation), others once.
    EXPECT_EQ(v.value().value, v.id() == 1 ? 2 : 1) << "vertex " << v.id();
  });
}

TEST(EngineTest, CombinerReducesInboxToOneMessage) {
  struct SumComputation : Computation<CounterTraits> {
    void Compute(ComputeContext<CounterTraits>& ctx,
                 Vertex<CounterTraits>& vertex,
                 const std::vector<Int64Value>& messages) override {
      if (ctx.superstep() == 0) {
        // Everyone sends 1 to vertex 0, twice.
        ctx.SendMessage(0, Int64Value{1});
        ctx.SendMessage(0, Int64Value{1});
      } else if (vertex.id() == 0 && ctx.superstep() == 1) {
        EXPECT_EQ(messages.size(), 1u) << "combiner did not collapse inbox";
        vertex.set_value(messages[0]);
      }
      vertex.VoteToHalt();
    }
  };
  Engine<CounterTraits>::Options options;
  options.num_workers = 3;
  options.combiner = [](const Int64Value& a, const Int64Value& b) {
    return Int64Value{a.value + b.value};
  };
  Engine<CounterTraits> engine(options, RingVertices(8), [] {
    return std::make_unique<SumComputation>();
  });
  ASSERT_TRUE(engine.Run().ok());
  auto v0 = engine.FindVertex(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ((*v0)->value().value, 16);  // 8 vertices x 2 messages
}

TEST(EngineTest, MaxSuperstepCapTriggers) {
  struct ForeverComputation : Computation<CounterTraits> {
    void Compute(ComputeContext<CounterTraits>& ctx,
                 Vertex<CounterTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      (void)ctx;
      (void)vertex;  // never halts
    }
  };
  Engine<CounterTraits>::Options options;
  options.max_supersteps = 17;
  Engine<CounterTraits> engine(options, RingVertices(4), [] {
    return std::make_unique<ForeverComputation>();
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->termination, TerminationReason::kMaxSupersteps);
  EXPECT_EQ(stats->supersteps, 17);
}

TEST(EngineTest, ComputeExceptionAbortsWithVertexInMessage) {
  struct ThrowingComputation : Computation<CounterTraits> {
    void Compute(ComputeContext<CounterTraits>&, Vertex<CounterTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      if (vertex.id() == 3) throw VertexComputeError("boom");
      vertex.VoteToHalt();
    }
  };
  Engine<CounterTraits>::Options options;
  Engine<CounterTraits> engine(options, RingVertices(6), [] {
    return std::make_unique<ThrowingComputation>();
  });
  auto stats = engine.Run();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsAborted());
  EXPECT_NE(stats.status().message().find("vertex 3"), std::string::npos);
  EXPECT_NE(stats.status().message().find("boom"), std::string::npos);
}

// ------------------------------------------------- aggregators & master --

class AggMaster : public MasterCompute {
 public:
  void Initialize(MasterContext& ctx) override {
    ASSERT_TRUE(ctx.RegisterAggregator(
                       "sum", {AggregatorOp::kSum, AggValue{int64_t{0}},
                               /*persistent=*/false})
                    .ok());
    ASSERT_TRUE(ctx.RegisterAggregator(
                       "persistent-sum",
                       {AggregatorOp::kSum, AggValue{int64_t{0}},
                        /*persistent=*/true})
                    .ok());
    ASSERT_TRUE(ctx.RegisterAggregator(
                       "phase", {AggregatorOp::kOverwrite,
                                 AggValue{std::string("INIT")},
                                 /*persistent=*/true})
                    .ok());
    // Duplicate registration is rejected.
    EXPECT_TRUE(ctx.RegisterAggregator("sum", {}).IsAlreadyExists());
  }
  void Compute(MasterContext& ctx) override {
    observed_sums.push_back(ctx.GetAggregated("sum"));
    observed_persistent.push_back(ctx.GetAggregated("persistent-sum"));
    ASSERT_TRUE(
        ctx.SetAggregated(
               "phase", AggValue{std::string("S") +
                                 std::to_string(ctx.superstep())})
            .ok());
    EXPECT_TRUE(
        ctx.SetAggregated("unknown", AggValue{int64_t{1}}).IsNotFound());
    if (ctx.superstep() == 3) ctx.HaltComputation();
  }

  static std::vector<AggValue> observed_sums;
  static std::vector<AggValue> observed_persistent;
};
std::vector<AggValue> AggMaster::observed_sums;
std::vector<AggValue> AggMaster::observed_persistent;

class AggComputation : public Computation<CounterTraits> {
 public:
  void Compute(ComputeContext<CounterTraits>& ctx,
               Vertex<CounterTraits>& vertex,
               const std::vector<Int64Value>&) override {
    // Each vertex contributes 1 per superstep to both aggregators.
    ctx.Aggregate("sum", AggValue{int64_t{1}});
    ctx.Aggregate("persistent-sum", AggValue{int64_t{1}});
    // The master's phase overwrite must be visible to vertices in the same
    // superstep.
    EXPECT_EQ(ctx.GetAggregated("phase").AsText(),
              "S" + std::to_string(ctx.superstep()));
    EXPECT_TRUE(ctx.GetAggregated("missing").IsNull());
    (void)vertex;  // never halts; master stops the job
  }
};

TEST(EngineTest, AggregatorTimingRegularVsPersistent) {
  AggMaster::observed_sums.clear();
  AggMaster::observed_persistent.clear();
  Engine<CounterTraits>::Options options;
  options.num_workers = 3;
  Engine<CounterTraits> engine(
      options, RingVertices(10),
      [] { return std::make_unique<AggComputation>(); },
      [] { return std::make_unique<AggMaster>(); });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->termination, TerminationReason::kMasterHalted);
  // Master at superstep s sees values aggregated during superstep s-1:
  // regular "sum" resets each superstep -> always 10 (except superstep 0).
  ASSERT_EQ(AggMaster::observed_sums.size(), 4u);
  EXPECT_EQ(AggMaster::observed_sums[0].AsInt(), 0);  // initial
  EXPECT_EQ(AggMaster::observed_sums[1].AsInt(), 10);
  EXPECT_EQ(AggMaster::observed_sums[2].AsInt(), 10);
  EXPECT_EQ(AggMaster::observed_sums[3].AsInt(), 10);
  // Persistent accumulates: 0, 10, 20, 30.
  EXPECT_EQ(AggMaster::observed_persistent[3].AsInt(), 30);
}

// ------------------------------------------------------ topology mutation --

struct MutTraits {
  using VertexValue = Int64Value;
  using EdgeValue = NullValue;
  using Message = Int64Value;
};

TEST(EngineTest, RemoveVertexDropsItAndItsMessages) {
  struct MutComputation : Computation<MutTraits> {
    void Compute(ComputeContext<MutTraits>& ctx, Vertex<MutTraits>& vertex,
                 const std::vector<Int64Value>& messages) override {
      if (ctx.superstep() == 0) {
        if (vertex.id() == 0) {
          ctx.RemoveVertexRequest(2);
          ctx.SendMessage(2, Int64Value{1});  // raced with removal: dropped
        }
        return;  // stay active one more superstep
      }
      EXPECT_TRUE(messages.empty());
      EXPECT_EQ(ctx.total_num_vertices(), 4);
      vertex.VoteToHalt();
    }
  };
  Engine<MutTraits>::Options options;
  auto vertices = LoadUnweighted<MutTraits>(graph::GenerateRing(5),
                                            [](VertexId) {
                                              return Int64Value{0};
                                            });
  Engine<MutTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<MutComputation>();
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(engine.NumAliveVertices(), 4u);
  EXPECT_TRUE(engine.FindVertex(2).status().IsNotFound());
  EXPECT_EQ(stats->per_superstep[1].messages_dropped, 1u);
  EXPECT_EQ(stats->per_superstep[1].vertices_removed, 1u);
  // Dropped messages roll up into the job totals and the summary line.
  EXPECT_EQ(stats->total_messages_dropped, 1u);
  EXPECT_NE(stats->ToString().find("dropped=1"), std::string::npos);
}

TEST(JobStatsTest, ToStringReportsDroppedAndMaxSuperstepTime) {
  JobStats stats;
  stats.supersteps = 2;
  stats.total_messages = 10;
  stats.total_messages_dropped = 3;
  stats.total_seconds = 1.5;
  stats.per_superstep.push_back(SuperstepStats{.superstep = 0, .seconds = 0.25});
  stats.per_superstep.push_back(SuperstepStats{.superstep = 1, .seconds = 1.25});
  EXPECT_DOUBLE_EQ(stats.MaxSuperstepSeconds(), 1.25);
  std::string s = stats.ToString();
  EXPECT_NE(s.find("dropped=3"), std::string::npos) << s;
  EXPECT_NE(s.find("max_superstep=1.250s"), std::string::npos) << s;
  EXPECT_NE(s.find("time=1.500s"), std::string::npos) << s;
}

TEST(EngineTest, CreateMissingVerticesPolicy) {
  struct SpawnComputation : Computation<MutTraits> {
    void Compute(ComputeContext<MutTraits>& ctx, Vertex<MutTraits>& vertex,
                 const std::vector<Int64Value>& messages) override {
      if (ctx.superstep() == 0 && vertex.id() == 0) {
        ctx.SendMessage(999, Int64Value{5});  // 999 does not exist
      }
      if (vertex.id() == 999) {
        EXPECT_EQ(messages.size(), 1u);
        vertex.set_value(Int64Value{messages[0].value});
      }
      vertex.VoteToHalt();
    }
  };
  Engine<MutTraits>::Options options;
  options.create_missing_vertices = true;
  options.default_vertex_value = Int64Value{-1};
  auto vertices = LoadUnweighted<MutTraits>(graph::GenerateRing(3),
                                            [](VertexId) {
                                              return Int64Value{0};
                                            });
  Engine<MutTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<SpawnComputation>();
  });
  ASSERT_TRUE(engine.Run().ok());
  auto v = engine.FindVertex(999);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->value().value, 5);
  EXPECT_EQ(engine.NumAliveVertices(), 4u);
}

TEST(EngineTest, RemoteEdgeMutationsApplyBetweenSupersteps) {
  struct EdgeMutComputation2 : Computation<MutTraits> {
    void Compute(ComputeContext<MutTraits>& ctx, Vertex<MutTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      if (ctx.superstep() == 0 && vertex.id() == 0) {
        ctx.AddEdgeRequest(1, 2, NullValue{});
        ctx.RemoveEdgeRequest(2, 1);
      }
      vertex.VoteToHalt();
    }
  };
  Engine<MutTraits>::Options options;
  graph::SimpleGraph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddEdge(2, 1);
  auto vertices = LoadUnweighted<MutTraits>(
      g, [](VertexId) { return Int64Value{0}; });
  Engine<MutTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<EdgeMutComputation2>();
  });
  ASSERT_TRUE(engine.Run().ok());
  auto v1 = engine.FindVertex(1);
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ((*v1)->edges().size(), 1u);
  EXPECT_EQ((*v1)->edges()[0].target, 2);
  auto v2 = engine.FindVertex(2);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE((*v2)->edges().empty());
}

// ------------------------------------------------------------ deterministic rng --

TEST(EngineTest, VertexRngDeterministicAcrossRuns) {
  struct RngComputation : Computation<CounterTraits> {
    void Compute(ComputeContext<CounterTraits>& ctx,
                 Vertex<CounterTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      vertex.set_value(Int64Value{static_cast<int64_t>(ctx.rng().Next64())});
      vertex.VoteToHalt();
    }
  };
  std::map<VertexId, int64_t> first;
  for (int run = 0; run < 2; ++run) {
    Engine<CounterTraits>::Options options;
    options.seed = 555;
    options.num_workers = run + 1;  // worker count must not matter
    Engine<CounterTraits> engine(options, RingVertices(12), [] {
      return std::make_unique<RngComputation>();
    });
    ASSERT_TRUE(engine.Run().ok());
    std::map<VertexId, int64_t> values;
    engine.ForEachVertex([&](const Vertex<CounterTraits>& v) {
      values[v.id()] = v.value().value;
    });
    if (run == 0) {
      first = values;
    } else {
      EXPECT_EQ(values, first);
    }
  }
}

TEST(EngineTest, StatsAccounting) {
  Engine<CounterTraits>::Options options;
  Engine<CounterTraits> engine(options, RingVertices(10), [] {
    return std::make_unique<CounterComputation>(3);
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  ASSERT_GE(stats->per_superstep.size(), 3u);
  EXPECT_EQ(stats->per_superstep[0].active_vertices, 10u);
  EXPECT_EQ(stats->per_superstep[0].messages_sent, 20u);
  EXPECT_EQ(stats->final_vertices, 10u);
  EXPECT_EQ(stats->final_edges, 20u);
  EXPECT_GT(stats->total_seconds, 0.0);
}

}  // namespace
}  // namespace pregel
}  // namespace graft
