// Unit tests for the remaining public surface: the scriptable mock contexts
// (the building blocks of generated tests), Vertex mutation helpers,
// CaptureManager target resolution, DebugConfig defaults, and TextTable.
#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "debug/capture_manager.h"
#include "debug/mock_context.h"
#include "debug/views/text_table.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"
#include "pregel/vertex.h"

namespace graft {
namespace debug {
namespace {

using algos::CCTraits;
using pregel::Int64Value;
using pregel::NullValue;

// ------------------------------------------------------ MockComputeContext --

TEST(MockComputeContextTest, ScriptsGlobalDataAndAggregators) {
  MockComputeContext<CCTraits> ctx;
  ctx.set_superstep(41);
  ctx.set_total_num_vertices(1'000'000'000);
  ctx.set_total_num_edges(3'000'000'000);
  ctx.set_aggregated("phase", pregel::AggValue{std::string("X")});
  EXPECT_EQ(ctx.superstep(), 41);
  EXPECT_EQ(ctx.total_num_vertices(), 1'000'000'000);
  EXPECT_EQ(ctx.total_num_edges(), 3'000'000'000);
  EXPECT_EQ(ctx.GetAggregated("phase").AsText(), "X");
  EXPECT_TRUE(ctx.GetAggregated("missing").IsNull());
  EXPECT_EQ(ctx.VisibleAggregators().size(), 1u);
}

TEST(MockComputeContextTest, RecordsEverySideEffect) {
  MockComputeContext<CCTraits> ctx;
  ctx.SendMessage(7, Int64Value{3});
  ctx.Aggregate("sum", pregel::AggValue{int64_t{1}});
  ctx.RemoveVertexRequest(9);
  ctx.AddEdgeRequest(1, 2, NullValue{});
  ctx.RemoveEdgeRequest(2, 1);
  ASSERT_EQ(ctx.sent_messages().size(), 1u);
  EXPECT_EQ(ctx.sent_messages()[0].first, 7);
  EXPECT_EQ(ctx.sent_messages()[0].second, (Int64Value{3}));
  ASSERT_EQ(ctx.aggregations().size(), 1u);
  EXPECT_EQ(ctx.aggregations()[0].first, "sum");
  EXPECT_EQ(ctx.removed_vertices(), std::vector<VertexId>{9});
  EXPECT_EQ(ctx.added_edges().size(), 1u);
  EXPECT_EQ(ctx.removed_edges().size(), 1u);
}

TEST(MockComputeContextTest, RngStateReproducesStream) {
  Rng reference(0xabcdef);
  MockComputeContext<CCTraits> ctx;
  ctx.set_rng_state(0xabcdef);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ctx.rng().Next64(), reference.Next64());
  }
}

// ------------------------------------------------------ MockMasterContext --

TEST(MockMasterContextTest, RegistrationSeedsInitialValues) {
  MockMasterContext ctx;
  ASSERT_TRUE(ctx.RegisterAggregator(
                     "phase", {pregel::AggregatorOp::kOverwrite,
                               pregel::AggValue{std::string("INIT")}, true})
                  .ok());
  EXPECT_EQ(ctx.GetAggregated("phase").AsText(), "INIT");
  ASSERT_TRUE(
      ctx.SetAggregated("phase", pregel::AggValue{std::string("GO")}).ok());
  EXPECT_EQ(ctx.GetAggregated("phase").AsText(), "GO");
  ASSERT_EQ(ctx.set_calls().size(), 1u);
  EXPECT_FALSE(ctx.IsHalted());
  ctx.HaltComputation();
  EXPECT_TRUE(ctx.IsHalted());
}

// ------------------------------------------------------------------ Vertex --

TEST(VertexTest, EdgeMutationHelpers) {
  pregel::Vertex<CCTraits> v(1, Int64Value{0},
                             {{2, NullValue{}}, {3, NullValue{}},
                              {2, NullValue{}}});
  EXPECT_EQ(v.num_edges(), 3u);
  EXPECT_EQ(v.RemoveEdgesTo(2), 2u);  // removes both parallel edges
  EXPECT_EQ(v.num_edges(), 1u);
  v.AddEdge(9, NullValue{});
  EXPECT_EQ(v.edges().back().target, 9);
  EXPECT_EQ(v.RemoveEdgesTo(42), 0u);
}

TEST(VertexTest, HaltAndActivate) {
  pregel::Vertex<CCTraits> v(1, Int64Value{0}, {});
  EXPECT_FALSE(v.halted());
  v.VoteToHalt();
  EXPECT_TRUE(v.halted());
  v.Activate();
  EXPECT_FALSE(v.halted());
  EXPECT_TRUE(v.alive());
  v.set_alive(false);
  EXPECT_FALSE(v.alive());
}

// ---------------------------------------------------------- CaptureManager --

TEST(CaptureManagerTest, PrepareTargetsMergesReasons) {
  // Vertex 5 is both specified and a neighbor of specified vertex 4.
  ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({4, 5}).set_capture_neighbors(true);
  InMemoryTraceStore store;
  CaptureManager<CCTraits> manager(&store, &config, "m");
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(10), [](VertexId) { return Int64Value{0}; });
  manager.PrepareTargets(vertices);
  EXPECT_EQ(manager.TargetReasons(4), kReasonSpecified | kReasonNeighbor);
  EXPECT_EQ(manager.TargetReasons(5), kReasonSpecified | kReasonNeighbor);
  EXPECT_EQ(manager.TargetReasons(3), kReasonNeighbor);
  EXPECT_EQ(manager.TargetReasons(6), kReasonNeighbor);
  EXPECT_EQ(manager.TargetReasons(0), 0u);
}

TEST(CaptureManagerTest, RandomTargetsAreDistinctVertices) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_num_random(8);
  InMemoryTraceStore store;
  CaptureManager<CCTraits> manager(&store, &config, "m");
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(50), [](VertexId) { return Int64Value{0}; });
  manager.PrepareTargets(vertices);
  int targeted = 0;
  for (const auto& v : vertices) {
    uint32_t reasons = manager.TargetReasons(v.id());
    if (reasons != 0) {
      EXPECT_EQ(reasons, kReasonRandom);
      ++targeted;
    }
  }
  EXPECT_EQ(targeted, 8);
}

TEST(CaptureManagerTest, CountersAndBytes) {
  ConfigurableDebugConfig<CCTraits> config;
  InMemoryTraceStore store;
  CaptureManager<CCTraits> manager(&store, &config, "m");
  VertexTrace<CCTraits> trace;
  trace.superstep = 3;
  trace.id = 1;
  trace.reasons = kReasonSpecified;
  auto recorded = manager.RecordVertexTrace(trace, 0);
  ASSERT_TRUE(recorded.ok()) << recorded.status();
  EXPECT_TRUE(*recorded);
  EXPECT_EQ(manager.num_captures(), 1u);
  EXPECT_GT(manager.TraceBytes(), 0u);
  EXPECT_TRUE(store.Exists("m/superstep_000003/worker_000.vtrace"));
}

// ------------------------------------------------------------ DebugConfig --

TEST(DebugConfigTest, BaseDefaultsCaptureOnlyExceptions) {
  DebugConfig<CCTraits> config;
  EXPECT_TRUE(config.VerticesToCapture().empty());
  EXPECT_EQ(config.NumRandomVerticesToCapture(), 0);
  EXPECT_FALSE(config.CaptureNeighborsOfVertices());
  EXPECT_FALSE(config.HasVertexValueConstraint());
  EXPECT_FALSE(config.HasMessageValueConstraint());
  EXPECT_TRUE(config.CaptureExceptions());
  EXPECT_TRUE(config.AbortOnException());
  EXPECT_FALSE(config.CaptureAllActiveVertices());
  EXPECT_TRUE(config.ShouldCaptureSuperstep(0));
  EXPECT_TRUE(config.ShouldCaptureSuperstep(1'000'000));
  EXPECT_GT(config.MaxCaptures(), 0u);
  // Unconstrained predicates accept everything.
  EXPECT_TRUE(config.VertexValueConstraint(Int64Value{-5}, 1, 0));
  EXPECT_TRUE(config.MessageValueConstraint(Int64Value{-5}, 1, 2, 0));
}

// -------------------------------------------------------------- TextTable --

TEST(TextTableTest, AlignsColumnsAndCountsRows) {
  TextTable table({"id", "value"});
  table.AddRow({"1", "short"});
  table.AddRow({"10000", "x"});
  std::string out = table.Render();
  EXPECT_NE(out.find("id    | value"), std::string::npos);
  EXPECT_NE(out.find("------+------"), std::string::npos);
  EXPECT_NE(out.find("10000 | x"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, EmptyTableRendersHeaderOnly) {
  TextTable table({"a"});
  std::string out = table.Render();
  EXPECT_EQ(out, "a\n-\n");
}

}  // namespace
}  // namespace debug
}  // namespace graft
