// Smoke/integration tests exercising the full stack: engine + algorithms +
// Graft capture + trace round-trip + replay fidelity.
#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "algos/graph_coloring.h"
#include "debug/debug_runner.h"
#include "debug/reproducer.h"
#include "debug/trace_reader.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace graft {
namespace {

using algos::CCTraits;
using algos::GCTraits;

TEST(DebugSmoke, ConnectedComponentsOnRing) {
  graph::SimpleGraph g = graph::GenerateRing(10);
  auto result = algos::RunConnectedComponents(g);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_components, 1);
  for (const auto& [id, comp] : result->component) EXPECT_EQ(comp, 0);
}

TEST(DebugSmoke, GraphColoringFixedIsProper) {
  graph::SimpleGraph g = graph::GenerateRegularBipartite(40, 3, 7);
  auto result = algos::RunGraphColoring(g, /*buggy=*/false);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(algos::FindColoringConflicts(g, result->color).empty());
  // A bipartite graph needs few colors; MIS-based coloring may use a few
  // more than 2, but never more than max degree + 1 = 4.
  EXPECT_LE(result->num_colors, 4);
}

TEST(DebugSmoke, CaptureSpecifiedVerticesAndReplay) {
  graph::SimpleGraph g = graph::GenerateRing(12);
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({3, 7}).set_capture_neighbors(true);

  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "cc-smoke";
  spec.options.num_workers = 2;
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      g, [](VertexId) { return pregel::Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  debug::DebugRunSummary summary = std::move(summary_or).value();
  ASSERT_TRUE(summary.job_status.ok()) << summary.job_status;
  EXPECT_GT(summary.captures, 0u);
  EXPECT_GT(summary.trace_bytes, 0u);

  // Superstep 0 must have captured vertices 3, 7 and their ring neighbors.
  auto traces = debug::ReadVertexTraces<CCTraits>(store, "cc-smoke", 0);
  ASSERT_TRUE(traces.ok()) << traces.status();
  std::set<VertexId> ids;
  for (const auto& t : traces.value()) ids.insert(t.id);
  EXPECT_EQ(ids, (std::set<VertexId>{2, 3, 4, 6, 7, 8}));

  // Replay fidelity on every captured trace, every superstep.
  algos::ConnectedComponentsComputation computation;
  for (int64_t s : debug::ListCapturedSupersteps(store, "cc-smoke")) {
    auto step_traces = debug::ReadVertexTraces<CCTraits>(store, "cc-smoke", s);
    ASSERT_TRUE(step_traces.ok());
    for (const auto& trace : step_traces.value()) {
      debug::ReplayFidelity fidelity =
          debug::CheckReplayFidelity(trace, computation);
      EXPECT_TRUE(fidelity.Faithful())
          << "vertex " << trace.id << " superstep " << s << ": "
          << fidelity.mismatch_detail;
    }
  }
}

TEST(DebugSmoke, GraphColoringCapturesMasterTraces) {
  graph::SimpleGraph g = graph::GenerateComplete(6);
  debug::ConfigurableDebugConfig<GCTraits> config;
  config.set_num_random(2).set_capture_neighbors(true);

  InMemoryTraceStore store;
  pregel::JobSpec<GCTraits> spec;
  spec.options.job_id = "gc-smoke";
  spec.vertices = algos::LoadGraphColoringVertices(g);
  spec.computation = algos::MakeGraphColoringFactory(false);
  spec.master = algos::MakeGraphColoringMasterFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  debug::DebugRunSummary summary = std::move(summary_or).value();
  ASSERT_TRUE(summary.job_status.ok()) << summary.job_status;
  EXPECT_GT(summary.captures, 0u);

  auto supersteps = debug::ListCapturedSupersteps(store, "gc-smoke");
  ASSERT_FALSE(supersteps.empty());
  auto master0 = debug::ReadMasterTrace(store, "gc-smoke", 0);
  ASSERT_TRUE(master0.ok()) << master0.status();
  EXPECT_EQ(master0->superstep, 0);
  // The GC master sets the phase aggregator at superstep 0.
  ASSERT_TRUE(master0->aggregators_after.count(algos::kGCPhaseAggregator));
  EXPECT_EQ(master0->aggregators_after.at(algos::kGCPhaseAggregator).AsText(),
            algos::kGCPhaseSelect);

  // Master replay fidelity across all captured supersteps.
  algos::GraphColoringMaster master;
  for (int64_t s : supersteps) {
    auto trace = debug::ReadMasterTrace(store, "gc-smoke", s);
    if (!trace.ok()) continue;
    debug::ReplayFidelity fidelity =
        debug::CheckMasterReplayFidelity(trace.value(), master);
    EXPECT_TRUE(fidelity.Faithful())
        << "master superstep " << s << ": " << fidelity.mismatch_detail;
  }

  // Replay fidelity for captured GC vertices (randomized algorithm — this
  // is the deterministic-RNG guarantee at work).
  algos::GraphColoringComputation computation(false);
  for (int64_t s : supersteps) {
    auto traces = debug::ReadVertexTraces<GCTraits>(store, "gc-smoke", s);
    ASSERT_TRUE(traces.ok());
    for (const auto& trace : traces.value()) {
      debug::ReplayFidelity fidelity =
          debug::CheckReplayFidelity(trace, computation);
      EXPECT_TRUE(fidelity.Faithful())
          << "vertex " << trace.id << " superstep " << s << ": "
          << fidelity.mismatch_detail;
    }
  }
}

}  // namespace
}  // namespace graft
