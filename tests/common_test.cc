// Unit tests for src/common: Status/Result, RNG, binary serialization,
// string utilities, JSON writer, parallel helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <set>
#include <thread>

#include "common/binary_io.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace graft {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing vertex");
  EXPECT_EQ(s.ToString(), "NotFound: missing vertex");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status FailingHelper() { return Status::IOError("disk gone"); }

Status PropagatesViaMacro() {
  GRAFT_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro().IsIOError());
}

// ---------------------------------------------------------------- Result --

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(42), 42);
}

Result<int> DoubledViaMacro(int x) {
  GRAFT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubledViaMacro(5).value(), 10);
  EXPECT_TRUE(DoubledViaMacro(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 3);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, StateRestoresStream) {
  Rng a(77);
  a.Next64();
  uint64_t mid_state = a.state();
  std::vector<uint64_t> tail;
  for (int i = 0; i < 10; ++i) tail.push_back(a.Next64());
  Rng restored(mid_state);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(restored.Next64(), tail[i]);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, StreamsAreIndependent) {
  Rng a = Rng::ForStream(100, 1, 5);
  Rng b = Rng::ForStream(100, 1, 6);
  Rng c = Rng::ForStream(100, 2, 5);
  EXPECT_NE(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
  // Same stream coordinates give the same stream.
  Rng a2 = Rng::ForStream(100, 1, 5);
  Rng a3 = Rng::ForStream(100, 1, 5);
  EXPECT_EQ(a2.Next64(), a3.Next64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------- binary_io --

TEST(BinaryIoTest, VarintRoundTripSmall) {
  BinaryWriter w;
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL}) {
    w.WriteVarint(v);
  }
  BinaryReader r(w.buffer());
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL}) {
    EXPECT_EQ(r.ReadVarint().value(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  BinaryWriter w;
  w.WriteVarint(GetParam());
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadVarint().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 0x7fULL, 0x80ULL,
                                           0x3fffULL, 0x4000ULL, 0xffffffffULL,
                                           0x100000000ULL,
                                           0xffffffffffffffffULL));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, RoundTrips) {
  BinaryWriter w;
  w.WriteSignedVarint(GetParam());
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadSignedVarint().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SignedVarintRoundTrip,
                         ::testing::Values(int64_t{0}, int64_t{-1}, int64_t{1},
                                           int64_t{-64}, int64_t{64},
                                           INT64_MIN, INT64_MAX));

TEST(BinaryIoTest, RandomVarintRoundTripSweep) {
  Rng rng(11);
  BinaryWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next64() >> (rng.NextBounded(64));
    values.push_back(v);
    w.WriteVarint(v);
  }
  BinaryReader r(w.buffer());
  for (uint64_t v : values) EXPECT_EQ(r.ReadVarint().value(), v);
}

TEST(BinaryIoTest, DoubleAndFloatRoundTrip) {
  BinaryWriter w;
  w.WriteDouble(3.14159);
  w.WriteDouble(-0.0);
  w.WriteDouble(std::numeric_limits<double>::infinity());
  w.WriteFloat(2.5f);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadDouble().value(), 3.14159);
  EXPECT_EQ(r.ReadDouble().value(), -0.0);
  EXPECT_TRUE(std::isinf(r.ReadDouble().value()));
  EXPECT_EQ(r.ReadFloat().value(), 2.5f);
}

TEST(BinaryIoTest, StringRoundTripIncludingEmbeddedNul) {
  BinaryWriter w;
  w.WriteString("hello");
  w.WriteString(std::string("a\0b", 3));
  w.WriteString("");
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), std::string("a\0b", 3));
  EXPECT_EQ(r.ReadString().value(), "");
}

TEST(BinaryIoTest, ReadPastEndIsError) {
  BinaryReader r("");
  EXPECT_TRUE(r.ReadU8().status().IsOutOfRange());
  EXPECT_TRUE(r.ReadVarint().status().IsOutOfRange());
  EXPECT_TRUE(r.ReadFixed64().status().IsOutOfRange());
}

TEST(BinaryIoTest, TruncatedVarintIsError) {
  std::string data = "\xff\xff";  // continuation bits set, then EOF
  BinaryReader r(data);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(BinaryIoTest, OverlongVarintIsError) {
  std::string data(11, '\xff');  // more than 10 continuation bytes
  BinaryReader r(data);
  EXPECT_TRUE(r.ReadVarint().status().IsOutOfRange());
}

TEST(BinaryIoTest, TruncatedStringIsError) {
  BinaryWriter w;
  w.WriteVarint(100);  // claims 100 bytes follow
  w.WriteRaw("abc", 3);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BinaryIoTest, SkipAdvancesAndBoundsChecks) {
  BinaryWriter w;
  w.WriteRaw("abcdef", 6);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.Skip(3).ok());
}

TEST(BinaryIoTest, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagDecode(ZigzagEncode(-123456789)), -123456789);
}

// ------------------------------------------------------------ string_util --

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  auto skipping = SplitString("a,b,,c", ',', /*skip_empty=*/true);
  EXPECT_EQ(skipping.size(), 3u);
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  one\ttwo \n three  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, TrimString) {
  EXPECT_EQ(TrimString("  x  "), "x");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString(" \t\n "), "");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", std::string(500, 'y').c_str()).size(), 500u);
}

TEST(StringUtilTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567890), "1,234,567,890");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_FALSE(ParseDouble("2.5q", &v));
}

TEST(StringUtilTest, Ellipsize) {
  EXPECT_EQ(Ellipsize("short", 10), "short");
  EXPECT_EQ(Ellipsize("0123456789", 8), "01234...");
}

// ------------------------------------------------------------ json_writer --

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "graft");
  w.KV("count", int64_t{3});
  w.KV("ratio", 0.5);
  w.KV("ok", true);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"graft\",\"count\":3,\"ratio\":0.5,\"ok\":true}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  w.Int(1);
  w.BeginObject();
  w.KV("k", "v");
  w.EndObject();
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"items\":[1,{\"k\":\"v\"},null]}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

// --------------------------------------------------------------- parallel --

TEST(ParallelTest, ShardRangesPartitionExactly) {
  for (size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (int shards : {1, 2, 3, 8}) {
      size_t total = 0;
      size_t prev_end = 0;
      for (int s = 0; s < shards; ++s) {
        ShardRange range = ComputeShardRange(n, shards, s);
        EXPECT_EQ(range.begin, prev_end);
        prev_end = range.end;
        total += range.end - range.begin;
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ParallelTest, RunOnWorkersRunsEachIndexOnce) {
  std::vector<std::atomic<int>> hits(8);
  RunOnWorkers(8, [&](int w) { hits[static_cast<size_t>(w)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, SingleWorkerRunsInline) {
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  RunOnWorkers(1, [&](int) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.ElapsedMicros(), 9000);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMicros(), 5000);
}

// Restores the process log level (and GRAFT_LOG_LEVEL) around a test so
// failures here can't silence logging in later tests.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    const char* env = std::getenv("GRAFT_LOG_LEVEL");
    if (env != nullptr) saved_env_ = env;
  }
  void TearDown() override {
    if (saved_env_.has_value()) {
      ::setenv("GRAFT_LOG_LEVEL", saved_env_->c_str(), 1);
    } else {
      ::unsetenv("GRAFT_LOG_LEVEL");
    }
    SetLogLevel(saved_level_);
  }

 private:
  LogLevel saved_level_ = LogLevel::kInfo;
  std::optional<std::string> saved_env_;
};

TEST_F(LoggingTest, ParseLogLevelAcceptsValidLevels) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
}

TEST_F(LoggingTest, ParseLogLevelRejectsInvalidInput) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_FALSE(ParseLogLevel("5", &level));
  EXPECT_FALSE(ParseLogLevel("abc", &level));
  EXPECT_FALSE(ParseLogLevel("2abc", &level));
  EXPECT_EQ(level, LogLevel::kWarning) << "failed parse must not write";
}

TEST_F(LoggingTest, SetLogLevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError, LogLevel::kFatal}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, ReloadLogLevelFromEnvAppliesVariable) {
  ::setenv("GRAFT_LOG_LEVEL", "3", 1);
  EXPECT_EQ(ReloadLogLevelFromEnv(), LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  ::setenv("GRAFT_LOG_LEVEL", "0", 1);
  EXPECT_EQ(ReloadLogLevelFromEnv(), LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, ReloadLogLevelFromEnvFallsBackToInfo) {
  ::unsetenv("GRAFT_LOG_LEVEL");
  EXPECT_EQ(ReloadLogLevelFromEnv(), LogLevel::kInfo);

  ::setenv("GRAFT_LOG_LEVEL", "99", 1);
  EXPECT_EQ(ReloadLogLevelFromEnv(), LogLevel::kInfo);

  ::setenv("GRAFT_LOG_LEVEL", "garbage", 1);
  EXPECT_EQ(ReloadLogLevelFromEnv(), LogLevel::kInfo);
}

}  // namespace
}  // namespace graft
