// Tests for the simpler algorithms: connected components, PageRank, SSSP —
// including property-style comparisons against sequential reference
// implementations on random graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace graft {
namespace algos {
namespace {

// ------------------------------------------------------ connected components --

TEST(ConnectedComponentsTest, SingleComponentRing) {
  auto result = RunConnectedComponents(graph::GenerateRing(50));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 1);
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreOwnComponents) {
  graph::SimpleGraph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddUndirectedEdge(3, 4);
  auto result = RunConnectedComponents(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 3);
  EXPECT_EQ(result->component.at(3), 3);
  EXPECT_EQ(result->component.at(4), 3);
}

/// Sequential BFS reference.
std::map<VertexId, int64_t> ReferenceComponents(const graph::SimpleGraph& g) {
  std::map<VertexId, int64_t> component;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    VertexId start = g.IdAt(i);
    if (component.count(start) != 0) continue;
    // BFS labelling with the minimum id in the component.
    std::vector<VertexId> members;
    std::queue<VertexId> queue;
    std::set<VertexId> seen{start};
    queue.push(start);
    VertexId min_id = start;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      members.push_back(v);
      min_id = std::min(min_id, v);
      for (const auto& e : g.OutEdgesOf(v)) {
        if (seen.insert(e.target).second) queue.push(e.target);
      }
    }
    for (VertexId v : members) component[v] = min_id;
  }
  return component;
}

class CCRandomGraphs : public ::testing::TestWithParam<int> {};

TEST_P(CCRandomGraphs, MatchesSequentialBfs) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  // Sparse random graph -> several components.
  graph::SimpleGraph g = graph::MakeUndirected(
      graph::GenerateErdosRenyi(200, 120, seed));
  auto result = RunConnectedComponents(g, /*num_workers=*/3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->component, ReferenceComponents(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CCRandomGraphs, ::testing::Range(1, 9));

// ----------------------------------------------------------------- PageRank --

TEST(PageRankTest, RanksSumToOneOnStronglyConnectedGraph) {
  auto result = RunPageRank(graph::GenerateRing(40), 25);
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (const auto& [id, r] : result->rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Symmetric ring: all ranks equal.
  for (const auto& [id, r] : result->rank) EXPECT_NEAR(r, 1.0 / 40, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  // Star pointing inward: leaves -> center.
  graph::SimpleGraph g;
  for (VertexId v = 1; v <= 10; ++v) g.AddEdge(v, 0);
  g.AddVertex(0);
  auto result = RunPageRank(g, 20);
  ASSERT_TRUE(result.ok());
  for (VertexId v = 1; v <= 10; ++v) {
    EXPECT_GT(result->rank.at(0), result->rank.at(v) * 5);
  }
}

TEST(PageRankTest, RunsRequestedIterations) {
  auto result = RunPageRank(graph::GenerateRing(10), 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.termination,
            pregel::TerminationReason::kMasterHalted);
  // iterations+1 vertex phases (superstep 0 seeds, 1..7 iterate), +1 for
  // the final master-halt superstep boundary.
  EXPECT_GE(result->stats.supersteps, 7);
}

// --------------------------------------------------------------------- SSSP --

/// Sequential Dijkstra reference.
std::map<VertexId, double> ReferenceDijkstra(const graph::SimpleGraph& g,
                                             VertexId source) {
  std::map<VertexId, double> dist;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < g.NumVertices(); ++i) dist[g.IdAt(i)] = kInf;
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const auto& e : g.OutEdgesOf(v)) {
      double candidate = d + e.weight;
      if (candidate < dist[e.target]) {
        dist[e.target] = candidate;
        heap.emplace(candidate, e.target);
      }
    }
  }
  return dist;
}

TEST(SsspTest, SimplePath) {
  graph::SimpleGraph g;
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 3.0);
  g.AddEdge(0, 2, 10.0);
  auto result = RunSssp(g, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance.at(0), 0.0);
  EXPECT_EQ(result->distance.at(1), 2.0);
  EXPECT_EQ(result->distance.at(2), 5.0);
}

TEST(SsspTest, UnreachableVerticesStayInfinite) {
  graph::SimpleGraph g;
  g.AddEdge(0, 1, 1.0);
  g.AddVertex(5);
  auto result = RunSssp(g, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isinf(result->distance.at(5)));
}

TEST(SsspTest, MissingSourceIsError) {
  graph::SimpleGraph g;
  g.AddVertex(1);
  EXPECT_TRUE(RunSssp(g, 42).status().IsInvalidArgument());
}

class SsspRandomGraphs : public ::testing::TestWithParam<int> {};

TEST_P(SsspRandomGraphs, MatchesDijkstra) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  graph::SimpleGraph g = graph::GenerateErdosRenyi(150, 600, seed);
  graph::AssignRandomWeights(&g, 0.5, 10.0, seed + 100, /*symmetric=*/false);
  VertexId source = g.IdAt(0);
  auto result = RunSssp(g, source, /*num_workers=*/3);
  ASSERT_TRUE(result.ok());
  auto reference = ReferenceDijkstra(g, source);
  ASSERT_EQ(result->distance.size(), reference.size());
  for (const auto& [id, d] : reference) {
    if (std::isinf(d)) {
      EXPECT_TRUE(std::isinf(result->distance.at(id))) << "vertex " << id;
    } else {
      EXPECT_NEAR(result->distance.at(id), d, 1e-9) << "vertex " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspRandomGraphs, ::testing::Range(1, 9));

}  // namespace
}  // namespace algos
}  // namespace graft
