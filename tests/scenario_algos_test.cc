// Tests for the three scenario algorithms: Graph Coloring (buggy + fixed),
// Random Walk (short + fixed), Max-Weight Matching — including the exact
// failure modes the paper's §4 scenarios rely on.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "algos/graph_coloring.h"
#include "algos/max_weight_matching.h"
#include "algos/random_walk.h"
#include "graph/generators.h"

namespace graft {
namespace algos {
namespace {

// ------------------------------------------------------------ graph coloring --

class GCFixedProper : public ::testing::TestWithParam<int> {};

TEST_P(GCFixedProper, ProperColoringOnVariousGraphs) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  for (const graph::SimpleGraph& g :
       {graph::GenerateRing(30), graph::GenerateComplete(8),
        graph::GenerateRegularBipartite(60, 3, seed),
        graph::MakeUndirected(graph::GeneratePowerLaw(150, 3, seed))}) {
    auto result = RunGraphColoring(g, /*buggy=*/false, 2, seed);
    ASSERT_TRUE(result.ok()) << result.status();
    auto conflicts = FindColoringConflicts(g, result->color);
    EXPECT_TRUE(conflicts.empty())
        << conflicts.size() << " conflicts with seed " << seed;
    // Everyone got a color.
    for (const auto& [id, color] : result->color) {
      EXPECT_GE(color, 0) << "vertex " << id << " left uncolored";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GCFixedProper, ::testing::Range(1, 7));

TEST(GraphColoringTest, CompleteGraphNeedsNColors) {
  // K5: every vertex adjacent to every other -> exactly 5 colors.
  auto result = RunGraphColoring(graph::GenerateComplete(5), false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_colors, 5);
}

TEST(GraphColoringTest, BipartiteUsesFewColors) {
  auto result = RunGraphColoring(graph::GenerateRegularBipartite(200, 3, 3),
                                 false);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->num_colors, 4);  // max degree + 1
}

TEST(GraphColoringTest, BuggyVariantProducesConflictSomewhere) {
  // The §4.1 bug needs a tentative vertex with >= 2 tentative neighbors
  // whose first message is not the strongest; on a dense-enough random
  // graph over several seeds it reliably manifests.
  bool conflict_found = false;
  for (uint64_t seed = 1; seed <= 10 && !conflict_found; ++seed) {
    graph::SimpleGraph g =
        graph::MakeUndirected(graph::GeneratePowerLaw(300, 4, seed));
    auto result = RunGraphColoring(g, /*buggy=*/true, 2, seed);
    ASSERT_TRUE(result.ok());
    conflict_found = !FindColoringConflicts(g, result->color).empty();
  }
  EXPECT_TRUE(conflict_found)
      << "the injected MIS bug never manifested across 10 seeds";
}

TEST(GraphColoringTest, DeterministicForSeed) {
  graph::SimpleGraph g = graph::GenerateRegularBipartite(40, 3, 1);
  auto a = RunGraphColoring(g, false, 2, 77);
  auto b = RunGraphColoring(g, false, 3, 77);  // worker count must not matter
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->color, b->color);
}

TEST(GraphColoringTest, BuggyMasterTerminatesPrematurely) {
  // §3.4's "most common master bug": the halt check reads the wrong
  // aggregator and stops the job after the first color.
  graph::SimpleGraph g = graph::GenerateRegularBipartite(200, 3, 5);
  pregel::Engine<GCTraits>::Options options;
  options.job_id = "buggy-master";
  pregel::Engine<GCTraits> engine(options, LoadGraphColoringVertices(g),
                                  MakeGraphColoringFactory(false),
                                  MakeGraphColoringMasterFactory(true));
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->termination, pregel::TerminationReason::kMasterHalted);
  int64_t uncolored = 0;
  engine.ForEachVertex([&](const pregel::Vertex<GCTraits>& v) {
    if (v.value().color < 0) ++uncolored;
  });
  EXPECT_GT(uncolored, 0) << "buggy master should leave vertices uncolored";
}

TEST(GraphColoringTest, StateNamesForGui) {
  EXPECT_EQ(GCStateName(GCState::kTentativelyInSet), "TENTATIVELY_IN_SET");
  EXPECT_EQ(GCMessageTypeName(GCMessageType::kInSet), "NBR_IN_SET");
  GCVertexValue v{3, GCState::kColored, 0, 0.0};
  EXPECT_EQ(v.ToString(), "color=3 COLORED deg=0");
}

// --------------------------------------------------------------- random walk --

class RWConservation
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(RWConservation, FixedVariantConservesWalkers) {
  auto [steps, walkers] = GetParam();
  for (const graph::SimpleGraph& g :
       {graph::GenerateRing(40),
        graph::MakeUndirected(graph::GeneratePowerLaw(100, 3, 5)),
        graph::GeneratePowerLaw(100, 2, 9)}) {  // directed, has sinks
    auto result = RunRandomWalk(g, steps, walkers);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->total_walkers,
              walkers * static_cast<int64_t>(g.NumVertices()));
    EXPECT_EQ(result->negative_message_vertices, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RWConservation,
                         ::testing::Combine(::testing::Values(1, 5, 12),
                                            ::testing::Values(int64_t{1},
                                                              int64_t{100})));

TEST(RandomWalkTest, ShortVariantOverflowsOnFunnelGraph) {
  // All leaves feed the hub; hub sends everything to one leaf: the counter
  // exceeds 32767 immediately with 500 vertices x 100 walkers.
  graph::SimpleGraph g;
  for (VertexId v = 1; v <= 500; ++v) g.AddEdge(v, 0);
  g.AddEdge(0, 1);
  auto result = RunRandomWalkShort(g, /*num_steps=*/4, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->total_walkers, 100 * 501)
      << "short counters should have destroyed walkers";
}

TEST(RandomWalkTest, ShortAndFixedAgreeBelowOverflowThreshold) {
  graph::SimpleGraph g = graph::GenerateRing(30);
  auto fixed = RunRandomWalk(g, 8, 50, 2, 7);
  auto buggy = RunRandomWalkShort(g, 8, 50, 2, 7);
  ASSERT_TRUE(fixed.ok() && buggy.ok());
  // Ring with 50 walkers/vertex: counters stay far below 32767, so the
  // 16-bit variant is exactly equivalent (same seed, same RNG streams).
  EXPECT_EQ(fixed->walkers, buggy->walkers);
}

TEST(RandomWalkTest, HaltsAfterRequestedSteps) {
  auto result = RunRandomWalk(graph::GenerateRing(10), 6, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.termination,
            pregel::TerminationReason::kAllHalted);
  EXPECT_LE(result->stats.supersteps, 8);
}

// --------------------------------------------------------------------- MWM --

TEST(MwmTest, MatchesMutualHeaviestPair) {
  graph::SimpleGraph g;
  g.AddUndirectedEdge(1, 2, 10.0);
  g.AddUndirectedEdge(2, 3, 1.0);
  g.AddUndirectedEdge(3, 4, 10.0);
  auto result = RunMaxWeightMatching(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  ASSERT_EQ(result->matching.size(), 2u);
  EXPECT_EQ(result->matching.at(1), 2);
  EXPECT_EQ(result->matching.at(3), 4);
  EXPECT_EQ(result->total_weight, 20.0);
  EXPECT_EQ(ValidateMatching(g, result->matching), "");
}

class MwmRandomGraphs : public ::testing::TestWithParam<int> {};

TEST_P(MwmRandomGraphs, ConvergesToValidMaximalMatching) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  graph::SimpleGraph g =
      graph::MakeUndirected(graph::GeneratePowerLaw(120, 3, seed));
  graph::AssignRandomWeights(&g, 1.0, 100.0, seed + 7, /*symmetric=*/true);
  auto result = RunMaxWeightMatching(g, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(ValidateMatching(g, result->matching), "");
  // Maximality: no edge remains with both endpoints unmatched.
  std::set<VertexId> matched;
  for (const auto& [u, v] : result->matching) {
    matched.insert(u);
    matched.insert(v);
  }
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    VertexId u = g.IdAt(i);
    if (matched.count(u) != 0) continue;
    for (const auto& e : g.OutEdges(i)) {
      EXPECT_TRUE(matched.count(e.target) != 0)
          << "edge (" << u << "," << e.target << ") has both ends unmatched";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwmRandomGraphs, ::testing::Range(1, 9));

TEST(MwmTest, HalfApproximationOnSmallGraphs) {
  // Brute-force optimal matching on 8 vertices, compare the Preis bound.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    graph::SimpleGraph g = graph::GenerateComplete(8);
    graph::AssignRandomWeights(&g, 1.0, 50.0, seed, true);
    auto result = RunMaxWeightMatching(g);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->converged);
    // Brute force over all perfect matchings of K8 via recursion.
    std::vector<VertexId> ids;
    for (size_t i = 0; i < g.NumVertices(); ++i) ids.push_back(g.IdAt(i));
    std::function<double(std::vector<VertexId>)> best =
        [&](std::vector<VertexId> remaining) -> double {
      if (remaining.size() < 2) return 0.0;
      VertexId u = remaining.front();
      remaining.erase(remaining.begin());
      double best_weight = best(remaining);  // leave u unmatched
      for (size_t i = 0; i < remaining.size(); ++i) {
        std::vector<VertexId> rest = remaining;
        VertexId v = rest[i];
        rest.erase(rest.begin() + static_cast<long>(i));
        best_weight = std::max(
            best_weight, g.EdgeWeight(u, v).value() + best(rest));
      }
      return best_weight;
    };
    double optimal = best(ids);
    EXPECT_GE(result->total_weight, optimal / 2.0 - 1e-9)
        << "below the 1/2-approximation bound, seed " << seed;
  }
}

TEST(MwmTest, PreferenceCycleNeverConverges) {
  graph::SimpleGraph g = graph::GenerateComplete(6);
  graph::AssignRandomWeights(&g, 1.0, 100.0, 3, true);
  auto cycle = graph::InjectPreferenceCycle(&g);
  ASSERT_TRUE(cycle.ok());
  auto result = RunMaxWeightMatching(g, 2, /*max_supersteps=*/200);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->stats.termination,
            pregel::TerminationReason::kMaxSupersteps);
  // None of the cycle vertices matched.
  auto [u, v, w] = *cycle;
  for (VertexId id : {u, v, w}) {
    EXPECT_EQ(result->matching.count(id), 0u);
    for (const auto& [a, b] : result->matching) EXPECT_NE(b, id);
  }
}

TEST(MwmTest, ValidateMatchingCatchesBadPairs) {
  graph::SimpleGraph g;
  g.AddUndirectedEdge(1, 2, 1.0);
  g.AddUndirectedEdge(3, 4, 1.0);
  EXPECT_NE(ValidateMatching(g, {{2, 1}}), "");        // not normalized
  EXPECT_NE(ValidateMatching(g, {{1, 3}}), "");        // not an edge
  EXPECT_EQ(ValidateMatching(g, {{1, 2}, {3, 4}}), "");
}

TEST(MwmTest, IsolatedVerticesHaltImmediately) {
  graph::SimpleGraph g;
  g.AddVertex(1);
  g.AddVertex(2);
  auto result = RunMaxWeightMatching(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_TRUE(result->matching.empty());
}

}  // namespace
}  // namespace algos
}  // namespace graft
