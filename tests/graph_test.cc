// Tests for src/graph: SimpleGraph, GraphBuilder, adjacency-text format,
// stats, and the dataset registry.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/graph_text.h"
#include "graph/simple_graph.h"

namespace graft {
namespace graph {
namespace {

// ------------------------------------------------------------ SimpleGraph --

TEST(SimpleGraphTest, AddVertexIsIdempotent) {
  SimpleGraph g;
  size_t a = g.AddVertex(5);
  size_t b = g.AddVertex(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.NumVertices(), 1u);
}

TEST(SimpleGraphTest, AddEdgeCreatesEndpoints) {
  SimpleGraph g;
  g.AddEdge(1, 2, 0.5);
  EXPECT_TRUE(g.HasVertex(1));
  EXPECT_TRUE(g.HasVertex(2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_EQ(g.EdgeWeight(1, 2).value(), 0.5);
  EXPECT_TRUE(g.EdgeWeight(2, 1).status().IsNotFound());
}

TEST(SimpleGraphTest, UndirectedEdgeAddsBothDirections) {
  SimpleGraph g;
  g.AddUndirectedEdge(1, 2, 3.0);
  EXPECT_EQ(g.NumDirectedEdges(), 2u);
  EXPECT_EQ(g.EdgeWeight(1, 2).value(), 3.0);
  EXPECT_EQ(g.EdgeWeight(2, 1).value(), 3.0);
}

TEST(SimpleGraphTest, NonContiguousAndNegativeIds) {
  SimpleGraph g;
  g.AddEdge(-7, 1000000007);
  EXPECT_TRUE(g.HasVertex(-7));
  EXPECT_TRUE(g.HasEdge(-7, 1000000007));
  EXPECT_TRUE(g.IndexOf(-7).ok());
  EXPECT_TRUE(g.IndexOf(0).status().IsNotFound());
}

TEST(SimpleGraphTest, OutEdgesOfUnknownVertexIsEmpty) {
  SimpleGraph g;
  EXPECT_TRUE(g.OutEdgesOf(99).empty());
}

// ------------------------------------------------------------ GraphBuilder --

TEST(GraphBuilderTest, BuildsWhatWasAdded) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddVertex(1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 4.0).ok());
  SimpleGraph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.EdgeWeight(1, 2).value(), 4.0);
}

TEST(GraphBuilderTest, RejectsDuplicates) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddVertex(1).ok());
  EXPECT_TRUE(b.AddVertex(1).IsAlreadyExists());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).IsAlreadyExists());
}

TEST(GraphBuilderTest, RemoveVertexDropsIncidentEdges) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddUndirectedEdge(1, 2).ok());
  ASSERT_TRUE(b.AddUndirectedEdge(2, 3).ok());
  ASSERT_TRUE(b.RemoveVertex(2).ok());
  SimpleGraph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumDirectedEdges(), 0u);
  EXPECT_TRUE(b.RemoveVertex(2).IsNotFound());
}

TEST(GraphBuilderTest, EditWeights) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddUndirectedEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(b.SetUndirectedEdgeWeight(1, 2, 9.0).ok());
  SimpleGraph g = b.Build();
  EXPECT_EQ(g.EdgeWeight(1, 2).value(), 9.0);
  EXPECT_EQ(g.EdgeWeight(2, 1).value(), 9.0);
  EXPECT_TRUE(b.SetEdgeWeight(3, 4, 1.0).IsNotFound());
}

TEST(GraphBuilderTest, PremadeMenuAllConstructible) {
  for (const std::string& name : PremadeGraphMenu()) {
    auto b = GraphBuilder::FromPremade(name, 9);
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_GE(b->NumVertices(), 3u) << name;
  }
  EXPECT_TRUE(GraphBuilder::FromPremade("klein-bottle").status().IsNotFound());
}

TEST(GraphBuilderTest, RemoveEdgeOnlyRemovesOneDirection) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddUndirectedEdge(1, 2).ok());
  ASSERT_TRUE(b.RemoveEdge(1, 2).ok());
  EXPECT_FALSE(b.HasEdge(1, 2));
  EXPECT_TRUE(b.HasEdge(2, 1));
}

// -------------------------------------------------------------- graph_text --

TEST(GraphTextTest, RoundTripsWeightsAndStructure) {
  SimpleGraph g;
  g.AddEdge(1, 2, 0.5);
  g.AddEdge(2, 3);
  g.AddVertex(99);  // isolated vertex must survive
  std::string text = WriteAdjacencyText(g);
  auto parsed = ParseAdjacencyText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->NumVertices(), 4u);
  EXPECT_EQ(parsed->NumDirectedEdges(), 2u);
  EXPECT_EQ(parsed->EdgeWeight(1, 2).value(), 0.5);
  EXPECT_EQ(parsed->EdgeWeight(2, 3).value(), 1.0);
  EXPECT_TRUE(parsed->HasVertex(99));
}

TEST(GraphTextTest, IgnoresCommentsAndBlankLines) {
  auto parsed = ParseAdjacencyText("# header\n\n1 2\n  # indented comment\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->HasEdge(1, 2));
}

TEST(GraphTextTest, ReportsLineOfBadVertexId) {
  auto parsed = ParseAdjacencyText("1 2\nxyz 3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(GraphTextTest, ReportsBadWeightAndBadTarget) {
  EXPECT_FALSE(ParseAdjacencyText("1 2:abc\n").ok());
  EXPECT_FALSE(ParseAdjacencyText("1 x\n").ok());
}

TEST(GraphTextTest, FileRoundTrip) {
  SimpleGraph g = GenerateRing(5);
  std::string path = ::testing::TempDir() + "/graft_text_roundtrip.adj";
  ASSERT_TRUE(WriteAdjacencyFile(g, path).ok());
  auto loaded = ReadAdjacencyFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 5u);
  EXPECT_EQ(loaded->NumDirectedEdges(), 10u);
  EXPECT_TRUE(ReadAdjacencyFile("/nonexistent/q").status().IsIOError());
}

// -------------------------------------------------------------- graph_stats --

TEST(GraphStatsTest, ComputesDegreesAndReciprocity) {
  SimpleGraph g;
  g.AddUndirectedEdge(1, 2);
  g.AddEdge(1, 3);  // one-way
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_vertices, 3u);
  EXPECT_EQ(stats.num_directed_edges, 3u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.min_out_degree, 0u);
  EXPECT_EQ(stats.reciprocal_edges, 2u);  // both directions of (1,2)
}

TEST(GraphStatsTest, SymmetricWeightedDetectsAsymmetry) {
  SimpleGraph g;
  g.AddUndirectedEdge(1, 2, 5.0);
  EXPECT_TRUE(IsSymmetricWeighted(g));
  g.MutableOutEdges(g.IndexOf(1).value())[0].weight = 6.0;
  EXPECT_FALSE(IsSymmetricWeighted(g));
}

TEST(GraphStatsTest, OneWayEdgeIsAsymmetric) {
  SimpleGraph g;
  g.AddEdge(1, 2);
  EXPECT_FALSE(IsSymmetricWeighted(g));
}

// ---------------------------------------------------------------- datasets --

TEST(DatasetsTest, RegistryHasAllSixPaperDatasets) {
  EXPECT_EQ(AllDatasets().size(), 6u);
  for (const char* name : {"web-BS", "soc-Epinions", "bipartite-1M-3M",
                           "sk-2005", "twitter", "bipartite-2B-6B"}) {
    EXPECT_TRUE(FindDataset(name).ok()) << name;
  }
  EXPECT_TRUE(FindDataset("livejournal").status().IsNotFound());
}

TEST(DatasetsTest, DemoFlagSeparatesTables) {
  int demo = 0, perf = 0;
  for (const auto& spec : AllDatasets()) {
    (spec.demo_table ? demo : perf)++;
  }
  EXPECT_EQ(demo, 3);
  EXPECT_EQ(perf, 3);
}

TEST(DatasetsTest, ScaledVertexCountDividesAndFloors) {
  auto spec = FindDataset("web-BS").value();
  DatasetOptions options;
  options.scale_denominator = 100;
  EXPECT_EQ(ScaledVertexCount(spec, options), 6850u);
  options.scale_denominator = 1'000'000'000;  // below generator floor
  EXPECT_GE(ScaledVertexCount(spec, options),
            static_cast<uint64_t>(spec.edges_per_vertex));
}

TEST(DatasetsTest, BipartiteScalingKeepsEvenCount) {
  auto spec = FindDataset("bipartite-1M-3M").value();
  DatasetOptions options;
  options.scale_denominator = 3;  // 1M/3 is odd-ish
  EXPECT_EQ(ScaledVertexCount(spec, options) % 2, 0u);
}

TEST(DatasetsTest, MakeDatasetMatchesScaledCounts) {
  DatasetOptions options;
  options.scale_denominator = 200;
  auto g = MakeDataset("soc-Epinions", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 380u);
  // Average out-degree ~ edges_per_vertex.
  double avg = static_cast<double>(g->NumDirectedEdges()) /
               static_cast<double>(g->NumVertices());
  EXPECT_NEAR(avg, 7.0, 1.0);
}

TEST(DatasetsTest, UndirectedVariantIsSymmetric) {
  DatasetOptions options;
  options.scale_denominator = 500;
  options.undirected = true;
  auto g = MakeDataset("web-BS", options);
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_EQ(stats.reciprocal_edges, stats.num_directed_edges);
}

TEST(DatasetsTest, DeterministicForSameSeed) {
  DatasetOptions options;
  options.scale_denominator = 500;
  auto a = MakeDataset("twitter", options);
  auto b = MakeDataset("twitter", options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumVertices(), b->NumVertices());
  ASSERT_EQ(a->NumDirectedEdges(), b->NumDirectedEdges());
  for (size_t i = 0; i < a->NumVertices(); ++i) {
    ASSERT_EQ(a->OutEdges(i).size(), b->OutEdges(i).size());
  }
}

}  // namespace
}  // namespace graph
}  // namespace graft
