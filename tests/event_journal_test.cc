// Event journal suite (ISSUE 6 tentpole): lock-free append + snapshot
// semantics, bounded-capacity oldest-dropped accounting, concurrent writers
// (exercised under the TSan CI job), Chrome-trace/JSONL export round-trips
// validated by parsing, JournalSpan exactly-once semantics, and the engine
// integration that puts per-worker phase spans on the timeline for every
// superstep.
#include "obs/event_journal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algos/pagerank.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "obs/job_registry.h"
#include "pregel/job.h"
#include "pregel/loader.h"
#include "tiny_json.h"

namespace graft {
namespace {

using algos::PageRankTraits;
using obs::EventJournal;
using obs::EventKind;
using obs::JournalEvent;
using obs::JournalSpan;
using pregel::DoubleValue;

TEST(EventJournalTest, AppendAndSnapshotBasics) {
  EventJournal journal(/*capacity=*/256, /*num_shards=*/2);
  journal.Instant("start", "test", -1, -1);
  journal.Span("phase", "test", 0, 3, journal.NowNs(), 42);
  journal.CounterSample("queue", "test", 1, 3, 7);

  std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(journal.appended(), 3u);
  EXPECT_EQ(journal.dropped(), 0u);

  std::map<std::string, const JournalEvent*> by_name;
  for (const JournalEvent& e : events) by_name[e.name] = &e;
  ASSERT_TRUE(by_name.count("start"));
  ASSERT_TRUE(by_name.count("phase"));
  ASSERT_TRUE(by_name.count("queue"));
  EXPECT_EQ(by_name["start"]->kind, EventKind::kInstant);
  EXPECT_EQ(by_name["phase"]->kind, EventKind::kSpan);
  EXPECT_EQ(by_name["phase"]->worker, 0);
  EXPECT_EQ(by_name["phase"]->superstep, 3);
  EXPECT_EQ(by_name["phase"]->value, 42u);
  EXPECT_EQ(by_name["queue"]->kind, EventKind::kCounter);
  EXPECT_EQ(by_name["queue"]->value, 7u);

  // Snapshot is ordered by start time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

TEST(EventJournalTest, BoundedCapacityDropsOldestAndCounts) {
  // One shard of 64 slots: appending 200 keeps the newest 64.
  EventJournal journal(/*capacity=*/64, /*num_shards=*/1);
  ASSERT_EQ(journal.capacity(), 64u);
  for (int i = 0; i < 200; ++i) {
    journal.Instant("tick", "test", -1, i);
  }
  EXPECT_EQ(journal.appended(), 200u);
  EXPECT_EQ(journal.dropped(), 136u);
  std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // The retained window is exactly the newest 64 events.
  std::set<int64_t> supersteps;
  for (const JournalEvent& e : events) supersteps.insert(e.superstep);
  EXPECT_EQ(*supersteps.begin(), 136);
  EXPECT_EQ(*supersteps.rbegin(), 199);
}

TEST(EventJournalTest, ConcurrentAppendFromManyThreads) {
  EventJournal journal(/*capacity=*/1 << 17, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Span("work", "test", t, i, journal.NowNs(),
                     static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(journal.appended(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(journal.dropped(), 0u);
  std::vector<JournalEvent> events = journal.Snapshot();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
  // No torn slot: every event carries the fields its writer stored.
  for (const JournalEvent& e : events) {
    EXPECT_STREQ(e.name, "work");
    EXPECT_STREQ(e.category, "test");
    EXPECT_GE(e.worker, 0);
    EXPECT_LT(e.worker, kThreads);
    EXPECT_GE(e.superstep, 0);
    EXPECT_LT(e.superstep, kPerThread);
    EXPECT_EQ(e.value, static_cast<uint64_t>(e.superstep));
  }
}

TEST(EventJournalTest, SnapshotDuringActiveWritersIsNeverTorn) {
  // Small rings force constant wrap-around while readers snapshot: the
  // seqlock must reject mid-publish and overwritten slots, never return a
  // half-written event. This is the TSan CI target for the journal.
  EventJournal journal(/*capacity=*/256, /*num_shards=*/2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&journal, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        journal.Instant("w", "test", t, static_cast<int64_t>(i % 1000), i);
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    std::vector<JournalEvent> events = journal.Snapshot();
    EXPECT_LE(events.size(), journal.capacity());
    for (const JournalEvent& e : events) {
      EXPECT_STREQ(e.name, "w");
      EXPECT_STREQ(e.category, "test");
      EXPECT_GE(e.worker, 0);
      EXPECT_LT(e.worker, 4);
      EXPECT_EQ(e.value % 1000, static_cast<uint64_t>(e.superstep));
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_GE(journal.dropped(), 0u);
}

TEST(EventJournalTest, JsonlExportOneValidObjectPerLine) {
  EventJournal journal(128, 1);
  journal.Instant("a", "cat", -1, 0);
  journal.Span("b", "cat", 1, 2, journal.NowNs(), 5);
  std::istringstream lines(journal.ToJsonl());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    testjson::ValuePtr v = testjson::ParseJson(line);
    ASSERT_NE(v, nullptr) << "invalid JSONL line: " << line;
    ASSERT_TRUE(v->is_object());
    EXPECT_NE(v->Get("name"), nullptr);
    EXPECT_NE(v->Get("kind"), nullptr);
    EXPECT_NE(v->Get("start_ns"), nullptr);
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(EventJournalTest, ChromeTraceExportRoundTrips) {
  EventJournal journal(256, 2);
  journal.Span("compute", "worker", 0, 1, journal.NowNs(), 10);
  journal.Span("compute", "worker", 1, 1, journal.NowNs(), 11);
  journal.Instant("checkpoint.commit", "checkpoint", -1, 2);
  journal.CounterSample("queue_depth", "capture", -1, 2, 3);

  const std::string json = journal.ToChromeTraceJson();
  testjson::ValuePtr doc = testjson::ParseJson(json);
  ASSERT_NE(doc, nullptr) << "Chrome trace JSON failed to parse";
  ASSERT_TRUE(doc->is_object());
  const testjson::Value* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int spans = 0;
  int instants = 0;
  int counters = 0;
  int metadata = 0;
  std::set<std::string> thread_names;
  for (const auto& e : events->items) {
    ASSERT_TRUE(e->is_object());
    const testjson::Value* ph = e->Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      ++spans;
      EXPECT_NE(e->Get("dur"), nullptr);
      EXPECT_NE(e->Get("ts"), nullptr);
      const testjson::Value* args = e->Get("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->Get("superstep"), nullptr);
    } else if (ph->str == "i") {
      ++instants;
    } else if (ph->str == "C") {
      ++counters;
    } else if (ph->str == "M") {
      ++metadata;
      if (e->Get("name")->str == "thread_name") {
        thread_names.insert(e->Get("args")->Get("name")->str);
      }
    }
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  // process_name + three lanes (engine, worker 0, worker 1).
  EXPECT_EQ(metadata, 4);
  EXPECT_TRUE(thread_names.count("engine"));
  EXPECT_TRUE(thread_names.count("worker 0"));
  EXPECT_TRUE(thread_names.count("worker 1"));
}

// ------------------------------------------------------------ JournalSpan --

TEST(JournalSpanTest, EndThenDestructionPublishesExactlyOnce) {
  EventJournal journal(128, 1);
  {
    JournalSpan span(&journal, "phase", "test", 0, 1);
    span.End(5);
    span.End(6);  // no-op
  }  // destructor: no-op
  std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].value, 5u);
}

TEST(JournalSpanTest, PublishesOnceDuringExceptionUnwind) {
  EventJournal journal(128, 1);
  try {
    JournalSpan span(&journal, "phase", "test", 0, 1);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(journal.Snapshot().size(), 1u);
  EXPECT_EQ(journal.appended(), 1u);
}

TEST(JournalSpanTest, NullJournalIsDisabledAndSafe) {
  JournalSpan span(nullptr, "phase", "test", 0, 1);
  span.End(1);
  span.End(2);
  JournalSpan default_constructed;
  default_constructed.End();
  // Nothing to assert beyond "no crash": a null journal is the off switch.
}

// ----------------------------------------------------- engine integration --

TEST(EventJournalEngineTest, PerWorkerPhaseSpansForEverySuperstep) {
  constexpr int kWorkers = 3;
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(100, 300, /*seed=*/7));
  EventJournal journal(1 << 16, 8);
  obs::JobRegistry registry;
  InMemoryTraceStore ckpt_store;

  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = kWorkers;
  spec.options.job_id = "journal-it";
  spec.vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<algos::PageRankComputation>(/*max_iterations=*/6);
  };
  spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<algos::PageRankMaster>(/*max_iterations=*/6);
  };
  spec.checkpoint.interval = 2;
  spec.checkpoint.store = &ckpt_store;
  spec.telemetry.journal_sink = &journal;
  spec.telemetry.registry = &registry;

  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;
  const int64_t supersteps = summary->stats.supersteps;
  ASSERT_GT(supersteps, 0);

  // (superstep -> workers with a compute span), plus phase/checkpoint spans.
  std::map<int64_t, std::set<int>> compute_workers;
  std::map<int64_t, std::set<int>> delivery_workers;
  std::set<int64_t> engine_superstep_spans;
  int checkpoint_commits = 0;
  for (const JournalEvent& e : journal.Snapshot()) {
    const std::string name = e.name;
    if (name == "compute" && std::string(e.category) == "worker") {
      compute_workers[e.superstep].insert(e.worker);
    } else if (name == "delivery" && std::string(e.category) == "worker") {
      delivery_workers[e.superstep].insert(e.worker);
    } else if (name == "superstep") {
      engine_superstep_spans.insert(e.superstep);
    } else if (name == "checkpoint.commit") {
      ++checkpoint_commits;
    }
  }
  for (int64_t s = 0; s < supersteps; ++s) {
    ASSERT_TRUE(engine_superstep_spans.count(s)) << "superstep " << s;
    ASSERT_EQ(compute_workers[s].size(), static_cast<size_t>(kWorkers))
        << "missing per-worker compute spans at superstep " << s;
    ASSERT_EQ(delivery_workers[s].size(), static_cast<size_t>(kWorkers))
        << "missing per-worker delivery spans at superstep " << s;
  }
  // Checkpoint 0 plus every interval boundary reached.
  EXPECT_GT(checkpoint_commits, 0);

  // The registry entry finished and serves a final report + cached events.
  auto entry = registry.Find("journal-it");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state(), obs::JobState::kDone);
  EXPECT_EQ(entry->superstep(), supersteps);
  testjson::ValuePtr report = testjson::ParseJson(entry->ReportJson());
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(static_cast<int64_t>(report->Get("supersteps")->number),
            supersteps);
  testjson::ValuePtr events_doc = testjson::ParseJson(entry->EventsJson());
  ASSERT_NE(events_doc, nullptr);
  EXPECT_TRUE(events_doc->Get("traceEvents")->is_array());
  EXPECT_GT(entry->journal_events(), 0u);
}

TEST(EventJournalEngineTest, JournalCountersExportedToMetrics) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(60, 150, /*seed=*/11));
  obs::MetricsRegistry metrics;
  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "journal-metrics";
  spec.options.metrics = &metrics;
  spec.vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<algos::PageRankComputation>(/*max_iterations=*/4);
  };
  spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<algos::PageRankMaster>(/*max_iterations=*/4);
  };
  spec.telemetry.journal = true;  // job-owned journal
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(metrics.GetCounter("journal.events_total")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("journal.events_dropped_total")->value(), 0u);
}

}  // namespace
}  // namespace graft
