#ifndef GRAFT_TESTS_ANALYSIS_CORPUS_LINT_FODDER_H_
#define GRAFT_TESTS_ANALYSIS_CORPUS_LINT_FODDER_H_

// Deliberately bad vertex programs for the bsp_lint self-test
// (tools/bsp_lint.py --expect-findings / --expect-rules): each block below
// plants exactly one finding of a named rule. Never compiled into a test
// binary — linted only, so the constructs stay minimal.

#include <string>
#include <unordered_map>
#include <vector>

#include "algos/pagerank.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"
#include "pregel/vertex.h"

namespace graft {
namespace analysis_corpus {

// [predicate-dsl] Breakpoint strings that do not parse: `=` instead of
// `==`, a bool/num type mismatch, and an unknown variable.
inline const char* BadBreakpointAssignment() {
  struct Holder {
    std::string breakpoint;
  } spec;
  spec.breakpoint = "value = 0";
  spec.breakpoint = "halted < 3";
  spec.breakpoint = "vertex_degree > 2";
  return "value < 0 && superstep > 3";  // a valid one, for contrast
}

// [fp-agg] Floating-point aggregation without an allow() annotation.
class FpAggPageRank : public pregel::Computation<algos::PageRankTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::PageRankTraits>& ctx,
               pregel::Vertex<algos::PageRankTraits>& vertex,
               const std::vector<pregel::DoubleValue>& messages) override {
    double sum = 0.0;
    for (const pregel::DoubleValue& m : messages) sum += m.value;
    ctx.Aggregate("fodder.sum", pregel::AggValue{sum * 0.5});
    vertex.VoteToHalt();
  }
};

// [unordered-iter] Walking an unordered_map inside Compute() orders the
// sends by hash-table layout.
class UnorderedIterPageRank : public pregel::Computation<algos::PageRankTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::PageRankTraits>& ctx,
               pregel::Vertex<algos::PageRankTraits>& vertex,
               const std::vector<pregel::DoubleValue>& messages) override {
    std::unordered_map<long long, int> neighbor_rank;
    for (const auto& edge : vertex.edges()) {
      neighbor_rank[edge.target] = 1;
    }
    for (const auto& [target, rank] : neighbor_rank) {
      ctx.SendMessage(target, pregel::DoubleValue{static_cast<double>(rank)});
    }
    vertex.VoteToHalt();
  }
};

// [unordered-agg] Aggregating in hash-table walk order: the float fold
// depends on the container's layout, not just its contents.
class UnorderedAggPageRank : public pregel::Computation<algos::PageRankTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::PageRankTraits>& ctx,
               pregel::Vertex<algos::PageRankTraits>& vertex,
               const std::vector<pregel::DoubleValue>& messages) override {
    std::unordered_map<long long, double> shares;
    for (const auto& edge : vertex.edges()) {
      shares[edge.target] = vertex.value().value;
    }
    for (const auto& [target, share] : shares) {
      ctx.Aggregate("fodder.shares", pregel::AggValue{share});
    }
    vertex.VoteToHalt();
  }
};

}  // namespace analysis_corpus
}  // namespace graft

#endif  // GRAFT_TESTS_ANALYSIS_CORPUS_LINT_FODDER_H_
