#ifndef GRAFT_TESTS_ANALYSIS_CORPUS_BUGGY_TWINS_H_
#define GRAFT_TESTS_ANALYSIS_CORPUS_BUGGY_TWINS_H_

// Buggy twins of the repo's algorithms: each one plants exactly one BSP
// contract violation of a known kind at known coordinates, as ground truth
// for the BspSanitizer golden tests (DESIGN.md §9). These are *plausible*
// bugs — each is a small, realistic edit of the corresponding healthy algo
// in src/algos/, the kind a code review could miss.

#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/epoch.h"
#include "common/logging.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"
#include "pregel/master.h"
#include "pregel/vertex.h"
#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"

namespace graft {
namespace analysis_corpus {

using pregel::AggregatorOp;
using pregel::AggregatorSpec;
using pregel::AggValue;
using pregel::DoubleValue;
using pregel::Int64Value;

// ---------------------------------------------------------------------------
// (a) kSendAfterHalt — PageRank that votes to halt on its last iteration and
// then still flushes its rank along the out-edges. The message re-activates
// every neighbor next superstep, so the "finished" job keeps running on
// ghost activations until the superstep cap ends it.
class MessageAfterHaltPageRank
    : public pregel::Computation<algos::PageRankTraits> {
 public:
  explicit MessageAfterHaltPageRank(int max_iterations)
      : max_iterations_(max_iterations) {}

  void Compute(pregel::ComputeContext<algos::PageRankTraits>& ctx,
               pregel::Vertex<algos::PageRankTraits>& vertex,
               const std::vector<DoubleValue>& messages) override {
    if (ctx.superstep() == 0) {
      vertex.set_value(
          DoubleValue{1.0 / static_cast<double>(ctx.total_num_vertices())});
    } else {
      double incoming = 0.0;
      for (const DoubleValue& m : messages) incoming += m.value;
      double n = static_cast<double>(ctx.total_num_vertices());
      vertex.set_value(DoubleValue{0.15 / n + 0.85 * incoming});
    }
    if (ctx.superstep() >= max_iterations_) {
      vertex.VoteToHalt();
    }
    // BUG: the final-rank flush runs unconditionally — including in the
    // superstep where the vertex just voted to halt.
    if (vertex.num_edges() > 0) {
      ctx.SendMessageToAllEdges(
          vertex, DoubleValue{vertex.value().value /
                              static_cast<double>(vertex.num_edges())});
    }
  }

 private:
  int max_iterations_;
};

// ---------------------------------------------------------------------------
// (b) kStaleRead — SSSP whose worker-local "best distance seen" cache wraps
// the stashed value in analysis::Stamped. The cache is written during one
// vertex's Compute() and consulted during other vertices' calls (and later
// supersteps) — exactly the cross-epoch read the epoch model flags. The
// cached value never changes the relaxation result, so the distances stay
// correct; the *dependence* is the bug.
class StaleReadSssp : public pregel::Computation<algos::SsspTraits> {
 public:
  explicit StaleReadSssp(VertexId source) : source_(source) {}

  void Compute(pregel::ComputeContext<algos::SsspTraits>& ctx,
               pregel::Vertex<algos::SsspTraits>& vertex,
               const std::vector<DoubleValue>& messages) override {
    constexpr double kInf = 1e300;
    // BUG: reads the value stamped by whichever Compute() call last wrote
    // it — another vertex, or a previous superstep.
    const double cached =
        cache_primed_ ? best_seen_.Read().value : kInf;
    double best = ctx.superstep() == 0 && vertex.id() == source_
                      ? 0.0
                      : vertex.value().value;
    for (const DoubleValue& m : messages) {
      if (m.value < best) best = m.value;
    }
    (void)cached;  // consulted, not trusted — keeps the twin convergent
    if (best < vertex.value().value) {
      vertex.set_value(DoubleValue{best});
      for (const auto& edge : vertex.edges()) {
        ctx.SendMessage(edge.target, DoubleValue{best + edge.value.value});
      }
    }
    best_seen_.Set(DoubleValue{best});
    cache_primed_ = true;
    vertex.VoteToHalt();
  }

 private:
  VertexId source_;
  analysis::Stamped<DoubleValue> best_seen_;
  bool cache_primed_ = false;
};

// ---------------------------------------------------------------------------
// (d) kMutationAfterHalt — connected components that votes to halt when no
// improvement arrived, then "normalizes" its value anyway. The write after
// the halt vote is kept, but the vertex already told the engine it was done
// with that state.
class MutationAfterHaltCC : public pregel::Computation<algos::CCTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::CCTraits>& ctx,
               pregel::Vertex<algos::CCTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    int64_t best = ctx.superstep() == 0 ? vertex.id() : vertex.value().value;
    for (const Int64Value& m : messages) {
      if (m.value < best) best = m.value;
    }
    const bool improved =
        ctx.superstep() == 0 || best < vertex.value().value;
    if (improved) {
      vertex.set_value(Int64Value{best});
      ctx.SendMessageToAllEdges(vertex, Int64Value{best});
    } else {
      vertex.VoteToHalt();
      // BUG: post-halt write-back; looks like a harmless refresh.
      vertex.set_value(Int64Value{best});
    }
  }
};

// ---------------------------------------------------------------------------
// (c) kAggregatorPhase — a master that seeds its phase aggregator from
// Initialize() via SetAggregated. Initialize runs before superstep 0, whose
// aggregator reset discards the value, so the computation sees the spec's
// initial value instead — the paper's "most common master.compute() bug"
// (§3.4) in its earliest-possible form.
inline constexpr char kPhaseAggregator[] = "corpus.phase";

class InitializeSetMaster : public pregel::MasterCompute {
 public:
  void Initialize(pregel::MasterContext& ctx) override {
    GRAFT_CHECK_OK(ctx.RegisterAggregator(
        kPhaseAggregator,
        AggregatorSpec{AggregatorOp::kOverwrite, AggValue{int64_t{0}},
                       /*persistent=*/true}));
    // BUG: discarded by the superstep-0 reset; belongs in Compute() or in
    // the spec's initial value.
    GRAFT_CHECK_OK(ctx.SetAggregated(kPhaseAggregator, AggValue{int64_t{1}}));
  }

  void Compute(pregel::MasterContext& ctx) override {
    if (ctx.superstep() >= 2) ctx.HaltComputation();
  }
};

// ---------------------------------------------------------------------------
// (e) kOrderDependentAggregation — a coloring-style "claim the slot" pattern:
// every undecided vertex writes its own id into a shared kOverwrite
// aggregator, assuming "the" winner is well-defined. Which write survives
// the merge depends on worker fold order.
inline constexpr char kOwnerAggregator[] = "corpus.owner";

class OverwriteClaimColoring : public pregel::Computation<algos::CCTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::CCTraits>& ctx,
               pregel::Vertex<algos::CCTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    (void)messages;
    if (ctx.superstep() == 0) {
      // BUG: every vertex "claims" the slot; kOverwrite keeps whichever
      // update the merge folds last.
      ctx.Aggregate(kOwnerAggregator, AggValue{vertex.id()});
      return;
    }
    vertex.VoteToHalt();
  }
};

class OverwriteClaimMaster : public pregel::MasterCompute {
 public:
  void Initialize(pregel::MasterContext& ctx) override {
    GRAFT_CHECK_OK(ctx.RegisterAggregator(
        kOwnerAggregator,
        AggregatorSpec{AggregatorOp::kOverwrite, AggValue{int64_t{-1}},
                       /*persistent=*/false}));
  }
  void Compute(pregel::MasterContext& ctx) override { (void)ctx; }
};

// ---------------------------------------------------------------------------
// (e) kNondeterminism — a random-walk step counter drawing from libc rand()
// instead of the context's deterministic per-(superstep, vertex) stream.
// Re-executing the vertex with identical inputs advances the global rand()
// sequence, so the replayed value differs — which is precisely why such a
// job can never be debugged from its traces.
class LibcRandomWalk : public pregel::Computation<algos::CCTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::CCTraits>& ctx,
               pregel::Vertex<algos::CCTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    (void)messages;
    if (ctx.superstep() == 0) {
      // BUG: rand() is invisible to the captured context.
      vertex.set_value(Int64Value{static_cast<int64_t>(rand() % 9973)});
      ctx.SendMessageToAllEdges(vertex, vertex.value());
      return;
    }
    vertex.VoteToHalt();
  }
};

/// The healthy twin of LibcRandomWalk: same walk, but drawn from the
/// engine's deterministic stream — byte-identical under replay.
class StreamRandomWalk : public pregel::Computation<algos::CCTraits> {
 public:
  void Compute(pregel::ComputeContext<algos::CCTraits>& ctx,
               pregel::Vertex<algos::CCTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    (void)messages;
    if (ctx.superstep() == 0) {
      vertex.set_value(
          Int64Value{static_cast<int64_t>(ctx.rng().NextBounded(9973))});
      ctx.SendMessageToAllEdges(vertex, vertex.value());
      return;
    }
    vertex.VoteToHalt();
  }
};

}  // namespace analysis_corpus
}  // namespace graft

#endif  // GRAFT_TESTS_ANALYSIS_CORPUS_BUGGY_TWINS_H_
