// Unit tests for the analysis layer itself: finding serialization, the
// FindingLog (dedup, fatal policy, recovery rewind), the PhaseClock, the
// Stamped epoch model, and the sanitizer's zero-false-positive /
// zero-interference properties on healthy programs.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "analysis/epoch.h"
#include "analysis/finding.h"
#include "analysis/finding_log.h"
#include "analysis/sanitizer.h"
#include "debug/debug_config.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/job.h"
#include "pregel/loader.h"
#include "pregel/phase.h"

#include "analysis_corpus/buggy_twins.h"

namespace graft {
namespace {

using analysis::AccessEpoch;
using analysis::AnalysisFinding;
using analysis::EpochReporter;
using analysis::FindingKind;
using analysis::FindingLog;
using analysis::Stamped;
using pregel::DoubleValue;
using pregel::EnginePhase;
using pregel::Int64Value;
using pregel::PhaseClock;

TEST(AnalysisFindingTest, SerializationRoundTripsEveryKind) {
  for (int k = 0; k < analysis::kNumFindingKinds; ++k) {
    AnalysisFinding f;
    f.kind = static_cast<FindingKind>(k);
    f.superstep = k == 0 ? -1 : 41 + k;
    f.vertex = k == 1 ? -1 : 1000 + k;
    f.worker = k == 2 ? -1 : k;
    f.detail = "detail for kind " + std::string(analysis::FindingKindName(
                                        static_cast<FindingKind>(k)));
    auto back = AnalysisFinding::Deserialize(f.Serialize());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, f);
  }
}

TEST(AnalysisFindingTest, RejectsUnknownVersionAndKind) {
  AnalysisFinding f;
  std::string record = f.Serialize();
  record[0] = 99;  // version byte
  EXPECT_FALSE(AnalysisFinding::Deserialize(record).ok());
  record[0] = AnalysisFinding::kFormatVersion;
  record[1] = 99;  // kind byte
  EXPECT_FALSE(AnalysisFinding::Deserialize(record).ok());
}

TEST(AnalysisFindingTest, FindingsFileNamesLiveInSuperstepDirs) {
  EXPECT_EQ(analysis::FindingsFile("job", 3, 1),
            "job/superstep_000003/findings_w001.afind");
  EXPECT_EQ(analysis::FindingsFile("job", 3, -1),
            "job/superstep_000003/findings_master.afind");
  // Initialize-phase findings (superstep -1) file under superstep 0 so the
  // recovery prune covers them.
  EXPECT_EQ(analysis::FindingsFile("job", -1, -1),
            "job/superstep_000000/findings_master.afind");
}

AnalysisFinding MakeFinding(FindingKind kind, int64_t superstep,
                            VertexId vertex, const std::string& detail) {
  AnalysisFinding f;
  f.kind = kind;
  f.superstep = superstep;
  f.vertex = vertex;
  f.worker = 0;
  f.detail = detail;
  return f;
}

TEST(FindingLogTest, DedupsOnCoordinatesAndPersistsToStore) {
  InMemoryTraceStore store;
  FindingLog log(&store, "job", /*fatal=*/false);
  EXPECT_TRUE(
      log.Record(MakeFinding(FindingKind::kSendAfterHalt, 2, 7, "x")));
  EXPECT_FALSE(
      log.Record(MakeFinding(FindingKind::kSendAfterHalt, 2, 7, "x")));
  EXPECT_TRUE(
      log.Record(MakeFinding(FindingKind::kSendAfterHalt, 2, 7, "y")));
  EXPECT_TRUE(
      log.Record(MakeFinding(FindingKind::kMutationAfterHalt, 3, 7, "x")));
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.CountOf(FindingKind::kSendAfterHalt), 2u);
  EXPECT_EQ(log.CountOf(FindingKind::kMutationAfterHalt), 1u);
  EXPECT_EQ(store.RecordCount("job/superstep_000002/findings_w000.afind"),
            2u);
  auto read_back = analysis::ReadFindings(store, "job");
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->size(), 3u);
}

TEST(FindingLogTest, RewindDropsPrunedSuperstepsAndAllowsReRecording) {
  FindingLog log(nullptr, "job", /*fatal=*/false);
  log.Record(MakeFinding(FindingKind::kSendAfterHalt, 1, 7, "early"));
  log.Record(MakeFinding(FindingKind::kSendAfterHalt, 4, 7, "late"));
  log.Record(MakeFinding(FindingKind::kStaleRead, 5, 8, "later"));
  log.RewindToSuperstep(4);
  EXPECT_EQ(log.total(), 1u);
  EXPECT_EQ(log.CountOf(FindingKind::kStaleRead), 0u);
  // Re-executed supersteps may legitimately hit the same violation again.
  EXPECT_TRUE(
      log.Record(MakeFinding(FindingKind::kSendAfterHalt, 4, 7, "late")));
  EXPECT_EQ(log.total(), 2u);
}

TEST(FindingLogTest, FatalPolicyInvokesAbortWithAbortedStatus) {
  FindingLog log(nullptr, "job", /*fatal=*/true);
  Status seen = Status::OK();
  log.set_abort([&seen](Status s) { seen = std::move(s); });
  log.Record(MakeFinding(FindingKind::kSendAfterHalt, 2, 7, "boom"));
  EXPECT_TRUE(seen.IsAborted());
  EXPECT_NE(seen.ToString().find("BSP contract violation"),
            std::string::npos);
  EXPECT_NE(seen.ToString().find("send_after_halt"), std::string::npos);
}

TEST(PhaseClockTest, PacksPhaseAndSuperstepAtomically) {
  PhaseClock clock;
  EXPECT_EQ(clock.phase(), EnginePhase::kIdle);
  EXPECT_EQ(clock.superstep(), -1);
  clock.Set(EnginePhase::kSetup, -1);
  EXPECT_EQ(clock.Read(), (std::pair<EnginePhase, int64_t>{
                              EnginePhase::kSetup, -1}));
  clock.Set(EnginePhase::kVertexCompute, 12345);
  EXPECT_EQ(clock.phase(), EnginePhase::kVertexCompute);
  EXPECT_EQ(clock.superstep(), 12345);
  EXPECT_STREQ(pregel::EnginePhaseName(EnginePhase::kMasterCompute),
               "master_compute");
}

TEST(StampedTest, PassthroughWithoutReporter) {
  Stamped<Int64Value> cache;
  cache.Set(Int64Value{42});
  EXPECT_EQ(cache.Read().value, 42);  // no reporter installed: plain read
  EXPECT_FALSE(cache.stamp().active);
}

TEST(StampedTest, ReportsCrossEpochRead) {
  std::vector<AnalysisFinding> reported;
  EpochReporter reporter(
      [&reported](AnalysisFinding f) { reported.push_back(std::move(f)); });

  EpochReporter* prev =
      EpochReporter::Install(&reporter, AccessEpoch{3, 7, true});
  Stamped<Int64Value> cache;
  cache.Set(Int64Value{1});
  EXPECT_EQ(cache.Read().value, 1);  // same epoch: clean
  EXPECT_TRUE(reported.empty());

  // Same superstep, different vertex — cross-vertex read.
  EpochReporter::Install(&reporter, AccessEpoch{3, 8, true});
  cache.Read();
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0].kind, FindingKind::kStaleRead);
  EXPECT_EQ(reported[0].superstep, 3);
  EXPECT_EQ(reported[0].vertex, 8);
  EXPECT_NE(reported[0].detail.find("vertex 7"), std::string::npos);

  // Later superstep, same vertex — cross-superstep read.
  EpochReporter::Install(&reporter, AccessEpoch{4, 7, true});
  cache.Read();
  ASSERT_EQ(reported.size(), 2u);
  EXPECT_EQ(reported[1].superstep, 4);

  EpochReporter::Install(prev, AccessEpoch{});
}

/// Healthy PageRank under the full sanitizer (probes on every vertex): no
/// findings, and the result is the same as an unchecked run.
TEST(BspSanitizerTest, CleanPageRankHasZeroFindings) {
  auto graph = graph::GenerateRing(12);
  auto make_spec = [&] {
    pregel::JobSpec<algos::PageRankTraits> spec;
    spec.options.job_id = "clean_pagerank";
    spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
      return DoubleValue{a.value + b.value};
    };
    spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
        graph, [](VertexId) { return DoubleValue{0.0}; });
    spec.computation = [] {
      return std::make_unique<algos::PageRankComputation>(5);
    };
    spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
      return std::make_unique<algos::PageRankMaster>(5);
    };
    return spec;
  };

  InMemoryTraceStore store;
  pregel::JobSpec<algos::PageRankTraits> checked = make_spec();
  checked.sanitizer.enabled = true;
  checked.sanitizer.determinism_sample_rate = 1;
  checked.trace_store = &store;
  std::map<VertexId, double> checked_ranks;
  checked.post_run = [&](pregel::Engine<algos::PageRankTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<algos::PageRankTraits>& v) {
      checked_ranks[v.id()] = v.value().value;
    });
  };
  auto checked_summary = pregel::RunJob(std::move(checked));
  ASSERT_TRUE(checked_summary.ok());
  ASSERT_TRUE(checked_summary->job_status.ok());
  EXPECT_EQ(checked_summary->analysis_findings, 0u);
  EXPECT_GT(checked_summary->stats.report.analysis.determinism_probes, 0u);
  EXPECT_EQ(checked_summary->stats.report.analysis.determinism_mismatches,
            0u);

  pregel::JobSpec<algos::PageRankTraits> plain = make_spec();
  std::map<VertexId, double> plain_ranks;
  plain.post_run = [&](pregel::Engine<algos::PageRankTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<algos::PageRankTraits>& v) {
      plain_ranks[v.id()] = v.value().value;
    });
  };
  auto plain_summary = pregel::RunJob(std::move(plain));
  ASSERT_TRUE(plain_summary.ok());
  EXPECT_EQ(checked_ranks, plain_ranks);  // checking never alters results
}

TEST(BspSanitizerTest, StreamRngPassesProbesThatCatchLibcRand) {
  auto graph = graph::GenerateRing(6);
  auto run = [&](pregel::ComputationFactory<algos::CCTraits> factory) {
    pregel::JobSpec<algos::CCTraits> spec;
    spec.options.job_id = "probe_pair";
    spec.vertices = pregel::LoadUnweighted<algos::CCTraits>(
        graph, [](VertexId) { return Int64Value{0}; });
    spec.computation = std::move(factory);
    spec.sanitizer.enabled = true;
    spec.sanitizer.determinism_sample_rate = 1;
    auto summary = pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok());
    return *std::move(summary);
  };

  pregel::JobRunSummary good = run(
      [] { return std::make_unique<analysis_corpus::StreamRandomWalk>(); });
  ASSERT_TRUE(good.job_status.ok());
  EXPECT_EQ(good.analysis_findings, 0u);
  EXPECT_GT(good.stats.report.analysis.determinism_probes, 0u);

  pregel::JobRunSummary bad = run(
      [] { return std::make_unique<analysis_corpus::LibcRandomWalk>(); });
  ASSERT_TRUE(bad.job_status.ok());
  EXPECT_GT(bad.stats.report.analysis.determinism_mismatches, 0u);
}

std::map<std::string, std::vector<std::string>> TraceFilesOf(
    const InMemoryTraceStore& store) {
  std::map<std::string, std::vector<std::string>> contents;
  for (const std::string& file : store.ListFiles("")) {
    if (file.size() >= 6 && file.substr(file.size() - 6) == ".afind") {
      continue;  // findings are the sanitizer's own output
    }
    auto records = store.ReadAll(file);
    GRAFT_CHECK(records.ok());
    contents[file] = *std::move(records);
  }
  return contents;
}

/// The probe's re-executions run against a mock context and a fresh user
/// instance: the captured traces of a debugged run must come out
/// byte-identical whether probing is on or off.
TEST(BspSanitizerTest, ProbesLeaveCapturedTracesByteIdentical) {
  auto graph = graph::GenerateRing(10);
  debug::ConfigurableDebugConfig<algos::PageRankTraits> config;
  config.set_capture_all_active(true);

  auto run = [&](bool probe, InMemoryTraceStore* store) {
    pregel::JobSpec<algos::PageRankTraits> spec;
    spec.options.job_id = "probe_traces";
    spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
        graph, [](VertexId) { return DoubleValue{0.0}; });
    spec.computation = [] {
      return std::make_unique<algos::PageRankComputation>(4);
    };
    spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
      return std::make_unique<algos::PageRankMaster>(4);
    };
    spec.debug_config = &config;
    spec.trace_store = store;
    if (probe) {
      spec.sanitizer.enabled = true;
      spec.sanitizer.determinism_sample_rate = 1;
    }
    auto summary = pregel::RunJob(std::move(spec));
    GRAFT_CHECK(summary.ok());
    GRAFT_CHECK(summary->job_status.ok());
    return *std::move(summary);
  };

  InMemoryTraceStore plain_store;
  pregel::JobRunSummary plain = run(false, &plain_store);
  InMemoryTraceStore probed_store;
  pregel::JobRunSummary probed = run(true, &probed_store);

  EXPECT_EQ(probed.analysis_findings, 0u);
  EXPECT_GT(plain.captures, 0u);
  EXPECT_EQ(plain.captures, probed.captures);
  EXPECT_EQ(TraceFilesOf(plain_store), TraceFilesOf(probed_store));
}

/// Disabled sanitizer is inert: no wrapping, no findings, no store writes,
/// profile absent from exports — the API-level half of the bench guard.
TEST(BspSanitizerTest, DisabledSanitizerIsInert) {
  auto graph = graph::GenerateRing(8);
  pregel::JobSpec<algos::PageRankTraits> spec;
  spec.options.job_id = "disabled";
  spec.options.max_supersteps = 4;
  spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  // A buggy program on purpose: with the sanitizer off, nothing may notice.
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MessageAfterHaltPageRank>(2);
  };
  InMemoryTraceStore store;
  spec.trace_store = &store;

  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok());
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_EQ(summary->analysis_findings, 0u);
  EXPECT_FALSE(summary->stats.report.analysis.enabled);
  EXPECT_TRUE(store.ListFiles("").empty());
  EXPECT_EQ(summary->stats.report.ToPrometheusText().find(
                "analysis_findings_total"),
            std::string::npos);
}

TEST(BspSanitizerTest, RenderFindingsTableShowsCoordinates) {
  std::vector<AnalysisFinding> findings;
  findings.push_back(
      MakeFinding(FindingKind::kSendAfterHalt, 2, 7, "send to 8 after halt"));
  AnalysisFinding master = MakeFinding(FindingKind::kAggregatorPhase, -1, -1,
                                       "SetAggregated in Initialize");
  master.worker = -1;
  findings.push_back(master);
  std::string table = analysis::RenderFindingsTable(findings);
  EXPECT_NE(table.find("send_after_halt"), std::string::npos) << table;
  EXPECT_NE(table.find("init"), std::string::npos);
  EXPECT_NE(table.find("master"), std::string::npos);
}

}  // namespace
}  // namespace graft
