// DebugService: the HTTP job-submission + paginated debug-read surface
// (DESIGN.md §13). Exercises the whole stack in process through
// TelemetryServer::Handle — routing and error envelopes, POST /jobs
// lifecycle, the read-while-running 409 policy, pagination, per-view JSON
// shape, queue overload, and the acceptance-shaped concurrency run (readers
// x jobs with zero 5xx and a warm cache serving every read).

#include "service/debug_service.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_parser.h"
#include "common/string_util.h"
#include "io/trace_block_cache.h"
#include "io/trace_store.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "service/algo_catalog.h"

namespace graft {
namespace service {
namespace {

using obs::TelemetryServer;
using Response = TelemetryServer::Response;

std::string JobBody(const std::string& algo, const std::string& job_id,
                    int vertices = 40, int iterations = 3) {
  return StrFormat(
      "{\"algo\":\"%s\",\"job_id\":\"%s\","
      "\"graph\":{\"generator\":\"erdos-renyi\",\"vertices\":%d,"
      "\"edges\":%d,\"seed\":7},"
      "\"params\":{\"iterations\":%d},\"journal\":false}",
      algo.c_str(), job_id.c_str(), vertices, vertices * 4, iterations);
}

/// Everything a service test needs, wired to private registries so tests
/// cannot see each other's jobs.
class DebugServiceTest : public ::testing::Test {
 protected:
  DebugServiceTest() { Recreate(2, 16); }

  void Recreate(int workers, size_t queue_capacity,
                const AlgoCatalog* catalog = nullptr) {
    service_.reset();
    server_.reset();
    DebugServiceOptions options;
    options.store = &store_;
    options.registry = &registry_;
    options.metrics = &metrics_;
    options.cache = &cache_;
    options.catalog = catalog;
    options.worker_threads = workers;
    options.queue_capacity = queue_capacity;
    service_ = std::make_unique<DebugService>(options);
    obs::TelemetryServerOptions server_options;
    server_options.metrics = &metrics_;
    server_options.registry = &registry_;
    server_ = TelemetryServer::Create(server_options);
    service_->RegisterRoutes(server_.get());
  }

  /// Submits and waits for the job; returns the finished job id.
  std::string RunJob(const std::string& algo, const std::string& job_id,
                     int vertices = 40) {
    Response response =
        server_->Handle("POST", "/jobs", JobBody(algo, job_id, vertices));
    EXPECT_EQ(response.status, 202) << response.body;
    service_->DrainJobs();
    auto entry = registry_.Find(job_id);
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_EQ(entry->state(), obs::JobState::kDone) << response.body;
    }
    return job_id;
  }

  InMemoryTraceStore store_;
  obs::JobRegistry registry_;
  obs::MetricsRegistry metrics_;
  TraceBlockCache cache_;
  std::unique_ptr<DebugService> service_;
  std::unique_ptr<TelemetryServer> server_;
};

TEST_F(DebugServiceTest, SubmitAcceptedWithEndpointsEnvelope) {
  Response response =
      server_->Handle("POST", "/jobs", JobBody("pagerank", "submit-1"));
  ASSERT_EQ(response.status, 202) << response.body;
  auto body = ParseJson(response.body);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ((*body)->Get("job_id")->AsString(), "submit-1");
  EXPECT_EQ((*body)->Get("algo")->AsString(), "pagerank");
  EXPECT_EQ((*body)->Get("state")->AsString(), "pending");
  ASSERT_NE((*body)->Get("endpoints"), nullptr);
  EXPECT_EQ((*body)->Get("endpoints")->Get("debug")->AsString(),
            "/jobs/submit-1/debug/supersteps");
  service_->DrainJobs();
  EXPECT_EQ(registry_.Find("submit-1")->state(), obs::JobState::kDone);
  EXPECT_EQ(metrics_.GetCounter("service.jobs_submitted_total")->value(), 1u);
}

TEST_F(DebugServiceTest, SubmitErrorsMapToHttpStatuses) {
  // Bad JSON → 400 with the error envelope.
  Response bad_json = server_->Handle("POST", "/jobs", "{not json");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(bad_json.body.find("\"error\""), std::string::npos);

  // Unknown algo → 400 listing the catalog.
  Response bad_algo =
      server_->Handle("POST", "/jobs", "{\"algo\":\"nope\"}");
  EXPECT_EQ(bad_algo.status, 400);
  EXPECT_NE(bad_algo.body.find("pagerank"), std::string::npos);

  // Out-of-range spec → 400.
  Response bad_spec = server_->Handle(
      "POST", "/jobs",
      "{\"algo\":\"pagerank\",\"engine\":{\"workers\":9999}}");
  EXPECT_EQ(bad_spec.status, 400);
  EXPECT_GE(metrics_.GetCounter("service.jobs_rejected_total")->value(), 3u);
}

TEST_F(DebugServiceTest, RoutingRejectsUnknownPathAndWrongMethod) {
  EXPECT_EQ(server_->Handle("GET", "/jobs/x/debug/bogus").status, 404);
  EXPECT_EQ(server_->Handle("PUT", "/jobs").status, 405);
  EXPECT_EQ(server_->Handle("DELETE", "/jobs/x/debug/supersteps").status, 405);
  // HEAD is answered by the GET route.
  EXPECT_EQ(server_->Handle("HEAD", "/healthz").status, 200);
}

TEST_F(DebugServiceTest, JobsListingFiltersByState) {
  RunJob("pagerank", "list-1");
  EXPECT_EQ(server_->Handle("GET", "/jobs?status=bogus").status, 400);
  Response done = server_->Handle("GET", "/jobs?status=done");
  ASSERT_EQ(done.status, 200);
  EXPECT_NE(done.body.find("list-1"), std::string::npos);
  Response running = server_->Handle("GET", "/jobs?status=running");
  ASSERT_EQ(running.status, 200);
  EXPECT_EQ(running.body.find("list-1"), std::string::npos);
}

TEST_F(DebugServiceTest, ReadsOfRunningJobAnswer409) {
  // A pending entry (as if a worker had not picked the job up yet).
  registry_.Register("inflight");
  for (const char* target :
       {"/jobs/inflight/debug/supersteps", "/jobs/inflight/debug/vertices",
        "/jobs/inflight/debug/vertex/1", "/jobs/inflight/debug/master",
        "/jobs/inflight/debug/violations"}) {
    Response response = server_->Handle("GET", target);
    EXPECT_EQ(response.status, 409) << target << ": " << response.body;
    EXPECT_NE(response.body.find("still pending"), std::string::npos);
  }
}

TEST_F(DebugServiceTest, ResubmitLiveJobConflictsFinishedJobReruns) {
  registry_.Register("dup");  // live (pending)
  Response conflict =
      server_->Handle("POST", "/jobs", JobBody("pagerank", "dup"));
  EXPECT_EQ(conflict.status, 409) << conflict.body;

  registry_.Find("dup")->Finish(true, "done");
  Response rerun = server_->Handle("POST", "/jobs", JobBody("pagerank", "dup"));
  EXPECT_EQ(rerun.status, 202) << rerun.body;
  service_->DrainJobs();
  EXPECT_EQ(registry_.Find("dup")->state(), obs::JobState::kDone);
}

TEST_F(DebugServiceTest, UnknownJobReadsAnswer404) {
  Response response = server_->Handle("GET", "/jobs/ghost/debug/supersteps");
  EXPECT_EQ(response.status, 404) << response.body;
  // Typed views need an algo for jobs this service never ran.
  Response no_algo = server_->Handle("GET", "/jobs/ghost/debug/vertices");
  EXPECT_EQ(no_algo.status, 400) << no_algo.body;
  Response with_algo =
      server_->Handle("GET", "/jobs/ghost/debug/vertices?algo=pagerank");
  EXPECT_EQ(with_algo.status, 404) << with_algo.body;
}

TEST_F(DebugServiceTest, SuperstepsViewJsonAndText) {
  RunJob("pagerank", "steps-1");
  Response json = server_->Handle("GET", "/jobs/steps-1/debug/supersteps");
  ASSERT_EQ(json.status, 200) << json.body;
  auto body = ParseJson(json.body);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ((*body)->Get("job")->AsString(), "steps-1");
  EXPECT_TRUE((*body)->Get("manifest")->AsBool());
  const auto& steps = (*body)->Get("supersteps")->items();
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(*steps.front()->Get("superstep")->AsInt64(), 0);
  EXPECT_GT(*steps.front()->Get("vertex_records")->AsInt64(), 0);

  Response text =
      server_->Handle("GET", "/jobs/steps-1/debug/supersteps?format=text");
  ASSERT_EQ(text.status, 200);
  EXPECT_NE(text.body.find("captured supersteps"), std::string::npos);
}

TEST_F(DebugServiceTest, VerticesViewPaginates) {
  RunJob("pagerank", "page-1", /*vertices=*/30);
  Response page = server_->Handle(
      "GET", "/jobs/page-1/debug/vertices?superstep=1&limit=10");
  ASSERT_EQ(page.status, 200) << page.body;
  auto body = ParseJson(page.body);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ((*body)->Get("view")->AsString(), "tabular");
  const JsonValue* meta = (*body)->Get("page");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(*meta->Get("total")->AsInt64(), 30);
  EXPECT_EQ(*meta->Get("returned")->AsInt64(), 10);
  EXPECT_EQ((*body)->Get("vertices")->items().size(), 10u);

  Response tail = server_->Handle(
      "GET", "/jobs/page-1/debug/vertices?superstep=1&offset=25&limit=10");
  ASSERT_EQ(tail.status, 200);
  auto tail_body = ParseJson(tail.body);
  ASSERT_TRUE(tail_body.ok());
  EXPECT_EQ(*(*tail_body)->Get("page")->Get("returned")->AsInt64(), 5);
  EXPECT_EQ(*(*tail_body)->Get("page")->Get("offset")->AsInt64(), 25);

  // limit=all disables pagination; bad limits are 400.
  Response all = server_->Handle(
      "GET", "/jobs/page-1/debug/vertices?superstep=1&limit=all");
  ASSERT_EQ(all.status, 200);
  auto all_body = ParseJson(all.body);
  ASSERT_TRUE(all_body.ok());
  EXPECT_EQ(*(*all_body)->Get("page")->Get("returned")->AsInt64(), 30);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/page-1/debug/vertices?limit=0").status,
      400);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/page-1/debug/vertices?offset=-1").status,
      400);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/page-1/debug/vertices?format=xml").status,
      400);
}

TEST_F(DebugServiceTest, VertexPointLookupAndHistory) {
  RunJob("pagerank", "vertex-1");
  // Point lookup: one superstep of one vertex.
  Response point = server_->Handle(
      "GET", "/jobs/vertex-1/debug/vertex/3?superstep=1");
  ASSERT_EQ(point.status, 200) << point.body;
  auto body = ParseJson(point.body);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ((*body)->Get("view")->AsString(), "vertex");
  ASSERT_EQ((*body)->Get("vertices")->items().size(), 1u);
  const JsonValue& row = *(*body)->Get("vertices")->items().front();
  EXPECT_EQ(*row.Get("id")->AsInt64(), 3);
  EXPECT_EQ(*row.Get("superstep")->AsInt64(), 1);
  EXPECT_NE(row.Get("value_after"), nullptr);
  EXPECT_NE(row.Get("edges"), nullptr);

  // History: every captured superstep of the vertex.
  Response history = server_->Handle("GET", "/jobs/vertex-1/debug/vertex/3");
  ASSERT_EQ(history.status, 200);
  auto history_body = ParseJson(history.body);
  ASSERT_TRUE(history_body.ok());
  EXPECT_GT((*history_body)->Get("vertices")->items().size(), 1u);

  // Absent vertex → 404; non-integer id → 400.
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/vertex-1/debug/vertex/99999").status, 404);
  EXPECT_EQ(server_->Handle("GET", "/jobs/vertex-1/debug/vertex/abc").status,
            400);
}

TEST_F(DebugServiceTest, MasterAndViolationsViews) {
  RunJob("pagerank", "master-1");
  Response master = server_->Handle("GET", "/jobs/master-1/debug/master");
  ASSERT_EQ(master.status, 200) << master.body;
  auto body = ParseJson(master.body);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ((*body)->Get("job")->AsString(), "master-1");
  EXPECT_GT(*body.value()->Get("total_vertices")->AsInt64(), 0);
  EXPECT_NE((*body)->Get("aggregators_after"), nullptr);
  // A superstep past the run → 404, not a store scan per request.
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/master-1/debug/master?superstep=999")
          .status,
      404);

  Response violations =
      server_->Handle("GET", "/jobs/master-1/debug/violations");
  ASSERT_EQ(violations.status, 200) << violations.body;
  auto vbody = ParseJson(violations.body);
  ASSERT_TRUE(vbody.ok());
  EXPECT_EQ((*vbody)->Get("view")->AsString(), "violations");
  EXPECT_NE((*vbody)->Get("violations"), nullptr);  // empty for a clean run
}

TEST_F(DebugServiceTest, AllAlgosRunAndRenderViews) {
  for (const std::string algo : {"pagerank", "cc", "sssp"}) {
    const std::string job = "algo-" + algo;
    RunJob(algo, job);
    Response view =
        server_->Handle("GET", "/jobs/" + job + "/debug/vertices?limit=5");
    EXPECT_EQ(view.status, 200) << algo << ": " << view.body;
    Response search = server_->Handle(
        "GET", "/jobs/" + job + "/debug/vertices?search=1&limit=5");
    EXPECT_EQ(search.status, 200) << algo;
  }
  EXPECT_EQ(metrics_.GetCounter("service.debug_reads_total")->value(), 6u);
}

TEST_F(DebugServiceTest, QueueOverflowAnswers503AndMarksJobFailed) {
  // One worker held busy by a latch + a one-slot queue: the third submit
  // must be rejected with 503 and surface as a failed job.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool started = false;
  bool release = false;
  AlgoCatalog catalog;
  catalog.Register(
      "slow",
      [&](const JobRequest& request, const RunEnv& env) {
        {
          std::unique_lock<std::mutex> lock(gate_mutex);
          started = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release; });
        }
        env.registry->Find(request.job_id)->Finish(true, "slow done");
        return Status::OK();
      },
      [](const TraceStore&, const std::string&, TraceBlockCache*,
         const debug::ViewRequest&) -> Result<debug::ViewResult> {
        return Status::NotFound("no captures");
      });
  Recreate(/*workers=*/1, /*queue_capacity=*/1, &catalog);

  Response first =
      server_->Handle("POST", "/jobs", "{\"algo\":\"slow\",\"job_id\":\"s1\"}");
  ASSERT_EQ(first.status, 202) << first.body;
  // Wait until the worker has dequeued s1 (its runner signals through the
  // gate) so s2 deterministically occupies the single queue slot.
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return started; });
  }
  Response second =
      server_->Handle("POST", "/jobs", "{\"algo\":\"slow\",\"job_id\":\"s2\"}");
  ASSERT_EQ(second.status, 202) << second.body;
  Response third =
      server_->Handle("POST", "/jobs", "{\"algo\":\"slow\",\"job_id\":\"s3\"}");
  EXPECT_EQ(third.status, 503) << third.body;
  EXPECT_NE(third.body.find("queue is full"), std::string::npos);
  EXPECT_EQ(registry_.Find("s3")->state(), obs::JobState::kFailed);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  service_->DrainJobs();
  EXPECT_EQ(registry_.Find("s1")->state(), obs::JobState::kDone);
  EXPECT_EQ(registry_.Find("s2")->state(), obs::JobState::kDone);
}

TEST_F(DebugServiceTest, FailedRunIsTerminalAndReadable) {
  AlgoCatalog catalog;
  catalog.Register(
      "boom",
      [](const JobRequest&, const RunEnv&) {
        return Status::Internal("deliberate failure");
      },
      [](const TraceStore&, const std::string&, TraceBlockCache*,
         const debug::ViewRequest&) -> Result<debug::ViewResult> {
        return Status::NotFound("no captures");
      });
  Recreate(2, 16, &catalog);
  Response response =
      server_->Handle("POST", "/jobs", "{\"algo\":\"boom\",\"job_id\":\"b1\"}");
  ASSERT_EQ(response.status, 202);
  service_->DrainJobs();
  EXPECT_EQ(registry_.Find("b1")->state(), obs::JobState::kFailed);
  // Terminal → readable (404: it captured nothing), not 409.
  EXPECT_EQ(server_->Handle("GET", "/jobs/b1/debug/supersteps").status, 404);
}

// The acceptance shape: 32 concurrent readers over 4 finished jobs, every
// response below 500, and — after a warmup pass — the shared cache serves
// every read without another store decode.
TEST_F(DebugServiceTest, ConcurrentReadersZero5xxAndWarmCache) {
  const std::vector<std::string> algos = {"pagerank", "cc", "sssp",
                                          "pagerank"};
  std::vector<std::string> targets = {"/jobs", "/jobs?status=done"};
  for (size_t i = 0; i < algos.size(); ++i) {
    const std::string job = RunJob(algos[i], StrFormat("conc-%zu", i),
                                   /*vertices=*/30);
    const std::string base = "/jobs/" + job + "/debug";
    targets.push_back(base + "/supersteps");
    targets.push_back(base + "/vertices?superstep=1&limit=10");
    targets.push_back(base + "/vertices?superstep=1&offset=10&limit=10");
    targets.push_back(base + "/master?superstep=1");
    targets.push_back(base + "/violations?superstep=1");
    for (int vid = 0; vid < 4; ++vid) {
      targets.push_back(StrFormat("%s/vertex/%d", base.c_str(), vid));
    }
  }
  for (const std::string& target : targets) {
    Response response = server_->Handle("GET", target);
    ASSERT_LT(response.status, 500) << target << ": " << response.body;
  }

  const auto warm = cache_.stats();
  constexpr int kReaders = 32;
  constexpr int kRequestsPerReader = 25;
  std::atomic<int> server_errors{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kRequestsPerReader; ++i) {
        const std::string& target =
            targets[static_cast<size_t>(r + i * 7) % targets.size()];
        Response response = server_->Handle("GET", target);
        if (response.status >= 500) server_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(server_errors.load(), 0);
  const auto stats = cache_.stats();
  EXPECT_EQ(stats.misses, warm.misses)
      << "store re-decodes after warmup: " << (stats.misses - warm.misses);
  EXPECT_GT(stats.hits, warm.hits);

  cache_.ExportMetrics(&metrics_);
  EXPECT_GT(metrics_.GetGauge("tracecache.hits_total")->value(), 0.0);
  EXPECT_GT(metrics_.GetGauge("tracecache.hit_rate")->value(), 0.5);
}

// ------------------------------------------------------- minimize routes --

TEST_F(DebugServiceTest, MinimizeLifecycleEndToEnd) {
  RunJob("cc", "min-1", /*vertices=*/24);
  Response accepted = server_->Handle(
      "POST", "/jobs/min-1/minimize",
      "{\"oracle\":\"predicate\","
      "\"predicate\":\"value == 0 && superstep >= 1\"}");
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  auto envelope = ParseJson(accepted.body);
  ASSERT_TRUE(envelope.ok()) << envelope.status();
  EXPECT_EQ((*envelope)->Get("job_id")->AsString(), "min-1");
  EXPECT_EQ((*envelope)->Get("endpoints")->Get("status")->AsString(),
            "/jobs/min-1/minimize");
  EXPECT_EQ((*envelope)->Get("endpoints")->Get("reproducer")->AsString(),
            "/jobs/min-1/minimize/reproducer");
  service_->DrainJobs();

  Response status = server_->Handle("GET", "/jobs/min-1/minimize");
  ASSERT_EQ(status.status, 200) << status.body;
  auto body = ParseJson(status.body);
  ASSERT_TRUE(body.ok()) << body.status() << status.body;
  EXPECT_EQ((*body)->Get("state")->AsString(), "done");
  const auto* report = (*body)->Get("report");
  ASSERT_NE(report, nullptr) << status.body;
  EXPECT_TRUE(report->Get("reproduced")->AsBool());
  EXPECT_EQ(report->Get("oracle")->AsString(), "predicate");
  // Only vertex 0 carries component id 0, plus the one neighbor whose message
  // wakes it past superstep 0: a two-vertex, one-edge witness.
  EXPECT_EQ(*report->Get("final_vertices")->AsInt64(), 2);
  EXPECT_EQ(*report->Get("final_edges")->AsInt64(), 1);
  EXPECT_GT(*report->Get("probes")->AsInt64(), 1);
  ASSERT_FALSE(report->Get("subgraph")->items().empty());
  bool has_vertex_zero = false;
  for (const auto& v : report->Get("subgraph")->items())
    has_vertex_zero |= (*v->Get("id")->AsInt64() == 0);
  EXPECT_TRUE(has_vertex_zero);

  Response reproducer =
      server_->Handle("GET", "/jobs/min-1/minimize/reproducer");
  ASSERT_EQ(reproducer.status, 200) << reproducer.body;
  EXPECT_NE(reproducer.body.find("TEST("), std::string::npos);
  EXPECT_NE(reproducer.body.find("spec.analysis.breakpoint"),
            std::string::npos);
  EXPECT_GE(metrics_.GetCounter("service.minimizer_jobs_total")->value(), 1u);
  EXPECT_GT(metrics_.GetCounter("service.minimizer_probes_total")->value(),
            1u);
}

TEST_F(DebugServiceTest, MinimizeValidationAndUnknownJobs) {
  // Minimize needs the original job spec: unknown jobs are 404.
  EXPECT_EQ(server_->Handle("POST", "/jobs/ghost/minimize", "{}").status, 404);
  EXPECT_EQ(server_->Handle("GET", "/jobs/ghost/minimize").status, 404);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/ghost/minimize/reproducer").status, 404);

  RunJob("pagerank", "min-v");
  // No minimization submitted yet: status and reproducer are 404.
  EXPECT_EQ(server_->Handle("GET", "/jobs/min-v/minimize").status, 404);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/min-v/minimize/reproducer").status, 404);
  // Malformed requests are rejected up front with 400.
  EXPECT_EQ(
      server_->Handle("POST", "/jobs/min-v/minimize", "{not json").status,
      400);
  EXPECT_EQ(server_->Handle("POST", "/jobs/min-v/minimize",
                            "{\"oracle\":\"coin-flip\"}")
                .status,
            400);
  EXPECT_EQ(server_->Handle("POST", "/jobs/min-v/minimize",
                            "{\"oracle\":\"predicate\","
                            "\"predicate\":\"value = 0\"}")
                .status,
            400);
  EXPECT_EQ(server_->Handle("POST", "/jobs/min-v/minimize",
                            "{\"max_probes\":0}")
                .status,
            400);
  EXPECT_EQ(server_->Handle("POST", "/jobs/min-v/minimize",
                            "{\"finding_kind\":\"bogus-kind\"}")
                .status,
            400);
}

TEST_F(DebugServiceTest, MinimizeOfRunningJobConflictsAndUnsupportedFails) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool started = false;
  bool release = false;
  AlgoCatalog catalog;
  catalog.Register(
      "slow",
      [&](const JobRequest& request, const RunEnv& env) {
        {
          std::unique_lock<std::mutex> lock(gate_mutex);
          started = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release; });
        }
        env.registry->Find(request.job_id)->Finish(true, "slow done");
        return Status::OK();
      },
      [](const TraceStore&, const std::string&, TraceBlockCache*,
         const debug::ViewRequest&) -> Result<debug::ViewResult> {
        return Status::NotFound("no captures");
      });  // no minimizer registered
  Recreate(/*workers=*/2, /*queue_capacity=*/16, &catalog);

  Response submit =
      server_->Handle("POST", "/jobs", "{\"algo\":\"slow\",\"job_id\":\"m1\"}");
  ASSERT_EQ(submit.status, 202) << submit.body;
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return started; });
  }
  // The job is live: minimize conflicts just like debug reads do.
  Response conflict = server_->Handle("POST", "/jobs/m1/minimize", "{}");
  EXPECT_EQ(conflict.status, 409) << conflict.body;
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  service_->DrainJobs();

  // Finished, but the algo has no registered minimizer: the minimization
  // job is accepted and then fails with Unimplemented.
  Response accepted = server_->Handle("POST", "/jobs/m1/minimize", "{}");
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  service_->DrainJobs();
  Response status = server_->Handle("GET", "/jobs/m1/minimize");
  ASSERT_EQ(status.status, 200) << status.body;
  auto body = ParseJson(status.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ((*body)->Get("state")->AsString(), "failed");
  EXPECT_NE((*body)->Get("error")->AsString().find("minimization"),
            std::string::npos)
      << status.body;
  EXPECT_GE(metrics_.GetCounter("service.minimizer_failed_total")->value(),
            1u);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/m1/minimize/reproducer").status, 404);
}

TEST_F(DebugServiceTest, MinimizeInFlightStatusAndDuplicateConflict) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool started = false;
  bool release = false;
  AlgoCatalog catalog;
  catalog.Register(
      "mini",
      [](const JobRequest& request, const RunEnv& env) {
        env.registry->Find(request.job_id)->Finish(true, "done");
        return Status::OK();
      },
      [](const TraceStore&, const std::string&, TraceBlockCache*,
         const debug::ViewRequest&) -> Result<debug::ViewResult> {
        return Status::NotFound("no captures");
      },
      [&](const JobRequest&, const analysis::MinimizerOptions&,
          const analysis::MinimizerProgressFn& progress)
          -> Result<analysis::MinimizerReport> {
        analysis::MinimizerProgress running;
        running.phase = "ddmin-vertices";
        running.probes = 7;
        progress(running);
        {
          std::unique_lock<std::mutex> lock(gate_mutex);
          started = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release; });
        }
        analysis::MinimizerReport report;
        report.reproduced = true;
        report.oracle = "failure";
        report.probes = 9;
        report.final_vertices = 1;
        report.reproducer_code = "// generated\nTEST(Mini, Repro) {}\n";
        return report;
      });
  Recreate(/*workers=*/2, /*queue_capacity=*/16, &catalog);

  Response submit =
      server_->Handle("POST", "/jobs", "{\"algo\":\"mini\",\"job_id\":\"m2\"}");
  ASSERT_EQ(submit.status, 202) << submit.body;
  service_->DrainJobs();
  ASSERT_EQ(server_->Handle("POST", "/jobs/m2/minimize", "{}").status, 202);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return started; });
  }
  // While the minimization runs: live progress, a duplicate conflicts, and
  // the reproducer does not exist yet.
  Response status = server_->Handle("GET", "/jobs/m2/minimize");
  ASSERT_EQ(status.status, 200) << status.body;
  auto body = ParseJson(status.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ((*body)->Get("state")->AsString(), "running");
  EXPECT_EQ((*body)->Get("progress")->Get("phase")->AsString(),
            "ddmin-vertices");
  EXPECT_EQ(*(*body)->Get("progress")->Get("probes")->AsInt64(), 7);
  EXPECT_EQ(server_->Handle("POST", "/jobs/m2/minimize", "{}").status, 409);
  EXPECT_EQ(
      server_->Handle("GET", "/jobs/m2/minimize/reproducer").status, 404);
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  service_->DrainJobs();
  Response done = server_->Handle("GET", "/jobs/m2/minimize");
  ASSERT_EQ(done.status, 200);
  auto done_body = ParseJson(done.body);
  ASSERT_TRUE(done_body.ok());
  EXPECT_EQ((*done_body)->Get("state")->AsString(), "done");
  Response reproducer =
      server_->Handle("GET", "/jobs/m2/minimize/reproducer");
  ASSERT_EQ(reproducer.status, 200);
  EXPECT_NE(reproducer.body.find("TEST(Mini, Repro)"), std::string::npos);
  // A finished minimization can be re-run.
  EXPECT_EQ(server_->Handle("POST", "/jobs/m2/minimize", "{}").status, 202);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    release = true;  // let the second run straight through
  }
  service_->DrainJobs();
}

}  // namespace
}  // namespace service
}  // namespace graft
