// Tests for the superstep hot path introduced with the persistent worker
// pool and the double-buffered message store (DESIGN.md §4): ChunkedBuffer
// arena reuse, FlatIndex lookup semantics, MessageStore combining /
// ordering / drop accounting, WorkerPool thread reuse, incremental
// activity-counter consistency under topology mutation, partial-superstep
// profiles, and run-to-run trace determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algos/graph_coloring.h"
#include "common/flat_index.h"
#include "common/parallel.h"
#include "debug/debug_runner.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/engine.h"
#include "pregel/loader.h"
#include "pregel/message_store.h"
#include "pregel/value_types.h"

namespace graft {
namespace pregel {
namespace {

// ---------------------------------------------------------- ChunkedBuffer --

TEST(ChunkedBufferTest, AppendOrderAcrossChunkBoundaries) {
  ChunkedBuffer<int> buf(/*chunk_capacity=*/4);
  for (int i = 0; i < 11; ++i) buf.Append(i);
  EXPECT_EQ(buf.size(), 11u);
  std::vector<int> seen;
  buf.ForEach([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(ChunkedBufferTest, ClearKeepsChunksForReuse) {
  ChunkedBuffer<int> buf(/*chunk_capacity=*/4);
  for (int i = 0; i < 10; ++i) buf.Append(i);
  const size_t chunks = buf.allocated_chunks();
  EXPECT_EQ(chunks, 3u);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.allocated_chunks(), chunks);  // capacity retained
  // Refill to the same size: no new chunks.
  for (int i = 0; i < 10; ++i) buf.Append(100 + i);
  EXPECT_EQ(buf.allocated_chunks(), chunks);
  std::vector<int> seen;
  buf.ForEach([&](int v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 100);
  EXPECT_EQ(seen.back(), 109);
}

TEST(ChunkedBufferTest, EmptyForEachVisitsNothing) {
  ChunkedBuffer<int> buf(2);
  int count = 0;
  buf.ForEach([&](int) { ++count; });
  EXPECT_EQ(count, 0);
  buf.Clear();  // clearing an empty buffer is a no-op
  EXPECT_EQ(buf.size(), 0u);
}

// -------------------------------------------------------------- FlatIndex --

TEST(FlatIndexTest, InsertFindAndGrowth) {
  FlatIndex index;
  // Enough keys to force several rehashes past the 16-cell floor.
  for (int64_t k = 0; k < 1000; ++k) {
    bool inserted = false;
    EXPECT_EQ(index.InsertOrFind(k * 7919, static_cast<uint32_t>(k),
                                 &inserted),
              static_cast<uint32_t>(k));
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(index.size(), 1000u);
  for (int64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(index.Find(k * 7919), static_cast<uint32_t>(k));
  }
  EXPECT_EQ(index.Find(-1), FlatIndex::kNotFound);
  EXPECT_EQ(index.Find(7919 * 1000), FlatIndex::kNotFound);
}

TEST(FlatIndexTest, InsertOrFindReturnsExistingMapping) {
  FlatIndex index;
  bool inserted = false;
  index.InsertOrFind(42, 7, &inserted);
  ASSERT_TRUE(inserted);
  // A second insert for the same key keeps the original slot — this is the
  // resurrection path: a removed vertex's id stays mapped to its slot.
  EXPECT_EQ(index.InsertOrFind(42, 99, &inserted), 7u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(index.size(), 1u);
}

// ----------------------------------------------------------- MessageStore --

using IntStore = MessageStore<int>;

TEST(MessageStoreTest, EntryPathDeliversInSenderOrder) {
  IntStore store;
  store.Configure(/*num_partitions=*/3, /*combiner=*/nullptr);
  store.EnsureInboxSlots(1, 2);
  // Two senders target partition 1, slot 0; delivery must drain sender 0
  // before sender 2, each in append order.
  store.SendEntry(2, 1, /*target=*/10, 30);
  store.SendEntry(0, 1, /*target=*/10, 10);
  store.SendEntry(0, 1, /*target=*/10, 11);
  auto resolve = [](VertexId id) -> size_t {
    return id == 10 ? 0 : IntStore::kNoSlot;
  };
  auto alive = [](size_t) { return true; };
  auto stats = store.Deliver(1, resolve, alive);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(store.Inbox(1, 0), (std::vector<int>{10, 11, 30}));
}

TEST(MessageStoreTest, UnresolvedEntriesCountAsDropped) {
  IntStore store;
  store.Configure(2, nullptr);
  store.EnsureInboxSlots(0, 1);
  store.SendEntry(0, 0, /*target=*/5, 1);
  store.SendEntry(1, 0, /*target=*/6, 2);
  auto stats = store.Deliver(
      0, [](VertexId id) -> size_t { return id == 5 ? 0 : IntStore::kNoSlot; },
      [](size_t) { return true; });
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(store.Inbox(0, 0), (std::vector<int>{1}));
}

TEST(MessageStoreTest, CombinerFoldsPerSenderAndAcrossSenders) {
  IntStore store;
  store.Configure(2, [](const int& a, const int& b) { return a + b; });
  store.EnsureInboxSlots(0, 3);
  // Sender 0 sends three messages to slot 1; sender 1 sends two more.
  store.SendCombined(0, 0, 1, 1);
  store.SendCombined(0, 0, 1, 2);
  store.SendCombined(0, 0, 1, 4);
  store.SendCombined(1, 0, 1, 8);
  store.SendCombined(1, 0, 1, 16);
  auto stats = store.Deliver(
      0, [](VertexId) -> size_t { return IntStore::kNoSlot; },
      [](size_t) { return true; });
  // One message in the inbox, but all five accounted as delivered.
  EXPECT_EQ(stats.delivered, 5u);
  ASSERT_EQ(store.Inbox(0, 1).size(), 1u);
  EXPECT_EQ(store.Inbox(0, 1)[0], 31);
}

TEST(MessageStoreTest, CombinedSlotsToDeadVerticesDropWithCounts) {
  IntStore store;
  store.Configure(1, [](const int& a, const int& b) { return a + b; });
  store.EnsureInboxSlots(0, 2);
  store.SendCombined(0, 0, 0, 1);
  store.SendCombined(0, 0, 0, 1);  // folded: still 2 messages for accounting
  store.SendCombined(0, 0, 1, 5);
  auto stats = store.Deliver(
      0, [](VertexId) -> size_t { return IntStore::kNoSlot; },
      [](size_t slot) { return slot != 0; });  // slot 0 died after the sends
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_TRUE(store.Inbox(0, 0).empty());
  EXPECT_EQ(store.Inbox(0, 1), (std::vector<int>{5}));
}

TEST(MessageStoreTest, EpochClearingReusesSlotsAcrossSupersteps) {
  IntStore store;
  store.Configure(1, [](const int& a, const int& b) { return a + b; });
  store.EnsureInboxSlots(0, 4);
  auto no_resolve = [](VertexId) -> size_t { return IntStore::kNoSlot; };
  auto all_alive = [](size_t) { return true; };
  // Superstep S: combine into slots 0 and 2.
  store.SendCombined(0, 0, 0, 10);
  store.SendCombined(0, 0, 2, 20);
  auto s1 = store.Deliver(0, no_resolve, all_alive);
  EXPECT_EQ(s1.delivered, 2u);
  store.ClearInbox(0, 0);
  store.ClearInbox(0, 2);
  // Superstep S+1: the epoch bump must have invalidated the old slot data —
  // a fresh send to slot 2 starts from scratch, slot 0 stays untouched.
  store.SendCombined(0, 0, 2, 7);
  auto s2 = store.Deliver(0, no_resolve, all_alive);
  EXPECT_EQ(s2.delivered, 1u);
  EXPECT_TRUE(store.Inbox(0, 0).empty());
  EXPECT_EQ(store.Inbox(0, 2), (std::vector<int>{7}));
}

TEST(MessageStoreTest, CombinedBeforeEntriesPerSender) {
  // Delivery order contract: per sender, combined slots (first-touch order)
  // precede that sender's unresolved entries (append order).
  IntStore store;
  store.Configure(1, [](const int& a, const int& b) { return a + b; });
  store.EnsureInboxSlots(0, 2);
  store.SendEntry(0, 0, /*target=*/77, 100);  // resolves late to slot 0
  store.SendCombined(0, 0, 0, 1);
  auto stats = store.Deliver(
      0, [](VertexId id) -> size_t { return id == 77 ? 0u : IntStore::kNoSlot; },
      [](size_t) { return true; });
  EXPECT_EQ(stats.delivered, 2u);
  // Combined partial lands first, the entry folds into it: 1 + 100.
  EXPECT_EQ(store.Inbox(0, 0), (std::vector<int>{101}));
}

// ------------------------------------------------------------- WorkerPool --

TEST(WorkerPoolTest, RunsEveryWorkerEachPhaseAndReusesThreads) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::vector<std::atomic<int>> hits(4);
  constexpr int kPhases = 100;
  for (int phase = 0; phase < kPhases; ++phase) {
    pool.Run([&](int w) { hits[static_cast<size_t>(w)]++; });
  }
  for (int w = 0; w < 4; ++w) EXPECT_EQ(hits[static_cast<size_t>(w)], kPhases);
  // generations() counts phases; the pool never spawned past construction.
  EXPECT_EQ(pool.generations(), static_cast<uint64_t>(kPhases));
}

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Run([&](int w) {
    EXPECT_EQ(w, 0);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(pool.generations(), 1u);
}

TEST(WorkerPoolTest, PhasesAreBarriers) {
  // Writes from phase N must be visible to every worker in phase N+1.
  WorkerPool pool(3);
  std::vector<int> data(3, 0);
  pool.Run([&](int w) { data[static_cast<size_t>(w)] = w + 1; });
  int sum = 0;
  pool.Run([&](int w) {
    if (w == 0) sum = data[0] + data[1] + data[2];
  });
  EXPECT_EQ(sum, 6);
}

// ------------------------------------- incremental counters under mutation --

struct MutTraits {
  using VertexValue = Int64Value;
  using EdgeValue = NullValue;
  using Message = Int64Value;
};

/// Validates the engine's incremental alive/edge/awake counters against a
/// full recount at the end of every superstep of a mutation-heavy job.
template <typename Traits>
class CounterAuditor : public Engine<Traits>::SuperstepObserver {
 public:
  explicit CounterAuditor(Engine<Traits>* engine) : engine_(engine) {}
  void OnSuperstepEnd(int64_t superstep, const SuperstepStats&) override {
    Status status = engine_->ValidateCountersByFullScan();
    EXPECT_TRUE(status.ok()) << "superstep " << superstep << ": " << status;
    ++audits_;
  }
  int audits() const { return audits_; }

 private:
  Engine<Traits>* engine_;
  int audits_ = 0;
};

TEST(IncrementalCountersTest, MatchFullRecountUnderHeavyMutation) {
  // Every flavor of mutation: vertex removal, vertex creation via messages
  // to unknown ids, edge adds (including to-be-created vertices), edge
  // removals, plus vote-to-halt toggling — audited against a full scan
  // after each superstep.
  struct ChurnComputation : Computation<MutTraits> {
    void Compute(ComputeContext<MutTraits>& ctx, Vertex<MutTraits>& vertex,
                 const std::vector<Int64Value>& messages) override {
      const int64_t step = ctx.superstep();
      const VertexId id = vertex.id();
      if (step == 0) {
        if (id % 3 == 0) ctx.RemoveVertexRequest((id + 1) % 20);
        if (id % 4 == 0) ctx.SendMessage(1000 + id, Int64Value{id});  // spawn
        if (id % 5 == 0) ctx.AddEdgeRequest(id, 2000 + id, NullValue{});
        ctx.SendMessageToAllEdges(vertex, Int64Value{1});
        return;
      }
      if (step == 1) {
        if (id % 2 == 0 && !vertex.edges().empty()) {
          ctx.RemoveEdgeRequest(id, vertex.edges()[0].target);
        }
        for (const auto& m : messages) {
          vertex.set_value(Int64Value{vertex.value().value + m.value});
        }
        return;
      }
      vertex.VoteToHalt();
    }
  };
  Engine<MutTraits>::Options options;
  options.num_workers = 4;
  options.create_missing_vertices = true;
  auto vertices = LoadUnweighted<MutTraits>(
      graph::GenerateRing(20), [](VertexId) { return Int64Value{0}; });
  Engine<MutTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<ChurnComputation>();
  });
  CounterAuditor<MutTraits> auditor(&engine);
  engine.AddObserver(&auditor);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(auditor.audits(), 3);
  // And once more after the run, including the final partial superstep.
  EXPECT_TRUE(engine.ValidateCountersByFullScan().ok());
}

// ------------------------------------------------- partial-superstep stats --

struct HaltTraits {
  using VertexValue = Int64Value;
  using EdgeValue = NullValue;
  using Message = Int64Value;
};

TEST(PartialSuperstepTest, AllHaltedRunRecordsTrailingPartialProfile) {
  struct OneShot : Computation<HaltTraits> {
    void Compute(ComputeContext<HaltTraits>&, Vertex<HaltTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      vertex.VoteToHalt();
    }
  };
  Engine<HaltTraits>::Options options;
  options.num_workers = 2;
  auto vertices = LoadUnweighted<HaltTraits>(
      graph::GenerateRing(6), [](VertexId) { return Int64Value{0}; });
  Engine<HaltTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<OneShot>();
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->termination, TerminationReason::kAllHalted);
  EXPECT_EQ(stats->supersteps, 1);
  // The terminating superstep (mutation + delivery + termination check ran,
  // compute did not) is recorded rather than dropped, flagged partial.
  ASSERT_EQ(stats->report.per_superstep.size(), 2u);
  EXPECT_FALSE(stats->report.per_superstep[0].partial);
  EXPECT_TRUE(stats->report.per_superstep[1].partial);
  EXPECT_GE(stats->report.per_superstep[1].total_seconds, 0.0);
  ASSERT_EQ(stats->per_superstep.size(), 2u);
  EXPECT_GE(stats->per_superstep[1].seconds, 0.0);
}

TEST(PartialSuperstepTest, MasterHaltRecordsTrailingPartialProfile) {
  struct Chatty : Computation<HaltTraits> {
    void Compute(ComputeContext<HaltTraits>& ctx, Vertex<HaltTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      ctx.SendMessageToAllEdges(vertex, Int64Value{1});
    }
  };
  class HaltAtTwo : public MasterCompute {
   public:
    void Compute(MasterContext& ctx) override {
      if (ctx.superstep() == 2) ctx.HaltComputation();
    }
  };
  Engine<HaltTraits>::Options options;
  options.num_workers = 2;
  auto vertices = LoadUnweighted<HaltTraits>(
      graph::GenerateRing(6), [](VertexId) { return Int64Value{0}; });
  Engine<HaltTraits> engine(
      options, std::move(vertices),
      [] { return std::make_unique<Chatty>(); },
      [] { return std::make_unique<HaltAtTwo>(); });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->termination, TerminationReason::kMasterHalted);
  EXPECT_EQ(stats->supersteps, 2);
  ASSERT_EQ(stats->report.per_superstep.size(), 3u);
  EXPECT_TRUE(stats->report.per_superstep[2].partial);
  // The halted superstep ran its master phase; that timing is preserved.
  EXPECT_GE(stats->report.per_superstep[2].master_seconds, 0.0);
}

// ----------------------------------------------------- trace determinism --

TEST(DeterminismTest, SameSeedSameConfigYieldsByteIdenticalTraces) {
  // Graph coloring is seed-dependent (MIS lottery uses ctx.rng()), making it
  // the sharpest determinism probe: any divergence in message order,
  // partitioning, or rng streams changes colors and therefore trace bytes.
  auto run = [](InMemoryTraceStore* store) {
    graph::SimpleGraph g = graph::GenerateRegularBipartite(30, 3, 11);
    debug::ConfigurableDebugConfig<algos::GCTraits> config;
    config.set_vertices({0, 7, 19}).set_capture_neighbors(true);
    JobSpec<algos::GCTraits> spec;
    spec.options.job_id = "determinism";
    spec.options.num_workers = 4;
    spec.options.seed = 1234;
    spec.vertices = algos::LoadGraphColoringVertices(g);
    spec.computation = algos::MakeGraphColoringFactory(false);
    spec.master = algos::MakeGraphColoringMasterFactory();
    spec.debug_config = &config;
    spec.trace_store = store;
    auto summary = debug::RunWithGraft(std::move(spec));
    ASSERT_TRUE(summary.ok()) << summary.status();
    ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;
    ASSERT_GT(summary->captures, 0u);
  };
  InMemoryTraceStore store_a;
  InMemoryTraceStore store_b;
  run(&store_a);
  run(&store_b);
  const std::vector<std::string> files_a = store_a.ListFiles("");
  const std::vector<std::string> files_b = store_b.ListFiles("");
  ASSERT_EQ(files_a, files_b);
  ASSERT_FALSE(files_a.empty());
  for (const std::string& file : files_a) {
    auto records_a = store_a.ReadAll(file);
    auto records_b = store_b.ReadAll(file);
    ASSERT_TRUE(records_a.ok());
    ASSERT_TRUE(records_b.ok());
    EXPECT_EQ(records_a.value(), records_b.value())
        << "trace file " << file << " differs between identical runs";
  }
}

TEST(DeterminismTest, CheckpointingIsTransparentToTraces) {
  // Checkpointing must be pure observation: a run that writes checkpoints
  // (to a separate store) produces byte-identical trace files to one that
  // does not. Any leak — rng draws, message reordering, stats pollution —
  // through the checkpoint path shows up here.
  auto run = [](InMemoryTraceStore* store, InMemoryTraceStore* ckpt_store) {
    graph::SimpleGraph g = graph::GenerateRegularBipartite(30, 3, 11);
    debug::ConfigurableDebugConfig<algos::GCTraits> config;
    config.set_vertices({0, 7, 19}).set_capture_neighbors(true);
    JobSpec<algos::GCTraits> spec;
    spec.options.job_id = "determinism";
    spec.options.num_workers = 4;
    spec.options.seed = 1234;
    spec.vertices = algos::LoadGraphColoringVertices(g);
    spec.computation = algos::MakeGraphColoringFactory(false);
    spec.master = algos::MakeGraphColoringMasterFactory();
    spec.debug_config = &config;
    spec.trace_store = store;
    if (ckpt_store != nullptr) {
      spec.checkpoint.interval = 2;
      spec.checkpoint.store = ckpt_store;
    }
    auto summary = debug::RunWithGraft(std::move(spec));
    ASSERT_TRUE(summary.ok()) << summary.status();
    ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;
  };
  InMemoryTraceStore plain_store;
  InMemoryTraceStore ckpt_traces, ckpts;
  run(&plain_store, nullptr);
  run(&ckpt_traces, &ckpts);
  ASSERT_FALSE(ckpts.ListFiles("").empty());  // checkpoints actually written
  const std::vector<std::string> files = plain_store.ListFiles("");
  ASSERT_EQ(files, ckpt_traces.ListFiles(""));
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    auto plain = plain_store.ReadAll(file);
    auto checkpointed = ckpt_traces.ReadAll(file);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(checkpointed.ok());
    EXPECT_EQ(plain.value(), checkpointed.value())
        << "trace file " << file << " differs with checkpointing enabled";
  }
}

}  // namespace
}  // namespace pregel
}  // namespace graft
