// Tests for the ddmin bug localizer (DESIGN.md §14): the DdMin kernel, the
// oracle plumbing, convergence on the buggy-twin corpus (smallest-known
// failing subgraphs), probe budgets, progress reporting, and a compiler
// syntax check over the generated whole-job reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "analysis/minimizer.h"
#include "graph/generators.h"
#include "pregel/job.h"
#include "pregel/loader.h"

#include "analysis_corpus/buggy_twins.h"

namespace graft {
namespace analysis {
namespace {

using algos::CCTraits;
using algos::PageRankTraits;
using pregel::DoubleValue;
using pregel::Int64Value;

// ------------------------------------------------------------ DdMin kernel --

std::vector<size_t> Indices(size_t n) {
  std::vector<size_t> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = i;
  return items;
}

bool Contains(const std::vector<size_t>& items, size_t x) {
  return std::find(items.begin(), items.end(), x) != items.end();
}

TEST(DdMinTest, IsolatesASingleCulprit) {
  int calls = 0;
  auto test = [&calls](const std::vector<size_t>& subset) -> Result<bool> {
    ++calls;
    return Contains(subset, 5);
  };
  auto result = minimizer_internal::DdMin(Indices(32), test,
                                          [] { return true; });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, std::vector<size_t>{5});
  EXPECT_GT(calls, 0);
}

TEST(DdMinTest, IsolatesAnInteractingPair) {
  // Fails only when 3 AND 6 are both present — the classic ddmin case where
  // plain bisection cannot descend.
  auto test = [](const std::vector<size_t>& subset) -> Result<bool> {
    return Contains(subset, 3) && Contains(subset, 6);
  };
  auto result =
      minimizer_internal::DdMin(Indices(16), test, [] { return true; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<size_t>{3, 6}));
}

TEST(DdMinTest, SingleItemStaysPut) {
  auto test = [](const std::vector<size_t>&) -> Result<bool> { return true; };
  auto result =
      minimizer_internal::DdMin(Indices(1), test, [] { return true; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<size_t>{0});
}

TEST(DdMinTest, ExhaustedBudgetReturnsBestSoFar) {
  int calls = 0;
  auto test = [&calls](const std::vector<size_t>& subset) -> Result<bool> {
    ++calls;
    return Contains(subset, 5);
  };
  auto result = minimizer_internal::DdMin(Indices(32), test,
                                          [] { return false; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 32u);  // never probed, never shrunk
  EXPECT_EQ(calls, 0);
}

TEST(DdMinTest, TestErrorsPropagate) {
  auto test = [](const std::vector<size_t>&) -> Result<bool> {
    return Status::Internal("probe exploded");
  };
  auto result =
      minimizer_internal::DdMin(Indices(8), test, [] { return true; });
  EXPECT_FALSE(result.ok());
}

// ----------------------------------------------------------------- oracles --

TEST(OracleKindTest, NamesRoundTrip) {
  for (OracleKind kind : {OracleKind::kPredicate, OracleKind::kSanitizer,
                          OracleKind::kFailure}) {
    auto parsed = ParseOracleKind(OracleKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseOracleKind("coin-flip").status().IsInvalidArgument());
}

// ------------------------------------------------------------- job fixtures --

/// Skeleton (graph-free) spec for the kSendAfterHalt PageRank twin. The cap
/// matters: the twin's ghost activations never converge on their own.
pregel::JobSpec<PageRankTraits> SendAfterHaltSkeleton() {
  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = 2;
  spec.options.max_supersteps = 4;
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MessageAfterHaltPageRank>(2);
  };
  return spec;
}

/// Skeleton spec for the kMutationAfterHalt connected-components twin.
pregel::JobSpec<CCTraits> MutationAfterHaltSkeleton() {
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.max_supersteps = 32;
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MutationAfterHaltCC>();
  };
  return spec;
}

debug::JobCodegenBinding CCTwinBinding() {
  debug::JobCodegenBinding binding;
  binding.traits_type = "graft::algos::CCTraits";
  binding.includes = {"analysis_corpus/buggy_twins.h"};
  binding.computation_factory =
      "[] { return "
      "std::make_unique<graft::analysis_corpus::MutationAfterHaltCC>(); }";
  return binding;
}

debug::JobCodegenBinding PageRankTwinBinding() {
  debug::JobCodegenBinding binding;
  binding.traits_type = "graft::algos::PageRankTraits";
  binding.includes = {"analysis_corpus/buggy_twins.h"};
  binding.computation_factory =
      "[] { return std::make_unique<"
      "graft::analysis_corpus::MessageAfterHaltPageRank>(2); }";
  return binding;
}

// Printed so EXPERIMENTS.md's probe-count table can be refreshed from a test
// run instead of hand-tracked numbers.
void PrintReportLine(const char* label, const MinimizerReport& r) {
  std::cerr << "[minimizer] " << label << ": " << r.initial_vertices << "v/"
            << r.initial_edges << "e -> " << r.final_vertices << "v/"
            << r.final_edges << "e cap=" << r.superstep_cap
            << " probes=" << r.probes << " failing=" << r.failing_probes
            << " wall=" << r.wall_seconds << "s\n";
}

// -------------------------------------------------- corpus convergence (a) --

TEST(JobMinimizerTest, ShrinksSendAfterHaltToOneEdge) {
  auto vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph::GenerateRing(8), [](VertexId) { return DoubleValue{0.0}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kSanitizer;
  options.finding_kind = FindingKind::kSendAfterHalt;
  JobMinimizer<PageRankTraits> minimizer(
      [] { return SendAfterHaltSkeleton(); }, std::move(vertices), options);

  std::vector<std::string> phases;
  minimizer.set_progress([&phases](const MinimizerProgress& p) {
    if (phases.empty() || phases.back() != p.phase) phases.push_back(p.phase);
  });

  auto report = minimizer.Run(PageRankTwinBinding());
  ASSERT_TRUE(report.ok()) << report.status();
  PrintReportLine("send-after-halt", *report);
  EXPECT_TRUE(report->reproduced);
  EXPECT_EQ(report->oracle, "sanitizer");
  EXPECT_EQ(report->oracle_detail, FindingKindName(FindingKind::kSendAfterHalt));
  EXPECT_EQ(report->initial_vertices, 8u);
  EXPECT_EQ(report->initial_edges, 16u);  // undirected ring
  // The minimal witness is one halting vertex that still has somewhere to
  // send: two vertices, one edge.
  EXPECT_LE(report->final_vertices, 2u);
  EXPECT_GE(report->final_vertices, 1u);
  EXPECT_EQ(report->final_edges, 1u);
  EXPECT_EQ(report->subgraph.size(), report->final_vertices);
  // The halt vote lands at superstep 2, so 3 supersteps suffice — bisection
  // must find a cap strictly below the uncapped 4.
  EXPECT_GE(report->superstep_cap, 2);
  EXPECT_LE(report->superstep_cap, 4);
  EXPECT_GT(report->probes, 1);
  EXPECT_GT(report->failing_probes, 0);
  EXPECT_FALSE(report->probe_budget_exhausted);
  EXPECT_GE(report->wall_seconds, 0.0);
  EXPECT_FALSE(report->reproducer_code.empty());

  // Phase order: every phase appears, "done" last.
  const std::vector<std::string> expected = {
      "initial", "bisect", "ddmin-vertices", "ddmin-edges", "codegen", "done"};
  for (const std::string& want : expected) {
    EXPECT_NE(std::find(phases.begin(), phases.end(), want), phases.end())
        << "missing phase " << want;
  }
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.back(), "done");
}

// -------------------------------------------------- corpus convergence (d) --

TEST(JobMinimizerTest, ShrinksMutationAfterHaltToOneVertex) {
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(6), [](VertexId) { return Int64Value{0}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kSanitizer;
  options.finding_kind = FindingKind::kMutationAfterHalt;
  JobMinimizer<CCTraits> minimizer([] { return MutationAfterHaltSkeleton(); },
                                   std::move(vertices), options);
  auto report = minimizer.Run(CCTwinBinding());
  ASSERT_TRUE(report.ok()) << report.status();
  PrintReportLine("mutation-after-halt", *report);
  EXPECT_TRUE(report->reproduced);
  // A lone vertex already reproduces: superstep 0 improves, superstep 1
  // votes to halt and then writes its value back.
  EXPECT_EQ(report->final_vertices, 1u);
  EXPECT_EQ(report->final_edges, 0u);
  ASSERT_EQ(report->subgraph.size(), 1u);
  EXPECT_TRUE(report->subgraph[0].edges.empty());
}

// -------------------------------------------------------- predicate oracle --

TEST(JobMinimizerTest, PredicateOracleShrinksToThePredicatedVertex) {
  // Healthy CC; the "bug" is the breakpoint firing — localize which part of
  // the graph makes `value == 0` reachable past superstep 0.
  pregel::JobSpec<CCTraits> skeleton;
  skeleton.options.num_workers = 2;
  skeleton.computation = algos::MakeConnectedComponentsFactory();
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(8), [](VertexId id) { return Int64Value{id}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kPredicate;
  options.predicate = "value == 0 && superstep >= 1";
  JobMinimizer<CCTraits> minimizer([skeleton] { return skeleton; },
                                   std::move(vertices), options);
  debug::JobCodegenBinding binding;
  binding.traits_type = "graft::algos::CCTraits";
  binding.includes = {"algos/connected_components.h"};
  binding.computation_factory =
      "graft::algos::MakeConnectedComponentsFactory()";
  auto report = minimizer.Run(binding);
  ASSERT_TRUE(report.ok()) << report.status();
  PrintReportLine("predicate value==0", *report);
  EXPECT_TRUE(report->reproduced);
  EXPECT_EQ(report->oracle, "predicate");
  EXPECT_EQ(report->oracle_detail, "value == 0 && superstep >= 1");
  // Only vertex 0 ever carries component id 0, and it needs one neighbor's
  // message to wake it past superstep 0: the minimal witness is vertex 0 plus
  // a single in-edge.
  ASSERT_EQ(report->final_vertices, 2u);
  EXPECT_EQ(report->final_edges, 1u);
  bool has_vertex_zero = false;
  for (const auto& v : report->subgraph) has_vertex_zero |= (v.id == 0);
  EXPECT_TRUE(has_vertex_zero);
  // The reproducer re-arms the breakpoint and asserts it stays silent.
  EXPECT_NE(report->reproducer_code.find("spec.analysis.breakpoint"),
            std::string::npos);
  EXPECT_NE(report->reproducer_code.find("breakpoint_hits"),
            std::string::npos);
  EXPECT_NE(report->reproducer_code.find("ConfigurableDebugConfig"),
            std::string::npos);
}

TEST(JobMinimizerTest, PredicateOracleRequiresAPredicate) {
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(4), [](VertexId id) { return Int64Value{id}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kPredicate;  // options.predicate left empty
  pregel::JobSpec<CCTraits> skeleton;
  skeleton.computation = algos::MakeConnectedComponentsFactory();
  JobMinimizer<CCTraits> minimizer([skeleton] { return skeleton; },
                                   std::move(vertices), options);
  auto report = minimizer.Run(debug::JobCodegenBinding{});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

// ----------------------------------------------- non-reproduction / budget --

TEST(JobMinimizerTest, HealthyJobReportsNotReproduced) {
  pregel::JobSpec<CCTraits> skeleton;
  skeleton.computation = algos::MakeConnectedComponentsFactory();
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(6), [](VertexId id) { return Int64Value{id}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kFailure;  // healthy CC never fails
  JobMinimizer<CCTraits> minimizer([skeleton] { return skeleton; },
                                   std::move(vertices), options);
  auto report = minimizer.Run(debug::JobCodegenBinding{});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->reproduced);
  EXPECT_EQ(report->probes, 1);
  EXPECT_EQ(report->failing_probes, 0);
  EXPECT_EQ(report->final_vertices, 0u);
  EXPECT_TRUE(report->reproducer_code.empty());
}

TEST(JobMinimizerTest, ProbeBudgetBoundsTheSearch) {
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(6), [](VertexId) { return Int64Value{0}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kSanitizer;
  options.max_probes = 1;  // the initial probe eats the whole budget
  JobMinimizer<CCTraits> minimizer([] { return MutationAfterHaltSkeleton(); },
                                   std::move(vertices), options);
  auto report = minimizer.Run(CCTwinBinding());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->reproduced);
  EXPECT_TRUE(report->probe_budget_exhausted);
  // Best-so-far: nothing was shrunk, but the report is still well-formed.
  EXPECT_EQ(report->final_vertices, report->initial_vertices);
  EXPECT_EQ(report->probes, 1);
  EXPECT_FALSE(report->reproducer_code.empty());
}

// ------------------------------------------------------------ report JSON --

TEST(JobMinimizerTest, ReportJsonCarriesTheSubgraph) {
  auto vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(6), [](VertexId) { return Int64Value{0}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kSanitizer;
  options.finding_kind = FindingKind::kMutationAfterHalt;
  JobMinimizer<CCTraits> minimizer([] { return MutationAfterHaltSkeleton(); },
                                   std::move(vertices), options);
  auto report = minimizer.Run(CCTwinBinding());
  ASSERT_TRUE(report.ok());
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"reproduced\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"oracle\":\"sanitizer\""), std::string::npos);
  EXPECT_NE(json.find("\"final_vertices\":1"), std::string::npos);
  EXPECT_NE(json.find("\"subgraph\":["), std::string::npos);
  EXPECT_NE(json.find("\"has_reproducer\":true"), std::string::npos);
}

// ----------------------------------------------- generated reproducer code --

/// The §3.3 promise, extended to whole jobs: the reproducer the minimizer
/// hands back must pass a real compiler front-end against this repository's
/// headers (and it asserts the bug's ABSENCE, so it fails while the bug
/// lives — a ready-made regression test).
TEST(JobMinimizerTest, ReproducerCompiles) {
  auto vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph::GenerateRing(8), [](VertexId) { return DoubleValue{0.0}; });
  MinimizerOptions options;
  options.oracle = OracleKind::kSanitizer;
  options.finding_kind = FindingKind::kSendAfterHalt;
  JobMinimizer<PageRankTraits> minimizer(
      [] { return SendAfterHaltSkeleton(); }, std::move(vertices), options);
  auto report = minimizer.Run(PageRankTwinBinding());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->reproduced);
  const std::string& code = report->reproducer_code;
  EXPECT_NE(code.find("spec.sanitizer.enabled = true;"), std::string::npos)
      << code;
  EXPECT_NE(code.find("EXPECT_EQ(summary->analysis_findings, 0u)"),
            std::string::npos);
  EXPECT_NE(code.find("spec.vertices.push_back"), std::string::npos);

  std::string path = ::testing::TempDir() + "/graft_minimized_repro.cc";
  std::ofstream out(path);
  out << code;
  out.close();
  std::string command = "g++ -std=c++20 -fsyntax-only -I" +
                        std::string(GRAFT_SOURCE_DIR) + "/src -I" +
                        std::string(GRAFT_SOURCE_DIR) + "/tests -I" +
                        std::string(GRAFT_GTEST_INCLUDE_DIR) + " " + path +
                        " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string compiler_output;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    compiler_output += buffer;
  }
  int rc = pclose(pipe);
  EXPECT_EQ(rc, 0) << "generated reproducer failed to compile:\n"
                   << compiler_output << "\n--- generated code ---\n" << code;
}

}  // namespace
}  // namespace analysis
}  // namespace graft
