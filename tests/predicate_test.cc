// Tests for the predicate breakpoint DSL (DESIGN.md §14): compile/eval
// semantics, the error table shared with bsp_lint's predicate-dsl rule,
// trace-derived inputs, the DebugSession Select filter, and the conditional
// breakpoint wired through RunJob.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "analysis/predicate.h"
#include "debug/debug_config.h"
#include "debug/debug_session.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace analysis {
namespace {

using algos::CCTraits;
using algos::PageRankTraits;
using pregel::DoubleValue;
using pregel::Int64Value;

PredicateInput Input() {
  PredicateInput input;
  input.value = 2.5;
  input.value_before = 4.0;
  input.superstep = 5;
  input.vertex_id = 42;
  input.out_degree = 3;
  input.in_degree = 7;
  input.halted = false;
  input.has_exception = true;
  input.violations = 1;
  input.worker = 2;
  return input;
}

bool Matches(const std::string& text, const PredicateInput& input) {
  auto compiled = Predicate::Compile(text);
  EXPECT_TRUE(compiled.ok()) << text << ": " << compiled.status();
  return compiled.ok() && compiled->Eval(input);
}

// ------------------------------------------------------------- evaluation --

TEST(PredicateTest, EvaluatesEveryVariable) {
  const PredicateInput input = Input();
  EXPECT_TRUE(Matches("value == 2.5", input));
  EXPECT_TRUE(Matches("value_before == 4", input));
  EXPECT_TRUE(Matches("superstep == 5", input));
  EXPECT_TRUE(Matches("id == 42", input));
  EXPECT_TRUE(Matches("out_degree == 3", input));
  EXPECT_TRUE(Matches("in_degree == 7", input));
  EXPECT_TRUE(Matches("!halted", input));
  EXPECT_TRUE(Matches("has_exception", input));
  EXPECT_TRUE(Matches("violations >= 1", input));
  EXPECT_TRUE(Matches("worker == 2", input));
}

TEST(PredicateTest, ArithmeticAndPrecedence) {
  const PredicateInput input = Input();
  // * binds tighter than +, comparisons tighter than &&, && tighter than ||.
  EXPECT_TRUE(Matches("value_before - value == 1.5", input));
  EXPECT_TRUE(Matches("1 + 2 * 3 == 7", input));
  EXPECT_TRUE(Matches("(1 + 2) * 3 == 9", input));
  EXPECT_TRUE(Matches("7 % 4 == 3", input));
  EXPECT_TRUE(Matches("-value == -2.5", input));
  EXPECT_TRUE(Matches("superstep > 10 || in_degree * 2 >= 14", input));
  EXPECT_TRUE(Matches("halted || !halted && superstep == 5", input));
  EXPECT_FALSE(Matches("superstep > 10 && in_degree >= 2", input));
  EXPECT_TRUE(Matches("value != 0 && value_before != 0", input));
  EXPECT_TRUE(Matches("true != false", input));
}

TEST(PredicateTest, ExampleFromTheIssue) {
  PredicateInput input = Input();
  EXPECT_FALSE(Matches("value < 0 && superstep > 3 && in_degree >= 2", input));
  input.value = -0.25;
  EXPECT_TRUE(Matches("value < 0 && superstep > 3 && in_degree >= 2", input));
}

TEST(PredicateTest, AggregatorLookups) {
  std::map<std::string, pregel::AggValue> aggs;
  aggs["pr.delta"] = pregel::AggValue{0.125};
  aggs["count"] = pregel::AggValue{int64_t{9}};
  aggs["flag"] = pregel::AggValue{true};
  aggs["label"] = pregel::AggValue{std::string("text")};
  PredicateInput input = Input();
  input.aggregators = &aggs;
  EXPECT_TRUE(Matches("agg(\"pr.delta\") == 0.125", input));
  EXPECT_TRUE(Matches("agg(\"count\") % 2 == 1", input));
  EXPECT_TRUE(Matches("agg(\"flag\") == 1", input));
  // Text aggregators and missing names are NaN: ordered comparisons and ==
  // are false, != is true ("is not N" includes "has no value").
  EXPECT_FALSE(Matches("agg(\"label\") == 0", input));
  EXPECT_FALSE(Matches("agg(\"label\") <= 1e300", input));
  EXPECT_FALSE(Matches("agg(\"ghost\") == agg(\"ghost\")", input));
  EXPECT_TRUE(Matches("agg(\"ghost\") != 7", input));
  // No aggregator map at all behaves like every name missing.
  input.aggregators = nullptr;
  EXPECT_FALSE(Matches("agg(\"count\") == 9", input));
}

TEST(PredicateTest, NanValueNeverMatchesComparisons) {
  PredicateInput input;  // defaults: value/value_before NaN
  EXPECT_FALSE(Matches("value < 0", input));
  EXPECT_FALSE(Matches("value >= 0", input));
  EXPECT_FALSE(Matches("value == value", input));
  EXPECT_TRUE(Matches("value != value", input));
}

TEST(PredicateTest, EmptyPredicateMatchesNothing) {
  Predicate empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.Eval(Input()));
  EXPECT_EQ(empty.uses(), 0u);
}

TEST(PredicateTest, DeepButLegalNestingParses) {
  std::string text(kMaxPredicateDepth - 2, '(');
  text += "true";
  text += std::string(kMaxPredicateDepth - 2, ')');
  auto compiled = Predicate::Compile(text);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_TRUE(compiled->Eval(Input()));
}

// ------------------------------------------------------------ error table --

TEST(PredicateTest, CompileErrorTable) {
  struct Case {
    const char* text;
    const char* want;  // substring of the error message
  };
  const Case kCases[] = {
      {"", "expected a value"},
      {"value = 0", "bad token '=' (use '==')"},
      {"value & 1", "bad token '&'"},
      {"value | 1", "bad token '|'"},
      {"value @ 1", "bad token '@'"},
      {"halted < 3", "type mismatch: '<' applied to bool and number"},
      {"value && true", "type mismatch: '&&' applied to number and bool"},
      {"true + 1", "type mismatch: '+' applied to bool and number"},
      {"value == halted", "type mismatch: '==' applied to number and bool"},
      {"!value", "type mismatch: '!' applied to number"},
      {"-halted == 0", "type mismatch: unary '-' applied to bool"},
      {"vertex_degree > 2", "unknown variable 'vertex_degree'"},
      {"value < 0 extra", "trailing input"},
      {"(value < 0", "expected ')'"},
      {"value <", "expected a value"},
      {"agg superstep", "expected '(' after 'agg'"},
      {"agg(delta) > 0", "expected a quoted aggregator name"},
      {"agg(\"delta\" > 0", "expected ')' after agg name"},
      {"agg(\"unterminated > 0", "unterminated string"},
      {"value + 1", "expression is a number, not a condition"},
      {"3.25", "expression is a number, not a condition"},
      {"1.2.3 > 0", "bad number literal"},
  };
  for (const Case& c : kCases) {
    Status status = Predicate::Validate(c.text);
    ASSERT_FALSE(status.ok()) << "'" << c.text << "' unexpectedly compiled";
    EXPECT_TRUE(status.IsInvalidArgument()) << c.text;
    EXPECT_NE(status.ToString().find(c.want), std::string::npos)
        << "'" << c.text << "': got \"" << status.ToString() << "\", want \""
        << c.want << "\"";
  }
}

TEST(PredicateTest, ErrorMessagesCarryTheOffset) {
  Status status = Predicate::Validate("value = 0");
  EXPECT_NE(status.ToString().find("offset 6"), std::string::npos)
      << status.ToString();
}

TEST(PredicateTest, NestingBeyondTheLimitIsRejected) {
  std::string text(kMaxPredicateDepth + 1, '(');
  text += "true";
  text += std::string(kMaxPredicateDepth + 1, ')');
  Status status = Predicate::Validate(text);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("nesting deeper than"), std::string::npos);
}

// --------------------------------------------------------- uses / support --

TEST(PredicateTest, UsesReportsExactlyTheReadVariables) {
  auto compiled =
      Predicate::Compile("value < 0 && superstep > 3 && agg(\"d\") != 0");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->Uses(kPredValue));
  EXPECT_TRUE(compiled->Uses(kPredSuperstep));
  EXPECT_TRUE(compiled->Uses(kPredAggregator));
  EXPECT_FALSE(compiled->Uses(kPredHalted));
  EXPECT_FALSE(compiled->Uses(kPredValueBefore));
  EXPECT_EQ(compiled->text(), "value < 0 && superstep > 3 && agg(\"d\") != 0");
}

TEST(PredicateTest, CheckInputSupportRejectsValueOverNonNumericTypes) {
  auto needs_value = Predicate::Compile("value_before > 0");
  ASSERT_TRUE(needs_value.ok());
  EXPECT_TRUE(needs_value->CheckInputSupport(true).ok());
  Status status = needs_value->CheckInputSupport(false);
  EXPECT_TRUE(status.IsInvalidArgument());
  auto no_value = Predicate::Compile("superstep > 0 && !halted");
  ASSERT_TRUE(no_value.ok());
  EXPECT_TRUE(no_value->CheckInputSupport(false).ok());
}

TEST(PredicateTest, NumericValueTraitDetection) {
  static_assert(kHasNumericVertexValue<PageRankTraits>);
  static_assert(kHasNumericVertexValue<CCTraits>);
  EXPECT_TRUE(std::isnan(NumericValueOf(pregel::NullValue{})));
  EXPECT_EQ(NumericValueOf(Int64Value{7}), 7.0);
  EXPECT_EQ(NumericValueOf(DoubleValue{0.5}), 0.5);
}

// ------------------------------------------------------------ from traces --

TEST(PredicateTest, PredicateInputFromTraceMapsEveryField) {
  debug::VertexTrace<CCTraits> trace;
  trace.superstep = 3;
  trace.id = 11;
  trace.value_before = Int64Value{20};
  trace.value_after = Int64Value{10};
  trace.edges.push_back({12, {}});
  trace.edges.push_back({13, {}});
  trace.incoming.push_back(Int64Value{1});
  trace.halted_after = true;
  trace.aggregators["cc.done"] = pregel::AggValue{int64_t{1}};
  trace.violations.push_back(debug::ViolationInfo{
      debug::ViolationInfo::Kind::kMessageValue, 11, 12, "detail"});
  PredicateInput input = PredicateInputFromTrace<CCTraits>(trace, 4);
  EXPECT_EQ(input.value, 10.0);
  EXPECT_EQ(input.value_before, 20.0);
  EXPECT_EQ(input.superstep, 3);
  EXPECT_EQ(input.vertex_id, 11);
  EXPECT_EQ(input.out_degree, 2);
  EXPECT_EQ(input.in_degree, 1);
  EXPECT_TRUE(input.halted);
  EXPECT_FALSE(input.has_exception);
  EXPECT_EQ(input.violations, 1);
  EXPECT_EQ(input.worker, 4);
  auto compiled = Predicate::Compile(
      "value_before - value == 10 && halted && agg(\"cc.done\") == 1");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->Eval(input));
}

// ----------------------------------------------- breakpoints through jobs --

pregel::JobSpec<CCTraits> RingCCSpec(const std::string& job_id,
                                     const debug::DebugConfig<CCTraits>* config,
                                     InMemoryTraceStore* store) {
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = job_id;
  spec.options.num_workers = 2;
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(8), [](VertexId id) { return Int64Value{id}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = config;
  spec.trace_store = store;
  return spec;
}

TEST(BreakpointTest, ArmedPredicateCapturesMatchingCalls) {
  debug::ConfigurableDebugConfig<CCTraits> config;  // exceptions-only floor
  InMemoryTraceStore store;
  auto spec = RingCCSpec("bp-armed", &config, &store);
  // CC on a ring converges every vertex to component id 0.
  spec.analysis.breakpoint = "value == 0 && superstep >= 1";
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_GT(summary->breakpoint_hits, 0u);

  auto session = debug::DebugSession<CCTraits>::Open(&store, "bp-armed");
  ASSERT_TRUE(session.ok()) << session.status();
  debug::TraceQuery hits;
  hits.reason_mask = debug::kReasonBreakpoint;
  auto traces = session->Select(hits);
  ASSERT_TRUE(traces.ok()) << traces.status();
  ASSERT_EQ(traces->size(), summary->breakpoint_hits);
  for (const auto& trace : *traces) {
    EXPECT_NE(trace.reasons & debug::kReasonBreakpoint, 0u);
    EXPECT_EQ(trace.value_after, Int64Value{0});
    EXPECT_GE(trace.superstep, 1);
  }
}

TEST(BreakpointTest, UnarmedJobCountsNothing) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  InMemoryTraceStore store;
  auto summary = pregel::RunJob(RingCCSpec("bp-off", &config, &store));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->breakpoint_hits, 0u);
}

TEST(BreakpointTest, NeverMatchingPredicateCapturesNothing) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  InMemoryTraceStore store;
  auto spec = RingCCSpec("bp-miss", &config, &store);
  spec.analysis.breakpoint = "value < -1";  // CC values are vertex ids >= 0
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->breakpoint_hits, 0u);
}

TEST(BreakpointTest, BadPredicateIsASpecError) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  InMemoryTraceStore store;
  auto spec = RingCCSpec("bp-bad", &config, &store);
  spec.analysis.breakpoint = "value = 0";
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_FALSE(summary.ok());
  EXPECT_TRUE(summary.status().IsInvalidArgument());
}

TEST(BreakpointTest, BreakpointWithoutDebugConfigIsRejected) {
  pregel::JobSpec<CCTraits> spec = RingCCSpec("bp-naked", nullptr, nullptr);
  spec.analysis.breakpoint = "superstep > 0";
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_FALSE(summary.ok());
  EXPECT_TRUE(summary.status().IsInvalidArgument());
  EXPECT_NE(summary.status().ToString().find("debug_config"),
            std::string::npos);
}

// ------------------------------------------------- Select with predicates --

TEST(SelectPredicateTest, FiltersTracesByCompiledPredicate) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_capture_all_active(true);
  InMemoryTraceStore store;
  auto summary = pregel::RunJob(RingCCSpec("bp-select", &config, &store));
  ASSERT_TRUE(summary.ok()) << summary.status();

  auto session = debug::DebugSession<CCTraits>::Open(&store, "bp-select");
  ASSERT_TRUE(session.ok()) << session.status();
  debug::TraceQuery all;
  auto everything = session->Select(all);
  ASSERT_TRUE(everything.ok());
  ASSERT_GT(everything->size(), 0u);

  auto compiled = Predicate::Compile("superstep == 0 && id % 2 == 0");
  ASSERT_TRUE(compiled.ok());
  debug::TraceQuery filtered;
  filtered.predicate =
      std::make_shared<const Predicate>(*std::move(compiled));
  auto matches = session->Select(filtered);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 4u);  // vertices 0,2,4,6 at superstep 0
  for (const auto& trace : *matches) {
    EXPECT_EQ(trace.superstep, 0);
    EXPECT_EQ(trace.id % 2, 0);
  }
  EXPECT_LT(matches->size(), everything->size());
}

}  // namespace
}  // namespace analysis
}  // namespace graft
