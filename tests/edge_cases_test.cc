// Edge-case tests: degenerate graphs, self-messages, empty jobs, and other
// boundary conditions of the engine and the debugger.
#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "debug/debug_runner.h"
#include "debug/trace_reader.h"
#include "graph/generators.h"
#include "graph/graph_text.h"
#include "io/trace_store.h"
#include "pregel/engine.h"
#include "pregel/loader.h"

namespace graft {
namespace {

using algos::CCTraits;
using pregel::Int64Value;
using pregel::NullValue;

struct EdgeTraits {
  using VertexValue = Int64Value;
  using EdgeValue = NullValue;
  using Message = Int64Value;
};

TEST(EngineEdgeCases, EmptyGraphTerminatesImmediately) {
  pregel::Engine<EdgeTraits>::Options options;
  pregel::Engine<EdgeTraits> engine(options, {}, [] {
    struct Noop : pregel::Computation<EdgeTraits> {
      void Compute(pregel::ComputeContext<EdgeTraits>&,
                   pregel::Vertex<EdgeTraits>& v,
                   const std::vector<Int64Value>&) override {
        v.VoteToHalt();
      }
    };
    return std::make_unique<Noop>();
  });
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 0);
  EXPECT_EQ(stats->termination, pregel::TerminationReason::kAllHalted);
  EXPECT_EQ(engine.NumAliveVertices(), 0u);
}

TEST(EngineEdgeCases, SingleVertexNoEdges) {
  struct CountOnce : pregel::Computation<EdgeTraits> {
    void Compute(pregel::ComputeContext<EdgeTraits>& ctx,
                 pregel::Vertex<EdgeTraits>& v,
                 const std::vector<Int64Value>&) override {
      v.set_value(Int64Value{ctx.superstep() + 1});
      v.VoteToHalt();
    }
  };
  std::vector<pregel::Vertex<EdgeTraits>> vertices;
  vertices.emplace_back(42, Int64Value{0},
                        std::vector<pregel::Edge<NullValue>>{});
  pregel::Engine<EdgeTraits>::Options options;
  pregel::Engine<EdgeTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<CountOnce>();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.FindVertex(42).value()->value().value, 1);
}

TEST(EngineEdgeCases, SelfMessageDeliveredNextSuperstep) {
  struct SelfPing : pregel::Computation<EdgeTraits> {
    void Compute(pregel::ComputeContext<EdgeTraits>& ctx,
                 pregel::Vertex<EdgeTraits>& v,
                 const std::vector<Int64Value>& messages) override {
      if (ctx.superstep() == 0) {
        ctx.SendMessage(v.id(), Int64Value{99});
      } else {
        ASSERT_EQ(messages.size(), 1u);
        v.set_value(messages[0]);
      }
      v.VoteToHalt();
    }
  };
  std::vector<pregel::Vertex<EdgeTraits>> vertices;
  vertices.emplace_back(7, Int64Value{0},
                        std::vector<pregel::Edge<NullValue>>{});
  pregel::Engine<EdgeTraits>::Options options;
  pregel::Engine<EdgeTraits> engine(options, std::move(vertices), [] {
    return std::make_unique<SelfPing>();
  });
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.FindVertex(7).value()->value().value, 99);
}

TEST(EngineEdgeCases, MoreWorkersThanVertices) {
  auto graph = graph::GenerateRing(3);
  auto result = algos::RunConnectedComponents(graph, /*num_workers=*/8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 1);
}

TEST(DebugEdgeCases, CaptureTargetsMissingFromGraphAreIgnored) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({12345});  // not in the graph
  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "missing-target";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(5), [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_EQ(summary->captures, 0u);
}

TEST(DebugEdgeCases, ZeroMaxCapturesCapturesNothing) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_capture_all_active(true).set_max_captures(0);
  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "zero-cap";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(5), [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_EQ(summary->captures, 0u);
  EXPECT_GT(summary->dropped_by_capture_limit, 0u);
}

TEST(DebugEdgeCases, ReadTraceFromWrongSuperstepIsNotFound) {
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({0});
  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "wrong-ss";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(5), [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  ASSERT_TRUE(debug::RunWithGraft(std::move(spec)).ok());
  EXPECT_TRUE(debug::ReadVertexTrace<CCTraits>(store, "wrong-ss", 500, 0)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(debug::ReadVertexTrace<CCTraits>(store, "wrong-ss", 0, 3)
                  .status()
                  .IsNotFound());
}

TEST(GraphTextEdgeCases, NegativeIdsRoundTrip) {
  graph::SimpleGraph g;
  g.AddEdge(-5, -6, 2.0);
  auto parsed = graph::ParseAdjacencyText(graph::WriteAdjacencyText(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->HasEdge(-5, -6));
  EXPECT_EQ(parsed->EdgeWeight(-5, -6).value(), 2.0);
}

TEST(GraphTextEdgeCases, EmptyInputYieldsEmptyGraph) {
  auto parsed = graph::ParseAdjacencyText("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumVertices(), 0u);
}

}  // namespace
}  // namespace graft
