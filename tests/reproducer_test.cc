// Tests for the Reproduce step (§3.3-3.4): trace round-trips, in-process
// replay fidelity across algorithms, master replay, generated test code
// (including a real compiler syntax check), end-to-end test generation, and
// the GUI views.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "algos/connected_components.h"
#include "algos/graph_coloring.h"
#include "algos/random_walk.h"
#include "debug/codegen.h"
#include "debug/debug_runner.h"
#include "debug/end_to_end.h"
#include "debug/reproducer.h"
#include "debug/trace_reader.h"
#include "debug/views/gui_views.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace graft {
namespace debug {
namespace {

using algos::CCTraits;
using algos::GCTraits;
using algos::RWShortTraits;
using pregel::Int64Value;

/// Spec for a debugged graph-coloring run — the workhorse job of this file.
pregel::JobSpec<GCTraits> GCSpec(const graph::SimpleGraph& g, bool buggy,
                                 const DebugConfig<GCTraits>& config,
                                 InMemoryTraceStore* store,
                                 const std::string& job) {
  pregel::JobSpec<GCTraits> spec;
  spec.options.job_id = job;
  spec.vertices = algos::LoadGraphColoringVertices(g);
  spec.computation = algos::MakeGraphColoringFactory(buggy);
  spec.master = algos::MakeGraphColoringMasterFactory();
  spec.debug_config = &config;
  spec.trace_store = store;
  return spec;
}

// ---------------------------------------------------- trace serialization --

VertexTrace<GCTraits> SampleTrace() {
  VertexTrace<GCTraits> trace;
  trace.superstep = 41;
  trace.id = 672;
  trace.reasons = kReasonSpecified | kReasonNeighbor;
  trace.value_before =
      algos::GCVertexValue{-1, algos::GCState::kTentativelyInSet, 2, 0.4};
  trace.edges.push_back({671, {}});
  trace.edges.push_back({673, {}});
  trace.incoming.push_back(
      algos::GCMessage{algos::GCMessageType::kTentative, 671, 0.9});
  trace.aggregators["gc.phase"] =
      pregel::AggValue{std::string("CONFLICT-RESOLUTION")};
  trace.total_vertices = 1'000'000'000;
  trace.total_edges = 3'000'000'000;
  trace.rng_state = 0xfeedULL;
  trace.value_after =
      algos::GCVertexValue{-1, algos::GCState::kInSet, 2, 0.4};
  trace.halted_after = false;
  trace.outgoing.emplace_back(
      671, algos::GCMessage{algos::GCMessageType::kInSet, 672, 0.0});
  trace.aggregations.emplace_back("gc.undecided",
                                  pregel::AggValue{int64_t{1}});
  trace.violations.push_back(ViolationInfo{
      ViolationInfo::Kind::kMessageValue, 672, 671, "detail text"});
  trace.exception =
      ExceptionInfo{"std::runtime_error", "boom", "at vertex 672"};
  return trace;
}

TEST(VertexTraceTest, SerializationRoundTripsEveryField) {
  VertexTrace<GCTraits> trace = SampleTrace();
  std::string record = trace.Serialize();
  auto decoded = VertexTrace<GCTraits>::Deserialize(record);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->superstep, trace.superstep);
  EXPECT_EQ(decoded->id, trace.id);
  EXPECT_EQ(decoded->reasons, trace.reasons);
  EXPECT_EQ(decoded->value_before, trace.value_before);
  EXPECT_EQ(decoded->edges, trace.edges);
  EXPECT_EQ(decoded->incoming, trace.incoming);
  EXPECT_EQ(decoded->aggregators, trace.aggregators);
  EXPECT_EQ(decoded->total_vertices, trace.total_vertices);
  EXPECT_EQ(decoded->total_edges, trace.total_edges);
  EXPECT_EQ(decoded->rng_state, trace.rng_state);
  EXPECT_EQ(decoded->value_after, trace.value_after);
  EXPECT_EQ(decoded->halted_after, trace.halted_after);
  EXPECT_EQ(decoded->outgoing, trace.outgoing);
  EXPECT_EQ(decoded->aggregations, trace.aggregations);
  EXPECT_EQ(decoded->violations, trace.violations);
  ASSERT_TRUE(decoded->exception.has_value());
  EXPECT_EQ(*decoded->exception, *trace.exception);
}

TEST(VertexTraceTest, CorruptRecordIsError) {
  std::string record = SampleTrace().Serialize();
  record.resize(record.size() / 2);
  EXPECT_FALSE(VertexTrace<GCTraits>::Deserialize(record).ok());
  std::string bad_version = record;
  bad_version[0] = 99;
  EXPECT_TRUE(VertexTrace<GCTraits>::Deserialize(bad_version)
                  .status()
                  .IsInvalidArgument());
}

TEST(MasterTraceTest, RoundTripsBothAggregatorMaps) {
  MasterTrace trace;
  trace.superstep = 9;
  trace.total_vertices = 100;
  trace.total_edges = 300;
  trace.aggregators["phase"] = pregel::AggValue{std::string("SELECT")};
  trace.aggregators_after["phase"] =
      pregel::AggValue{std::string("CONFLICT-RESOLUTION")};
  trace.halted = true;
  auto decoded = MasterTrace::Deserialize(trace.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->aggregators.at("phase").AsText(), "SELECT");
  EXPECT_EQ(decoded->aggregators_after.at("phase").AsText(),
            "CONFLICT-RESOLUTION");
  EXPECT_TRUE(decoded->halted);
}

// ------------------------------------------------------- replay fidelity --

/// Property: every captured vertex of a randomized GC run replays exactly.
TEST(ReplayFidelityTest, HoldsForAllCapturesOfARandomizedRun) {
  graph::SimpleGraph g =
      graph::MakeUndirected(graph::GeneratePowerLaw(60, 3, 3));
  ConfigurableDebugConfig<GCTraits> config;
  config.set_capture_all_active(true);
  InMemoryTraceStore store;
  auto spec = GCSpec(g, /*buggy=*/true, config, &store, "fidelity");
  spec.options.num_workers = 3;
  auto summary_or = RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  const DebugRunSummary& summary = *summary_or;
  ASSERT_TRUE(summary.job_status.ok());
  ASSERT_GT(summary.captures, 100u);

  algos::GraphColoringComputation computation(true);
  uint64_t checked = 0;
  for (int64_t s : ListCapturedSupersteps(store, "fidelity")) {
    auto traces = ReadVertexTraces<GCTraits>(store, "fidelity", s);
    ASSERT_TRUE(traces.ok());
    for (const auto& trace : traces.value()) {
      ReplayFidelity fidelity = CheckReplayFidelity(trace, computation);
      ASSERT_TRUE(fidelity.Faithful())
          << "vertex " << trace.id << " superstep " << s << ": "
          << fidelity.mismatch_detail;
      ++checked;
    }
  }
  EXPECT_EQ(checked, summary.captures);
}

TEST(ReplayFidelityTest, DetectsWrongComputation) {
  // Replaying a buggy-run trace through the FIXED computation must diverge
  // for at least one captured vertex (that is the §4.1 diagnosis step).
  // First find a seed whose run actually exercises the buggy branch — i.e.
  // produces a coloring conflict — then assert its traces betray the bug.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    graph::SimpleGraph g =
        graph::MakeUndirected(graph::GeneratePowerLaw(300, 4, seed));
    auto buggy_run = algos::RunGraphColoring(g, /*buggy=*/true, 2, seed);
    ASSERT_TRUE(buggy_run.ok());
    if (algos::FindColoringConflicts(g, buggy_run->color).empty()) continue;

    ConfigurableDebugConfig<GCTraits> config;
    config.set_capture_all_active(true);
    InMemoryTraceStore store;
    auto spec = GCSpec(g, /*buggy=*/true, config, &store, "diverge");
    spec.options.seed = seed;
    auto summary = RunWithGraft(std::move(spec));
    ASSERT_TRUE(summary.ok()) << summary.status();
    ASSERT_TRUE(summary->job_status.ok());
    algos::GraphColoringComputation fixed(false);
    bool diverged = false;
    for (int64_t s : ListCapturedSupersteps(store, "diverge")) {
      auto traces = ReadVertexTraces<GCTraits>(store, "diverge", s);
      ASSERT_TRUE(traces.ok());
      for (const auto& trace : traces.value()) {
        if (!CheckReplayFidelity(trace, fixed).Faithful()) {
          diverged = true;
          break;
        }
      }
      if (diverged) break;
    }
    EXPECT_TRUE(diverged)
        << "run had coloring conflicts but the fixed computation replayed "
           "all captures identically (seed "
        << seed << ")";
    return;
  }
  GTEST_FAIL() << "no seed in 1..10 manifested the injected GC bug";
}

TEST(ReplayFidelityTest, ExceptionTraceReplaysException) {
  struct ThrowOnOddSuperstep : pregel::Computation<CCTraits> {
    void Compute(pregel::ComputeContext<CCTraits>& ctx,
                 pregel::Vertex<CCTraits>& vertex,
                 const std::vector<Int64Value>&) override {
      if (ctx.superstep() % 2 == 1) throw std::runtime_error("odd superstep");
      ctx.SendMessageToAllEdges(vertex, Int64Value{1});
    }
  };
  ConfigurableDebugConfig<CCTraits> config;
  config.set_abort_on_exception(false);
  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "exc-replay";
  spec.options.max_supersteps = 2;
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(4), [](VertexId) { return Int64Value{0}; });
  spec.computation = [] { return std::make_unique<ThrowOnOddSuperstep>(); };
  spec.debug_config = &config;
  spec.trace_store = &store;
  ASSERT_TRUE(RunWithGraft(std::move(spec)).ok());
  auto trace = ReadVertexTrace<CCTraits>(store, "exc-replay", 1, 0);
  ASSERT_TRUE(trace.ok()) << trace.status();
  ASSERT_TRUE(trace->exception.has_value());
  ThrowOnOddSuperstep computation;
  ReplayFidelity fidelity = CheckReplayFidelity(*trace, computation);
  EXPECT_TRUE(fidelity.Faithful()) << fidelity.mismatch_detail;
}

TEST(ReplayFidelityTest, MasterReplayMatchesGCPhases) {
  graph::SimpleGraph g = graph::GenerateComplete(5);
  ConfigurableDebugConfig<GCTraits> config;
  InMemoryTraceStore store;
  ASSERT_TRUE(RunWithGraft(
                  GCSpec(g, /*buggy=*/false, config, &store, "master-replay"))
                  .ok());
  algos::GraphColoringMaster master;
  int checked = 0;
  for (int64_t s : ListCapturedSupersteps(store, "master-replay")) {
    auto trace = ReadMasterTrace(store, "master-replay", s);
    if (!trace.ok()) continue;
    ReplayFidelity fidelity = CheckMasterReplayFidelity(*trace, master);
    EXPECT_TRUE(fidelity.Faithful())
        << "superstep " << s << ": " << fidelity.mismatch_detail;
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

// ---------------------------------------------------------------- codegen --

CodegenBinding GCBinding() {
  CodegenBinding binding;
  binding.traits_type = "graft::algos::GCTraits";
  binding.includes = {"algos/graph_coloring.h"};
  binding.computation_decl =
      "graft::algos::GraphColoringComputation computation(true);";
  binding.test_suite = "GCVertexGraftTest";
  return binding;
}

TEST(CodegenTest, GeneratedCodeContainsTheWholeContext) {
  VertexTrace<GCTraits> trace = SampleTrace();
  trace.exception.reset();  // normal-outcome flavor
  std::string code = GenerateVertexTestCode(trace, GCBinding());
  EXPECT_NE(code.find("TEST(GCVertexGraftTest, ReproduceVertex672Superstep41)"),
            std::string::npos);
  EXPECT_NE(code.find("ctx.set_superstep(41);"), std::string::npos);
  EXPECT_NE(code.find("ctx.set_total_num_vertices(1000000000);"),
            std::string::npos);
  EXPECT_NE(code.find("CONFLICT-RESOLUTION"), std::string::npos);
  EXPECT_NE(code.find("ctx.set_rng_state(0xfeedULL);"), std::string::npos);
  EXPECT_NE(code.find("vertex(672,"), std::string::npos);
  EXPECT_NE(code.find("{671, graft::pregel::NullValue{}}"), std::string::npos);
  EXPECT_NE(code.find("computation.Compute(ctx, vertex, messages);"),
            std::string::npos);
  EXPECT_NE(code.find("EXPECT_EQ(vertex.value(), ("), std::string::npos);
}

TEST(CodegenTest, ExceptionTraceGeneratesExpectThrow) {
  std::string code = GenerateVertexTestCode(SampleTrace(), GCBinding());
  EXPECT_NE(code.find("EXPECT_THROW"), std::string::npos);
}

TEST(CodegenTest, EmptyMessageListGeneratesComment) {
  VertexTrace<GCTraits> trace = SampleTrace();
  trace.incoming.clear();
  trace.exception.reset();
  std::string code = GenerateVertexTestCode(trace, GCBinding());
  EXPECT_NE(code.find("// No incoming messages for this vertex."),
            std::string::npos);
}

TEST(CodegenTest, MasterTestCodeStructure) {
  MasterTrace trace;
  trace.superstep = 12;
  trace.aggregators["gc.phase"] = pregel::AggValue{std::string("UPDATE")};
  trace.aggregators_after["gc.phase"] =
      pregel::AggValue{std::string("SELECT")};
  MasterCodegenBinding binding;
  binding.includes = {"algos/graph_coloring.h"};
  binding.master_decl = "graft::algos::GraphColoringMaster master;";
  binding.test_suite = "GCMasterGraftTest";
  std::string code = GenerateMasterTestCode(trace, binding);
  EXPECT_NE(code.find("ReproduceMasterSuperstep12"), std::string::npos);
  EXPECT_NE(code.find("master.Compute(ctx);"), std::string::npos);
  EXPECT_NE(code.find("EXPECT_FALSE(ctx.IsHalted());"), std::string::npos);
}

/// The strongest check: generated code from a real captured trace passes a
/// real compiler front-end (g++ -fsyntax-only) against this repository's
/// headers — i.e. the artifact the paper's user pastes into their IDE
/// actually builds.
TEST(CodegenTest, GeneratedCodeCompiles) {
  graph::SimpleGraph g = graph::GenerateComplete(6);
  ConfigurableDebugConfig<GCTraits> config;
  config.set_vertices({0, 1});
  InMemoryTraceStore store;
  ASSERT_TRUE(
      RunWithGraft(GCSpec(g, /*buggy=*/true, config, &store, "codegen"))
          .ok());
  auto trace = ReadVertexTrace<GCTraits>(store, "codegen", 1, 0);
  ASSERT_TRUE(trace.ok()) << trace.status();
  std::string code = GenerateVertexTestCode(*trace, GCBinding());

  std::string path = ::testing::TempDir() + "/graft_generated_test.cc";
  std::ofstream out(path);
  out << code;
  out.close();
  std::string command = "g++ -std=c++20 -fsyntax-only -I" +
                        std::string(GRAFT_SOURCE_DIR) + "/src -I" +
                        std::string(GRAFT_GTEST_INCLUDE_DIR) + " " + path +
                        " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string compiler_output;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    compiler_output += buffer;
  }
  int rc = pclose(pipe);
  EXPECT_EQ(rc, 0) << "generated code failed to compile:\n"
                   << compiler_output << "\n--- generated code ---\n" << code;
}

// ------------------------------------------------------------- end-to-end --

TEST(EndToEndGenTest, GeneratesGraphConstructionAndAssertions) {
  graph::SimpleGraph g;
  g.AddUndirectedEdge(1, 2, 2.5);
  g.AddVertex(9);
  EndToEndBinding binding;
  binding.includes = {"algos/connected_components.h"};
  binding.test_suite = "CCEndToEnd";
  binding.test_name = "Small";
  binding.runner_snippet =
      "std::map<graft::VertexId, std::string> final_values;";
  std::string code =
      GenerateEndToEndTest(g, {{1, "1"}, {2, "1"}, {9, "9"}}, binding);
  EXPECT_NE(code.find("graph.AddEdge(1, 2, 2.5);"), std::string::npos);
  EXPECT_NE(code.find("graph.AddVertex(9);"), std::string::npos);
  EXPECT_NE(code.find("EXPECT_EQ(final_values[9], \"9\");"),
            std::string::npos);
  // From-scratch flavor emits TODOs instead.
  std::string scratch = GenerateEndToEndTest(g, {}, binding);
  EXPECT_NE(scratch.find("// TODO: assert"), std::string::npos);
}

// ------------------------------------------------------------------ views --

void RunForViews(const std::string& job, InMemoryTraceStore* store_out) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({2, 5}).set_capture_neighbors(true);
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = job;
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(8), [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = store_out;
  ASSERT_TRUE(RunWithGraft(std::move(spec)).ok());
}

TEST(ViewsTest, NodeLinkViewShowsVerticesAndMessages) {
  InMemoryTraceStore store;
  RunForViews("views", &store);
  GraftGui<CCTraits> gui(&store, "views");
  ASSERT_TRUE(gui.HasCaptures());
  gui.SeekFirst();
  auto view = gui.NodeLinkView();
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find("Node-link View"), std::string::npos);
  EXPECT_NE(view->find("(2)"), std::string::npos);
  EXPECT_NE(view->find("[M] OK"), std::string::npos);
  EXPECT_NE(view->find("reasons=spec"), std::string::npos);
  EXPECT_NE(view->find("out: ->"), std::string::npos);
}

TEST(ViewsTest, TabularViewSearchFilters) {
  InMemoryTraceStore store;
  RunForViews("views2", &store);
  GraftGui<CCTraits> gui(&store, "views2");
  gui.SeekFirst();
  auto all = gui.TabularView();
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all->find("6 vertices"), std::string::npos);  // 2,5 + 4 nbrs
  auto filtered = gui.TabularView("5");
  ASSERT_TRUE(filtered.ok());
  // "5" matches vertex 5 itself plus its neighbors (4 and 6) by nbr-id.
  EXPECT_NE(filtered->find("3 vertices"), std::string::npos);
}

TEST(ViewsTest, SuperstepSteppingClampsAtEnds) {
  InMemoryTraceStore store;
  RunForViews("views3", &store);
  GraftGui<CCTraits> gui(&store, "views3");
  gui.SeekFirst();
  EXPECT_FALSE(gui.PreviousSuperstep());
  int64_t first = gui.current_superstep();
  gui.SeekLast();
  EXPECT_FALSE(gui.NextSuperstep());
  EXPECT_GT(gui.current_superstep(), first);
  EXPECT_TRUE(gui.SeekTo(first).ok());
  EXPECT_TRUE(gui.SeekTo(99999).IsNotFound());
}

TEST(ViewsTest, ViolationsViewListsConstraintHits) {
  InMemoryTraceStore store;
  ConfigurableDebugConfig<CCTraits> config;
  config.set_message_value_constraint(
      [](const Int64Value& m, VertexId, VertexId, int64_t) {
        return m.value >= 3;
      });
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "viol";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(8), [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  ASSERT_TRUE(RunWithGraft(std::move(spec)).ok());
  GraftGui<CCTraits> gui(&store, "viol");
  gui.SeekFirst();
  auto view = gui.ViolationsView();
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find("message-value"), std::string::npos);
  auto snapshot = gui.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->AnyMessageViolation());
  EXPECT_FALSE(snapshot->AnyException());
}

TEST(ViewsTest, DotExportIsWellFormed) {
  InMemoryTraceStore store;
  RunForViews("views4", &store);
  GraftGui<CCTraits> gui(&store, "views4");
  gui.SeekFirst();
  auto dot = gui.DotExport();
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(dot->find("digraph graft {"), 0u);
  EXPECT_NE(dot->find("v2 ["), std::string::npos);
  EXPECT_NE(dot->find("->"), std::string::npos);
  EXPECT_EQ((*dot)[dot->size() - 2], '}');
}

TEST(ViewsTest, JsonExportParsesStructurally) {
  InMemoryTraceStore store;
  RunForViews("views5", &store);
  GraftGui<CCTraits> gui(&store, "views5");
  gui.SeekFirst();
  auto json = gui.JsonExport();
  ASSERT_TRUE(json.ok());
  // Structural sanity: balanced braces/brackets, expected keys present.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : *json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json->find("\"vertices\":["), std::string::npos);
  EXPECT_NE(json->find("\"superstep\":0"), std::string::npos);
}

TEST(ViewsTest, HtmlExportIsWellFormedAndComplete) {
  InMemoryTraceStore store;
  RunForViews("views6", &store);
  GraftGui<CCTraits> gui(&store, "views6");
  gui.SeekFirst();
  auto html = gui.HtmlExport();
  ASSERT_TRUE(html.ok());
  EXPECT_EQ(html->find("<!DOCTYPE html>"), 0u);
  EXPECT_NE(html->find("superstep 0"), std::string::npos);
  EXPECT_NE(html->find("<td>2</td>"), std::string::npos);  // captured vertex
  EXPECT_NE(html->find("</html>"), std::string::npos);
  // Balanced table tags.
  size_t opens = 0, closes = 0, pos = 0;
  while ((pos = html->find("<table>", pos)) != std::string::npos) {
    ++opens;
    ++pos;
  }
  pos = 0;
  while ((pos = html->find("</table>", pos)) != std::string::npos) {
    ++closes;
    ++pos;
  }
  EXPECT_EQ(opens, closes);
}

TEST(TraceReaderTest, VertexHistoryWalksSuperstepsInOrder) {
  InMemoryTraceStore store;
  RunForViews("history", &store);
  auto history = ReadVertexHistory<CCTraits>(store, "history", 2);
  ASSERT_TRUE(history.ok());
  ASSERT_GE(history->size(), 2u);
  for (size_t i = 0; i < history->size(); ++i) {
    EXPECT_EQ((*history)[i].id, 2);
    if (i > 0) {
      EXPECT_GT((*history)[i].superstep, (*history)[i - 1].superstep);
    }
  }
  // Missing vertex yields an empty history, not an error.
  auto none = ReadVertexHistory<CCTraits>(store, "history", 999);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ViewsTest, NodeLinkShowsMasterAggregatorPanel) {
  // A GC job has a master; the view's aggregator panel must show its
  // values (paper Figure 3, upper-right corner).
  graph::SimpleGraph g = graph::GenerateComplete(5);
  ConfigurableDebugConfig<GCTraits> config;
  config.set_vertices({0});
  InMemoryTraceStore store;
  ASSERT_TRUE(
      RunWithGraft(GCSpec(g, /*buggy=*/false, config, &store, "agg-panel"))
          .ok());
  GraftGui<GCTraits> gui(&store, "agg-panel");
  gui.SeekFirst();
  auto view = gui.NodeLinkView();
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find("Aggregators:"), std::string::npos);
  EXPECT_NE(view->find("gc.phase=\"SELECT\""), std::string::npos);
}

TEST(ViewsTest, EmptyJobReportsNoCaptures) {
  InMemoryTraceStore store;
  GraftGui<CCTraits> gui(&store, "ghost");
  EXPECT_FALSE(gui.HasCaptures());
  EXPECT_TRUE(gui.NodeLinkView().status().IsNotFound());
}

}  // namespace
}  // namespace debug
}  // namespace graft
