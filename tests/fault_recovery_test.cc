// Fault-tolerance suite (ISSUE 3 tentpole): deterministic fault injection,
// checkpoint commit/GC mechanics, and the JobRunner recovery loop. The
// acceptance test is PageRankRecoversByteIdentically: a worker crash mid-job
// recovers from the latest committed checkpoint and produces byte-identical
// traces and final vertex values versus a fault-free run of the same spec.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "common/fault_injector.h"
#include "debug/debug_config.h"
#include "debug/debug_runner.h"
#include "graph/generators.h"
#include "io/fault_injecting_trace_store.h"
#include "io/trace_sink.h"
#include "io/trace_store.h"
#include "pregel/checkpoint.h"
#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace {

using algos::CCTraits;
using algos::PageRankTraits;
using pregel::CheckpointMeta;
using pregel::DoubleValue;
using pregel::Int64Value;

// ----------------------------------------------------------- FaultInjector --

TEST(FaultInjectorTest, ArmedPointFiresOnceAtExactSite) {
  FaultInjector injector;
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/3, /*partition=*/1,
                /*hits=*/1});
  injector.set_current_superstep(2);
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kWorkerCompute, 1));
  injector.set_current_superstep(3);
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kWorkerCompute, 0));  // partition
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kDelivery, 1));       // site
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kWorkerCompute, 1));
  // Budget of one hit: the same site does not fire twice.
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kWorkerCompute, 1));
  EXPECT_EQ(injector.fired_count(), 1u);
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].site, FaultSite::kWorkerCompute);
  EXPECT_EQ(injector.events()[0].superstep, 3);
  EXPECT_EQ(injector.events()[0].partition, 1);
}

TEST(FaultInjectorTest, WildcardsMatchAnySuperstepAndPartition) {
  FaultInjector injector;
  injector.Arm({FaultSite::kStoreAppend, /*superstep=*/-1, /*partition=*/-1,
                /*hits=*/2});
  injector.set_current_superstep(0);
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kStoreAppend));
  injector.set_current_superstep(7);
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kStoreAppend, 4));
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kStoreAppend));  // budget spent
  EXPECT_EQ(injector.fired_count(), 2u);
}

TEST(FaultInjectorTest, SeededInjectionIsDeterministic) {
  auto run = [](uint64_t seed) {
    FaultInjector injector;
    injector.ArmSeeded(FaultSite::kDelivery, /*probability=*/0.2, seed,
                       /*budget=*/3);
    std::vector<int> fired_at;
    for (int s = 0; s < 50; ++s) {
      injector.set_current_superstep(s);
      if (injector.ShouldFail(FaultSite::kDelivery, s % 4)) {
        fired_at.push_back(s);
      }
    }
    return fired_at;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_EQ(run(42).size(), 3u);  // budget is exhausted over 50 draws at p=.2
}

TEST(FaultInjectorTest, ResetClearsArmedPointsAndHistory) {
  FaultInjector injector;
  injector.Arm({FaultSite::kStoreFlush, -1, -1, 1});
  injector.set_current_superstep(1);
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kStoreFlush));
  injector.Reset();
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kStoreFlush));
  EXPECT_EQ(injector.fired_count(), 0u);
  EXPECT_TRUE(injector.events().empty());
}

// ------------------------------------------------ FaultInjectingTraceStore --

TEST(FaultInjectingTraceStoreTest, InjectsUnavailableAndPassesThrough) {
  InMemoryTraceStore inner;
  FaultInjector injector;
  FaultInjectingTraceStore store(&inner, &injector);
  ASSERT_TRUE(store.Append("a/file", "rec1").ok());
  injector.Arm({FaultSite::kStoreAppend, -1, -1, 1});
  Status failed = store.Append("a/file", "rec2");
  EXPECT_TRUE(failed.IsUnavailable()) << failed;
  // After the budget is spent the decorator is transparent again.
  ASSERT_TRUE(store.Append("a/file", "rec3").ok());
  auto records = store.ReadAll("a/file");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, (std::vector<std::string>{"rec1", "rec3"}));
  EXPECT_TRUE(store.Exists("a/file"));
  EXPECT_EQ(store.ListFiles("a/").size(), 1u);
}

// ------------------------------------------------------ checkpoint helpers --

TEST(CheckpointTest, MetaRoundtripsThroughSerialize) {
  CheckpointMeta meta;
  meta.superstep = 6;
  meta.num_partitions = 2;
  meta.mode = pregel::CheckpointMode::kDelta;
  meta.topology_epoch = 3;
  meta.pending_messages = 123;
  meta.messages_dropped_at_resume = 4;
  meta.partitions = {{10, 20, 5, /*base_superstep=*/6},
                     {11, 22, 7, /*base_superstep=*/2}};
  meta.aggregators.emplace("pi", pregel::AggValue{3.14});
  meta.aggregators.emplace("phase", pregel::AggValue{std::string("GO")});
  meta.total_messages = 999;
  meta.total_messages_dropped = 8;
  pregel::SuperstepStats ss;
  ss.superstep = 5;
  ss.active_vertices = 40;
  ss.messages_sent = 120;
  ss.seconds = 0.25;
  meta.per_superstep.push_back(ss);

  auto parsed = CheckpointMeta::Parse(meta.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->superstep, 6);
  EXPECT_EQ(parsed->num_partitions, 2);
  EXPECT_EQ(parsed->mode, pregel::CheckpointMode::kDelta);
  EXPECT_EQ(parsed->topology_epoch, 3);
  EXPECT_EQ(parsed->pending_messages, 123u);
  EXPECT_EQ(parsed->messages_dropped_at_resume, 4u);
  ASSERT_EQ(parsed->partitions.size(), 2u);
  EXPECT_EQ(parsed->partitions[1].alive, 11u);
  EXPECT_EQ(parsed->partitions[1].awake, 7u);
  EXPECT_EQ(parsed->partitions[0].base_superstep, 6);
  EXPECT_EQ(parsed->partitions[1].base_superstep, 2);
  EXPECT_EQ(parsed->aggregators.at("pi").AsDouble(), 3.14);
  EXPECT_EQ(parsed->aggregators.at("phase").AsText(), "GO");
  EXPECT_EQ(parsed->total_messages, 999u);
  ASSERT_EQ(parsed->per_superstep.size(), 1u);
  EXPECT_EQ(parsed->per_superstep[0].messages_sent, 120u);
  EXPECT_EQ(parsed->per_superstep[0].seconds, 0.25);
}

TEST(CheckpointTest, OnlyCommittedCheckpointsAreVisible) {
  InMemoryTraceStore store;
  const std::string job = "job";
  // Superstep 2: fully committed. Superstep 4: crash before COMMIT.
  ASSERT_TRUE(store.Append(pregel::CheckpointMetaFile(job, 2), "meta").ok());
  ASSERT_TRUE(store.Append(pregel::CheckpointCommitFile(job, 2), "ok").ok());
  ASSERT_TRUE(store.Append(pregel::CheckpointMetaFile(job, 4), "meta").ok());
  EXPECT_EQ(pregel::ListCommittedCheckpoints(store, job),
            (std::vector<int64_t>{2}));
  auto latest = pregel::LatestCommittedCheckpoint(store, job);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 2);
  EXPECT_FALSE(pregel::LatestCommittedCheckpoint(store, "absent").ok());
}

TEST(CheckpointTest, GarbageCollectionKeepsNewest) {
  InMemoryTraceStore store;
  const std::string job = "job";
  for (int64_t s : {0, 2, 4}) {
    ASSERT_TRUE(
        store.Append(pregel::CheckpointPartFile(job, s, 0), "part").ok());
    ASSERT_TRUE(store.Append(pregel::CheckpointMetaFile(job, s), "meta").ok());
    ASSERT_TRUE(store.Append(pregel::CheckpointCommitFile(job, s), "ok").ok());
  }
  ASSERT_TRUE(pregel::GarbageCollectCheckpoints(store, job, /*keep=*/2).ok());
  EXPECT_EQ(pregel::ListCommittedCheckpoints(store, job),
            (std::vector<int64_t>{2, 4}));
  ASSERT_TRUE(pregel::GarbageCollectCheckpoints(store, job, /*keep=*/1).ok());
  EXPECT_EQ(pregel::ListCommittedCheckpoints(store, job),
            (std::vector<int64_t>{4}));
  EXPECT_FALSE(store.Exists(pregel::CheckpointPartFile(job, 2, 0)));
}

// ------------------------------------------------------- recovery (runner) --

/// Every (file, records) pair in the store — the byte-identity oracle.
std::map<std::string, std::vector<std::string>> StoreContents(
    const InMemoryTraceStore& store) {
  std::map<std::string, std::vector<std::string>> contents;
  for (const std::string& file : store.ListFiles("")) {
    auto records = store.ReadAll(file);
    GRAFT_CHECK(records.ok());
    contents[file] = *std::move(records);
  }
  return contents;
}

struct PageRankRun {
  debug::DebugRunSummary summary;
  std::map<VertexId, double> ranks;
  // Confined-recovery accounting, read off the engine in post_run.
  uint64_t replayed_vertices = 0;
  std::map<size_t, uint64_t> partition_sizes;
};

/// PageRank on a fixed random graph under Graft, checkpointing every 2
/// supersteps into a separate store, optionally with a fault injector.
Result<PageRankRun> RunCheckpointedPageRank(
    const graph::SimpleGraph& graph,
    const debug::DebugConfig<PageRankTraits>& config,
    InMemoryTraceStore* trace_store, InMemoryTraceStore* ckpt_store,
    FaultInjector* injector, const TraceSinkOptions& capture_io = {},
    pregel::CheckpointMode mode = pregel::CheckpointMode::kFull) {
  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = 3;
  spec.options.job_id = "pr-recovery";
  spec.capture_io = capture_io;
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{a.value + b.value};
  };
  spec.vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<algos::PageRankComputation>(/*max_iterations=*/8);
  };
  spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<algos::PageRankMaster>(/*max_iterations=*/8);
  };
  spec.debug_config = &config;
  spec.trace_store = trace_store;
  spec.checkpoint.interval = 2;
  spec.checkpoint.store = ckpt_store;
  spec.checkpoint.mode = mode;
  spec.fault_injector = injector;
  PageRankRun run;
  spec.post_run = [&run](pregel::Engine<PageRankTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<PageRankTraits>& v) {
      run.ranks[v.id()] = v.value().value;
      run.partition_sizes[engine.PartitionOf(v.id())] += 1;
    });
    run.replayed_vertices = engine.confined_replayed_vertices();
  };
  GRAFT_ASSIGN_OR_RETURN(run.summary,
                         debug::RunWithGraft(std::move(spec)));
  return run;
}

/// ISSUE 3 acceptance: PageRank with an injected worker crash recovers from
/// the latest committed checkpoint, and both the captured traces and the
/// final vertex values are byte-identical to the fault-free run.
TEST(RecoveryTest, PageRankRecoversByteIdentically) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore clean_traces, clean_ckpts;
  auto clean = RunCheckpointedPageRank(graph, config, &clean_traces,
                                       &clean_ckpts, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->summary.job_status.ok()) << clean->summary.job_status;
  EXPECT_EQ(clean->summary.attempts, 1);
  EXPECT_TRUE(clean->summary.recoveries.empty());

  FaultInjector injector;
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/5, /*partition=*/-1,
                /*hits=*/1});
  InMemoryTraceStore faulty_traces, faulty_ckpts;
  auto recovered = RunCheckpointedPageRank(graph, config, &faulty_traces,
                                           &faulty_ckpts, &injector);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->summary.job_status.ok())
      << recovered->summary.job_status;
  EXPECT_EQ(injector.fired_count(), 1u);

  // One recovery, restarted from the checkpoint at superstep 4.
  EXPECT_EQ(recovered->summary.attempts, 2);
  ASSERT_EQ(recovered->summary.recoveries.size(), 1u);
  EXPECT_EQ(recovered->summary.recoveries[0].attempt, 1);
  EXPECT_EQ(recovered->summary.recoveries[0].restored_superstep, 4);
  EXPECT_NE(recovered->summary.recoveries[0].cause.find("injected"),
            std::string::npos);

  // The RunReport carries the recovery accounting.
  const obs::RecoveryProfile& profile =
      recovered->summary.stats.report.recovery;
  EXPECT_TRUE(profile.checkpoints_enabled);
  EXPECT_EQ(profile.recoveries, 1u);
  ASSERT_EQ(profile.events.size(), 1u);
  EXPECT_EQ(profile.events[0].restored_superstep, 4);
  EXPECT_GT(profile.checkpoints_written, 0u);
  EXPECT_GT(profile.checkpoint_bytes, 0u);
  EXPECT_GE(profile.checkpoint_seconds, 0.0);
  EXPECT_GE(profile.restore_seconds, 0.0);

  // Byte-identical final state and traces versus the fault-free run.
  EXPECT_EQ(clean->ranks, recovered->ranks);
  EXPECT_EQ(clean->summary.captures, recovered->summary.captures);
  EXPECT_EQ(StoreContents(clean_traces), StoreContents(faulty_traces));
  EXPECT_EQ(clean->summary.stats.supersteps,
            recovered->summary.stats.supersteps);
  EXPECT_EQ(clean->summary.stats.total_messages,
            recovered->summary.stats.total_messages);

  // The JSON run report records the recovery for offline analysis.
  std::string json = recovered->summary.stats.report.ToJson();
  EXPECT_NE(json.find("\"recoveries\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"restored_superstep\":4"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints_written\""), std::string::npos);
}

/// Records in the trace store that belong to capture files (not checkpoint
/// bookkeeping and not the manifest index): what CaptureProfile.store_appends
/// must account for exactly once, even across recovery rewinds.
uint64_t CaptureRecordCount(const InMemoryTraceStore& store,
                            const std::string& job_id) {
  uint64_t count = 0;
  for (const std::string& file :
       store.ListFiles(debug::JobTracePrefix(job_id))) {
    if (file == debug::ManifestFile(job_id)) continue;  // written via store
    auto records = store.ReadAll(file);
    GRAFT_CHECK(records.ok());
    count += records->size();
  }
  return count;
}

/// ISSUE 5 acceptance (determinism): the spooling sink must produce traces
/// byte-for-byte identical to the synchronous sink — same records, same
/// order within every file, same manifest — and the same capture counters.
/// The async options deliberately force many small batches and a tiny queue
/// so batching boundaries and backpressure are exercised, not avoided.
TEST(RecoveryTest, AsyncSinkProducesByteIdenticalTraces) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore sync_traces, sync_ckpts;
  auto sync_run = RunCheckpointedPageRank(graph, config, &sync_traces,
                                          &sync_ckpts, nullptr);
  ASSERT_TRUE(sync_run.ok()) << sync_run.status();
  ASSERT_TRUE(sync_run->summary.job_status.ok());

  TraceSinkOptions async_io;
  async_io.async = true;
  async_io.max_batch_bytes = 256;  // force frequent batch seals
  async_io.queue_capacity = 2;     // force backpressure waits
  InMemoryTraceStore async_traces, async_ckpts;
  auto async_run = RunCheckpointedPageRank(graph, config, &async_traces,
                                           &async_ckpts, nullptr, async_io);
  ASSERT_TRUE(async_run.ok()) << async_run.status();
  ASSERT_TRUE(async_run->summary.job_status.ok());

  EXPECT_EQ(StoreContents(sync_traces), StoreContents(async_traces));
  EXPECT_EQ(sync_run->ranks, async_run->ranks);
  EXPECT_EQ(sync_run->summary.captures, async_run->summary.captures);
  EXPECT_EQ(sync_run->summary.violations, async_run->summary.violations);
  EXPECT_EQ(sync_run->summary.exceptions, async_run->summary.exceptions);
  EXPECT_EQ(sync_run->summary.trace_bytes, async_run->summary.trace_bytes);

  const obs::CaptureProfile& sync_capture =
      sync_run->summary.stats.report.capture;
  const obs::CaptureProfile& async_capture =
      async_run->summary.stats.report.capture;
  EXPECT_FALSE(sync_capture.async_sink);
  EXPECT_TRUE(async_capture.async_sink);
  EXPECT_EQ(sync_capture.store_appends, async_capture.store_appends);
  EXPECT_EQ(sync_capture.trace_bytes, async_capture.trace_bytes);
  EXPECT_GT(async_capture.spool_batches, 0u);
}

/// Same determinism bar across a mid-run crash: an async-sink run that dies
/// in superstep 5 and recovers from the checkpoint at 4 must still match the
/// fault-free synchronous run byte for byte.
TEST(RecoveryTest, AsyncSinkRecoversByteIdentically) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore clean_traces, clean_ckpts;
  auto clean = RunCheckpointedPageRank(graph, config, &clean_traces,
                                       &clean_ckpts, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->summary.job_status.ok());

  TraceSinkOptions async_io;
  async_io.async = true;
  async_io.max_batch_bytes = 256;
  async_io.queue_capacity = 2;
  FaultInjector injector;
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/5, /*partition=*/-1,
                /*hits=*/1});
  InMemoryTraceStore faulty_traces, faulty_ckpts;
  auto recovered = RunCheckpointedPageRank(graph, config, &faulty_traces,
                                           &faulty_ckpts, &injector, async_io);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->summary.job_status.ok())
      << recovered->summary.job_status;
  EXPECT_EQ(recovered->summary.attempts, 2);
  ASSERT_EQ(recovered->summary.recoveries.size(), 1u);
  EXPECT_EQ(recovered->summary.recoveries[0].restored_superstep, 4);

  EXPECT_EQ(StoreContents(clean_traces), StoreContents(faulty_traces));
  EXPECT_EQ(clean->ranks, recovered->ranks);
  EXPECT_EQ(clean->summary.captures, recovered->summary.captures);
  EXPECT_EQ(clean->summary.trace_bytes, recovered->summary.trace_bytes);
}

/// ISSUE 5 satellite: CaptureCounters must not double-count serialize/append
/// work re-executed after a recovery rewind. The invariant is that
/// store_appends equals the number of capture records actually present in
/// the store — a retried run that replays supersteps 4..5 must rewind its
/// I/O accounting to the checkpoint snapshot, not keep the discarded work.
TEST(RecoveryTest, RecoveryDoesNotDoubleCountCaptureIo) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore clean_traces, clean_ckpts;
  auto clean = RunCheckpointedPageRank(graph, config, &clean_traces,
                                       &clean_ckpts, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();

  for (bool async : {false, true}) {
    SCOPED_TRACE(async ? "async sink" : "sync sink");
    TraceSinkOptions io;
    io.async = async;
    if (async) io.max_batch_bytes = 256;
    FaultInjector injector;
    injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/5,
                  /*partition=*/-1, /*hits=*/1});
    InMemoryTraceStore traces, ckpts;
    auto recovered =
        RunCheckpointedPageRank(graph, config, &traces, &ckpts, &injector, io);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    ASSERT_TRUE(recovered->summary.job_status.ok());
    ASSERT_EQ(recovered->summary.attempts, 2);

    const obs::CaptureProfile& capture =
        recovered->summary.stats.report.capture;
    // Exactly one account entry per record that survived in the store...
    EXPECT_EQ(capture.store_appends,
              CaptureRecordCount(traces, "pr-recovery"));
    // ...and identical I/O accounting to the run that never crashed.
    EXPECT_EQ(capture.store_appends,
              clean->summary.stats.report.capture.store_appends);
    EXPECT_EQ(capture.trace_bytes,
              clean->summary.stats.report.capture.trace_bytes);
    EXPECT_EQ(capture.vertex_captures,
              clean->summary.stats.report.capture.vertex_captures);
  }
}

TEST(RecoveryTest, StoreAppendFaultOnCapturePathIsRetried) {
  auto graph = graph::GenerateRing(64);
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({0, 7, 13});
  FaultInjector injector;
  // Superstep 1: after checkpoint 0 has committed (a wildcard would hit the
  // pre-loop checkpoint-0 write, which has no recovery point yet), and not a
  // checkpoint superstep — so the fault lands on a capture append.
  injector.Arm({FaultSite::kStoreAppend, /*superstep=*/1, /*partition=*/-1,
                /*hits=*/1});
  InMemoryTraceStore traces, ckpts;
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-append-fault";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &traces;
  spec.checkpoint.interval = 2;
  spec.checkpoint.store = &ckpts;
  spec.fault_injector = &injector;
  auto summary = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_TRUE(summary->job_status.ok()) << summary->job_status;
  EXPECT_EQ(summary->attempts, 2);
  EXPECT_EQ(summary->recoveries.size(), 1u);
  EXPECT_GT(summary->captures, 0u);
}

TEST(RecoveryTest, DeliveryFaultIsRetried) {
  auto graph = graph::GenerateRing(64);
  FaultInjector injector;
  injector.Arm({FaultSite::kDelivery, /*superstep=*/3, /*partition=*/0,
                /*hits=*/1});
  InMemoryTraceStore ckpts;
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-delivery-fault";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.checkpoint.interval = 1;
  spec.checkpoint.store = &ckpts;
  spec.fault_injector = &injector;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_TRUE(summary->job_status.ok()) << summary->job_status;
  EXPECT_EQ(summary->attempts, 2);
  // CC on a 64-ring needs 33 supersteps; recovery must not change that.
  auto control = algos::RunConnectedComponents(graph, /*num_workers=*/2);
  ASSERT_TRUE(control.ok());
  EXPECT_EQ(summary->stats.supersteps, control->stats.supersteps);
}

TEST(RecoveryTest, ExhaustedAttemptsSurfaceUnavailable) {
  auto graph = graph::GenerateRing(32);
  FaultInjector injector;
  // Fires on every attempt: the job can never get past superstep 3.
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/3, /*partition=*/-1,
                /*hits=*/100});
  InMemoryTraceStore ckpts;
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-doomed";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.checkpoint.interval = 1;
  spec.checkpoint.store = &ckpts;
  spec.fault_injector = &injector;
  spec.max_recovery_attempts = 3;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_TRUE(summary->job_status.IsUnavailable()) << summary->job_status;
  // max_recovery_attempts bounds the recoveries, so attempts = 1 + 3.
  EXPECT_EQ(summary->attempts, 4);
  EXPECT_EQ(summary->recoveries.size(), 3u);
}

TEST(RecoveryTest, NoCheckpointMeansNoRetry) {
  auto graph = graph::GenerateRing(32);
  FaultInjector injector;
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/2, /*partition=*/-1,
                /*hits=*/1});
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-no-ckpt";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.fault_injector = &injector;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_TRUE(summary->job_status.IsUnavailable()) << summary->job_status;
  EXPECT_EQ(summary->attempts, 1);
  EXPECT_TRUE(summary->recoveries.empty());
}

TEST(RecoveryTest, CheckpointsAreGarbageCollected) {
  auto graph = graph::GenerateRing(64);
  InMemoryTraceStore ckpts;
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-gc";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.checkpoint.interval = 4;
  spec.checkpoint.store = &ckpts;
  spec.checkpoint.keep = 1;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;
  // Many checkpoints were written, but only `keep` survive.
  EXPECT_GT(summary->stats.report.recovery.checkpoints_written, 1u);
  EXPECT_EQ(pregel::ListCommittedCheckpoints(ckpts, "cc-gc").size(), 1u);
}

// -------------------------------------------- delta checkpoints (ISSUE 7) --

/// Delta round-trip golden: a fault-free delta-mode run produces the same
/// final values as full-checkpoint mode, writes strictly fewer checkpoint
/// payload bytes, and accounts topology/log bytes separately.
TEST(DeltaCheckpointTest, DeltaModeMatchesFullModeAndWritesLess) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore full_traces, full_ckpts;
  auto full = RunCheckpointedPageRank(graph, config, &full_traces,
                                      &full_ckpts, nullptr);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->summary.job_status.ok());

  InMemoryTraceStore delta_traces, delta_ckpts;
  auto delta = RunCheckpointedPageRank(graph, config, &delta_traces,
                                       &delta_ckpts, nullptr, {},
                                       pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(delta.ok()) << delta.status();
  ASSERT_TRUE(delta->summary.job_status.ok()) << delta->summary.job_status;

  EXPECT_EQ(full->ranks, delta->ranks);
  EXPECT_EQ(StoreContents(full_traces), StoreContents(delta_traces));

  const obs::RecoveryProfile& full_rec = full->summary.stats.report.recovery;
  const obs::RecoveryProfile& delta_rec =
      delta->summary.stats.report.recovery;
  EXPECT_EQ(full_rec.checkpoints_written, delta_rec.checkpoints_written);
  // Vertex-state-only deltas: the per-checkpoint payload shrinks hard, and
  // the topology stream was written once (one epoch, no mutations).
  EXPECT_LT(delta_rec.checkpoint_bytes, full_rec.checkpoint_bytes);
  EXPECT_GT(delta_rec.topology_bytes, 0u);
  EXPECT_GT(delta_rec.log_bytes, 0u);
  EXPECT_EQ(full_rec.topology_bytes, 0u);
  EXPECT_EQ(full_rec.log_bytes, 0u);
}

/// ISSUE 7 tentpole acceptance (confined): a worker crash in delta mode is
/// recovered inside the engine — one partition rebuilt and replayed, zero
/// JobRunner restart, healthy partitions do zero recompute — and both traces
/// and final values stay byte-identical to the fault-free run.
TEST(DeltaCheckpointTest, ConfinedRecoveryIsByteIdenticalAndConfined) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore clean_traces, clean_ckpts;
  auto clean = RunCheckpointedPageRank(graph, config, &clean_traces,
                                       &clean_ckpts, nullptr, {},
                                       pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->summary.job_status.ok());
  EXPECT_EQ(clean->replayed_vertices, 0u);

  FaultInjector injector;
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/5, /*partition=*/1,
                /*hits=*/1});
  InMemoryTraceStore faulty_traces, faulty_ckpts;
  auto recovered = RunCheckpointedPageRank(graph, config, &faulty_traces,
                                           &faulty_ckpts, &injector, {},
                                           pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->summary.job_status.ok())
      << recovered->summary.job_status;
  EXPECT_EQ(injector.fired_count(), 1u);

  // Confined: the engine absorbed the crash — no JobRunner restart at all.
  EXPECT_EQ(recovered->summary.attempts, 1);
  EXPECT_TRUE(recovered->summary.recoveries.empty());
  const obs::RecoveryProfile& profile =
      recovered->summary.stats.report.recovery;
  EXPECT_EQ(profile.confined_recoveries, 1u);
  ASSERT_EQ(profile.events.size(), 1u);
  EXPECT_TRUE(profile.events[0].confined);
  EXPECT_EQ(profile.events[0].partition, 1);
  EXPECT_EQ(profile.events[0].restored_superstep, 4);
  EXPECT_EQ(profile.events[0].attempt, 0);
  EXPECT_EQ(profile.recoveries, 1u);

  // Zero recompute outside the failed partition: replay touched at most the
  // crashed partition's vertices for the one superstep in the replay window
  // (checkpoint 4 -> failure at 5), and touched none of the others.
  const uint64_t p1 = recovered->partition_sizes.at(1);
  const uint64_t total = graph.NumVertices();
  EXPECT_GT(recovered->replayed_vertices, 0u);
  EXPECT_LE(recovered->replayed_vertices, p1);
  EXPECT_LT(p1, total);

  // Byte-identity bar, same as global recovery.
  EXPECT_EQ(clean->ranks, recovered->ranks);
  EXPECT_EQ(StoreContents(clean_traces), StoreContents(faulty_traces));
  EXPECT_EQ(clean->summary.captures, recovered->summary.captures);
  EXPECT_EQ(clean->summary.stats.supersteps,
            recovered->summary.stats.supersteps);
  EXPECT_EQ(clean->summary.stats.total_messages,
            recovered->summary.stats.total_messages);

  std::string json = recovered->summary.stats.report.ToJson();
  EXPECT_NE(json.find("\"confined_recoveries\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"confined\":true"), std::string::npos);
}

/// Global (whole-job) recovery through the delta path: a delivery fault is
/// not confinable, so the JobRunner restarts from the latest committed delta
/// checkpoint — value parts + topology + outbox-log replay rebuild the
/// inboxes, and CheckpointMeta::pending_messages is asserted against the
/// replayed count inside RestoreDelta.
TEST(DeltaCheckpointTest, GlobalDeltaRecoveryIsByteIdentical) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore clean_traces, clean_ckpts;
  auto clean = RunCheckpointedPageRank(graph, config, &clean_traces,
                                       &clean_ckpts, nullptr, {},
                                       pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->summary.job_status.ok());

  FaultInjector injector;
  injector.Arm({FaultSite::kDelivery, /*superstep=*/5, /*partition=*/0,
                /*hits=*/1});
  InMemoryTraceStore faulty_traces, faulty_ckpts;
  auto recovered = RunCheckpointedPageRank(graph, config, &faulty_traces,
                                           &faulty_ckpts, &injector, {},
                                           pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->summary.job_status.ok())
      << recovered->summary.job_status;
  EXPECT_EQ(recovered->summary.attempts, 2);
  ASSERT_EQ(recovered->summary.recoveries.size(), 1u);
  EXPECT_EQ(recovered->summary.recoveries[0].restored_superstep, 4);
  EXPECT_EQ(recovered->summary.stats.report.recovery.confined_recoveries,
            0u);

  EXPECT_EQ(clean->ranks, recovered->ranks);
  EXPECT_EQ(StoreContents(clean_traces), StoreContents(faulty_traces));
  EXPECT_EQ(clean->summary.stats.total_messages,
            recovered->summary.stats.total_messages);
}

/// Vertices outside a designated quiet set keep themselves awake by
/// self-messaging for `rounds` supersteps; vertices inside it halt at
/// superstep 0 and never hear from anyone again.
class SelfPingComputation : public pregel::Computation<CCTraits> {
 public:
  SelfPingComputation(const std::set<VertexId>* pingers, int64_t rounds)
      : pingers_(pingers), rounds_(rounds) {}
  void Compute(pregel::ComputeContext<CCTraits>& ctx,
               pregel::Vertex<CCTraits>& vertex,
               const std::vector<Int64Value>& messages) override {
    (void)messages;
    if (ctx.superstep() < rounds_ && pingers_->count(vertex.id()) != 0) {
      ctx.SendMessage(vertex.id(), Int64Value{ctx.superstep()});
    }
    vertex.VoteToHalt();
  }

 private:
  const std::set<VertexId>* pingers_;
  int64_t rounds_;
};

/// Clean partitions emit header-only deltas: a partition whose vertices all
/// went quiet stops paying value-part writes — the meta points its
/// base_superstep at an older checkpoint and no part file exists for it at
/// the newer ones.
TEST(DeltaCheckpointTest, CleanPartitionsWriteHeaderOnlyDeltas) {
  auto graph = graph::GenerateRing(64);
  InMemoryTraceStore ckpts;
  auto pingers = std::make_shared<std::set<VertexId>>();
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 3;
  spec.options.job_id = "ping-delta-clean";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = [pingers] {
    return std::make_unique<SelfPingComputation>(pingers.get(),
                                                 /*rounds=*/8);
  };
  // Everything outside partition 0 self-pings; partition 0 computes only at
  // superstep 0 and is clean at every checkpoint from superstep 4 on.
  spec.pre_run = [pingers](pregel::Engine<CCTraits>& engine) {
    for (VertexId id = 0; id < 64; ++id) {
      if (engine.PartitionOf(id) != 0) pingers->insert(id);
    }
  };
  spec.checkpoint.interval = 2;
  spec.checkpoint.store = &ckpts;
  spec.checkpoint.keep = 1000;  // keep everything: inspect every checkpoint
  spec.checkpoint.mode = pregel::CheckpointMode::kDelta;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;

  int header_only = 0;
  for (int64_t s :
       pregel::ListCommittedCheckpoints(ckpts, "ping-delta-clean")) {
    auto records =
        ckpts.ReadAll(pregel::CheckpointMetaFile("ping-delta-clean", s));
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    auto meta = CheckpointMeta::Parse((*records)[0]);
    ASSERT_TRUE(meta.ok()) << meta.status();
    for (int part = 0; part < meta->num_partitions; ++part) {
      const bool has_part = ckpts.Exists(
          pregel::CheckpointPartFile("ping-delta-clean", s, part));
      const int64_t base = meta->partitions[part].base_superstep;
      if (has_part) {
        EXPECT_EQ(base, s);
      } else {
        ++header_only;
        EXPECT_LT(base, s);
        // The referenced older value part must still exist (GC keeps it).
        EXPECT_TRUE(ckpts.Exists(
            pregel::CheckpointPartFile("ping-delta-clean", base, part)));
      }
    }
    if (s >= 4) {
      EXPECT_FALSE(ckpts.Exists(
          pregel::CheckpointPartFile("ping-delta-clean", s, 0)))
          << "partition 0 went quiet after superstep 0 but still wrote a "
             "value part at checkpoint "
          << s;
    }
  }
  EXPECT_GT(header_only, 0);
}

/// Outbox logs are garbage-collected behind the commit frontier: after a
/// run with keep=1, no log directory older than the newest committed
/// checkpoint survives.
TEST(DeltaCheckpointTest, OutboxLogsAreGarbageCollectedAfterCommit) {
  auto graph = graph::GenerateRing(64);
  InMemoryTraceStore ckpts;
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-delta-gc";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.checkpoint.interval = 4;
  spec.checkpoint.store = &ckpts;
  spec.checkpoint.keep = 1;
  spec.checkpoint.mode = pregel::CheckpointMode::kDelta;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;

  auto latest = pregel::LatestCommittedCheckpoint(ckpts, "cc-delta-gc");
  ASSERT_TRUE(latest.ok());
  EXPECT_GT(*latest, 0);
  const std::string outbox_root = pregel::OutboxRoot("cc-delta-gc");
  std::vector<std::string> log_files = ckpts.ListFiles(outbox_root);
  EXPECT_FALSE(log_files.empty());
  for (const std::string& file : log_files) {
    // outbox/s%06lld/...
    const int64_t s = std::stoll(file.substr(outbox_root.size() + 1, 6));
    EXPECT_GE(s, *latest) << file;
  }
}

/// An outbox-log append fault is an ordinary retryable store failure: the
/// superstep aborts and the JobRunner recovers globally.
TEST(DeltaCheckpointTest, LogAppendFaultIsRetried) {
  auto graph = graph::GenerateRing(64);
  FaultInjector injector;
  injector.Arm({FaultSite::kLogAppend, /*superstep=*/3, /*partition=*/-1,
                /*hits=*/1});
  InMemoryTraceStore ckpts;
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "cc-log-append-fault";
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.checkpoint.interval = 2;
  spec.checkpoint.store = &ckpts;
  spec.checkpoint.mode = pregel::CheckpointMode::kDelta;
  spec.fault_injector = &injector;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_TRUE(summary->job_status.ok()) << summary->job_status;
  EXPECT_EQ(summary->attempts, 2);
  auto control = algos::RunConnectedComponents(graph, /*num_workers=*/2);
  ASSERT_TRUE(control.ok());
  EXPECT_EQ(summary->stats.supersteps, control->stats.supersteps);
}

/// A replay fault during confined recovery falls back to global recovery:
/// the confined attempt dies on the injected kLogReplay fault, the engine
/// aborts retryably, and the JobRunner restart completes the job.
TEST(DeltaCheckpointTest, LogReplayFaultFallsBackToGlobalRecovery) {
  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(300, 1200, /*seed=*/9));
  debug::ConfigurableDebugConfig<PageRankTraits> config;
  config.set_vertices({0, 1, 2, 50, 100}).set_capture_neighbors(true);

  InMemoryTraceStore clean_traces, clean_ckpts;
  auto clean = RunCheckpointedPageRank(graph, config, &clean_traces,
                                       &clean_ckpts, nullptr, {},
                                       pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(clean.ok()) << clean.status();

  FaultInjector injector;
  injector.Arm({FaultSite::kWorkerCompute, /*superstep=*/5, /*partition=*/1,
                /*hits=*/1});
  injector.Arm({FaultSite::kLogReplay, /*superstep=*/5, /*partition=*/-1,
                /*hits=*/1});
  InMemoryTraceStore faulty_traces, faulty_ckpts;
  auto recovered = RunCheckpointedPageRank(graph, config, &faulty_traces,
                                           &faulty_ckpts, &injector, {},
                                           pregel::CheckpointMode::kDelta);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_TRUE(recovered->summary.job_status.ok())
      << recovered->summary.job_status;
  EXPECT_EQ(injector.fired_count(), 2u);
  // The confined attempt failed; the global retry finished the job.
  EXPECT_EQ(recovered->summary.attempts, 2);
  ASSERT_EQ(recovered->summary.recoveries.size(), 1u);
  EXPECT_EQ(recovered->summary.stats.report.recovery.confined_recoveries,
            0u);
  EXPECT_EQ(clean->ranks, recovered->ranks);
  EXPECT_EQ(StoreContents(clean_traces), StoreContents(faulty_traces));
}

}  // namespace
}  // namespace graft
