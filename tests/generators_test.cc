// Property-style tests for the synthetic graph generators: structural
// invariants (regularity, vertex/edge counts, degree shape), determinism,
// and the §4.3 corruption helpers.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/graph_stats.h"

namespace graft {
namespace graph {
namespace {

// --------------------------------------------------------------- power-law --

class PowerLawParams
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(PowerLawParams, CountsAndDegreeFloor) {
  auto [n, m] = GetParam();
  SimpleGraph g = GeneratePowerLaw(n, m, /*seed=*/7);
  EXPECT_EQ(g.NumVertices(), n);
  // Every non-seed vertex contributes exactly m out-edges.
  uint64_t expected_min =
      (n - (static_cast<uint64_t>(m) + 1)) * static_cast<uint64_t>(m);
  EXPECT_GE(g.NumDirectedEdges(), expected_min);
  // No self-loops, no duplicate out-edges.
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    std::set<VertexId> targets;
    for (const auto& e : g.OutEdges(i)) {
      EXPECT_NE(e.target, g.IdAt(i)) << "self loop";
      EXPECT_TRUE(targets.insert(e.target).second) << "duplicate edge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PowerLawParams,
                         ::testing::Combine(::testing::Values(100u, 1000u,
                                                              5000u),
                                            ::testing::Values(1, 3, 8)));

TEST(PowerLawTest, HasHeavyTail) {
  SimpleGraph g = GeneratePowerLaw(20000, 4, 42);
  // Preferential attachment: in-degree of early vertices far exceeds the
  // mean. Compute in-degrees.
  std::map<VertexId, uint64_t> indeg;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    for (const auto& e : g.OutEdges(i)) ++indeg[e.target];
  }
  uint64_t max_indeg = 0;
  for (const auto& [id, d] : indeg) max_indeg = std::max(max_indeg, d);
  double mean = static_cast<double>(g.NumDirectedEdges()) / g.NumVertices();
  EXPECT_GT(max_indeg, static_cast<uint64_t>(20 * mean))
      << "degree distribution is not heavy-tailed";
}

TEST(PowerLawTest, DeterministicPerSeedDistinctAcrossSeeds) {
  SimpleGraph a = GeneratePowerLaw(500, 3, 1);
  SimpleGraph b = GeneratePowerLaw(500, 3, 1);
  SimpleGraph c = GeneratePowerLaw(500, 3, 2);
  ASSERT_EQ(a.NumDirectedEdges(), b.NumDirectedEdges());
  bool all_equal_ab = true;
  bool all_equal_ac = true;
  for (size_t i = 0; i < a.NumVertices(); ++i) {
    for (size_t j = 0; j < a.OutEdges(i).size(); ++j) {
      if (a.OutEdges(i)[j].target != b.OutEdges(i)[j].target) {
        all_equal_ab = false;
      }
      if (j < c.OutEdges(i).size() &&
          a.OutEdges(i)[j].target != c.OutEdges(i)[j].target) {
        all_equal_ac = false;
      }
    }
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

// ---------------------------------------------------------------- bipartite --

class BipartiteParams
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(BipartiteParams, ExactlyRegularAndBipartite) {
  auto [n, d] = GetParam();
  SimpleGraph g = GenerateRegularBipartite(n, d, 5);
  EXPECT_EQ(g.NumVertices(), n);
  EXPECT_EQ(g.NumDirectedEdges(), n * static_cast<uint64_t>(d));
  uint64_t half = n / 2;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    EXPECT_EQ(g.OutDegree(i), static_cast<size_t>(d));
    bool left = static_cast<uint64_t>(g.IdAt(i)) < half;
    for (const auto& e : g.OutEdges(i)) {
      bool target_left = static_cast<uint64_t>(e.target) < half;
      EXPECT_NE(left, target_left) << "edge within one side";
    }
  }
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.reciprocal_edges, stats.num_directed_edges);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BipartiteParams,
                         ::testing::Combine(::testing::Values(20u, 100u,
                                                              1000u),
                                            ::testing::Values(1, 3, 6)));

// -------------------------------------------------------------------- others --

TEST(ErdosRenyiTest, ExactEdgeCountNoLoopsNoDuplicates) {
  SimpleGraph g = GenerateErdosRenyi(50, 300, 3);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumDirectedEdges(), 300u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    for (const auto& e : g.OutEdges(i)) {
      EXPECT_NE(e.target, g.IdAt(i));
      EXPECT_TRUE(seen.emplace(g.IdAt(i), e.target).second);
    }
  }
}

TEST(PremadeGeneratorsTest, GridRingCompleteTreeStarShapes) {
  SimpleGraph grid = GenerateGrid(3, 4);
  EXPECT_EQ(grid.NumVertices(), 12u);
  // 3*3 horizontal + 2*4 vertical undirected edges = 17 pairs = 34 directed.
  EXPECT_EQ(grid.NumDirectedEdges(), 34u);

  SimpleGraph ring = GenerateRing(6);
  EXPECT_EQ(ring.NumDirectedEdges(), 12u);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(ring.OutDegree(i), 2u);

  SimpleGraph complete = GenerateComplete(5);
  EXPECT_EQ(complete.NumDirectedEdges(), 20u);

  SimpleGraph tree = GenerateBinaryTree(7);
  EXPECT_EQ(tree.NumDirectedEdges(), 12u);  // 6 undirected edges

  SimpleGraph star = GenerateStar(5);
  EXPECT_EQ(star.OutDegree(star.IndexOf(0).value()), 4u);
}

TEST(MakeUndirectedTest, AddsMissingReverses) {
  SimpleGraph g;
  g.AddEdge(1, 2, 0.7);
  g.AddUndirectedEdge(2, 3, 1.5);
  SimpleGraph u = MakeUndirected(g);
  EXPECT_EQ(u.NumDirectedEdges(), 4u);
  EXPECT_EQ(u.EdgeWeight(2, 1).value(), 0.7);
  // Existing symmetric pair untouched.
  EXPECT_EQ(u.EdgeWeight(3, 2).value(), 1.5);
  GraphStats stats = ComputeGraphStats(u);
  EXPECT_EQ(stats.reciprocal_edges, stats.num_directed_edges);
}

// ------------------------------------------------------------ weights/§4.3 --

TEST(WeightsTest, SymmetricAssignmentIsSymmetric) {
  SimpleGraph g = MakeUndirected(GeneratePowerLaw(300, 3, 9));
  AssignRandomWeights(&g, 1.0, 100.0, 17, /*symmetric=*/true);
  EXPECT_TRUE(IsSymmetricWeighted(g));
  // Weights actually vary and respect the range.
  std::set<double> distinct;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    for (const auto& e : g.OutEdges(i)) {
      EXPECT_GE(e.weight, 1.0);
      EXPECT_LE(e.weight, 100.0);
      distinct.insert(e.weight);
    }
  }
  EXPECT_GT(distinct.size(), 100u);
}

TEST(WeightsTest, CorruptionBreaksExactlySampledPairs) {
  SimpleGraph g = MakeUndirected(GeneratePowerLaw(300, 3, 9));
  AssignRandomWeights(&g, 1.0, 100.0, 17, true);
  uint64_t corrupted = CorruptSymmetricWeights(&g, 0.05, 23);
  EXPECT_GT(corrupted, 0u);
  EXPECT_FALSE(IsSymmetricWeighted(g));
  // Count asymmetric pairs and compare with the reported number.
  uint64_t asymmetric = 0;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    VertexId u = g.IdAt(i);
    for (const auto& e : g.OutEdges(i)) {
      if (u >= e.target) continue;
      auto reverse = g.EdgeWeight(e.target, u);
      if (reverse.ok() && *reverse != e.weight) ++asymmetric;
    }
  }
  EXPECT_EQ(asymmetric, corrupted);
}

TEST(WeightsTest, ZeroFractionCorruptsNothing) {
  SimpleGraph g = MakeUndirected(GeneratePowerLaw(100, 3, 9));
  AssignRandomWeights(&g, 1.0, 100.0, 17, true);
  EXPECT_EQ(CorruptSymmetricWeights(&g, 0.0, 23), 0u);
  EXPECT_TRUE(IsSymmetricWeighted(g));
}

TEST(PreferenceCycleTest, CreatesThreeCycleOfHeaviestEdges) {
  SimpleGraph g = GenerateComplete(5);
  AssignRandomWeights(&g, 1.0, 100.0, 3, true);
  auto cycle = InjectPreferenceCycle(&g);
  ASSERT_TRUE(cycle.ok()) << cycle.status();
  auto [u, v, w] = *cycle;
  EXPECT_EQ(g.EdgeWeight(u, v).value(), 1000.0);
  EXPECT_EQ(g.EdgeWeight(v, u).value(), 999.0);
  EXPECT_EQ(g.EdgeWeight(v, w).value(), 1000.0);
  EXPECT_EQ(g.EdgeWeight(w, v).value(), 999.0);
  EXPECT_EQ(g.EdgeWeight(w, u).value(), 1000.0);
  EXPECT_EQ(g.EdgeWeight(u, w).value(), 999.0);
}

TEST(PreferenceCycleTest, FailsOnTriangleFreeGraph) {
  SimpleGraph g = GenerateRegularBipartite(20, 3, 5);
  EXPECT_TRUE(InjectPreferenceCycle(&g).status().IsNotFound());
}

}  // namespace
}  // namespace graph
}  // namespace graft
