// Golden tests for the BspSanitizer over the buggy-twin corpus: every
// contract-violation class (a)-(e) must be caught with the right
// AnalysisFinding kind and vertex/superstep coordinates, findings must
// round-trip through the trace store, and the run report must carry the
// analysis profile.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/finding.h"
#include "analysis/sanitizer.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/job.h"
#include "pregel/loader.h"

#include "analysis_corpus/buggy_twins.h"

namespace graft {
namespace {

using analysis::AnalysisFinding;
using analysis::FindingKind;
using analysis_corpus::kOwnerAggregator;
using pregel::DoubleValue;
using pregel::Int64Value;

std::vector<AnalysisFinding> FindingsOfKind(
    const std::vector<AnalysisFinding>& findings, FindingKind kind) {
  std::vector<AnalysisFinding> out;
  for (const AnalysisFinding& f : findings) {
    if (f.kind == kind) out.push_back(f);
  }
  return out;
}

/// Runs `spec` with the sanitizer on (non-fatal) against `store` and returns
/// the summary; findings land in the store and the report.
template <typename Traits>
pregel::JobRunSummary RunSanitized(pregel::JobSpec<Traits> spec,
                                   TraceStore* store) {
  spec.sanitizer.enabled = true;
  spec.trace_store = store;
  auto summary = pregel::RunJob(std::move(spec));
  GRAFT_CHECK(summary.ok());
  return *std::move(summary);
}

TEST(AnalysisCorpusTest, SendAfterHaltPageRankCaught) {
  auto graph = graph::GenerateRing(8);
  pregel::JobSpec<algos::PageRankTraits> spec;
  spec.options.job_id = "corpus_send_after_halt";
  spec.options.max_supersteps = 4;  // the ghost activations never converge
  spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MessageAfterHaltPageRank>(2);
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok()) << summary.job_status.ToString();

  // Every vertex halts at superstep 2 and then sends along its one ring
  // edge: one finding per vertex, at exactly those coordinates.
  std::vector<AnalysisFinding> findings = summary.stats.report.analysis.enabled
      ? *analysis::ReadFindings(store, "corpus_send_after_halt")
      : std::vector<AnalysisFinding>{};
  auto hits = FindingsOfKind(findings, FindingKind::kSendAfterHalt);
  ASSERT_FALSE(hits.empty());
  // The first violation is at superstep 2 (the halt iteration); the ghost
  // activations it causes re-halt and re-send at superstep 3 as well.
  for (const AnalysisFinding& f : hits) {
    EXPECT_GE(f.superstep, 2) << f.ToString();
    EXPECT_LT(f.superstep, 4) << f.ToString();
    EXPECT_GE(f.vertex, 0);
    EXPECT_LT(f.vertex, 8);
    EXPECT_GE(f.worker, 0);
  }
  // All 8 vertices send after halting at superstep 2. The undirected ring
  // gives every vertex two out-edges, and each post-halt send is a distinct
  // finding (distinct target in the detail): 8 × 2.
  EXPECT_EQ(std::count_if(hits.begin(), hits.end(),
                          [](const AnalysisFinding& f) {
                            return f.superstep == 2;
                          }),
            16);
  EXPECT_EQ(summary.analysis_findings, summary.stats.report.analysis
                                           .findings_total);
  EXPECT_GT(summary.analysis_findings, 0u);
}

TEST(AnalysisCorpusTest, StaleReadSsspCaught) {
  // 0 -> 1 -> 2 -> 3 line, unit weights.
  graph::SimpleGraph graph;
  for (VertexId v = 0; v < 3; ++v) graph.AddEdge(v, v + 1, 1.0);
  constexpr double kInf = 1e300;
  pregel::JobSpec<algos::SsspTraits> spec;
  spec.options.job_id = "corpus_stale_read";
  spec.vertices = pregel::LoadVertices<algos::SsspTraits>(
      graph, [](VertexId) { return DoubleValue{kInf}; },
      [](VertexId, VertexId, double w) { return DoubleValue{w}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::StaleReadSssp>(0);
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());

  auto findings = *analysis::ReadFindings(store, "corpus_stale_read");
  auto hits = FindingsOfKind(findings, FindingKind::kStaleRead);
  ASSERT_FALSE(hits.empty());
  for (const AnalysisFinding& f : hits) {
    EXPECT_GE(f.vertex, 0) << f.ToString();
    EXPECT_NE(f.detail.find("stamped by vertex"), std::string::npos)
        << f.detail;
  }
}

TEST(AnalysisCorpusTest, MutationAfterHaltCCCaught) {
  auto graph = graph::GenerateRing(6);
  pregel::JobSpec<algos::CCTraits> spec;
  spec.options.job_id = "corpus_mutation_after_halt";
  spec.vertices = pregel::LoadUnweighted<algos::CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MutationAfterHaltCC>();
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());

  auto findings =
      *analysis::ReadFindings(store, "corpus_mutation_after_halt");
  auto hits = FindingsOfKind(findings, FindingKind::kMutationAfterHalt);
  ASSERT_FALSE(hits.empty());
  for (const AnalysisFinding& f : hits) {
    // The write-back happens only on non-improving (halting) supersteps,
    // which on a ring start at superstep 1.
    EXPECT_GE(f.superstep, 1) << f.ToString();
    EXPECT_GE(f.vertex, 0);
    EXPECT_LT(f.vertex, 6);
    EXPECT_NE(f.detail.find("after VoteToHalt"), std::string::npos);
  }
}

TEST(AnalysisCorpusTest, MasterInitializeSetAggregatedCaught) {
  auto graph = graph::GenerateRing(4);
  pregel::JobSpec<algos::CCTraits> spec;
  spec.options.job_id = "corpus_master_init";
  spec.vertices = pregel::LoadUnweighted<algos::CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::StreamRandomWalk>();
  };
  spec.master = [] {
    return std::make_unique<analysis_corpus::InitializeSetMaster>();
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());

  auto findings = *analysis::ReadFindings(store, "corpus_master_init");
  auto hits = FindingsOfKind(findings, FindingKind::kAggregatorPhase);
  ASSERT_EQ(hits.size(), 1u);
  // Master-side, before superstep 0: coordinates are (-1, -1, master).
  EXPECT_EQ(hits[0].superstep, -1);
  EXPECT_EQ(hits[0].vertex, -1);
  EXPECT_EQ(hits[0].worker, -1);
  EXPECT_NE(hits[0].detail.find("Initialize()"), std::string::npos);
}

TEST(AnalysisCorpusTest, OverwriteAggregatorColoringCaught) {
  auto graph = graph::GenerateRing(5);
  pregel::JobSpec<algos::CCTraits> spec;
  spec.options.job_id = "corpus_overwrite";
  spec.vertices = pregel::LoadUnweighted<algos::CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::OverwriteClaimColoring>();
  };
  spec.master = [] {
    return std::make_unique<analysis_corpus::OverwriteClaimMaster>();
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());

  auto findings = *analysis::ReadFindings(store, "corpus_overwrite");
  auto hits =
      FindingsOfKind(findings, FindingKind::kOrderDependentAggregation);
  ASSERT_FALSE(hits.empty());
  for (const AnalysisFinding& f : hits) {
    EXPECT_EQ(f.superstep, 0) << f.ToString();
    EXPECT_NE(f.detail.find(kOwnerAggregator), std::string::npos);
  }
}

TEST(AnalysisCorpusTest, LibcRandomWalkProbeCaught) {
  auto graph = graph::GenerateRing(6);
  pregel::JobSpec<algos::CCTraits> spec;
  spec.options.job_id = "corpus_rand";
  spec.vertices = pregel::LoadUnweighted<algos::CCTraits>(
      graph, [](VertexId) { return Int64Value{0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::LibcRandomWalk>();
  };
  spec.sanitizer.determinism_sample_rate = 1;  // probe every vertex

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());

  auto findings = *analysis::ReadFindings(store, "corpus_rand");
  auto hits = FindingsOfKind(findings, FindingKind::kNondeterminism);
  ASSERT_FALSE(hits.empty());
  for (const AnalysisFinding& f : hits) {
    EXPECT_EQ(f.superstep, 0) << f.ToString();  // the rand() superstep
    EXPECT_GE(f.vertex, 0);
    EXPECT_NE(f.detail.find("diverged"), std::string::npos);
  }
  const obs::AnalysisProfile& profile = summary.stats.report.analysis;
  EXPECT_GT(profile.determinism_probes, 0u);
  EXPECT_GT(profile.determinism_mismatches, 0u);
  EXPECT_GE(profile.probe_seconds, 0.0);
}

TEST(AnalysisCorpusTest, NonCommutativeCombinerCaught) {
  auto graph = graph::GenerateRing(6);
  pregel::JobSpec<algos::PageRankTraits> spec;
  spec.options.job_id = "corpus_combiner";
  spec.options.max_supersteps = 3;
  // BUG under test: subtraction is not commutative; sender-side combining
  // makes the fold order observable.
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{a.value - b.value};
  };
  spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MessageAfterHaltPageRank>(5);
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());

  auto findings = *analysis::ReadFindings(store, "corpus_combiner");
  auto hits =
      FindingsOfKind(findings, FindingKind::kNonCommutativeCombiner);
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].detail.find("combine("), std::string::npos);
}

TEST(AnalysisCorpusTest, FatalPolicyAbortsTheJob) {
  auto graph = graph::GenerateRing(8);
  pregel::JobSpec<algos::PageRankTraits> spec;
  spec.options.job_id = "corpus_fatal";
  spec.options.max_supersteps = 6;
  spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MessageAfterHaltPageRank>(2);
  };
  spec.sanitizer.enabled = true;
  spec.sanitizer.fail_on_violation = true;

  InMemoryTraceStore store;
  spec.trace_store = &store;
  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->job_status.IsAborted())
      << summary->job_status.ToString();
  EXPECT_NE(summary->job_status.ToString().find("BSP contract violation"),
            std::string::npos);
  // The evidence survives the abort — that is the point of the debugger.
  auto findings = *analysis::ReadFindings(store, "corpus_fatal");
  EXPECT_FALSE(
      FindingsOfKind(findings, FindingKind::kSendAfterHalt).empty());
}

TEST(AnalysisCorpusTest, FindingsRoundTripAndAppearInRunReport) {
  auto graph = graph::GenerateRing(8);
  pregel::JobSpec<algos::PageRankTraits> spec;
  spec.options.job_id = "corpus_roundtrip";
  spec.options.max_supersteps = 4;
  spec.vertices = pregel::LoadUnweighted<algos::PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<analysis_corpus::MessageAfterHaltPageRank>(2);
  };

  InMemoryTraceStore store;
  pregel::JobRunSummary summary = RunSanitized(std::move(spec), &store);
  ASSERT_TRUE(summary.job_status.ok());
  ASSERT_GT(summary.analysis_findings, 0u);

  // Store round-trip: records under the job namespace deserialize back to
  // exactly findings_total findings.
  auto read_back = analysis::ReadFindings(store, "corpus_roundtrip");
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(read_back->size(), summary.analysis_findings);
  // Finding files live inside the superstep directories, next to traces.
  EXPECT_FALSE(
      store.ListFiles("corpus_roundtrip/superstep_000002/").empty());

  // Run report: JSON carries the analysis profile with per-kind counts.
  const std::string json = summary.stats.report.ToJson();
  EXPECT_NE(json.find("\"analysis\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"findings_by_kind\""), std::string::npos);
  EXPECT_NE(json.find("\"send_after_halt\""), std::string::npos);
  // Prometheus exposition carries the same series, labelled by kind.
  const std::string prom = summary.stats.report.ToPrometheusText();
  EXPECT_NE(prom.find("analysis_findings_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("kind=\"send_after_halt\""), std::string::npos);

  // And the text view renders them for the terminal.
  const std::string table = analysis::RenderFindingsTable(*read_back);
  EXPECT_NE(table.find("send_after_halt"), std::string::npos) << table;
}

}  // namespace
}  // namespace graft
