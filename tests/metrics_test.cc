// Tests for the obs/ subsystem: metrics primitives, registry exports
// (JSON + Prometheus golden outputs), run reports, and the engine /
// debug-runner integration that fills them.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algos/connected_components.h"
#include "debug/debug_runner.h"
#include "debug/views/text_table.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/loader.h"

namespace graft {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::RunReport;
using obs::ScopedSpan;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(AtomicDoubleTest, AddAccumulates) {
  std::atomic<double> value{1.0};
  obs::AtomicDoubleAdd(&value, 2.5);
  obs::AtomicDoubleAdd(&value, -0.5);
  EXPECT_DOUBLE_EQ(value.load(), 3.0);
}

TEST(AtomicDoubleTest, MaxKeepsLargest) {
  std::atomic<double> value{2.0};
  obs::AtomicDoubleMax(&value, 1.0);
  EXPECT_DOUBLE_EQ(value.load(), 2.0);
  obs::AtomicDoubleMax(&value, 5.0);
  EXPECT_DOUBLE_EQ(value.load(), 5.0);
}

TEST(CounterTest, ConcurrentIncrementsFromManyWorkersAllLand) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.5);
}

TEST(HistogramTest, BucketBoundariesArePrometheusStyle) {
  // Bucket i counts values <= bounds[i]; the final bucket is +Inf.
  Histogram hist({1.0, 2.0, 4.0}, /*num_shards=*/1);
  hist.Record(0.5);   // <= 1  -> bucket 0
  hist.Record(1.0);   // <= 1  -> bucket 0 (boundary is inclusive)
  hist.Record(1.5);   // <= 2  -> bucket 1
  hist.Record(4.0);   // <= 4  -> bucket 2
  hist.Record(100.0); // +Inf  -> bucket 3
  Histogram::Snapshot snap = hist.Merge();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 107.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST(HistogramTest, ShardsMergeAndOutOfRangeShardClampsToZero) {
  Histogram hist({1.0}, /*num_shards=*/3);
  hist.Record(0.5, 0);
  hist.Record(0.5, 1);
  hist.Record(0.5, 2);
  hist.Record(0.5, 7);   // clamped to shard 0
  hist.Record(0.5, -1);  // clamped to shard 0
  Histogram::Snapshot snap = hist.Merge();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.counts[0], 5u);
}

TEST(HistogramTest, ConcurrentShardedRecordsAllLand) {
  constexpr int kShards = 4;
  constexpr int kPerShard = 20000;
  Histogram hist(obs::DefaultLatencyBounds(), kShards);
  std::vector<std::thread> threads;
  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([&hist, s] {
      for (int i = 0; i < kPerShard; ++i) hist.Record(1e-3, s);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.Merge().count,
            static_cast<uint64_t>(kShards) * kPerShard);
}

TEST(ScopedSpanTest, RecordsOnceIntoHistogramAndGauge) {
  Histogram hist({1000.0}, 1);
  Gauge total;
  {
    ScopedSpan span(&hist, /*shard=*/0, &total);
    double elapsed = span.Stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_DOUBLE_EQ(span.Stop(), elapsed) << "second Stop() is a no-op";
  }  // destructor must not double-record after Stop()
  EXPECT_EQ(hist.Merge().count, 1u);
  EXPECT_DOUBLE_EQ(total.value(), hist.Merge().sum);
}

TEST(ScopedSpanTest, RecordsOnceDuringExceptionUnwind) {
  Histogram hist({1000.0}, 1);
  Gauge total;
  try {
    ScopedSpan span(&hist, /*shard=*/0, &total);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(hist.Merge().count, 1u) << "unwind closes the span exactly once";
}

TEST(ScopedSpanTest, NullSinksAreSafe) {
  ScopedSpan span(nullptr, 0, nullptr);
  EXPECT_GE(span.Stop(), 0.0);
  span.Stop();  // still a no-op on re-entry
}

// ---------------------------------------------------------------------------
// Registry + exports (golden outputs; all values exactly representable)
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetReturnsSameInstanceAndKeepsFirstBounds) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  Histogram* h = registry.GetHistogram("h", {1.0, 2.0}, 2);
  EXPECT_EQ(registry.GetHistogram("h", {9.0}, 1), h);
  EXPECT_EQ(h->bounds().size(), 2u);
  EXPECT_EQ(h->num_shards(), 2);
}

TEST(MetricsRegistryTest, PrometheusNameReplacesNonAlphanumerics) {
  EXPECT_EQ(obs::PrometheusName("engine.compute_seconds"),
            "engine_compute_seconds");
  EXPECT_EQ(obs::PrometheusName("a-b c"), "a_b_c");
  EXPECT_EQ(obs::PrometheusName("ns:ok_09AZ"), "ns:ok_09AZ");
}

TEST(MetricsRegistryTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("jobs")->Increment(3);
  registry.GetGauge("queue.depth")->Set(2);
  Histogram* hist = registry.GetHistogram("lat", {0.5, 1.5}, 1);
  hist->Record(0.5);
  hist->Record(2.0);
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{\"jobs\":3},"
            "\"gauges\":{\"queue.depth\":2},"
            "\"histograms\":{\"lat\":{\"count\":2,\"sum\":2.5,\"max\":2,"
            "\"bounds\":[0.5,1.5],\"counts\":[1,0,1]}}}");
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("jobs.total")->Increment(3);
  registry.GetGauge("queue.depth")->Set(2);
  Histogram* hist = registry.GetHistogram("lat", {0.5, 1.5}, 1);
  hist->Record(0.5);
  hist->Record(1.5);
  hist->Record(2.0);
  EXPECT_EQ(registry.ToPrometheusText("graft_"),
            "# HELP graft_jobs_total Counter jobs.total.\n"
            "# TYPE graft_jobs_total counter\n"
            "graft_jobs_total 3\n"
            "# HELP graft_queue_depth Gauge queue.depth.\n"
            "# TYPE graft_queue_depth gauge\n"
            "graft_queue_depth 2\n"
            "# HELP graft_lat Histogram lat.\n"
            "# TYPE graft_lat histogram\n"
            "graft_lat_bucket{le=\"0.5\"} 1\n"
            "graft_lat_bucket{le=\"1.5\"} 2\n"
            "graft_lat_bucket{le=\"+Inf\"} 3\n"
            "graft_lat_sum 4\n"
            "graft_lat_count 3\n");
}

TEST(MetricsRegistryTest, SetHelpOverridesGeneratedHelpText) {
  MetricsRegistry registry;
  registry.GetCounter("jobs.total")->Increment();
  registry.SetHelp("jobs.total", "Jobs ever submitted.");
  std::string text = registry.ToPrometheusText("graft_");
  EXPECT_NE(text.find("# HELP graft_jobs_total Jobs ever submitted.\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, CollidingSanitizedNamesEmitOneFamily) {
  MetricsRegistry registry;
  registry.GetCounter("a.b")->Increment(1);
  registry.GetCounter("a_b")->Increment(2);  // same sanitized id
  std::string text = registry.ToPrometheusText("g_");
  // Exactly one TYPE line for the shared id — a second one would make
  // scrapers reject the exposition.
  size_t first = text.find("# TYPE g_a_b counter");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE g_a_b counter", first + 1), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, PrometheusLabelValueEscapes) {
  EXPECT_EQ(obs::PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusLabelValue("a\nb"), "a\\nb");
}

TEST(MetricsRegistryTest, PrometheusNameGuardsLeadingDigit) {
  EXPECT_EQ(obs::PrometheusName("2pc.commits"), "_2pc_commits");
}

// ---------------------------------------------------------------------------
// RunReport exports
// ---------------------------------------------------------------------------

RunReport MakeFixedReport() {
  RunReport report;
  report.job_id = "job-1";
  report.num_workers = 2;
  report.supersteps = 1;
  report.total_seconds = 2.0;
  obs::SuperstepProfile prof;
  prof.superstep = 0;
  prof.mutation_seconds = 0.5;
  prof.delivery_wall_seconds = 0.5;
  prof.master_seconds = 0.5;
  prof.compute_wall_seconds = 0.5;
  prof.aggregator_merge_seconds = 0.5;
  prof.total_seconds = 2.0;
  obs::WorkerPhaseProfile w0;
  w0.worker = 0;
  w0.compute_seconds = 0.5;
  w0.delivery_seconds = 0.5;
  w0.barrier_wait_seconds = 0.0;
  w0.vertices_computed = 10;
  w0.messages_sent = 20;
  obs::WorkerPhaseProfile w1;
  w1.worker = 1;
  w1.compute_seconds = 0.25;
  w1.delivery_seconds = 0.25;
  w1.barrier_wait_seconds = 0.5;
  w1.vertices_computed = 5;
  w1.messages_sent = 15;
  prof.workers = {w0, w1};
  report.per_superstep.push_back(prof);
  return report;
}

TEST(RunReportTest, AggregatesSumOverSuperstepsAndWorkers) {
  RunReport report = MakeFixedReport();
  EXPECT_DOUBLE_EQ(report.TotalMutationSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(report.TotalDeliveryWallSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(report.TotalMasterSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(report.TotalComputeWallSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(report.TotalAggregatorMergeSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(report.TotalBarrierWaitSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(report.MaxSuperstepSeconds(), 2.0);
}

TEST(RunReportTest, JsonGolden) {
  RunReport report = MakeFixedReport();
  EXPECT_EQ(
      report.ToJson(),
      "{\"job_id\":\"job-1\",\"num_workers\":2,\"supersteps\":1,"
      "\"total_seconds\":2,"
      "\"phase_totals\":{\"mutation\":0.5,\"delivery\":0.5,\"master\":0.5,"
      "\"compute\":0.5,\"barrier_wait\":0.5,\"aggregator_merge\":0.5},"
      "\"per_superstep\":[{\"superstep\":0,\"mutation_seconds\":0.5,"
      "\"delivery_wall_seconds\":0.5,\"master_seconds\":0.5,"
      "\"compute_wall_seconds\":0.5,\"aggregator_merge_seconds\":0.5,"
      "\"total_seconds\":2,\"partial\":false,\"workers\":["
      "{\"worker\":0,\"compute_seconds\":0.5,\"delivery_seconds\":0.5,"
      "\"barrier_wait_seconds\":0,\"vertices_computed\":10,"
      "\"messages_sent\":20},"
      "{\"worker\":1,\"compute_seconds\":0.25,\"delivery_seconds\":0.25,"
      "\"barrier_wait_seconds\":0.5,\"vertices_computed\":5,"
      "\"messages_sent\":15}]}],"
      "\"capture\":{\"enabled\":false,\"vertex_captures\":0,"
      "\"master_captures\":0,\"violations\":0,\"exceptions\":0,"
      "\"dropped_by_limit\":0,\"serialize_seconds\":0,\"append_seconds\":0,"
      "\"overhead_seconds\":0,\"trace_bytes\":0,\"store_appends\":0,"
      "\"store_flushes\":0,\"async_sink\":false,\"flush_seconds\":0,"
      "\"spool_batches\":0,\"spool_max_queue_depth\":0,"
      "\"spool_backpressure_waits\":0},"
      "\"analysis\":{\"enabled\":false,\"fail_on_violation\":false,"
      "\"findings_total\":0,\"findings_by_kind\":{},"
      "\"determinism_probes\":0,\"determinism_mismatches\":0,"
      "\"probe_seconds\":0},"
      "\"recovery\":{\"checkpoints_enabled\":false,\"checkpoints_written\":0,"
      "\"checkpoint_bytes\":0,\"checkpoint_seconds\":0,\"restore_seconds\":0,"
      "\"topology_bytes\":0,\"log_bytes\":0,\"confined_recoveries\":0,"
      "\"recoveries\":0,\"events\":[]}}");
}

TEST(RunReportTest, PrometheusGoldenIncludesCaptureOnlyWhenEnabled) {
  RunReport report = MakeFixedReport();
  std::string text = report.ToPrometheusText("graft_");
  EXPECT_EQ(text,
            "# HELP graft_run_total_seconds Graft run report field "
            "run_total_seconds.\n"
            "# TYPE graft_run_total_seconds gauge\n"
            "graft_run_total_seconds{job=\"job-1\"} 2\n"
            "# HELP graft_run_supersteps Graft run report field "
            "run_supersteps.\n"
            "# TYPE graft_run_supersteps gauge\n"
            "graft_run_supersteps{job=\"job-1\"} 1\n"
            "# HELP graft_run_workers Graft run report field run_workers.\n"
            "# TYPE graft_run_workers gauge\n"
            "graft_run_workers{job=\"job-1\"} 2\n"
            "# HELP graft_run_phase_seconds Wall seconds per engine phase "
            "over the run.\n"
            "# TYPE graft_run_phase_seconds gauge\n"
            "graft_run_phase_seconds{job=\"job-1\",phase=\"mutation\"} 0.5\n"
            "graft_run_phase_seconds{job=\"job-1\",phase=\"delivery\"} 0.5\n"
            "graft_run_phase_seconds{job=\"job-1\",phase=\"master\"} 0.5\n"
            "graft_run_phase_seconds{job=\"job-1\",phase=\"compute\"} 0.5\n"
            "graft_run_phase_seconds{job=\"job-1\",phase=\"barrier_wait\"} "
            "0.5\n"
            "graft_run_phase_seconds{job=\"job-1\","
            "phase=\"aggregator_merge\"} 0.5\n");

  report.capture.enabled = true;
  report.capture.vertex_captures = 7;
  std::string with_capture = report.ToPrometheusText("graft_");
  EXPECT_NE(with_capture.find(
                "graft_capture_vertex_captures{job=\"job-1\"} 7\n"),
            std::string::npos);
  EXPECT_NE(with_capture.find("graft_capture_overhead_seconds"),
            std::string::npos);
}

TEST(RunReportTest, TextTableRenderersUseTheReport) {
  RunReport report = MakeFixedReport();
  std::string profile = debug::RenderSuperstepProfile(report);
  EXPECT_NE(profile.find("superstep"), std::string::npos);
  EXPECT_NE(profile.find("max_wait_ms"), std::string::npos);
  EXPECT_NE(profile.find("500.000"), std::string::npos);  // 0.5s barrier wait

  std::string workers = debug::RenderWorkerProfile(report, 0);
  EXPECT_NE(workers.find("worker"), std::string::npos);
  EXPECT_NE(workers.find("250.000"), std::string::npos);  // worker 1 compute
  EXPECT_EQ(debug::RenderWorkerProfile(report, 99), "");

  EXPECT_EQ(debug::RenderCaptureProfile(report), "") << "capture disabled";
  report.capture.enabled = true;
  report.capture.vertex_captures = 3;
  EXPECT_NE(debug::RenderCaptureProfile(report).find("vertex=3"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceStore I/O accounting
// ---------------------------------------------------------------------------

TEST(TraceStoreIoStatsTest, InMemoryStoreAccountsAppendsAndFlushes) {
  InMemoryTraceStore store;
  ASSERT_TRUE(store.Append("f", "hello").ok());
  ASSERT_TRUE(store.Append("f", "world!").ok());
  ASSERT_TRUE(store.Flush().ok());
  TraceStore::IoStats stats = store.io_stats();
  EXPECT_EQ(stats.appends, 2u);
  // 5 + 6 payload bytes plus one varint framing byte per record.
  EXPECT_EQ(stats.bytes_written, 13u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_GE(stats.append_seconds, 0.0);

  MetricsRegistry registry;
  store.ExportMetrics(&registry);
  EXPECT_EQ(registry.GetCounter("tracestore.appends_total")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("tracestore.bytes_written_total")->value(),
            13u);
  EXPECT_EQ(registry.GetCounter("tracestore.flushes_total")->value(), 1u);
}

// ---------------------------------------------------------------------------
// Engine integration: Run() must produce a populated report
// ---------------------------------------------------------------------------

using algos::CCTraits;

std::vector<pregel::Vertex<CCTraits>> RingVertices(uint64_t n) {
  return pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(n),
      [](VertexId) { return pregel::Int64Value{0}; });
}

TEST(EngineReportTest, RunFillsPerWorkerPerSuperstepProfiles) {
  pregel::Engine<CCTraits>::Options options;
  options.job_id = "report-test";
  options.num_workers = 3;
  pregel::Engine<CCTraits> engine(options, RingVertices(64),
                                  algos::MakeConnectedComponentsFactory());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status();

  const RunReport& report = stats->report;
  EXPECT_EQ(report.job_id, "report-test");
  EXPECT_EQ(report.num_workers, 3);
  EXPECT_EQ(report.supersteps, stats->supersteps);
  EXPECT_DOUBLE_EQ(report.total_seconds, stats->total_seconds);
  ASSERT_EQ(report.per_superstep.size(), stats->per_superstep.size());
  uint64_t report_messages = 0;
  uint64_t report_vertices = 0;
  for (size_t i = 0; i < report.per_superstep.size(); ++i) {
    const obs::SuperstepProfile& prof = report.per_superstep[i];
    EXPECT_EQ(prof.superstep, stats->per_superstep[i].superstep);
    EXPECT_DOUBLE_EQ(prof.total_seconds, stats->per_superstep[i].seconds);
    ASSERT_EQ(prof.workers.size(), 3u);
    uint64_t superstep_messages = 0;
    for (const obs::WorkerPhaseProfile& wp : prof.workers) {
      EXPECT_GE(wp.compute_seconds, 0.0);
      EXPECT_GE(wp.delivery_seconds, 0.0);
      EXPECT_GE(wp.barrier_wait_seconds, 0.0);
      // Per-worker busy time cannot exceed the phase wall time.
      EXPECT_LE(wp.compute_seconds, prof.compute_wall_seconds + 1e-9);
      superstep_messages += wp.messages_sent;
      report_messages += wp.messages_sent;
      report_vertices += wp.vertices_computed;
    }
    EXPECT_EQ(superstep_messages, stats->per_superstep[i].messages_sent);
  }
  EXPECT_EQ(report_messages, stats->total_messages);
  EXPECT_GT(report_messages, 0u);
  EXPECT_GE(report_vertices, 64u) << "every vertex computed at least once";
  EXPECT_FALSE(report.capture.enabled) << "no debugger attached";
}

TEST(EngineReportTest, SharedRegistryReceivesEngineMetrics) {
  MetricsRegistry registry;
  pregel::Engine<CCTraits>::Options options;
  options.job_id = "metrics-test";
  options.num_workers = 2;
  options.metrics = &registry;
  pregel::Engine<CCTraits> engine(options, RingVertices(16),
                                  algos::MakeConnectedComponentsFactory());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status();

  EXPECT_EQ(registry.GetCounter("engine.supersteps_total")->value(),
            static_cast<uint64_t>(stats->supersteps));
  EXPECT_EQ(registry.GetCounter("engine.messages_sent_total")->value(),
            stats->total_messages);
  Histogram* compute = registry.GetHistogram(
      "engine.compute_seconds", obs::DefaultLatencyBounds(), 2);
  // One sample per worker per completed superstep.
  EXPECT_EQ(compute->Merge().count,
            static_cast<uint64_t>(stats->supersteps) * 2);
  std::string prom = registry.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE graft_engine_compute_seconds histogram"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Debug-runner integration: capture overhead lands in the report
// ---------------------------------------------------------------------------

TEST(EngineReportTest, DebugRunFillsCaptureProfile) {
  MetricsRegistry registry;
  debug::ConfigurableDebugConfig<CCTraits> config;
  config.set_capture_all_active(true);
  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "capture-test";
  spec.options.num_workers = 2;
  spec.options.metrics = &registry;
  spec.vertices = RingVertices(16);
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = debug::RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  debug::DebugRunSummary summary = std::move(summary_or).value();
  ASSERT_TRUE(summary.job_status.ok()) << summary.job_status;

  const obs::CaptureProfile& capture = summary.stats.report.capture;
  EXPECT_TRUE(capture.enabled);
  EXPECT_EQ(capture.vertex_captures, summary.captures);
  EXPECT_GT(capture.vertex_captures, 0u);
  EXPECT_EQ(capture.trace_bytes, summary.trace_bytes);
  EXPECT_GT(capture.serialize_seconds, 0.0);
  EXPECT_GT(capture.append_seconds, 0.0);
  EXPECT_DOUBLE_EQ(capture.OverheadSeconds(),
                   capture.serialize_seconds + capture.append_seconds);
  // The store saw every capture append plus exactly one more: the job's
  // manifest index, which is bookkeeping rather than captured data.
  EXPECT_EQ(capture.store_appends + 1, store.io_stats().appends);
  EXPECT_GT(capture.store_appends, 0u);

  // The shared registry got both the engine and the capture metrics.
  EXPECT_EQ(registry.GetCounter("capture.vertex_captures_total")->value(),
            summary.captures);
  EXPECT_EQ(registry.GetCounter("tracestore.appends_total")->value(),
            store.io_stats().appends);

  // The report round-trips through JSON with the capture block enabled.
  EXPECT_NE(summary.stats.report.ToJson().find("\"enabled\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace graft
