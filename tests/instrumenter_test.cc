// Tests for the capture pipeline: DebugConfig, CaptureManager target
// resolution, and the Instrumenter's five capture categories (§3.1),
// superstep filters, capture-all-active, the max-captures safety net, and
// exception abort/continue policies.
#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "debug/debug_runner.h"
#include "debug/trace_reader.h"
#include "graph/generators.h"
#include "io/trace_store.h"
#include "pregel/loader.h"

namespace graft {
namespace debug {
namespace {

using algos::CCTraits;
using pregel::Int64Value;

std::vector<pregel::Vertex<CCTraits>> RingVertices(uint64_t n) {
  return pregel::LoadUnweighted<CCTraits>(
      graph::GenerateRing(n), [](VertexId) { return Int64Value{0}; });
}

DebugRunSummary RunCC(const DebugConfig<CCTraits>& config,
                      InMemoryTraceStore* store, uint64_t n = 12,
                      const std::string& job = "job") {
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = job;
  spec.options.num_workers = 2;
  spec.vertices = RingVertices(n);
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = store;
  auto summary = RunWithGraft(std::move(spec));
  EXPECT_TRUE(summary.ok()) << summary.status();
  return std::move(summary).value();
}

std::set<VertexId> CapturedIds(const TraceStore& store,
                               const std::string& job, int64_t superstep) {
  auto traces = ReadVertexTraces<CCTraits>(store, job, superstep);
  EXPECT_TRUE(traces.ok());
  std::set<VertexId> ids;
  for (const auto& t : traces.value()) ids.insert(t.id);
  return ids;
}

// ----------------------------------------------------- category 1: by id --

TEST(InstrumenterTest, CapturesSpecifiedVerticesEverySuperstep) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({5});
  InMemoryTraceStore store;
  auto summary = RunCC(config, &store);
  ASSERT_TRUE(summary.job_status.ok());
  auto supersteps = ListCapturedSupersteps(store, "job");
  EXPECT_GE(supersteps.size(), 2u);
  for (int64_t s : supersteps) {
    // Vertex 5 computes in supersteps 0 and 1 on a ring (value settles).
    EXPECT_EQ(CapturedIds(store, "job", s), std::set<VertexId>{5});
  }
}

TEST(InstrumenterTest, CapturedTraceHasReasonSpecified) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({5});
  InMemoryTraceStore store;
  RunCC(config, &store);
  auto trace = ReadVertexTrace<CCTraits>(store, "job", 0, 5);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->reasons, kReasonSpecified);
  EXPECT_FALSE(trace->edges_snapshot_post);
  EXPECT_EQ(trace->incoming.size(), 0u);   // superstep 0: no messages
  EXPECT_EQ(trace->outgoing.size(), 2u);   // sends to both ring neighbors
  EXPECT_EQ(trace->total_vertices, 12);
  EXPECT_EQ(trace->total_edges, 24);
}

// ----------------------------------------------- category 2: random + nbr --

TEST(InstrumenterTest, RandomCaptureIsSeededAndSized) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_num_random(3).set_random_seed(11);
  InMemoryTraceStore store_a, store_b;
  RunCC(config, &store_a, 30, "a");
  RunCC(config, &store_b, 30, "b");
  auto ids_a = CapturedIds(store_a, "a", 0);
  EXPECT_EQ(ids_a.size(), 3u);
  EXPECT_EQ(ids_a, CapturedIds(store_b, "b", 0)) << "random picks not seeded";

  ConfigurableDebugConfig<CCTraits> other_seed;
  other_seed.set_num_random(3).set_random_seed(12);
  InMemoryTraceStore store_c;
  RunCC(other_seed, &store_c, 30, "c");
  EXPECT_NE(ids_a, CapturedIds(store_c, "c", 0));
}

TEST(InstrumenterTest, RandomCaptureClampsToGraphSize) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_num_random(100);
  InMemoryTraceStore store;
  RunCC(config, &store, 12);
  EXPECT_EQ(CapturedIds(store, "job", 0).size(), 12u);
}

TEST(InstrumenterTest, NeighborsCapturedWithNeighborReason) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_vertices({6}).set_capture_neighbors(true);
  InMemoryTraceStore store;
  RunCC(config, &store);
  EXPECT_EQ(CapturedIds(store, "job", 0), (std::set<VertexId>{5, 6, 7}));
  auto nbr = ReadVertexTrace<CCTraits>(store, "job", 0, 7);
  ASSERT_TRUE(nbr.ok());
  EXPECT_EQ(nbr->reasons, kReasonNeighbor);
}

// ------------------------------------------ category 3: vertex-value rule --

TEST(InstrumenterTest, VertexValueConstraintCapturesViolatorsOnly) {
  // CC values become the min id; constraint "value must be >= 3" is
  // violated by vertices adopting components 0..2.
  ConfigurableDebugConfig<CCTraits> config;
  config.set_vertex_value_constraint(
      [](const Int64Value& v, VertexId, int64_t) { return v.value >= 3; });
  InMemoryTraceStore store;
  auto summary = RunCC(config, &store);
  ASSERT_TRUE(summary.job_status.ok());
  EXPECT_GT(summary.violations, 0u);
  // Superstep 0: every vertex keeps its own id as value; violators are
  // exactly ids 0,1,2.
  EXPECT_EQ(CapturedIds(store, "job", 0), (std::set<VertexId>{0, 1, 2}));
  auto trace = ReadVertexTrace<CCTraits>(store, "job", 0, 1);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->reasons, kReasonVertexValue);
  EXPECT_TRUE(trace->edges_snapshot_post);  // lazily captured
  ASSERT_EQ(trace->violations.size(), 1u);
  EXPECT_EQ(trace->violations[0].kind, ViolationInfo::Kind::kVertexValue);
  EXPECT_EQ(trace->violations[0].detail, "1");
}

// ---------------------------------------------- category 4: message rule --

TEST(InstrumenterTest, MessageConstraintRecordsPerMessageViolations) {
  // Constraint: never send a value < 2. On a ring at superstep 0, vertices
  // 0 and 1 send their own ids (< 2) to both neighbors -> 4 violations.
  ConfigurableDebugConfig<CCTraits> config;
  config.set_message_value_constraint(
      [](const Int64Value& m, VertexId, VertexId, int64_t) {
        return m.value >= 2;
      });
  InMemoryTraceStore store;
  auto summary = RunCC(config, &store);
  ASSERT_TRUE(summary.job_status.ok());
  auto captured = CapturedIds(store, "job", 0);
  EXPECT_EQ(captured, (std::set<VertexId>{0, 1}));
  auto trace = ReadVertexTrace<CCTraits>(store, "job", 0, 0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->reasons, kReasonMessageValue);
  EXPECT_EQ(trace->violations.size(), 2u);  // one per neighbor send
  EXPECT_EQ(trace->violations[0].kind, ViolationInfo::Kind::kMessageValue);
  EXPECT_EQ(trace->violations[0].source, 0);
}

// ------------------------------------------------ category 5: exceptions --

struct ThrowingTraits {
  using VertexValue = Int64Value;
  using EdgeValue = pregel::NullValue;
  using Message = Int64Value;
};

class ThrowAtVertex : public pregel::Computation<ThrowingTraits> {
 public:
  explicit ThrowAtVertex(VertexId bad) : bad_(bad) {}
  void Compute(pregel::ComputeContext<ThrowingTraits>& ctx,
               pregel::Vertex<ThrowingTraits>& vertex,
               const std::vector<Int64Value>&) override {
    (void)ctx;
    if (vertex.id() == bad_) {
      throw pregel::VertexComputeError("numeric overflow in walker count");
    }
    vertex.VoteToHalt();
  }

 private:
  VertexId bad_;
};

TEST(InstrumenterTest, ExceptionCapturedAndJobAborts) {
  ConfigurableDebugConfig<ThrowingTraits> config;  // defaults: abort
  InMemoryTraceStore store;
  pregel::JobSpec<ThrowingTraits> spec;
  spec.options.job_id = "exc";
  spec.vertices = pregel::LoadUnweighted<ThrowingTraits>(
      graph::GenerateRing(8), [](VertexId) { return Int64Value{0}; });
  spec.computation = [] { return std::make_unique<ThrowAtVertex>(4); };
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  DebugRunSummary summary = std::move(summary_or).value();
  EXPECT_TRUE(summary.job_status.IsAborted());
  EXPECT_EQ(summary.exceptions, 1u);
  auto trace = ReadVertexTrace<ThrowingTraits>(store, "exc", 0, 4);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->reasons, kReasonException);
  ASSERT_TRUE(trace->exception.has_value());
  EXPECT_EQ(trace->exception->message, "numeric overflow in walker count");
  EXPECT_NE(trace->exception->context.find("vertex=4"), std::string::npos);
}

TEST(InstrumenterTest, ExceptionContinueModeKeepsJobAlive) {
  ConfigurableDebugConfig<ThrowingTraits> config;
  config.set_abort_on_exception(false);
  InMemoryTraceStore store;
  pregel::JobSpec<ThrowingTraits> spec;
  spec.options.job_id = "exc2";
  spec.options.max_supersteps = 5;
  spec.vertices = pregel::LoadUnweighted<ThrowingTraits>(
      graph::GenerateRing(8), [](VertexId) { return Int64Value{0}; });
  spec.computation = [] { return std::make_unique<ThrowAtVertex>(4); };
  spec.debug_config = &config;
  spec.trace_store = &store;
  auto summary_or = RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  DebugRunSummary summary = std::move(summary_or).value();
  EXPECT_TRUE(summary.job_status.ok()) << summary.job_status;
  EXPECT_GE(summary.exceptions, 1u);
}

// ------------------------------------------------------- all-active mode --

TEST(InstrumenterTest, CaptureAllActiveWithSuperstepFilter) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_capture_all_active(true).set_superstep_filter(
      [](int64_t s) { return s >= 1; });
  InMemoryTraceStore store;
  auto summary = RunCC(config, &store);
  ASSERT_TRUE(summary.job_status.ok());
  auto supersteps = ListCapturedSupersteps(store, "job");
  ASSERT_FALSE(supersteps.empty());
  EXPECT_GE(supersteps.front(), 1) << "superstep 0 should be filtered out";
  // In superstep 1 every ring vertex is active (all got messages).
  EXPECT_EQ(CapturedIds(store, "job", 1).size(), 12u);
  auto trace = ReadVertexTrace<CCTraits>(store, "job", 1, 0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->reasons, kReasonAllActive);
}

// ---------------------------------------------------- max-capture safety --

TEST(InstrumenterTest, MaxCapturesStopsCapturing) {
  ConfigurableDebugConfig<CCTraits> config;
  config.set_capture_all_active(true).set_max_captures(7);
  InMemoryTraceStore store;
  auto summary = RunCC(config, &store);
  ASSERT_TRUE(summary.job_status.ok());
  EXPECT_EQ(summary.captures, 7u);
  EXPECT_GT(summary.dropped_by_capture_limit, 0u);
  uint64_t total = 0;
  for (int64_t s : ListCapturedSupersteps(store, "job")) {
    total += CapturedIds(store, "job", s).size();
  }
  EXPECT_EQ(total, 7u);
}

// ------------------------------------------------------------- purity ----

TEST(InstrumenterTest, NoConfigNoTraces) {
  ConfigurableDebugConfig<CCTraits> config;  // nothing configured
  InMemoryTraceStore store;
  auto summary = RunCC(config, &store);
  ASSERT_TRUE(summary.job_status.ok());
  EXPECT_EQ(summary.captures, 0u);
  EXPECT_EQ(summary.violations, 0u);
  EXPECT_EQ(store.ListFiles("").size(), 0u);
}

TEST(InstrumenterTest, InstrumentationDoesNotChangeResults) {
  // The instrumented run must produce the same final values as a plain run.
  auto plain = algos::RunConnectedComponents(
      graph::MakeUndirected(graph::GeneratePowerLaw(80, 2, 5)));
  ASSERT_TRUE(plain.ok());
  ConfigurableDebugConfig<CCTraits> config;
  config.set_capture_all_active(true);
  InMemoryTraceStore store;
  pregel::JobSpec<CCTraits> spec;
  spec.options.job_id = "pure";
  auto g = graph::MakeUndirected(graph::GeneratePowerLaw(80, 2, 5));
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      g, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  spec.debug_config = &config;
  spec.trace_store = &store;
  std::map<VertexId, int64_t> instrumented_values;
  spec.post_run = [&](pregel::Engine<CCTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<CCTraits>& v) {
      instrumented_values[v.id()] = v.value().value;
    });
  };
  auto summary = RunWithGraft(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok());
  EXPECT_EQ(instrumented_values, plain->component);
}

// -------------------------------------------------------- master capture --

TEST(CaptureManagerTest, TraceFileNamingConvention) {
  EXPECT_EQ(VertexTraceFile("my-job", 41, 3),
            "my-job/superstep_000041/worker_003.vtrace");
  EXPECT_EQ(MasterTraceFile("my-job", 7),
            "my-job/superstep_000007/master.mtrace");
  EXPECT_EQ(JobTracePrefix("my-job"), "my-job/");
}

TEST(CaptureManagerTest, CaptureReasonsRendering) {
  EXPECT_EQ(CaptureReasonsToString(0), "none");
  EXPECT_EQ(CaptureReasonsToString(kReasonSpecified | kReasonException),
            "spec|exc");
  EXPECT_EQ(CaptureReasonsToString(kReasonAllActive), "active");
}

}  // namespace
}  // namespace debug
}  // namespace graft
