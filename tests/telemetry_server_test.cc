// Telemetry server suite (ISSUE 6 tentpole layer 2): pure Handle() routing,
// a real socket round-trip against the ephemeral port, the JobRegistry
// publish/read protocol, Prometheus exposition shape of /metrics, and a full
// RunJob integration that polls the live report at a superstep barrier.
#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "algos/pagerank.h"
#include "graph/generators.h"
#include "obs/event_journal.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/job.h"
#include "pregel/loader.h"
#include "tiny_json.h"

namespace graft {
namespace {

using algos::PageRankTraits;
using obs::EventJournal;
using obs::JobEntry;
using obs::JobRegistry;
using obs::JobState;
using obs::MetricsRegistry;
using obs::RunReport;
using obs::TelemetryServer;
using obs::TelemetryServerOptions;
using pregel::DoubleValue;

/// Blocking one-shot HTTP GET against 127.0.0.1:<port>; returns the raw
/// response (status line + headers + body), or "" on any socket error.
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

struct ServerFixture {
  MetricsRegistry metrics;
  JobRegistry registry;
  std::unique_ptr<TelemetryServer> server;

  ServerFixture() {
    TelemetryServerOptions options;
    options.metrics = &metrics;
    options.registry = &registry;
    auto started = TelemetryServer::Start(std::move(options));
    EXPECT_TRUE(started.ok()) << started.status();
    if (started.ok()) server = std::move(*started);
  }
};

TEST(TelemetryServerTest, StartsOnEphemeralPort) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  EXPECT_GT(fx.server->port(), 0);
  EXPECT_EQ(fx.server->host(), "127.0.0.1");
  fx.server->Stop();
  fx.server->Stop();  // idempotent
}

TEST(TelemetryServerTest, HandleRoutesHealthz) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  auto r = fx.server->Handle("GET", "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");
  // Query strings and fragments are stripped before routing.
  EXPECT_EQ(fx.server->Handle("GET", "/healthz?verbose=1").status, 200);
  EXPECT_EQ(fx.server->Handle("HEAD", "/healthz").status, 200);
}

TEST(TelemetryServerTest, HandleRejectsUnknownAndNonGet) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  EXPECT_EQ(fx.server->Handle("GET", "/nope").status, 404);
  EXPECT_EQ(fx.server->Handle("GET", "/jobs/absent/report").status, 404);
  EXPECT_EQ(fx.server->Handle("GET", "/jobs/absent/events").status, 404);
  EXPECT_EQ(fx.server->Handle("GET", "/jobs//report").status, 404);
  EXPECT_EQ(fx.server->Handle("POST", "/healthz").status, 405);
  EXPECT_EQ(fx.server->Handle("PUT", "/metrics").status, 405);
}

TEST(TelemetryServerTest, HandleServesJobsDirectoryAndReport) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  auto entry = fx.registry.Register("job-a");
  entry->MarkRunning();
  RunReport report;
  report.job_id = "job-a";
  report.supersteps = 4;
  report.num_workers = 2;
  entry->PublishReport(report);

  auto jobs = fx.server->Handle("GET", "/jobs");
  EXPECT_EQ(jobs.status, 200);
  testjson::ValuePtr doc = testjson::ParseJson(jobs.body);
  ASSERT_NE(doc, nullptr) << jobs.body;
  const testjson::Value* list = doc->Get("jobs");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items.size(), 1u);
  EXPECT_EQ(list->items[0]->Get("job_id")->str, "job-a");
  EXPECT_EQ(list->items[0]->Get("state")->str, "running");
  EXPECT_EQ(static_cast<int>(list->items[0]->Get("superstep")->number), 4);

  auto rep = fx.server->Handle("GET", "/jobs/job-a/report");
  EXPECT_EQ(rep.status, 200);
  testjson::ValuePtr rep_doc = testjson::ParseJson(rep.body);
  ASSERT_NE(rep_doc, nullptr) << rep.body;
  EXPECT_EQ(static_cast<int>(rep_doc->Get("supersteps")->number), 4);

  // /jobs/<id> without a trailing segment serves the report too.
  EXPECT_EQ(fx.server->Handle("GET", "/jobs/job-a").body, rep.body);
}

TEST(TelemetryServerTest, HandleServesJournalEvents) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  EventJournal journal(256, 1);
  journal.Span("compute", "worker", 0, 1, journal.NowNs(), 7);
  auto entry = fx.registry.Register("job-j");
  entry->AttachJournal(&journal);
  entry->MarkRunning();

  auto events = fx.server->Handle("GET", "/jobs/job-j/events");
  EXPECT_EQ(events.status, 200);
  EXPECT_EQ(events.content_type, "application/json");
  testjson::ValuePtr doc = testjson::ParseJson(events.body);
  ASSERT_NE(doc, nullptr) << events.body;
  ASSERT_TRUE(doc->Get("traceEvents")->is_array());

  // After detach the cached export still serves.
  entry->Finish(true, "OK");
  entry->DetachJournal();
  auto cached = fx.server->Handle("GET", "/jobs/job-j/events");
  EXPECT_EQ(cached.status, 200);
  testjson::ValuePtr cached_doc = testjson::ParseJson(cached.body);
  ASSERT_NE(cached_doc, nullptr);
  bool saw_compute = false;
  for (const auto& e : cached_doc->Get("traceEvents")->items) {
    const testjson::Value* name = e->Get("name");
    if (name != nullptr && name->str == "compute") saw_compute = true;
  }
  EXPECT_TRUE(saw_compute);
}

TEST(TelemetryServerTest, MetricsEndpointServesPrometheusText) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  fx.metrics.GetCounter("engine.supersteps_total")->Increment(3);
  auto entry = fx.registry.Register("job-m");
  entry->MarkRunning();
  RunReport report;
  report.job_id = "job-m";
  report.supersteps = 2;
  entry->PublishReport(report);

  auto r = fx.server->Handle("GET", "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("graft_engine_supersteps_total 3"), std::string::npos)
      << r.body;
  EXPECT_NE(r.body.find("graft_job_superstep{job_id=\"job-m\"} 2"),
            std::string::npos)
      << r.body;
  // HELP/TYPE appear exactly once per family even with jobs present.
  std::istringstream lines(r.body);
  std::string line;
  std::set<std::string> help_seen;
  while (std::getline(lines, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(help_seen.insert(family).second)
          << "duplicate HELP for " << family;
    }
  }
}

TEST(TelemetryServerTest, SocketRoundTrip) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  std::string response = HttpGet(fx.server->port(), "/healthz");
  ASSERT_FALSE(response.empty());
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_EQ(BodyOf(response), "ok\n");

  std::string missing = HttpGet(fx.server->port(), "/jobs/ghost/report");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;
  EXPECT_GE(fx.server->requests_served(), 2u);
}

TEST(TelemetryServerTest, RunJobIntegrationServesLiveProgress) {
  ServerFixture fx;
  ASSERT_NE(fx.server, nullptr);
  const uint16_t port = fx.server->port();

  auto graph = graph::MakeUndirected(
      graph::GenerateErdosRenyi(80, 200, /*seed=*/3));
  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = 2;
  spec.options.job_id = "live-job";
  spec.vertices = pregel::LoadUnweighted<PageRankTraits>(
      graph, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [] {
    return std::make_unique<algos::PageRankComputation>(/*max_iterations=*/5);
  };
  spec.master = []() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<algos::PageRankMaster>(/*max_iterations=*/5);
  };
  spec.telemetry.journal = true;
  spec.telemetry.registry = &fx.registry;

  // Poll the live report over HTTP from inside a superstep barrier: the
  // engine is paused at the barrier, so the observed superstep is exact and
  // the check cannot flake on scheduling.
  struct BarrierPoller : pregel::Engine<PageRankTraits>::SuperstepObserver {
    uint16_t port = 0;
    int64_t observed_at_barrier = -1;
    bool metrics_ok_mid_run = false;
    void OnSuperstepEnd(int64_t superstep,
                        const pregel::SuperstepStats&) override {
      if (superstep != 2) return;
      std::string rep = BodyOf(HttpGet(port, "/jobs/live-job/report"));
      testjson::ValuePtr doc = testjson::ParseJson(rep);
      if (doc != nullptr && doc->Get("supersteps") != nullptr) {
        observed_at_barrier =
            static_cast<int64_t>(doc->Get("supersteps")->number);
      }
      std::string metrics = HttpGet(port, "/metrics");
      metrics_ok_mid_run =
          metrics.find("graft_job_superstep{job_id=\"live-job\"}") !=
          std::string::npos;
    }
  };
  BarrierPoller poller;
  poller.port = port;
  spec.pre_run = [&poller](pregel::Engine<PageRankTraits>& engine) {
    engine.AddObserver(&poller);
  };

  auto summary = pregel::RunJob(std::move(spec));
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_TRUE(summary->job_status.ok()) << summary->job_status;

  // Barrier for superstep 2 publishes supersteps = 3 before observers run.
  EXPECT_EQ(poller.observed_at_barrier, 3);
  EXPECT_TRUE(poller.metrics_ok_mid_run);

  // After the job: final report and cached events still served.
  auto entry = fx.registry.Find("live-job");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state(), JobState::kDone);
  std::string final_report = BodyOf(HttpGet(port, "/jobs/live-job/report"));
  testjson::ValuePtr report_doc = testjson::ParseJson(final_report);
  ASSERT_NE(report_doc, nullptr) << final_report;
  EXPECT_EQ(static_cast<int64_t>(report_doc->Get("supersteps")->number),
            summary->stats.supersteps);
  std::string events = BodyOf(HttpGet(port, "/jobs/live-job/events"));
  testjson::ValuePtr events_doc = testjson::ParseJson(events);
  ASSERT_NE(events_doc, nullptr);
  EXPECT_FALSE(events_doc->Get("traceEvents")->items.empty());
}

}  // namespace
}  // namespace graft
