#!/usr/bin/env python3
"""bsp_lint: static BSP-determinism lint for Graft vertex programs.

The dynamic half of the analysis layer (src/analysis, DESIGN.md §9) catches
contract violations at runtime; this is the static half. It flags source
constructs inside vertex/master programs that make a BSP computation
nondeterministic or unreplayable — precisely the ones the runtime determinism
probe would later surface as kNondeterminism findings, caught before the job
ever runs:

  libc-rand          rand()/srand()/drand48(): global-state RNG, invisible to
                     the capture layer; use ctx.rng() (common/random.h).
  raw-rng            std::random_device / self-seeded std::mt19937: per-run
                     entropy breaks replay; use ctx.rng().
  wall-clock         time()/clock()/chrono ::now(): wall-clock reads differ
                     between a run and its replay.
  unordered-agg      iterating an unordered_{map,set} in code that feeds
                     ctx.Aggregate(): the fold order (and any float sum) then
                     depends on hash-table layout.
  raw-new            raw `new` inside a Compute() body: per-vertex manual
                     ownership leaks on the engine's error paths; use
                     std::make_unique or a value member.
  predicate-dsl      breakpoint/minimizer predicate strings that do not parse
                     under the predicate DSL grammar (src/analysis/predicate.h
                     §14); caught at lint time instead of at job submit.
  fp-agg             Aggregate() of a float/double value: floating-point
                     reduction is not associative, so the aggregated result
                     depends on merge order. Annotate deliberate uses.
  unordered-iter     range-for over a std::unordered_{map,set} inside
                     Compute(): any side effect ordered by the walk (messages,
                     mutations) replays differently across layouts.

Suppress a deliberate use with a trailing or preceding-line comment:
    // bsp-lint: allow(libc-rand)

Usage:
    tools/bsp_lint.py [paths...]          # default: src/algos examples
    tools/bsp_lint.py --expect-findings tests/analysis_corpus
        (self-test mode: exits 0 only if at least one finding IS present)
    tools/bsp_lint.py --expect-rules predicate-dsl,fp-agg [paths...]
        (self-test mode: every named rule must fire at least once)
    tools/bsp_lint.py --clang-query-gate [paths...]
        (required AST gate: clang-query matches diffed against
         tools/clang_query_baseline.txt, run_clang_tidy-style ratchet)

Exits 1 when findings are present (0 in the self-test modes), so CI can gate
on it directly. Without --clang-query-gate, a clang-query on PATH still runs
as an advisory AST pass; the regex rules never depend on it.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src/algos", "examples"]
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
CLANG_QUERY_BASELINE = REPO_ROOT / "tools" / "clang_query_baseline.txt"

ALLOW_RE = re.compile(r"//\s*bsp-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

# Single-line rules: (rule name, regex, message). Matches inside string
# literals and comments are filtered out before these run.
LINE_RULES = [
    (
        "libc-rand",
        re.compile(r"(?<![\w:.>])(?:rand|srand|drand48|lrand48|random)\s*\("),
        "libc RNG draws from hidden global state; use ctx.rng() "
        "(common/random.h) so the value replays",
    ),
    (
        "raw-rng",
        re.compile(r"std::random_device|std::mt19937(?:_64)?\s*\w*\s*[({;]"),
        "per-run entropy / self-seeded engines break trace replay; "
        "use ctx.rng()",
    ),
    (
        "wall-clock",
        re.compile(
            r"(?:std::chrono::\w+_clock::now\s*\(|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0|&)|(?<![\w:.>])clock\s*\(\s*\)|gettimeofday\s*\()"
        ),
        "wall-clock reads differ between a run and its replay; derive "
        "timing-like behavior from ctx.superstep()",
    ),
]


# --- predicate-DSL validation -------------------------------------------
#
# A faithful Python port of the grammar in src/analysis/predicate.{h,cc}:
#
#   expr := or ; or := and {"||" and} ; and := eq {"&&" eq}
#   eq   := rel {("=="|"!=") rel} ; rel := sum {("<"|"<="|">"|">=") sum}
#   sum  := term {("+"|"-") term} ; term := unary {("*"|"/"|"%") unary}
#   unary := "!" unary | "-" unary | primary
#   primary := number | "true" | "false" | var | agg "(" string ")"
#            | "(" expr ")"
#
# Two types (num, bool), type-checked per operator; the top level must be a
# condition (bool). Keep in sync with predicate.cc — predicate_test.cc pins
# both sides to the same accept/reject table.

PREDICATE_VARS = {
    "value": "num", "value_before": "num", "superstep": "num", "id": "num",
    "out_degree": "num", "in_degree": "num", "violations": "num",
    "worker": "num", "halted": "bool", "has_exception": "bool",
}
PREDICATE_MAX_DEPTH = 64

_PRED_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)"
    r"|(?P<ident>[A-Za-z_]\w*)"
    r'|(?P<str>"[^"]*")'
    r"|(?P<op>\|\||&&|==|!=|<=|>=|[<>+\-*/%!()])"
    r"|(?P<bad>\S))"
)


class PredicateError(ValueError):
    pass


def _pred_tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _PRED_TOKEN_RE.match(text, pos)
        if m is None:
            break
        if m.group("bad"):
            raise PredicateError(f"bad token '{m.group('bad')}' at offset {m.start('bad')}")
        if m.group("num"):
            tokens.append(("num", m.group("num")))
        elif m.group("ident"):
            tokens.append(("ident", m.group("ident")))
        elif m.group("str"):
            tokens.append(("str", m.group("str")[1:-1]))
        else:
            tokens.append(("op", m.group("op")))
        pos = m.end()
    tokens.append(("end", ""))
    return tokens


class _PredicateParser:
    """Type-checking recursive-descent parser; raises PredicateError."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.i = 0
        self.depth = 0

    def peek_op(self) -> str | None:
        kind, text = self.tokens[self.i]
        return text if kind == "op" else None

    def eat_op(self, *ops: str) -> str | None:
        if self.peek_op() in ops:
            op = self.tokens[self.i][1]
            self.i += 1
            return op
        return None

    def enter(self):
        self.depth += 1
        if self.depth > PREDICATE_MAX_DEPTH:
            raise PredicateError(f"nesting deeper than {PREDICATE_MAX_DEPTH}")

    def parse(self) -> str:
        t = self.parse_or()
        kind, text = self.tokens[self.i]
        if kind != "end":
            raise PredicateError(f"trailing input at '{text}'")
        if t != "bool":
            raise PredicateError("expression is a number, not a condition (add a comparison)")
        return t

    def parse_or(self) -> str:
        t = self.parse_and()
        while self.eat_op("||"):
            r = self.parse_and()
            if t != "bool" or r != "bool":
                raise PredicateError("type mismatch: '||' needs bool operands")
        return t

    def parse_and(self) -> str:
        t = self.parse_eq()
        while self.eat_op("&&"):
            r = self.parse_eq()
            if t != "bool" or r != "bool":
                raise PredicateError("type mismatch: '&&' needs bool operands")
        return t

    def parse_eq(self) -> str:
        t = self.parse_rel()
        while True:
            op = self.eat_op("==", "!=")
            if not op:
                return t
            r = self.parse_rel()
            if t != r:
                raise PredicateError(f"type mismatch: '{op}' applied to {t} and {r}")
            t = "bool"

    def parse_rel(self) -> str:
        t = self.parse_sum()
        while True:
            op = self.eat_op("<", "<=", ">", ">=")
            if not op:
                return t
            r = self.parse_sum()
            if t != "num" or r != "num":
                raise PredicateError(f"type mismatch: '{op}' needs num operands")
            t = "bool"

    def parse_sum(self) -> str:
        t = self.parse_term()
        while True:
            op = self.eat_op("+", "-")
            if not op:
                return t
            r = self.parse_term()
            if t != "num" or r != "num":
                raise PredicateError(f"type mismatch: '{op}' needs num operands")
            t = "num"

    def parse_term(self) -> str:
        t = self.parse_unary()
        while True:
            op = self.eat_op("*", "/", "%")
            if not op:
                return t
            r = self.parse_unary()
            if t != "num" or r != "num":
                raise PredicateError(f"type mismatch: '{op}' needs num operands")
            t = "num"

    def parse_unary(self) -> str:
        if self.eat_op("!"):
            self.enter()
            t = self.parse_unary()
            self.depth -= 1
            if t != "bool":
                raise PredicateError("type mismatch: '!' needs a bool operand")
            return "bool"
        if self.eat_op("-"):
            self.enter()
            t = self.parse_unary()
            self.depth -= 1
            if t != "num":
                raise PredicateError("type mismatch: unary '-' needs a num operand")
            return "num"
        return self.parse_primary()

    def parse_primary(self) -> str:
        kind, text = self.tokens[self.i]
        if kind == "num":
            self.i += 1
            return "num"
        if kind == "ident":
            self.i += 1
            if text in ("true", "false"):
                return "bool"
            if text == "agg":
                if not self.eat_op("("):
                    raise PredicateError("agg needs a quoted aggregator name: agg(\"name\")")
                k, _ = self.tokens[self.i]
                if k != "str":
                    raise PredicateError("agg needs a quoted aggregator name: agg(\"name\")")
                self.i += 1
                if not self.eat_op(")"):
                    raise PredicateError("missing ')' after agg(\"name\"")
                return "num"
            if text not in PREDICATE_VARS:
                raise PredicateError(f"unknown variable '{text}'")
            return PREDICATE_VARS[text]
        if kind == "op" and text == "(":
            self.i += 1
            self.enter()
            t = self.parse_or()
            self.depth -= 1
            if not self.eat_op(")"):
                raise PredicateError("missing ')'")
            return t
        raise PredicateError(f"expected a value at '{text or 'end of input'}'")


def validate_predicate(text: str) -> str | None:
    """None when `text` is a valid DSL predicate, else the parse error."""
    try:
        _PredicateParser(_pred_tokenize(text)).parse()
        return None
    except PredicateError as err:
        return str(err)


# Sites whose string argument must parse as a DSL predicate. The capture is
# the raw C++ string literal (escapes resolved below).
PREDICATE_SITES = [
    re.compile(r'\.breakpoint\s*=\s*"((?:[^"\\]|\\.)*)"'),
    re.compile(r'Predicate::(?:Compile|Validate)\s*\(\s*"((?:[^"\\]|\\.)*)"'),
    re.compile(r'"predicate"\s*:\s*"((?:[^"\\]|\\.)*)"'),
]


def unescape_cpp(literal: str) -> str:
    return re.sub(r"\\(.)", r"\1", literal)


def strip_noncode(line: str) -> str:
    """Blanks out string literals, char literals, and // comments so the
    rules only see code. (Block comments are handled per-file.)"""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def strip_block_comments(text: str) -> str:
    """Replaces /* ... */ spans with spaces, preserving newlines."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)


def allowed_rules(raw_lines: list[str], idx: int) -> set[str]:
    """Suppressions on the flagged line or the line right above it."""
    rules: set[str] = set()
    for line in raw_lines[max(0, idx - 1) : idx + 1]:
        m = ALLOW_RE.search(line)
        if m:
            rules.update(r.strip() for r in m.group(1).split(","))
    return rules


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str, code: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.code = code

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT) if self.path.is_relative_to(REPO_ROOT) else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}\n    {self.code.strip()}"


def compute_body_ranges(code_lines: list[str]) -> list[tuple[int, int]]:
    """Approximate line ranges (0-based, inclusive) of Compute() bodies by
    brace counting from each `Compute(` signature."""
    ranges = []
    sig = re.compile(r"\bCompute\s*\(")
    i = 0
    while i < len(code_lines):
        if sig.search(code_lines[i]):
            depth, j, started = 0, i, False
            while j < len(code_lines):
                depth += code_lines[j].count("{") - code_lines[j].count("}")
                if "{" in code_lines[j]:
                    started = True
                if started and depth <= 0:
                    break
                j += 1
            if started:
                ranges.append((i, j))
                i = j
        i += 1
    return ranges


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"bsp_lint: cannot read {path}: {err}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    code_lines = [strip_noncode(l) for l in strip_block_comments(text).splitlines()]
    findings: list[Finding] = []

    for idx, code in enumerate(code_lines):
        for rule, pattern, message in LINE_RULES:
            if pattern.search(code) and rule not in allowed_rules(raw_lines, idx):
                findings.append(Finding(path, idx + 1, rule, message, raw_lines[idx]))

    # raw-new: only inside Compute() bodies; placement-new and make_unique
    # style code never matches `new Type`.
    new_re = re.compile(r"(?<![\w.])new\s+[A-Za-z_]")
    for start, end in compute_body_ranges(code_lines):
        for idx in range(start, min(end + 1, len(code_lines))):
            if new_re.search(code_lines[idx]) and "raw-new" not in allowed_rules(raw_lines, idx):
                findings.append(
                    Finding(
                        path,
                        idx + 1,
                        "raw-new",
                        "raw `new` in Compute(): leaks on the engine's error "
                        "paths; use std::make_unique or a value member",
                        raw_lines[idx],
                    )
                )

    # unordered-agg: a range-for over an unordered container within the same
    # Compute() body as (and at most 10 lines above) an Aggregate() call.
    # unordered-iter: the same loops regardless of aggregation — side effects
    # ordered by the walk (messages, mutations) replay differently across
    # hash-table layouts. unordered-agg wins when both would fire.
    unordered_re = re.compile(r"for\s*\(.*:\s*\w*.*unordered_(?:map|set)|:\s*\w+_unordered\b")
    unordered_decl_re = re.compile(r"unordered_(?:map|set)\s*<")
    agg_re = re.compile(r"\bAggregate\s*\(")
    for start, end in compute_body_ranges(code_lines):
        body = range(start, min(end + 1, len(code_lines)))
        loop_lines = [
            i
            for i in body
            if "for" in code_lines[i]
            and (unordered_re.search(code_lines[i]) or _iterates_unordered(code_lines, i, unordered_decl_re))
        ]
        agg_lines = [i for i in body if agg_re.search(code_lines[i])]
        for li in loop_lines:
            if any(li <= ai <= li + 10 for ai in agg_lines):
                if "unordered-agg" not in allowed_rules(raw_lines, li):
                    findings.append(
                        Finding(
                            path,
                            li + 1,
                            "unordered-agg",
                            "iteration order of unordered containers is "
                            "layout-dependent; aggregating in that order makes "
                            "the fold nondeterministic — use std::map or sort first",
                            raw_lines[li],
                        )
                    )
            elif "unordered-iter" not in allowed_rules(raw_lines, li):
                findings.append(
                    Finding(
                        path,
                        li + 1,
                        "unordered-iter",
                        "range-for over an unordered container in Compute(): "
                        "side effects ordered by the walk replay differently "
                        "across hash-table layouts — use std::map or sort first",
                        raw_lines[li],
                    )
                )

    # fp-agg: Aggregate() of a floating-point value. FP addition is not
    # associative, so the reduced value depends on merge order (worker count,
    # combiner tree shape). The argument may wrap; scan the call's next few
    # lines for float evidence.
    fp_evidence_re = re.compile(
        r"\b(?:double|float|Double|fabs|DoubleValue)\b|\d\.\d|\d\.[eEf)]"
    )
    file_has_double_vertex = "DoubleValue" in text
    for idx, code in enumerate(code_lines):
        if not agg_re.search(code):
            continue
        arg_text = " ".join(code_lines[idx : idx + 3])
        # Second-order evidence: aggregating vertex.value() in a file whose
        # vertex values are DoubleValue.
        if not fp_evidence_re.search(arg_text) and not (
            file_has_double_vertex and "vertex.value()" in arg_text
        ):
            continue
        if "fp-agg" in allowed_rules(raw_lines, idx):
            continue
        findings.append(
            Finding(
                path,
                idx + 1,
                "fp-agg",
                "aggregating a float/double: FP reduction is order-dependent "
                "across workers; aggregate integers/fixed-point, or annotate "
                "the tolerance with bsp-lint: allow(fp-agg)",
                raw_lines[idx],
            )
        )

    # predicate-dsl: string literals at breakpoint/minimizer sites must parse
    # under the predicate grammar. Validated from the RAW line (strip_noncode
    # blanks string literals).
    for idx, raw in enumerate(raw_lines):
        for site in PREDICATE_SITES:
            for m in site.finditer(raw):
                text = unescape_cpp(m.group(1))
                if not text:
                    continue  # empty = unarmed breakpoint, always legal
                error = validate_predicate(text)
                if error is None:
                    continue
                if "predicate-dsl" in allowed_rules(raw_lines, idx):
                    continue
                findings.append(
                    Finding(
                        path,
                        idx + 1,
                        "predicate-dsl",
                        f"predicate does not parse: {error} "
                        "(grammar: src/analysis/predicate.h)",
                        raw_lines[idx],
                    )
                )
    return findings


def _iterates_unordered(code_lines: list[str], loop_idx: int, decl_re: re.Pattern) -> bool:
    """True when the range expression of the for-loop at loop_idx names a
    variable declared as an unordered container earlier in the file."""
    m = re.search(r"for\s*\(.*:\s*([A-Za-z_]\w*)", code_lines[loop_idx])
    if not m:
        return False
    var = m.group(1)
    decl = re.compile(rf"unordered_(?:map|set)\s*<[^;]*>\s*{re.escape(var)}\b")
    return any(decl.search(l) for l in code_lines[:loop_idx])


# The AST matchers behind the clang-query gate. Named so baseline
# fingerprints (`relative/path.cc:matcher-name`) survive line churn, exactly
# like the run_clang_tidy ratchet.
CLANG_QUERY_MATCHERS = [
    (
        "new-in-compute",
        'match cxxNewExpr(hasAncestor(cxxMethodDecl(hasName("Compute"))))',
    ),
    (
        "rand-in-compute",
        'match callExpr(callee(functionDecl(hasAnyName("rand", "srand", '
        '"drand48", "lrand48"))), '
        'hasAncestor(cxxMethodDecl(hasName("Compute"))))',
    ),
]


def run_clang_query(binary: str, matcher: str, files: list[str]) -> str:
    proc = subprocess.run(
        [binary, "-c", matcher, *files, "--", f"-I{REPO_ROOT}/src",
         "-std=c++20"],
        check=False,
        timeout=300,
        capture_output=True,
        text=True,
    )
    return proc.stdout


_MATCH_LOC_RE = re.compile(r"^(?P<path>/[^:\s]+):\d+:\d+:", re.MULTILINE)


def clang_query_fingerprints(paths: list[Path]) -> set[str] | None:
    """`relpath:matcher-name` per match, or None when clang-query is absent
    or unusable."""
    binary = shutil.which("clang-query")
    if binary is None:
        return None
    files = [str(p) for p in paths if p.suffix in SOURCE_SUFFIXES]
    if not files:
        return set()
    fingerprints: set[str] = set()
    for name, matcher in CLANG_QUERY_MATCHERS:
        try:
            out = run_clang_query(binary, matcher, files)
        except (OSError, subprocess.TimeoutExpired) as err:
            print(f"bsp_lint: clang-query failed: {err}", file=sys.stderr)
            return None
        for m in _MATCH_LOC_RE.finditer(out):
            p = Path(m.group("path"))
            try:
                rel = p.resolve().relative_to(REPO_ROOT)
            except ValueError:
                rel = p
            fingerprints.add(f"{rel}:{name}")
    return fingerprints


def clang_query_gate(paths: list[Path], update_baseline: bool) -> int:
    """Required AST gate: diff clang-query matches against the checked-in
    baseline. New fingerprints fail; fixed ones are reported for shrinking.
    Exit 2 when clang-query is not installed — CI installs clang-tools, so
    absence there is a broken gate, not a pass."""
    current = clang_query_fingerprints(paths)
    if current is None:
        print(
            "bsp_lint: --clang-query-gate requires clang-query on PATH "
            "(apt install clang-tools)",
            file=sys.stderr,
        )
        return 2
    if update_baseline:
        CLANG_QUERY_BASELINE.write_text(
            "".join(f"{fp}\n" for fp in sorted(current))
        )
        print(f"bsp_lint: clang-query baseline rewritten with {len(current)} entries")
        return 0
    baseline = (
        {
            l.strip()
            for l in CLANG_QUERY_BASELINE.read_text().splitlines()
            if l.strip() and not l.startswith("#")
        }
        if CLANG_QUERY_BASELINE.exists()
        else set()
    )
    new = sorted(current - baseline)
    fixed = sorted(baseline - current)
    if fixed:
        print("bsp_lint: baselined clang-query matches no longer fire (shrink the baseline):")
        for fp in fixed:
            print(f"  - {fp}")
    if new:
        print("bsp_lint: NEW clang-query matches not in the baseline:", file=sys.stderr)
        for fp in new:
            print(f"  + {fp}", file=sys.stderr)
        return 1
    print(
        f"bsp_lint: clang-query gate clean — {len(current)} match(es), all baselined"
    )
    return 0


def clang_query_pass(paths: list[Path]) -> None:
    """Advisory AST echo for local runs; --clang-query-gate is the real CI
    gate."""
    fingerprints = clang_query_fingerprints(paths)
    if not fingerprints:
        return
    print("bsp_lint: clang-query (advisory):", file=sys.stderr)
    for fp in sorted(fingerprints):
        print(f"  {fp}", file=sys.stderr)


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = (REPO_ROOT / raw) if not Path(raw).is_absolute() else Path(raw)
        if p.is_dir():
            files.extend(
                sorted(f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES)
            )
        elif p.exists():
            files.append(p)
        else:
            print(f"bsp_lint: no such path: {raw}", file=sys.stderr)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    parser.add_argument(
        "--expect-findings",
        action="store_true",
        help="self-test mode: succeed only when at least one finding exists "
        "(used by CI against tests/analysis_corpus)",
    )
    parser.add_argument(
        "--expect-rules",
        default="",
        help="comma-separated rules that must each fire at least once "
        "(self-test mode, implies success on findings)",
    )
    parser.add_argument(
        "--no-clang-query", action="store_true", help="skip the optional AST pass"
    )
    parser.add_argument(
        "--clang-query-gate",
        action="store_true",
        help="run ONLY the required clang-query ratchet against "
        "tools/clang_query_baseline.txt (exit 2 if clang-query is missing)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --clang-query-gate: rewrite the baseline with the "
        "current matches",
    )
    args = parser.parse_args()

    files = collect(args.paths or DEFAULT_PATHS)

    if args.clang_query_gate:
        return clang_query_gate(files, args.update_baseline)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    print(
        f"bsp_lint: {len(findings)} finding(s) in {len(files)} file(s)",
        file=sys.stderr,
    )
    if not args.no_clang_query and findings:
        clang_query_pass(files)

    if args.expect_rules:
        wanted = {r.strip() for r in args.expect_rules.split(",") if r.strip()}
        fired = {f.rule for f in findings}
        missing = sorted(wanted - fired)
        if missing:
            print(
                "bsp_lint: self-test FAILED — expected rule(s) never fired: "
                + ", ".join(missing),
                file=sys.stderr,
            )
            return 1
        return 0
    if args.expect_findings:
        if findings:
            return 0
        print(
            "bsp_lint: self-test FAILED — expected findings but saw none",
            file=sys.stderr,
        )
        return 1
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
