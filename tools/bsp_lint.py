#!/usr/bin/env python3
"""bsp_lint: static BSP-determinism lint for Graft vertex programs.

The dynamic half of the analysis layer (src/analysis, DESIGN.md §9) catches
contract violations at runtime; this is the static half. It flags source
constructs inside vertex/master programs that make a BSP computation
nondeterministic or unreplayable — precisely the ones the runtime determinism
probe would later surface as kNondeterminism findings, caught before the job
ever runs:

  libc-rand          rand()/srand()/drand48(): global-state RNG, invisible to
                     the capture layer; use ctx.rng() (common/random.h).
  raw-rng            std::random_device / self-seeded std::mt19937: per-run
                     entropy breaks replay; use ctx.rng().
  wall-clock         time()/clock()/chrono ::now(): wall-clock reads differ
                     between a run and its replay.
  unordered-agg      iterating an unordered_{map,set} in code that feeds
                     ctx.Aggregate(): the fold order (and any float sum) then
                     depends on hash-table layout.
  raw-new            raw `new` inside a Compute() body: per-vertex manual
                     ownership leaks on the engine's error paths; use
                     std::make_unique or a value member.

Suppress a deliberate use with a trailing or preceding-line comment:
    // bsp-lint: allow(libc-rand)

Usage:
    tools/bsp_lint.py [paths...]          # default: src/algos examples
    tools/bsp_lint.py --expect-findings tests/analysis_corpus
        (self-test mode: exits 0 only if at least one finding IS present)

Exits 1 when findings are present (0 in --expect-findings mode), so CI can
gate on it directly. If clang-query is on PATH, an AST pass double-checks the
raw-new rule inside Compute() bodies; the regex rules never depend on it.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src/algos", "examples"]
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

ALLOW_RE = re.compile(r"//\s*bsp-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

# Single-line rules: (rule name, regex, message). Matches inside string
# literals and comments are filtered out before these run.
LINE_RULES = [
    (
        "libc-rand",
        re.compile(r"(?<![\w:.>])(?:rand|srand|drand48|lrand48|random)\s*\("),
        "libc RNG draws from hidden global state; use ctx.rng() "
        "(common/random.h) so the value replays",
    ),
    (
        "raw-rng",
        re.compile(r"std::random_device|std::mt19937(?:_64)?\s*\w*\s*[({;]"),
        "per-run entropy / self-seeded engines break trace replay; "
        "use ctx.rng()",
    ),
    (
        "wall-clock",
        re.compile(
            r"(?:std::chrono::\w+_clock::now\s*\(|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0|&)|(?<![\w:.>])clock\s*\(\s*\)|gettimeofday\s*\()"
        ),
        "wall-clock reads differ between a run and its replay; derive "
        "timing-like behavior from ctx.superstep()",
    ),
]


def strip_noncode(line: str) -> str:
    """Blanks out string literals, char literals, and // comments so the
    rules only see code. (Block comments are handled per-file.)"""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def strip_block_comments(text: str) -> str:
    """Replaces /* ... */ spans with spaces, preserving newlines."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)


def allowed_rules(raw_lines: list[str], idx: int) -> set[str]:
    """Suppressions on the flagged line or the line right above it."""
    rules: set[str] = set()
    for line in raw_lines[max(0, idx - 1) : idx + 1]:
        m = ALLOW_RE.search(line)
        if m:
            rules.update(r.strip() for r in m.group(1).split(","))
    return rules


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str, code: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.code = code

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT) if self.path.is_relative_to(REPO_ROOT) else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}\n    {self.code.strip()}"


def compute_body_ranges(code_lines: list[str]) -> list[tuple[int, int]]:
    """Approximate line ranges (0-based, inclusive) of Compute() bodies by
    brace counting from each `Compute(` signature."""
    ranges = []
    sig = re.compile(r"\bCompute\s*\(")
    i = 0
    while i < len(code_lines):
        if sig.search(code_lines[i]):
            depth, j, started = 0, i, False
            while j < len(code_lines):
                depth += code_lines[j].count("{") - code_lines[j].count("}")
                if "{" in code_lines[j]:
                    started = True
                if started and depth <= 0:
                    break
                j += 1
            if started:
                ranges.append((i, j))
                i = j
        i += 1
    return ranges


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"bsp_lint: cannot read {path}: {err}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    code_lines = [strip_noncode(l) for l in strip_block_comments(text).splitlines()]
    findings: list[Finding] = []

    for idx, code in enumerate(code_lines):
        for rule, pattern, message in LINE_RULES:
            if pattern.search(code) and rule not in allowed_rules(raw_lines, idx):
                findings.append(Finding(path, idx + 1, rule, message, raw_lines[idx]))

    # raw-new: only inside Compute() bodies; placement-new and make_unique
    # style code never matches `new Type`.
    new_re = re.compile(r"(?<![\w.])new\s+[A-Za-z_]")
    for start, end in compute_body_ranges(code_lines):
        for idx in range(start, min(end + 1, len(code_lines))):
            if new_re.search(code_lines[idx]) and "raw-new" not in allowed_rules(raw_lines, idx):
                findings.append(
                    Finding(
                        path,
                        idx + 1,
                        "raw-new",
                        "raw `new` in Compute(): leaks on the engine's error "
                        "paths; use std::make_unique or a value member",
                        raw_lines[idx],
                    )
                )

    # unordered-agg: a range-for over an unordered container within the same
    # Compute() body as (and at most 10 lines above) an Aggregate() call.
    unordered_re = re.compile(r"for\s*\(.*:\s*\w*.*unordered_(?:map|set)|:\s*\w+_unordered\b")
    unordered_decl_re = re.compile(r"unordered_(?:map|set)\s*<")
    agg_re = re.compile(r"\bAggregate\s*\(")
    for start, end in compute_body_ranges(code_lines):
        body = range(start, min(end + 1, len(code_lines)))
        loop_lines = [
            i
            for i in body
            if "for" in code_lines[i]
            and (unordered_re.search(code_lines[i]) or _iterates_unordered(code_lines, i, unordered_decl_re))
        ]
        agg_lines = [i for i in body if agg_re.search(code_lines[i])]
        for li in loop_lines:
            if any(li <= ai <= li + 10 for ai in agg_lines) and "unordered-agg" not in allowed_rules(raw_lines, li):
                findings.append(
                    Finding(
                        path,
                        li + 1,
                        "unordered-agg",
                        "iteration order of unordered containers is "
                        "layout-dependent; aggregating in that order makes "
                        "the fold nondeterministic — use std::map or sort first",
                        raw_lines[li],
                    )
                )
    return findings


def _iterates_unordered(code_lines: list[str], loop_idx: int, decl_re: re.Pattern) -> bool:
    """True when the range expression of the for-loop at loop_idx names a
    variable declared as an unordered container earlier in the file."""
    m = re.search(r"for\s*\(.*:\s*([A-Za-z_]\w*)", code_lines[loop_idx])
    if not m:
        return False
    var = m.group(1)
    decl = re.compile(rf"unordered_(?:map|set)\s*<[^;]*>\s*{re.escape(var)}\b")
    return any(decl.search(l) for l in code_lines[:loop_idx])


def clang_query_pass(paths: list[Path]) -> None:
    """Optional deeper AST check; advisory only (regex pass is the gate)."""
    binary = shutil.which("clang-query")
    if binary is None:
        return
    matcher = (
        "match cxxNewExpr(hasAncestor(cxxMethodDecl(hasName(\"Compute\"))))"
    )
    files = [str(p) for p in paths if p.suffix in SOURCE_SUFFIXES]
    if not files:
        return
    try:
        subprocess.run(
            [binary, "-c", matcher, *files, "--", f"-I{REPO_ROOT}/src", "-std=c++20"],
            check=False,
            timeout=120,
        )
    except (OSError, subprocess.TimeoutExpired) as err:
        print(f"bsp_lint: clang-query pass skipped: {err}", file=sys.stderr)


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = (REPO_ROOT / raw) if not Path(raw).is_absolute() else Path(raw)
        if p.is_dir():
            files.extend(
                sorted(f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES)
            )
        elif p.exists():
            files.append(p)
        else:
            print(f"bsp_lint: no such path: {raw}", file=sys.stderr)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    parser.add_argument(
        "--expect-findings",
        action="store_true",
        help="self-test mode: succeed only when at least one finding exists "
        "(used by CI against tests/analysis_corpus)",
    )
    parser.add_argument(
        "--no-clang-query", action="store_true", help="skip the optional AST pass"
    )
    args = parser.parse_args()

    files = collect(args.paths or DEFAULT_PATHS)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    print(
        f"bsp_lint: {len(findings)} finding(s) in {len(files)} file(s)",
        file=sys.stderr,
    )
    if not args.no_clang_query and findings:
        clang_query_pass(files)

    if args.expect_findings:
        if findings:
            return 0
        print(
            "bsp_lint: self-test FAILED — expected findings but saw none",
            file=sys.stderr,
        )
        return 1
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
