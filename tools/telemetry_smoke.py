#!/usr/bin/env python3
"""CI smoke for the live telemetry plane (DESIGN.md §11).

Starts the telemetry_server_demo example (journal on, progress published,
one superstep-barrier sleep per superstep so the run is observable), then —
while the PageRank job is still running — polls the HTTP plane and checks:

  1. /healthz answers "ok";
  2. /metrics is valid-looking Prometheus text: every non-comment line is
     `name{labels} value` with HELP/TYPE at most once per family, and the
     graft_job_superstep gauge for the demo job is present;
  3. /jobs/<id>/report serves JSON whose `supersteps` counter ADVANCES
     between two mid-run polls (the live-progress acceptance criterion);
  4. after the run, /jobs/<id>/events parses as Chrome trace JSON
     (Perfetto-loadable): a traceEvents array with per-worker "compute"
     spans ("ph": "X") for every completed superstep.

Usage: tools/telemetry_smoke.py ./build/examples/telemetry_server_demo
Exits non-zero with a diagnostic on the first violated check.
"""

import http.client
import json
import os
import re
import subprocess
import sys
import time
import urllib.request

SUPERSTEPS = 12
SLEEP_MS = 250  # per-barrier pause: run lasts ~3s, plenty to poll mid-run


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(port, path, timeout=5.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        return resp.read().decode("utf-8")


SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(Inf|NaN)?$"
)


def check_prometheus(text, job_id):
    families = {"HELP": set(), "TYPE": set()}
    saw_job_gauge = False
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# "):
            kind, name = line.split(" ", 2)[1], line.split(" ", 3)[2]
            if kind in families:
                if name in families[kind]:
                    fail(f"duplicate # {kind} for family {name}")
                families[kind].add(name)
            continue
        if not SAMPLE_RE.match(line):
            fail(f"malformed Prometheus sample line: {line!r}")
        if line.startswith(f'graft_job_superstep{{job_id="{job_id}"}}'):
            saw_job_gauge = True
    if not saw_job_gauge:
        fail(f"graft_job_superstep gauge for {job_id} missing:\n{text}")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    demo = subprocess.Popen(
        [sys.argv[1]],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        env={
            **os.environ,
            "GRAFT_TELEMETRY_SUPERSTEPS": str(SUPERSTEPS),
            "GRAFT_TELEMETRY_SLEEP_MS": str(SLEEP_MS),
        },
    )
    try:
        header = demo.stdout.readline().strip()
        match = re.match(r"TELEMETRY port=(\d+) job=(\S+)", header)
        if not match:
            fail(f"unexpected demo header line: {header!r}")
        port, job_id = int(match.group(1)), match.group(2)

        if get(port, "/healthz").strip() != "ok":
            fail("/healthz did not answer ok")

        def check_head(path, exact):
            # HEAD answers with the GET headers but no body; Content-Length
            # must equal the GET body's byte count, not zero (and not be
            # absent). exact=True compares against a GET of the same static
            # body; live bodies only check presence/nonzero.
            body = get(port, path).encode("utf-8")
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
            try:
                conn.request("HEAD", path)
                head = conn.getresponse()
                head_body = head.read()
                length = head.getheader("Content-Length")
            finally:
                conn.close()
            if head.status != 200:
                fail(f"HEAD {path} answered {head.status}")
            if head_body:
                fail(f"HEAD {path} returned a body ({len(head_body)} bytes)")
            if length is None or int(length) <= 0:
                fail(f"HEAD {path} Content-Length missing or zero: {length}")
            if exact and int(length) != len(body):
                fail(
                    f"HEAD {path} Content-Length {length} != "
                    f"GET body bytes {len(body)}"
                )

        check_head("/healthz", exact=True)

        # Two mid-run polls: the superstep counter must advance while the
        # job runs (each barrier sleeps SLEEP_MS, so sampling ~4 barriers
        # apart cannot race the job's completion).
        def poll_supersteps():
            # 404 = RunJob hasn't registered the job yet; "{}" = registered
            # but no barrier reached. Both read as "not yet" for the spin.
            try:
                body = get(port, f"/jobs/{job_id}/report")
            except urllib.error.HTTPError as err:
                if err.code == 404:
                    return -1
                raise
            report = json.loads(body)
            return int(report.get("supersteps", -1))

        # The report is "{}" until the first barrier publishes; spin briefly
        # (each barrier is SLEEP_MS apart, so this resolves fast).
        deadline = time.monotonic() + 5.0
        first = poll_supersteps()
        while first < 1 and time.monotonic() < deadline:
            time.sleep(0.05)
            first = poll_supersteps()
        check_prometheus(get(port, "/metrics"), job_id)
        # The first barrier has published, so /metrics is non-empty from
        # here on — its HEAD must carry a real Content-Length.
        check_head("/metrics", exact=False)
        print("HEAD Content-Length OK")
        time.sleep(4 * SLEEP_MS / 1000.0)
        second = poll_supersteps()
        if not (0 <= first < second <= SUPERSTEPS + 1):
            fail(
                "live superstep counter did not advance mid-run: "
                f"first={first} second={second}"
            )
        print(f"live progress OK: supersteps {first} -> {second}")

        # Directory endpoint lists the job while it runs.
        jobs = json.loads(get(port, "/jobs"))
        if not any(j.get("job_id") == job_id for j in jobs.get("jobs", [])):
            fail(f"/jobs does not list {job_id}: {jobs}")

        # Wait for the DONE line, then validate the Chrome trace export.
        done = demo.stdout.readline().strip()
        if not done.startswith("DONE "):
            fail(f"demo did not finish cleanly: {done!r}")
        final = json.loads(get(port, f"/jobs/{job_id}/report"))
        if int(final["supersteps"]) < SUPERSTEPS:
            fail(f"final report is short: {final['supersteps']}")

        trace = json.loads(get(port, f"/jobs/{job_id}/events"))
        events = trace.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("/events has no traceEvents array")
        compute = {}  # superstep -> set of workers
        for event in events:
            if event.get("ph") == "X" and event.get("name") == "compute":
                args = event.get("args", {})
                if args.get("worker", -1) >= 0:
                    compute.setdefault(args["superstep"], set()).add(
                        args["worker"]
                    )
        missing = [
            s for s in range(SUPERSTEPS) if len(compute.get(s, ())) < 4
        ]
        if missing:
            fail(
                "per-worker compute spans missing for supersteps "
                f"{missing}; got {sorted(compute)}"
            )
        print(
            f"trace OK: {len(events)} events, per-worker compute spans for "
            f"{len(compute)} supersteps"
        )
        print("telemetry smoke PASSED")
    finally:
        try:
            demo.stdin.close()
        except OSError:
            pass
        demo.wait(timeout=30)


if __name__ == "__main__":
    main()
