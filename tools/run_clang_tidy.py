#!/usr/bin/env python3
"""Runs clang-tidy over the library sources and diff-fails on NEW warnings.

The gate is a ratchet: every distinct warning fingerprint
(relative-path:check-name, line numbers deliberately excluded so pure code
motion doesn't churn the baseline) is compared against
tools/clang_tidy_baseline.txt. Fingerprints not in the baseline fail the run;
fingerprints in the baseline that no longer fire are reported so the baseline
can be shrunk. The baseline starts (and should stay) empty.

Usage:
    tools/run_clang_tidy.py [--build-dir build] [--update-baseline] [paths...]

Requires a compile_commands.json (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
Exits 0 with a notice when clang-tidy is not installed, so developer machines
without LLVM aren't blocked; CI installs it and gets the real gate.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "clang_tidy_baseline.txt"
DEFAULT_PATHS = ["src/common", "src/pregel", "src/analysis", "src/obs"]
WARNING_RE = re.compile(r"^(?P<path>[^:\s]+):\d+:\d+: warning: .* \[(?P<check>[\w.,-]+)\]")


def source_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = (REPO_ROOT / raw) if not Path(raw).is_absolute() else Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.cc")) + sorted(p.rglob("*.cpp")))
        elif p.exists():
            files.append(p)
    return files


def fingerprint(line: str) -> str | None:
    m = WARNING_RE.match(line)
    if not m:
        return None
    path = Path(m.group("path"))
    try:
        rel = path.resolve().relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    return f"{rel}:{m.group('check')}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite tools/clang_tidy_baseline.txt with the current warnings",
    )
    args = parser.parse_args()

    binary = shutil.which("clang-tidy")
    if binary is None:
        print("run_clang_tidy: clang-tidy not installed; skipping (CI runs it)")
        return 0

    build_dir = REPO_ROOT / args.build_dir
    if not (build_dir / "compile_commands.json").exists():
        print(
            f"run_clang_tidy: no compile_commands.json in {build_dir}; "
            "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
            file=sys.stderr,
        )
        return 2

    files = source_files(args.paths or DEFAULT_PATHS)
    if not files:
        print("run_clang_tidy: no source files matched", file=sys.stderr)
        return 2

    proc = subprocess.run(
        [binary, "-p", str(build_dir), "--quiet", *map(str, files)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        check=False,
    )
    current: set[str] = set()
    for line in proc.stdout.splitlines():
        fp = fingerprint(line)
        if fp:
            current.add(fp)

    if args.update_baseline:
        BASELINE.write_text("".join(f"{fp}\n" for fp in sorted(current)))
        print(f"run_clang_tidy: baseline rewritten with {len(current)} entries")
        return 0

    baseline = {
        l.strip()
        for l in BASELINE.read_text().splitlines()
        if l.strip() and not l.startswith("#")
    } if BASELINE.exists() else set()

    new = sorted(current - baseline)
    fixed = sorted(baseline - current)
    if fixed:
        print("run_clang_tidy: baselined warnings no longer fire (shrink the baseline):")
        for fp in fixed:
            print(f"  - {fp}")
    if new:
        print("run_clang_tidy: NEW warnings not in the baseline:", file=sys.stderr)
        for fp in new:
            print(f"  + {fp}", file=sys.stderr)
        # Echo full diagnostics for the new fingerprints only.
        for line in proc.stdout.splitlines():
            fp = fingerprint(line)
            if fp in new:
                print(line, file=sys.stderr)
        return 1
    print(
        f"run_clang_tidy: clean — {len(current)} warning fingerprint(s), "
        f"all baselined ({len(files)} files)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
