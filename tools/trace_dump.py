#!/usr/bin/env python3
"""Pretty-prints a Graft job's trace files and manifest index.

Reads the LocalDirTraceStore layout (DESIGN.md §10) without any knowledge of
the job's Traits types — exactly the forward-compatibility the v2 record
frame buys: every record carries (version, kind, superstep, vertex_id) in a
length-prefixed header, so generic tooling can classify records while
skipping fields (and whole records) from builds it has never seen.

Also decodes the checkpoint layout (DESIGN.md §12) when the root contains
`checkpoints/JOB_ID`: checkpoint metas (full and delta), delta value parts,
packed-topology epoch parts, and outbox/aggregator log records. Vertex,
edge, and message payloads are Traits-typed and therefore opaque to this
tool; they are summarized by length.

Usage:
  tools/trace_dump.py TRACE_ROOT            # list jobs
  tools/trace_dump.py TRACE_ROOT JOB_ID     # dump one job
  tools/trace_dump.py TRACE_ROOT JOB_ID --records  # include per-record rows

Store framing (LocalDirTraceStore): each file is a sequence of
[record_size varint][record bytes]. Record framing (v2): [magic 0xA7]
[header_len varint][header: version u8, kind u8, superstep svarint,
vertex_id svarint, ...future fields...][body]. Records whose first byte is
not the magic are seed-format ("v0") bodies. Exits non-zero on truncated
store framing — store corruption is fatal; unknown record versions/kinds are
reported and skipped, matching the C++ readers.
"""

import argparse
import os
import sys

MAGIC = 0xA7
FORMAT_VERSION = 2
KIND_NAMES = {0: "vertex", 1: "master", 2: "manifest"}


class ParseError(Exception):
    pass


class Reader:
    """Varint/zigzag cursor over bytes, mirroring common/binary_io.h."""

    def __init__(self, data, name="<buffer>"):
        self.data = data
        self.pos = 0
        self.name = name

    def remaining(self):
        return len(self.data) - self.pos

    def u8(self):
        if self.remaining() < 1:
            raise ParseError(f"{self.name}: truncated u8 at {self.pos}")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def varint(self):
        result = 0
        shift = 0
        while True:
            b = self.u8()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ParseError(f"{self.name}: varint too long at {self.pos}")

    def svarint(self):
        z = self.varint()
        return (z >> 1) ^ -(z & 1)

    def raw(self, n):
        if self.remaining() < n:
            raise ParseError(
                f"{self.name}: truncated read of {n} bytes at {self.pos}")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out


def store_records(path):
    """Yields the raw records of one LocalDirTraceStore file."""
    with open(path, "rb") as f:
        reader = Reader(f.read(), name=path)
    while reader.remaining() > 0:
        size = reader.varint()
        yield reader.raw(size)


def parse_frame(record, name):
    """Returns (header dict | None, body). None header means seed-format."""
    if not record:
        raise ParseError(f"{name}: empty record")
    if record[0] != MAGIC:
        return None, record
    reader = Reader(record, name=name)
    reader.u8()  # magic
    header_len = reader.varint()
    header_bytes = reader.raw(header_len)
    body = record[reader.pos:]
    h = Reader(header_bytes, name=f"{name} header")
    header = {"version": h.u8(), "kind": h.u8()}
    # Fields past the ones we know are future extensions: skipped, by design.
    header["superstep"] = h.svarint() if h.remaining() else 0
    header["vertex_id"] = h.svarint() if h.remaining() else 0
    header["extra_header_bytes"] = h.remaining()
    return header, body


def parse_manifest(body, name):
    reader = Reader(body, name=name)
    count = reader.varint()
    entries = []
    for _ in range(count):
        entries.append({
            "kind": reader.u8(),
            "superstep": reader.svarint(),
            "vertex_id": reader.svarint(),
            "worker": reader.svarint(),
            "record_index": reader.varint(),
        })
    return entries


def kind_name(kind):
    return KIND_NAMES.get(kind, f"unknown({kind})")


def describe_record(header, body):
    if header is None:
        return f"v0 legacy body ({len(body)} bytes)"
    skip = (header["version"] > FORMAT_VERSION
            or header["kind"] not in KIND_NAMES)
    parts = [
        f"v{header['version']}",
        kind_name(header["kind"]),
        f"superstep={header['superstep']}",
        f"vertex={header['vertex_id']}",
        f"body={len(body)}B",
    ]
    if header["extra_header_bytes"]:
        parts.append(f"+{header['extra_header_bytes']}B future header fields")
    if skip:
        parts.append("SKIPPED (future version/kind)")
    return " ".join(parts)


def dump_manifest(job_dir, job):
    path = os.path.join(job_dir, "manifest.idx")
    if not os.path.exists(path):
        print("manifest: absent (crashed run or pre-v2 job; "
              "readers fall back to directory scans)")
        return
    records = list(store_records(path))
    if not records:
        print("manifest: empty file")
        return
    header, body = parse_frame(records[-1], path)
    if header is None or header["kind"] != 2:
        raise ParseError(f"{path}: not a manifest record")
    entries = parse_manifest(body, path)
    print(f"manifest: {len(entries)} entries "
          f"(v{header['version']}, {len(body)} body bytes)")
    by_step = {}
    for e in entries:
        by_step.setdefault(e["superstep"], []).append(e)
    for step in sorted(by_step):
        vertex = [e for e in by_step[step] if e["kind"] == 0]
        master = [e for e in by_step[step] if e["kind"] == 1]
        ids = ", ".join(str(e["vertex_id"]) for e in vertex[:8])
        if len(vertex) > 8:
            ids += f", ... ({len(vertex)} total)"
        line = f"  superstep {step:>4}: {len(vertex)} vertex"
        if ids:
            line += f" [{ids}]"
        if master:
            line += f" + master"
        print(line)


def read_string(reader):
    return reader.raw(reader.varint())


CHECKPOINT_MODES = {0: "full", 1: "delta"}
AGG_TAGS = {0: "null", 1: "int", 2: "double", 3: "bool", 4: "text"}


def skip_agg_value(reader):
    """Skips one tagged AggValue, returning a printable summary."""
    tag = reader.u8()
    if tag == 1:
        return f"int {reader.svarint()}"
    if tag == 2:
        import struct
        return f"double {struct.unpack('<d', reader.raw(8))[0]:g}"
    if tag == 3:
        return f"bool {bool(reader.u8())}"
    if tag == 4:
        return f"text {read_string(reader)!r}"
    if tag == 0:
        return "null"
    raise ParseError(f"{reader.name}: unknown AggValue tag {tag}")


def parse_checkpoint_meta(body, name):
    """Mirrors CheckpointMeta::Parse for the fields tooling cares about."""
    r = Reader(body, name=name)
    meta = {"version": r.u8(), "mode": CHECKPOINT_MODES.get(r.u8(), "?")}
    meta["superstep"] = r.varint()
    meta["num_partitions"] = r.varint()
    meta["topology_epoch"] = r.varint()
    meta["pending_messages"] = r.varint()
    meta["messages_dropped_at_resume"] = r.varint()
    meta["partitions"] = [{
        "alive": r.varint(),
        "edges": r.varint(),
        "awake": r.varint(),
        "base_superstep": r.varint(),
    } for _ in range(meta["num_partitions"])]
    meta["aggregators"] = {
        read_string(r).decode("utf-8", "replace"): skip_agg_value(r)
        for _ in range(r.varint())
    }
    meta["total_messages"] = r.varint()
    meta["total_messages_dropped"] = r.varint()
    meta["supersteps_recorded"] = r.varint()
    return meta


def summarize_delta_value_part(body, name):
    """Delta value part: alive_count, then per vertex in slot order a
    length-prefixed value payload and a halted flag."""
    r = Reader(body, name=name)
    alive = r.varint()
    value_bytes = 0
    halted = 0
    for _ in range(alive):
        value_bytes += len(read_string(r))
        halted += 1 if r.u8() else 0
    if r.remaining():
        raise ParseError(f"{name}: {r.remaining()} trailing bytes")
    return f"{alive} vertices, {value_bytes}B values, {halted} halted"


def summarize_topology_part(body, name):
    """Topology epoch part: alive_count, (id, degree) per vertex, then the
    packed edge stream (target, length-prefixed edge value)."""
    r = Reader(body, name=name)
    alive = r.varint()
    degrees = []
    for _ in range(alive):
        r.svarint()  # vertex id
        degrees.append(r.varint())
    edge_value_bytes = 0
    for degree in degrees:
        for _ in range(degree):
            r.svarint()  # target
            edge_value_bytes += len(read_string(r))
    if r.remaining():
        raise ParseError(f"{name}: {r.remaining()} trailing bytes")
    return (f"{alive} vertices, {sum(degrees)} edges, "
            f"{edge_value_bytes}B edge values")


def summarize_outbox_log(body, name, show_records):
    """Outbox log record: version, superstep, partition, unit count, then
    combined (kind 0: target, pre-combining count, message) and entry
    (kind 1: target, message) units in replay order."""
    r = Reader(body, name=name)
    version = r.u8()
    if version != 1:
        return [f"unknown outbox log version {version}"]
    superstep = r.varint()
    partition = r.varint()
    units = r.varint()
    combined = entries = messages = payload = 0
    rows = []
    for index in range(units):
        kind = r.u8()
        target = r.svarint()
        if kind == 0:
            count = r.varint()
            combined += 1
            messages += count
        elif kind == 1:
            count = 1
            entries += 1
            messages += 1
        else:
            raise ParseError(f"{name}: unknown outbox unit kind {kind}")
        size = len(read_string(r))
        payload += size
        if show_records:
            rows.append(f"      [{index}] "
                        f"{'combined' if kind == 0 else 'entry'} "
                        f"target={target} count={count} message={size}B")
    if r.remaining():
        raise ParseError(f"{name}: {r.remaining()} trailing bytes")
    head = (f"superstep {superstep} partition {partition}: {units} units "
            f"({combined} combined + {entries} entry), {messages} messages, "
            f"{payload}B payloads")
    return [head] + rows


def summarize_agg_log(body, name):
    r = Reader(body, name=name)
    aggs = [f"{read_string(r).decode('utf-8', 'replace')}="
            f"{skip_agg_value(r)}" for _ in range(r.varint())]
    if r.remaining():
        raise ParseError(f"{name}: {r.remaining()} trailing bytes")
    return ", ".join(aggs) if aggs else "(empty)"


def one_record(path):
    records = list(store_records(path))
    if len(records) != 1:
        raise ParseError(f"{path}: {len(records)} records, want 1")
    return records[0]


def dump_checkpoints(root, job, show_records):
    ckpt_dir = os.path.join(root, "checkpoints", job)
    if not os.path.isdir(ckpt_dir):
        return
    print(f"checkpoints: {ckpt_dir}")
    for entry in sorted(os.listdir(ckpt_dir)):
        path = os.path.join(ckpt_dir, entry)
        if entry.startswith("s") and os.path.isdir(path):
            committed = os.path.exists(os.path.join(path, "COMMIT"))
            meta_path = os.path.join(path, "meta")
            if not os.path.exists(meta_path):
                print(f"  {entry}: no meta "
                      f"({'committed' if committed else 'uncommitted'})")
                continue
            meta = parse_checkpoint_meta(one_record(meta_path), meta_path)
            print(f"  {entry}: {meta['mode']} checkpoint at superstep "
                  f"{meta['superstep']}, "
                  f"{'committed' if committed else 'UNCOMMITTED'}, "
                  f"epoch {meta['topology_epoch']}, "
                  f"{meta['pending_messages']} pending messages, "
                  f"{meta['supersteps_recorded']} supersteps of stats")
            for part, counters in enumerate(meta["partitions"]):
                part_path = os.path.join(path, f"part-{part:03d}")
                if os.path.exists(part_path):
                    if meta["mode"] == "delta":
                        detail = summarize_delta_value_part(
                            one_record(part_path), part_path)
                    else:
                        body = one_record(part_path)
                        detail = f"full snapshot, {len(body)}B"
                else:
                    detail = (f"header-only delta (values at superstep "
                              f"{counters['base_superstep']})")
                print(f"    part {part}: alive={counters['alive']} "
                      f"edges={counters['edges']} awake={counters['awake']} "
                      f"— {detail}")
            if meta["aggregators"]:
                aggs = ", ".join(f"{k}={v}"
                                 for k, v in meta["aggregators"].items())
                print(f"    aggregators: {aggs}")
        elif entry.startswith("topology_") and os.path.isdir(path):
            print(f"  {entry}:")
            for part_file in sorted(os.listdir(path)):
                part_path = os.path.join(path, part_file)
                print(f"    {part_file}: "
                      f"{summarize_topology_part(one_record(part_path), part_path)}")
        elif entry == "outbox" and os.path.isdir(path):
            print(f"  outbox logs:")
            for step_dir in sorted(os.listdir(path)):
                step_path = os.path.join(path, step_dir)
                for log_file in sorted(os.listdir(step_path)):
                    log_path = os.path.join(step_path, log_file)
                    rel = os.path.join("outbox", step_dir, log_file)
                    if log_file == "aggs":
                        print(f"    {rel}: "
                              f"{summarize_agg_log(one_record(log_path), log_path)}")
                        continue
                    lines = summarize_outbox_log(
                        one_record(log_path), log_path, show_records)
                    print(f"    {rel}: {lines[0]}")
                    for row in lines[1:]:
                        print(row)


def dump_job(root, job, show_records):
    job_dir = os.path.join(root, job)
    has_traces = os.path.isdir(job_dir)
    has_ckpts = os.path.isdir(os.path.join(root, "checkpoints", job))
    if not has_traces and not has_ckpts:
        raise ParseError(f"no such job directory: {job_dir}")
    print(f"job: {job}")
    if has_traces:
        dump_manifest(job_dir, job)
    dump_checkpoints(root, job, show_records)
    if not has_traces:
        return

    trace_files = []
    for dirpath, _, filenames in os.walk(job_dir):
        for filename in sorted(filenames):
            if filename.endswith((".vtrace", ".mtrace")):
                trace_files.append(os.path.join(dirpath, filename))
    trace_files.sort()
    print(f"trace files: {len(trace_files)}")
    totals = {"records": 0, "legacy": 0, "skipped": 0}
    for path in trace_files:
        rel = os.path.relpath(path, root)
        rows = []
        for index, record in enumerate(store_records(path)):
            header, body = parse_frame(record, rel)
            if header is None:
                totals["legacy"] += 1
            elif (header["version"] > FORMAT_VERSION
                  or header["kind"] not in KIND_NAMES):
                totals["skipped"] += 1
            totals["records"] += 1
            rows.append(f"    [{index}] {describe_record(header, body)}")
        print(f"  {rel}: {len(rows)} records")
        if show_records:
            for row in rows:
                print(row)
    print(f"total: {totals['records']} records "
          f"({totals['legacy']} legacy, {totals['skipped']} skipped)")


def main():
    parser = argparse.ArgumentParser(
        description="Pretty-print a Graft job's manifest and trace records.")
    parser.add_argument("root", help="LocalDirTraceStore root directory")
    parser.add_argument("job", nargs="?", help="job id (directory under root)")
    parser.add_argument("--records", action="store_true",
                        help="print one row per record")
    args = parser.parse_args()

    if not os.path.isdir(args.root):
        print(f"error: no such directory: {args.root}", file=sys.stderr)
        return 2
    if args.job is None:
        jobs = sorted(
            d for d in os.listdir(args.root)
            if os.path.isdir(os.path.join(args.root, d)))
        if not jobs:
            print("no jobs found")
            return 0
        for job in jobs:
            print(job)
        return 0
    try:
        dump_job(args.root, args.job, args.records)
    except (ParseError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
