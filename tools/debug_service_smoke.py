#!/usr/bin/env python3
"""CI smoke for Graft-as-a-service (DESIGN.md §13).

Starts the debug_service_demo example, then drives the full HTTP surface:

  1. POST /jobs submits a small PageRank job (202 + endpoints envelope);
     reads of the job while it may still be running never answer 5xx;
  2. /jobs/<id> is polled until the job reaches a terminal state;
  3. the debug read API is paged end to end: /debug/supersteps,
     /debug/vertices (two pages + search), /debug/vertex/<vid> (point lookup
     and full history), /debug/master, /debug/violations — each validated as
     JSON with the expected shape, plus one format=text rendering;
  4. error semantics: unknown job 404, bad query 400, bad body 400,
     duplicate live id 409 — all carried in the {"error": ...} envelope;
  5. /metrics exports the trace-block cache counters (tracecache_*), and a
     re-read of a paged view leaves the miss counter unchanged (warm cache).

Usage: tools/debug_service_smoke.py ./build/examples/debug_service_demo
Exits non-zero with a diagnostic on the first violated check.
"""

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

JOB_ID = "smoke-pr"
VERTICES = 60


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def request(port, path, body=None, method=None):
    """Returns (status, text). HTTP errors are returned, not raised."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode("utf-8") if body is not None else None,
        method=method or ("POST" if body is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


def get_json(port, path, want_status=200):
    status, text = request(port, path)
    if status != want_status:
        fail(f"GET {path} answered {status} (want {want_status}): {text}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        fail(f"GET {path} is not JSON ({err}): {text!r}")


def expect_error(port, path, want_status, body=None, method=None):
    status, text = request(port, path, body=body, method=method)
    if status != want_status:
        fail(f"{path} answered {status}, want {want_status}: {text}")
    envelope = json.loads(text)
    if "error" not in envelope or "message" not in envelope["error"]:
        fail(f"{path} error lacks the envelope: {text}")


def cache_counters(port):
    status, text = request(port, "/metrics")
    if status != 200:
        fail(f"/metrics answered {status}")
    counters = {}
    for line in text.splitlines():
        match = re.match(r"^(graft_tracecache_\w+) ([0-9.eE+-]+)$", line)
        if match:
            counters[match.group(1)] = float(match.group(2))
    return counters


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    demo = subprocess.Popen(
        [sys.argv[1]],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        header = demo.stdout.readline().strip()
        match = re.match(r"DEBUG_SERVICE port=(\d+)", header)
        if not match:
            fail(f"unexpected demo header line: {header!r}")
        port = int(match.group(1))

        # -- submit ---------------------------------------------------------
        spec = {
            "algo": "pagerank",
            "job_id": JOB_ID,
            "graph": {"generator": "erdos-renyi", "vertices": VERTICES,
                      "edges": VERTICES * 4, "seed": 11},
            "params": {"iterations": 4},
            "journal": False,
        }
        status, text = request(port, "/jobs", body=json.dumps(spec))
        if status != 202:
            fail(f"POST /jobs answered {status}: {text}")
        accepted = json.loads(text)
        if accepted.get("job_id") != JOB_ID:
            fail(f"submit envelope lacks job_id: {accepted}")
        if not accepted.get("endpoints", {}).get("debug"):
            fail(f"submit envelope lacks debug endpoint: {accepted}")

        # Reads while the job may still be running must be 409/404/200 —
        # never a 5xx (the still-running policy).
        status, text = request(port, f"/jobs/{JOB_ID}/debug/supersteps")
        if status >= 500:
            fail(f"mid-run debug read answered {status}: {text}")

        # -- poll to terminal state ----------------------------------------
        deadline = time.monotonic() + 30.0
        state = None
        while time.monotonic() < deadline:
            listing = get_json(port, "/jobs")
            entry = next(
                (j for j in listing.get("jobs", [])
                 if j.get("job_id") == JOB_ID), None)
            if entry is None:
                fail(f"/jobs does not list {JOB_ID}: {listing}")
            state = entry.get("state")
            if state in ("done", "failed"):
                break
            time.sleep(0.1)
        if state != "done":
            fail(f"job did not finish: state={state}")
        if not any(j["job_id"] == JOB_ID
                   for j in get_json(port, "/jobs?status=done")["jobs"]):
            fail("/jobs?status=done does not list the finished job")

        # -- page the debug views ------------------------------------------
        steps = get_json(port, f"/jobs/{JOB_ID}/debug/supersteps")
        if not steps.get("manifest"):
            fail(f"supersteps view reports no manifest: {steps}")
        supersteps = [s["superstep"] for s in steps["supersteps"]]
        if not supersteps or supersteps != sorted(supersteps):
            fail(f"supersteps missing or unsorted: {supersteps}")
        if sum(s["vertex_records"] for s in steps["supersteps"]) == 0:
            fail(f"no vertex records captured: {steps}")

        target = supersteps[min(1, len(supersteps) - 1)]
        seen = []
        offset = 0
        while True:
            page = get_json(
                port,
                f"/jobs/{JOB_ID}/debug/vertices?superstep={target}"
                f"&offset={offset}&limit=25",
            )
            meta = page["page"]
            rows = page["vertices"]
            if len(rows) != meta["returned"]:
                fail(f"page returned mismatch: {meta} vs {len(rows)} rows")
            seen.extend(row["id"] for row in rows)
            offset += len(rows)
            if offset >= meta["total"] or not rows:
                break
        if len(seen) != VERTICES or len(set(seen)) != VERTICES:
            fail(
                f"paging did not cover all {VERTICES} vertices exactly once: "
                f"{len(seen)} rows, {len(set(seen))} unique"
            )

        search = get_json(
            port,
            f"/jobs/{JOB_ID}/debug/vertices?superstep={target}"
            "&search=no-such-value",
        )
        if search["page"]["total"] != 0 or search["vertices"]:
            fail(f"search filter did not narrow the view: {search['page']}")

        vid = seen[0]
        point = get_json(
            port, f"/jobs/{JOB_ID}/debug/vertex/{vid}?superstep={target}")
        if [row["id"] for row in point["vertices"]] != [vid]:
            fail(f"point lookup wrong rows: {point['vertices']}")
        # The final superstep is usually master-only (all vertices halted,
        # nothing computed), so compare against supersteps that actually
        # captured vertex records.
        vertex_steps = [
            s["superstep"] for s in steps["supersteps"]
            if s["vertex_records"] > 0
        ]
        history = get_json(port, f"/jobs/{JOB_ID}/debug/vertex/{vid}")
        if len(history["vertices"]) < len(vertex_steps):
            fail(
                f"history has {len(history['vertices'])} rows for "
                f"{len(vertex_steps)} vertex-capturing supersteps"
            )

        master = get_json(port, f"/jobs/{JOB_ID}/debug/master")
        if master.get("total_vertices") != VERTICES:
            fail(f"master trace wrong vertex count: {master}")
        violations = get_json(port, f"/jobs/{JOB_ID}/debug/violations")
        if "violations" not in violations:
            fail(f"violations view lacks rows array: {violations}")

        status, text = request(
            port, f"/jobs/{JOB_ID}/debug/vertices?format=text&limit=5")
        if status != 200 or "Graft GUI" not in text:
            fail(f"text rendering failed ({status}): {text[:200]}")

        # -- error semantics ------------------------------------------------
        expect_error(port, "/jobs/ghost/debug/supersteps", 404)
        expect_error(port, f"/jobs/{JOB_ID}/debug/vertices?limit=0", 400)
        expect_error(port, f"/jobs/{JOB_ID}/debug/vertices?format=xml", 400)
        expect_error(port, "/jobs", 400, body="{not json")
        status, text = request(port, "/jobs/ghost", method="DELETE")
        if status != 405:
            fail(f"DELETE answered {status}, want 405")

        # -- warm cache -----------------------------------------------------
        before = cache_counters(port)
        if before.get("graft_tracecache_hits_total", 0) <= 0:
            fail(f"cache hits not exported: {before}")
        get_json(
            port,
            f"/jobs/{JOB_ID}/debug/vertices?superstep={target}&limit=25",
        )
        after = cache_counters(port)
        if (after["graft_tracecache_misses_total"]
                != before["graft_tracecache_misses_total"]):
            fail(
                "warm re-read decoded from the store again: "
                f"{before['graft_tracecache_misses_total']} -> "
                f"{after['graft_tracecache_misses_total']}"
            )
        print(
            "cache OK: hits="
            f"{int(after['graft_tracecache_hits_total'])} misses="
            f"{int(after['graft_tracecache_misses_total'])}"
        )
        print("debug service smoke PASSED")
    finally:
        try:
            demo.stdin.close()
        except OSError:
            pass
        demo.wait(timeout=30)


if __name__ == "__main__":
    main()
