#!/usr/bin/env python3
"""CI smoke for the automated bug localizer (DESIGN.md §14).

Starts the debug_service_demo example and drives the minimize surface over
HTTP, end to end:

  1. POST /jobs submits a small connected-components job and polls it to
     "done";
  2. POST /jobs/<id>/minimize with a predicate oracle (202 + endpoints
     envelope); a duplicate submit while it runs may answer 409, never 5xx;
  3. GET /jobs/<id>/minimize is polled until state=done, checking the
     progress envelope shape on the way;
  4. the report must say reproduced=true and shrink the graph to two
     vertices and one edge (the predicate `value == 0 && superstep >= 1`
     only ever matches vertex 0, which needs one neighbor's message to wake
     it past superstep 0);
  5. GET /jobs/<id>/minimize/reproducer returns a gtest source that re-arms
     the breakpoint and asserts it stays silent (i.e. fails while the bug
     reproduces), and that source passes `g++ -fsyntax-only` against the
     repository headers;
  6. error semantics: minimize of an unknown job 404, bad oracle 400, bad
     predicate 400;
  7. /metrics exports the minimizer counters.

Usage: tools/minimize_smoke.py ./build/examples/debug_service_demo
Exits non-zero with a diagnostic on the first violated check.
"""

import glob
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JOB_ID = "smoke-min"
VERTICES = 24
PREDICATE = "value == 0 && superstep >= 1"


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def request(port, path, body=None, method=None):
    """Returns (status, text). HTTP errors are returned, not raised."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode("utf-8") if body is not None else None,
        method=method or ("POST" if body is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


def get_json(port, path, want_status=200):
    status, text = request(port, path)
    if status != want_status:
        fail(f"GET {path} answered {status} (want {want_status}): {text}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        fail(f"GET {path} is not JSON ({err}): {text!r}")


def poll_job_done(port, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    state = None
    while time.monotonic() < deadline:
        listing = get_json(port, "/jobs")
        entry = next(
            (j for j in listing.get("jobs", [])
             if j.get("job_id") == job_id), None)
        state = entry.get("state") if entry else None
        if state in ("done", "failed"):
            break
        time.sleep(0.1)
    if state != "done":
        fail(f"job {job_id} did not finish: state={state}")


def syntax_check(code, demo_path):
    """g++ -fsyntax-only the reproducer against the repo headers."""
    gxx = shutil.which("g++")
    if gxx is None:
        print("NOTE: g++ not found; skipping the reproducer compile check")
        return
    build_dir = os.path.dirname(os.path.dirname(os.path.abspath(demo_path)))
    candidates = glob.glob(
        os.path.join(build_dir, "_deps", "googletest-src", "googletest",
                     "include"))
    # FetchContent build tree first, then the GTest_DIR the build resolved
    # (<prefix>/lib/cmake/GTest -> <prefix>/include), then the system path.
    cache = os.path.join(build_dir, "CMakeCache.txt")
    if os.path.exists(cache):
        with open(cache, encoding="utf-8") as fh:
            for line in fh:
                if line.startswith("GTest_DIR:PATH="):
                    prefix = line.split("=", 1)[1].strip()
                    for _ in range(3):
                        prefix = os.path.dirname(prefix)
                    candidates.append(os.path.join(prefix, "include"))
    candidates.append("/usr/include")
    gtest_includes = [
        d for d in candidates
        if os.path.exists(os.path.join(d, "gtest", "gtest.h"))]
    if not gtest_includes:
        print("NOTE: gtest headers not found; "
              "skipping the reproducer compile check")
        return
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "minimized_repro.cc")
        with open(path, "w", encoding="utf-8") as out:
            out.write(code)
        proc = subprocess.run(
            [gxx, "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(REPO_ROOT, "src"),
             "-I", gtest_includes[0], path],
            capture_output=True, text=True, timeout=300)
        if proc.returncode != 0:
            fail(f"reproducer failed to compile:\n{proc.stderr}\n"
                 f"--- generated code ---\n{code}")
    print("reproducer compile check OK")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    demo = subprocess.Popen(
        [sys.argv[1]],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        header = demo.stdout.readline().strip()
        match = re.match(r"DEBUG_SERVICE port=(\d+)", header)
        if not match:
            fail(f"unexpected demo header line: {header!r}")
        port = int(match.group(1))

        # -- run the job to completion --------------------------------------
        spec = {
            "algo": "cc",
            "job_id": JOB_ID,
            "graph": {"generator": "erdos-renyi", "vertices": VERTICES,
                      "edges": VERTICES * 3, "seed": 5},
            "journal": False,
        }
        status, text = request(port, "/jobs", body=json.dumps(spec))
        if status != 202:
            fail(f"POST /jobs answered {status}: {text}")
        poll_job_done(port, JOB_ID)

        # -- error semantics before the real submit -------------------------
        status, text = request(port, "/jobs/ghost/minimize", body="{}")
        if status != 404:
            fail(f"minimize of unknown job answered {status}: {text}")
        status, text = request(
            port, f"/jobs/{JOB_ID}/minimize",
            body=json.dumps({"oracle": "coin-flip"}))
        if status != 400:
            fail(f"bad oracle answered {status}: {text}")
        status, text = request(
            port, f"/jobs/{JOB_ID}/minimize",
            body=json.dumps({"oracle": "predicate", "predicate": "value = 0"}))
        if status != 400:
            fail(f"bad predicate answered {status}: {text}")
        status, text = request(port, f"/jobs/{JOB_ID}/minimize")
        if status != 404:
            fail(f"minimize status before submit answered {status}: {text}")

        # -- submit the minimization ----------------------------------------
        body = json.dumps({"oracle": "predicate", "predicate": PREDICATE})
        status, text = request(port, f"/jobs/{JOB_ID}/minimize", body=body)
        if status != 202:
            fail(f"POST minimize answered {status}: {text}")
        envelope = json.loads(text)
        if envelope.get("endpoints", {}).get("reproducer") != \
                f"/jobs/{JOB_ID}/minimize/reproducer":
            fail(f"minimize envelope lacks endpoints: {envelope}")
        # A duplicate while pending/running conflicts; once done it re-runs.
        status, _ = request(port, f"/jobs/{JOB_ID}/minimize", body=body)
        if status not in (202, 409):
            fail(f"duplicate minimize answered {status}")

        # -- poll the minimization to done ----------------------------------
        deadline = time.monotonic() + 60.0
        state = None
        while time.monotonic() < deadline:
            progress = get_json(port, f"/jobs/{JOB_ID}/minimize")
            state = progress.get("state")
            if state in ("done", "failed"):
                break
            if "progress" in progress:
                phase = progress["progress"].get("phase")
                if phase is None:
                    fail(f"running status lacks a phase: {progress}")
            time.sleep(0.1)
        if state != "done":
            fail(f"minimization did not finish: {state}")

        report = get_json(port, f"/jobs/{JOB_ID}/minimize").get("report")
        if not report:
            fail("done status lacks the report")
        if report.get("reproduced") is not True:
            fail(f"minimizer did not reproduce the predicate: {report}")
        # Vertex 0 plus the one neighbor whose message wakes it past
        # superstep 0: a two-vertex, one-edge witness.
        if report.get("final_vertices") != 2:
            fail(f"expected a 2-vertex witness, got {report}")
        if report.get("final_edges") != 1:
            fail(f"expected a 1-edge witness, got {report}")
        if report.get("probes", 0) < 2:
            fail(f"suspiciously few probes: {report}")
        if not report.get("has_reproducer"):
            fail(f"report lacks a reproducer: {report}")
        print(
            f"minimized {report['initial_vertices']} vertices -> "
            f"{report['final_vertices']} in {report['probes']} probes "
            f"({report['wall_seconds']:.2f}s)"
        )

        # -- the reproducer is a failing regression test --------------------
        status, code = request(port, f"/jobs/{JOB_ID}/minimize/reproducer")
        if status != 200:
            fail(f"reproducer answered {status}: {code}")
        if "TEST(" not in code or "spec.analysis.breakpoint" not in code:
            fail(f"reproducer does not re-arm the breakpoint:\n{code}")
        if "EXPECT_EQ(summary->breakpoint_hits, 0u)" not in code:
            fail(f"reproducer does not assert the bug's absence:\n{code}")
        syntax_check(code, sys.argv[1])

        # -- metrics --------------------------------------------------------
        status, metrics = request(port, "/metrics")
        if status != 200:
            fail(f"/metrics answered {status}")
        if "graft_service_minimizer_jobs_total" not in metrics:
            fail("minimizer counters not exported")
        print("minimize smoke PASSED")
    finally:
        try:
            demo.stdin.close()
        except OSError:
            pass
        demo.wait(timeout=30)


if __name__ == "__main__":
    main()
