#include "algos/graph_coloring.h"

#include <algorithm>
#include <set>

#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace algos {

using pregel::AggregatorOp;
using pregel::AggregatorSpec;
using pregel::AggValue;

std::string_view GCStateName(GCState state) {
  switch (state) {
    case GCState::kUnknown:
      return "UNKNOWN";
    case GCState::kTentativelyInSet:
      return "TENTATIVELY_IN_SET";
    case GCState::kInSet:
      return "IN_SET";
    case GCState::kNotInSet:
      return "NOT_IN_SET";
    case GCState::kColored:
      return "COLORED";
  }
  return "?";
}

std::string_view GCMessageTypeName(GCMessageType type) {
  switch (type) {
    case GCMessageType::kTentative:
      return "TENTATIVE";
    case GCMessageType::kInSet:
      return "NBR_IN_SET";
    case GCMessageType::kColored:
      return "NBR_COLORED";
  }
  return "?";
}

void GraphColoringComputation::Compute(pregel::ComputeContext<GCTraits>& ctx,
                                       pregel::Vertex<GCTraits>& vertex,
                                       const std::vector<GCMessage>& messages) {
  if (vertex.value().state == GCState::kColored) {
    // Colored vertices have left the logical graph; a stray message (e.g. a
    // COLORED notification crossing ours) must not resurrect them.
    vertex.VoteToHalt();
    return;
  }
  const std::string phase =
      ctx.GetAggregated(kGCPhaseAggregator).IsText()
          ? ctx.GetAggregated(kGCPhaseAggregator).AsText()
          : std::string(kGCPhaseSelect);
  if (phase == kGCPhaseSelect) {
    RunSelect(ctx, vertex, messages);
  } else if (phase == kGCPhaseResolve) {
    RunResolve(ctx, vertex, messages);
  } else if (phase == kGCPhaseUpdate) {
    RunUpdate(ctx, vertex, messages);
  } else if (phase == kGCPhaseColor) {
    RunColor(ctx, vertex, messages);
  } else {
    throw pregel::VertexComputeError("GC: unknown phase '" + phase + "'");
  }
}

void GraphColoringComputation::RunSelect(pregel::ComputeContext<GCTraits>& ctx,
                                         pregel::Vertex<GCTraits>& vertex,
                                         const std::vector<GCMessage>& messages) {
  GCVertexValue value = vertex.value();
  // Absorb COLORED notifications from the previous round's COLOR phase.
  for (const GCMessage& m : messages) {
    if (m.type == GCMessageType::kColored) {
      --value.active_degree;
    }
  }
  if (value.active_degree < 0) value.active_degree = 0;
  // Only undecided vertices participate; a round may take several
  // SELECT/RESOLVE/UPDATE iterations and earlier winners (kInSet) and
  // excluded vertices (kNotInSet) must keep their decision until COLOR.
  if (value.state != GCState::kUnknown) {
    vertex.set_value(value);
    return;
  }
  if (value.active_degree == 0) {
    // No uncolored neighbors left: joining the set is always safe.
    value.state = GCState::kInSet;
    vertex.set_value(value);
    return;
  }
  double select_probability = 1.0 / (2.0 * value.active_degree);
  if (ctx.rng().NextBool(select_probability)) {
    value.state = GCState::kTentativelyInSet;
    value.tentative_r = ctx.rng().NextDouble();
    ctx.SendMessageToAllEdges(
        vertex, GCMessage{GCMessageType::kTentative, vertex.id(),
                          value.tentative_r});
  }
  vertex.set_value(value);
}

void GraphColoringComputation::RunResolve(
    pregel::ComputeContext<GCTraits>& ctx, pregel::Vertex<GCTraits>& vertex,
    const std::vector<GCMessage>& messages) {
  GCVertexValue value = vertex.value();
  if (value.state != GCState::kTentativelyInSet) return;
  bool beaten = false;
  auto beats_me = [&](const GCMessage& m) {
    return m.type == GCMessageType::kTentative &&
           (m.r < value.tentative_r ||
            (m.r == value.tentative_r && m.sender < vertex.id()));
  };
  if (buggy_) {
    // BUG (§4.1): the author meant to scan every tentative neighbor but
    // only consults the first incoming message. With two or more tentative
    // neighbors, a losing vertex can stay in the set next to a winner, and
    // the pair later receives the same color.
    if (!messages.empty() && beats_me(messages[0])) beaten = true;
  } else {
    for (const GCMessage& m : messages) {
      if (beats_me(m)) {
        beaten = true;
        break;
      }
    }
  }
  if (beaten) {
    value.state = GCState::kUnknown;
  } else {
    value.state = GCState::kInSet;
    ctx.SendMessageToAllEdges(
        vertex, GCMessage{GCMessageType::kInSet, vertex.id(), 0.0});
  }
  vertex.set_value(value);
}

void GraphColoringComputation::RunUpdate(pregel::ComputeContext<GCTraits>& ctx,
                                         pregel::Vertex<GCTraits>& vertex,
                                         const std::vector<GCMessage>& messages) {
  GCVertexValue value = vertex.value();
  if (value.state == GCState::kUnknown) {
    for (const GCMessage& m : messages) {
      if (m.type == GCMessageType::kInSet) {
        value.state = GCState::kNotInSet;
        break;
      }
    }
  }
  if (value.state == GCState::kUnknown) {
    ctx.Aggregate(kGCUndecidedAggregator, AggValue{int64_t{1}});
  }
  vertex.set_value(value);
}

void GraphColoringComputation::RunColor(pregel::ComputeContext<GCTraits>& ctx,
                                        pregel::Vertex<GCTraits>& vertex,
                                        const std::vector<GCMessage>& messages) {
  (void)messages;
  GCVertexValue value = vertex.value();
  if (value.state == GCState::kInSet) {
    AggValue color = ctx.GetAggregated(kGCColorAggregator);
    value.color = color.IsInt() ? static_cast<int32_t>(color.AsInt()) : 0;
    value.state = GCState::kColored;
    ctx.SendMessageToAllEdges(
        vertex, GCMessage{GCMessageType::kColored, vertex.id(), 0.0});
    vertex.set_value(value);
    vertex.VoteToHalt();
    return;
  }
  // Losers re-arm for the next round.
  value.state = GCState::kUnknown;
  vertex.set_value(value);
  ctx.Aggregate(kGCUncoloredAggregator, AggValue{int64_t{1}});
}

void GraphColoringMaster::Initialize(pregel::MasterContext& ctx) {
  GRAFT_CHECK_OK(ctx.RegisterAggregator(
      kGCPhaseAggregator, AggregatorSpec{AggregatorOp::kOverwrite,
                                         AggValue{std::string(kGCPhaseSelect)},
                                         /*persistent=*/true}));
  GRAFT_CHECK_OK(ctx.RegisterAggregator(
      kGCColorAggregator,
      AggregatorSpec{AggregatorOp::kOverwrite, AggValue{int64_t{0}},
                     /*persistent=*/true}));
  GRAFT_CHECK_OK(ctx.RegisterAggregator(
      kGCUndecidedAggregator,
      AggregatorSpec{AggregatorOp::kSum, AggValue{int64_t{0}},
                     /*persistent=*/false}));
  GRAFT_CHECK_OK(ctx.RegisterAggregator(
      kGCUncoloredAggregator,
      AggregatorSpec{AggregatorOp::kSum, AggValue{int64_t{0}},
                     /*persistent=*/false}));
}

void GraphColoringMaster::Compute(pregel::MasterContext& ctx) {
  if (ctx.superstep() == 0) {
    GRAFT_CHECK_OK(ctx.SetAggregated(kGCPhaseAggregator,
                                     AggValue{std::string(kGCPhaseSelect)}));
    GRAFT_CHECK_OK(
        ctx.SetAggregated(kGCColorAggregator, AggValue{int64_t{0}}));
    return;
  }
  const std::string phase = ctx.GetAggregated(kGCPhaseAggregator).AsText();
  std::string next;
  if (phase == kGCPhaseSelect) {
    next = kGCPhaseResolve;
  } else if (phase == kGCPhaseResolve) {
    next = kGCPhaseUpdate;
  } else if (phase == kGCPhaseUpdate) {
    int64_t undecided = ctx.GetAggregated(kGCUndecidedAggregator).AsInt();
    next = undecided > 0 ? kGCPhaseSelect : kGCPhaseColor;
  } else {  // COLOR
    // BUG (§3.4 master variant): reads gc.undecided — which a finished MIS
    // round always leaves at 0 — where gc.uncolored was intended, halting
    // the whole computation after the first color.
    int64_t remaining =
        buggy_ ? ctx.GetAggregated(kGCUndecidedAggregator).AsInt()
               : ctx.GetAggregated(kGCUncoloredAggregator).AsInt();
    if (remaining == 0) {
      ctx.HaltComputation();
      return;
    }
    int64_t color = ctx.GetAggregated(kGCColorAggregator).AsInt();
    GRAFT_CHECK_OK(
        ctx.SetAggregated(kGCColorAggregator, AggValue{color + 1}));
    next = kGCPhaseSelect;
  }
  GRAFT_CHECK_OK(
      ctx.SetAggregated(kGCPhaseAggregator, AggValue{std::string(next)}));
}

pregel::ComputationFactory<GCTraits> MakeGraphColoringFactory(bool buggy) {
  return [buggy] { return std::make_unique<GraphColoringComputation>(buggy); };
}

pregel::MasterFactory MakeGraphColoringMasterFactory(bool buggy_master) {
  return [buggy_master] {
    return std::make_unique<GraphColoringMaster>(buggy_master);
  };
}

std::vector<pregel::Vertex<GCTraits>> LoadGraphColoringVertices(
    const graph::SimpleGraph& g) {
  return pregel::LoadUnweighted<GCTraits>(g, [&g](VertexId id) {
    GCVertexValue v;
    v.active_degree =
        static_cast<int32_t>(g.OutEdgesOf(id).size());
    return v;
  });
}

Result<ColoringResult> RunGraphColoring(const graph::SimpleGraph& g,
                                        bool buggy, int num_workers,
                                        uint64_t seed) {
  pregel::JobSpec<GCTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.seed = seed;
  spec.options.job_id = buggy ? "graph-coloring-buggy" : "graph-coloring";
  spec.vertices = LoadGraphColoringVertices(g);
  spec.computation = MakeGraphColoringFactory(buggy);
  spec.master = MakeGraphColoringMasterFactory();
  ColoringResult result;
  std::set<int32_t> colors;
  spec.post_run = [&](pregel::Engine<GCTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<GCTraits>& v) {
      result.color[v.id()] = v.value().color;
      colors.insert(v.value().color);
    });
  };
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  GRAFT_RETURN_NOT_OK(summary.job_status);
  result.stats = std::move(summary.stats);
  result.num_colors = static_cast<int32_t>(colors.size());
  return result;
}

std::vector<std::pair<VertexId, VertexId>> FindColoringConflicts(
    const graph::SimpleGraph& g, const std::map<VertexId, int32_t>& color) {
  std::vector<std::pair<VertexId, VertexId>> conflicts;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    VertexId u = g.IdAt(i);
    auto cu = color.find(u);
    if (cu == color.end()) continue;
    for (const auto& e : g.OutEdges(i)) {
      if (u >= e.target) continue;  // each undirected pair once
      auto cv = color.find(e.target);
      if (cv != color.end() && cu->second == cv->second) {
        conflicts.emplace_back(u, e.target);
      }
    }
  }
  return conflicts;
}

}  // namespace algos
}  // namespace graft
