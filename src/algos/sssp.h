#ifndef GRAFT_ALGOS_SSSP_H_
#define GRAFT_ALGOS_SSSP_H_

#include <map>

#include "common/result.h"
#include "graph/simple_graph.h"
#include "pregel/computation.h"
#include "pregel/engine.h"

namespace graft {
namespace algos {

/// Single-source shortest paths, the textbook Pregel algorithm: vertices
/// hold a tentative distance (infinity initially), relax on incoming
/// distances, and propagate improvements along weighted out-edges.
struct SsspTraits {
  using VertexValue = pregel::DoubleValue;  // tentative distance
  using EdgeValue = pregel::DoubleValue;    // edge weight
  using Message = pregel::DoubleValue;      // candidate distance
};

class SsspComputation : public pregel::Computation<SsspTraits> {
 public:
  explicit SsspComputation(VertexId source) : source_(source) {}

  void Compute(pregel::ComputeContext<SsspTraits>& ctx,
               pregel::Vertex<SsspTraits>& vertex,
               const std::vector<pregel::DoubleValue>& messages) override;

 private:
  VertexId source_;
};

struct SsspResult {
  pregel::JobStats stats;
  /// Distance per vertex; unreachable vertices hold +infinity.
  std::map<VertexId, double> distance;
};

Result<SsspResult> RunSssp(const graph::SimpleGraph& g, VertexId source,
                           int num_workers = 2);

}  // namespace algos
}  // namespace graft

#endif  // GRAFT_ALGOS_SSSP_H_
