#ifndef GRAFT_ALGOS_GRAPH_COLORING_H_
#define GRAFT_ALGOS_GRAPH_COLORING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"
#include "graph/simple_graph.h"
#include "pregel/computation.h"
#include "pregel/engine.h"
#include "pregel/master.h"

namespace graft {
namespace algos {

/// Graph coloring via iterated maximal independent sets (the paper's GC,
/// §4.1, after Gebremedhin-Manne [5] and Salihoglu-Widom [25]): repeatedly
/// compute a Luby-style randomized MIS over the still-uncolored subgraph,
/// assign its members the next color, remove them, and continue until every
/// vertex is colored. The master cycles the computation phase through a
/// "phase" aggregator — exactly the coordination pattern §2 describes.
///
/// Phases (one superstep each):
///   SELECT:   uncolored vertices first absorb COLORED notifications from the
///             previous round, then tentatively enter the MIS with
///             probability 1/(2*active_degree), broadcasting a TENTATIVE
///             (random value, id) pair.
///   RESOLVE:  tentative vertices back off if any tentative neighbor beat
///             them (lexicographically smaller (r, id)); winners enter the
///             set and broadcast IN_SET.
///   UPDATE:   uncolored neighbors of winners drop out of this round; every
///             still-undecided vertex bumps the "gc.undecided" aggregator so
///             the master knows whether the MIS round has converged.
///   COLOR:    set members take the round's color and halt forever,
///             broadcasting COLORED; losers re-arm for the next round.
///
/// The buggy variant reproduces the §4.1 defect — "incorrectly puts some
/// adjacent vertices into the same MIS": during RESOLVE it compares against
/// only the *first* incoming tentative message instead of all of them, so a
/// vertex with two or more tentative neighbors can stay in the set alongside
/// one of them, and both later receive the same color.

/// Vertex state within a coloring round.
enum class GCState : uint8_t {
  kUnknown = 0,          // undecided this round
  kTentativelyInSet = 1, // selected itself, awaiting conflict resolution
  kInSet = 2,            // won this round's MIS
  kNotInSet = 3,         // excluded this round (a neighbor won)
  kColored = 4,          // done forever
};

std::string_view GCStateName(GCState state);

/// Vertex value: assigned color (-1 until colored), round state, number of
/// still-uncolored neighbors, and the random draw backing the current
/// tentative selection.
struct GCVertexValue {
  int32_t color = -1;
  GCState state = GCState::kUnknown;
  int32_t active_degree = 0;
  double tentative_r = 0.0;

  void Write(BinaryWriter& w) const {
    w.WriteSignedVarint(color);
    w.WriteU8(static_cast<uint8_t>(state));
    w.WriteSignedVarint(active_degree);
    w.WriteDouble(tentative_r);
  }
  static Result<GCVertexValue> Read(BinaryReader& r) {
    GCVertexValue v;
    GRAFT_ASSIGN_OR_RETURN(int64_t color, r.ReadSignedVarint());
    v.color = static_cast<int32_t>(color);
    GRAFT_ASSIGN_OR_RETURN(uint8_t state, r.ReadU8());
    if (state > static_cast<uint8_t>(GCState::kColored)) {
      return Status::OutOfRange("bad GCState " + std::to_string(state));
    }
    v.state = static_cast<GCState>(state);
    GRAFT_ASSIGN_OR_RETURN(int64_t degree, r.ReadSignedVarint());
    v.active_degree = static_cast<int32_t>(degree);
    GRAFT_ASSIGN_OR_RETURN(v.tentative_r, r.ReadDouble());
    return v;
  }
  std::string ToString() const {
    return StrFormat("color=%d %s deg=%d", color,
                     std::string(GCStateName(state)).c_str(), active_degree);
  }
  std::string ToCpp() const {
    return StrFormat(
        "graft::algos::GCVertexValue{%d, static_cast<graft::algos::GCState>(%d), "
        "%d, %.17g}",
        color, static_cast<int>(state), active_degree, tentative_r);
  }
  friend bool operator==(const GCVertexValue&, const GCVertexValue&) = default;
};

enum class GCMessageType : uint8_t {
  kTentative = 0,  // (r, id): sender tentatively entered the MIS
  kInSet = 1,      // sender won the MIS round
  kColored = 2,    // sender was colored and left the graph
};

std::string_view GCMessageTypeName(GCMessageType type);

struct GCMessage {
  GCMessageType type = GCMessageType::kTentative;
  VertexId sender = 0;
  double r = 0.0;

  void Write(BinaryWriter& w) const {
    w.WriteU8(static_cast<uint8_t>(type));
    w.WriteSignedVarint(sender);
    w.WriteDouble(r);
  }
  static Result<GCMessage> Read(BinaryReader& rd) {
    GCMessage m;
    GRAFT_ASSIGN_OR_RETURN(uint8_t type, rd.ReadU8());
    if (type > static_cast<uint8_t>(GCMessageType::kColored)) {
      return Status::OutOfRange("bad GCMessageType " + std::to_string(type));
    }
    m.type = static_cast<GCMessageType>(type);
    GRAFT_ASSIGN_OR_RETURN(m.sender, rd.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(m.r, rd.ReadDouble());
    return m;
  }
  std::string ToString() const {
    return StrFormat("%s(from=%lld, r=%.4f)",
                     std::string(GCMessageTypeName(type)).c_str(),
                     static_cast<long long>(sender), r);
  }
  std::string ToCpp() const {
    return StrFormat(
        "graft::algos::GCMessage{static_cast<graft::algos::GCMessageType>(%d), "
        "%lld, %.17g}",
        static_cast<int>(type), static_cast<long long>(sender), r);
  }
  friend bool operator==(const GCMessage&, const GCMessage&) = default;
};

struct GCTraits {
  using VertexValue = GCVertexValue;
  using EdgeValue = pregel::NullValue;
  using Message = GCMessage;
};

/// Aggregator names used by the GC master/vertices.
inline constexpr char kGCPhaseAggregator[] = "gc.phase";
inline constexpr char kGCColorAggregator[] = "gc.color";
inline constexpr char kGCUndecidedAggregator[] = "gc.undecided";
inline constexpr char kGCUncoloredAggregator[] = "gc.uncolored";

/// Phase names stored in the "gc.phase" Text aggregator.
inline constexpr char kGCPhaseSelect[] = "SELECT";
inline constexpr char kGCPhaseResolve[] = "CONFLICT-RESOLUTION";
inline constexpr char kGCPhaseUpdate[] = "UPDATE";
inline constexpr char kGCPhaseColor[] = "COLOR";

class GraphColoringComputation : public pregel::Computation<GCTraits> {
 public:
  /// `buggy` selects the defective RESOLVE comparison described above.
  explicit GraphColoringComputation(bool buggy) : buggy_(buggy) {}

  void Compute(pregel::ComputeContext<GCTraits>& ctx,
               pregel::Vertex<GCTraits>& vertex,
               const std::vector<GCMessage>& messages) override;

 private:
  void RunSelect(pregel::ComputeContext<GCTraits>& ctx,
                 pregel::Vertex<GCTraits>& vertex,
                 const std::vector<GCMessage>& messages);
  void RunResolve(pregel::ComputeContext<GCTraits>& ctx,
                  pregel::Vertex<GCTraits>& vertex,
                  const std::vector<GCMessage>& messages);
  void RunUpdate(pregel::ComputeContext<GCTraits>& ctx,
                 pregel::Vertex<GCTraits>& vertex,
                 const std::vector<GCMessage>& messages);
  void RunColor(pregel::ComputeContext<GCTraits>& ctx,
                pregel::Vertex<GCTraits>& vertex,
                const std::vector<GCMessage>& messages);

  bool buggy_;
};

/// Master driving the SELECT/RESOLVE/UPDATE/COLOR phase machine.
///
/// The buggy variant reproduces the master defect §3.4 singles out as the
/// most common ("setting the phase of the computation incorrectly, which
/// generally leads to infinite superstep executions or premature
/// termination"): after a COLOR phase it consults the WRONG aggregator —
/// "gc.undecided" (always 0 after a converged MIS round) instead of
/// "gc.uncolored" — and halts the job after the very first color while most
/// vertices are still uncolored.
class GraphColoringMaster : public pregel::MasterCompute {
 public:
  explicit GraphColoringMaster(bool buggy = false) : buggy_(buggy) {}

  void Initialize(pregel::MasterContext& ctx) override;
  void Compute(pregel::MasterContext& ctx) override;

 private:
  bool buggy_;
};

pregel::ComputationFactory<GCTraits> MakeGraphColoringFactory(bool buggy);
pregel::MasterFactory MakeGraphColoringMasterFactory(bool buggy_master = false);

/// Loads `g` into GC vertices (active_degree = out-degree).
std::vector<pregel::Vertex<GCTraits>> LoadGraphColoringVertices(
    const graph::SimpleGraph& g);

struct ColoringResult {
  pregel::JobStats stats;
  std::map<VertexId, int32_t> color;
  int32_t num_colors = 0;
};

/// Runs GC on a symmetric graph. `buggy` selects the §4.1 defective variant.
Result<ColoringResult> RunGraphColoring(const graph::SimpleGraph& g,
                                        bool buggy, int num_workers = 2,
                                        uint64_t seed = 0x6c0105ULL);

/// Pairs of adjacent vertices sharing a color — the invariant check the
/// §4.1 user performs by eye in the GUI. Empty means the coloring is proper.
std::vector<std::pair<VertexId, VertexId>> FindColoringConflicts(
    const graph::SimpleGraph& g, const std::map<VertexId, int32_t>& color);

}  // namespace algos
}  // namespace graft

#endif  // GRAFT_ALGOS_GRAPH_COLORING_H_
