#ifndef GRAFT_ALGOS_PAGERANK_H_
#define GRAFT_ALGOS_PAGERANK_H_

#include <map>
#include <memory>

#include "common/result.h"
#include "graph/simple_graph.h"
#include "pregel/computation.h"
#include "pregel/engine.h"
#include "pregel/master.h"

namespace graft {
namespace algos {

/// Classic Pregel PageRank with a fixed iteration count coordinated by a
/// master.compute() — the canonical "hello world" of vertex-centric systems
/// and our quickstart example workload.
struct PageRankTraits {
  using VertexValue = pregel::DoubleValue;
  using EdgeValue = pregel::NullValue;
  using Message = pregel::DoubleValue;
};

class PageRankComputation : public pregel::Computation<PageRankTraits> {
 public:
  explicit PageRankComputation(int max_iterations, double damping = 0.85)
      : max_iterations_(max_iterations), damping_(damping) {}

  void Compute(pregel::ComputeContext<PageRankTraits>& ctx,
               pregel::Vertex<PageRankTraits>& vertex,
               const std::vector<pregel::DoubleValue>& messages) override;

 private:
  int max_iterations_;
  double damping_;
};

/// Master tracking the dangling-mass and L1-delta aggregators; halts after
/// `max_iterations` supersteps.
class PageRankMaster : public pregel::MasterCompute {
 public:
  explicit PageRankMaster(int max_iterations)
      : max_iterations_(max_iterations) {}

  void Initialize(pregel::MasterContext& ctx) override;
  void Compute(pregel::MasterContext& ctx) override;

 private:
  int max_iterations_;
};

struct PageRankResult {
  pregel::JobStats stats;
  std::map<VertexId, double> rank;
};

Result<PageRankResult> RunPageRank(const graph::SimpleGraph& g,
                                   int iterations = 20, int num_workers = 2);

}  // namespace algos
}  // namespace graft

#endif  // GRAFT_ALGOS_PAGERANK_H_
