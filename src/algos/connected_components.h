#ifndef GRAFT_ALGOS_CONNECTED_COMPONENTS_H_
#define GRAFT_ALGOS_CONNECTED_COMPONENTS_H_

#include <map>
#include <memory>

#include "common/result.h"
#include "graph/simple_graph.h"
#include "pregel/computation.h"
#include "pregel/engine.h"

namespace graft {
namespace algos {

/// HCC-style connected components (the algorithm behind the paper's Figure 5
/// screenshot, "a connected components algorithm, where the values are
/// vertex IDs"): every vertex repeatedly adopts the minimum component id it
/// has heard of and propagates changes. Works on undirected (symmetric)
/// graphs.
struct CCTraits {
  using VertexValue = pregel::Int64Value;
  using EdgeValue = pregel::NullValue;
  using Message = pregel::Int64Value;
};

class ConnectedComponentsComputation : public pregel::Computation<CCTraits> {
 public:
  void Compute(pregel::ComputeContext<CCTraits>& ctx,
               pregel::Vertex<CCTraits>& vertex,
               const std::vector<pregel::Int64Value>& messages) override;
};

/// Returns the factory for plugging into an Engine or a Graft debug run.
pregel::ComputationFactory<CCTraits> MakeConnectedComponentsFactory();

/// Convenience driver: loads `g` (assumed symmetric), runs to convergence,
/// returns the component id per vertex.
struct CCResult {
  pregel::JobStats stats;
  std::map<VertexId, int64_t> component;
  int64_t num_components = 0;
};
Result<CCResult> RunConnectedComponents(const graph::SimpleGraph& g,
                                        int num_workers = 2);

}  // namespace algos
}  // namespace graft

#endif  // GRAFT_ALGOS_CONNECTED_COMPONENTS_H_
