#include "algos/random_walk.h"

#include "pregel/loader.h"

namespace graft {
namespace algos {

namespace {

template <typename Traits>
Result<RandomWalkResult> RunImpl(const graph::SimpleGraph& g, int num_steps,
                                 int64_t initial_walkers, int num_workers,
                                 uint64_t seed, const char* job_id) {
  typename pregel::Engine<Traits>::Options options;
  options.num_workers = num_workers;
  options.seed = seed;
  options.job_id = job_id;
  auto vertices = pregel::LoadUnweighted<Traits>(
      g, [](VertexId) { return pregel::Int64Value{0}; });
  pregel::Engine<Traits> engine(
      options, std::move(vertices),
      MakeRandomWalkFactory<Traits>(num_steps, initial_walkers));
  RandomWalkResult result;
  GRAFT_ASSIGN_OR_RETURN(result.stats, engine.Run());
  engine.ForEachVertex([&](const pregel::Vertex<Traits>& v) {
    result.walkers[v.id()] = v.value().value;
    result.total_walkers += v.value().value;
    if (v.value().value < 0) ++result.negative_message_vertices;
  });
  return result;
}

}  // namespace

Result<RandomWalkResult> RunRandomWalk(const graph::SimpleGraph& g,
                                       int num_steps, int64_t initial_walkers,
                                       int num_workers, uint64_t seed) {
  return RunImpl<RWTraits>(g, num_steps, initial_walkers, num_workers, seed,
                           "random-walk");
}

Result<RandomWalkResult> RunRandomWalkShort(const graph::SimpleGraph& g,
                                            int num_steps,
                                            int64_t initial_walkers,
                                            int num_workers, uint64_t seed) {
  return RunImpl<RWShortTraits>(g, num_steps, initial_walkers, num_workers,
                                seed, "random-walk-short");
}

}  // namespace algos
}  // namespace graft
