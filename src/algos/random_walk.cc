#include "algos/random_walk.h"

#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace algos {

namespace {

template <typename Traits>
Result<RandomWalkResult> RunImpl(const graph::SimpleGraph& g, int num_steps,
                                 int64_t initial_walkers, int num_workers,
                                 uint64_t seed, const char* job_id) {
  pregel::JobSpec<Traits> spec;
  spec.options.num_workers = num_workers;
  spec.options.seed = seed;
  spec.options.job_id = job_id;
  spec.vertices = pregel::LoadUnweighted<Traits>(
      g, [](VertexId) { return pregel::Int64Value{0}; });
  spec.computation = MakeRandomWalkFactory<Traits>(num_steps, initial_walkers);
  RandomWalkResult result;
  spec.post_run = [&result](pregel::Engine<Traits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<Traits>& v) {
      result.walkers[v.id()] = v.value().value;
      result.total_walkers += v.value().value;
      if (v.value().value < 0) ++result.negative_message_vertices;
    });
  };
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  GRAFT_RETURN_NOT_OK(summary.job_status);
  result.stats = std::move(summary.stats);
  return result;
}

}  // namespace

Result<RandomWalkResult> RunRandomWalk(const graph::SimpleGraph& g,
                                       int num_steps, int64_t initial_walkers,
                                       int num_workers, uint64_t seed) {
  return RunImpl<RWTraits>(g, num_steps, initial_walkers, num_workers, seed,
                           "random-walk");
}

Result<RandomWalkResult> RunRandomWalkShort(const graph::SimpleGraph& g,
                                            int num_steps,
                                            int64_t initial_walkers,
                                            int num_workers, uint64_t seed) {
  return RunImpl<RWShortTraits>(g, num_steps, initial_walkers, num_workers,
                                seed, "random-walk-short");
}

}  // namespace algos
}  // namespace graft
