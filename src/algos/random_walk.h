#ifndef GRAFT_ALGOS_RANDOM_WALK_H_
#define GRAFT_ALGOS_RANDOM_WALK_H_

#include <cstdint>
#include <map>

#include "common/result.h"
#include "graph/simple_graph.h"
#include "pregel/computation.h"
#include "pregel/engine.h"
#include "pregel/master.h"

namespace graft {
namespace algos {

/// Random walk simulation from the GPS paper [24], the §4.2 debugging
/// scenario: every vertex starts with `initial_walkers` walkers (100 in the
/// paper); each superstep, every walker independently moves to a uniformly
/// random out-neighbor. Vertices tally per-neighbor counters and send them
/// as messages; a vertex's next walker count is the sum of its incoming
/// counters. The master halts after a fixed number of steps.
///
/// The buggy variant reproduces the paper's defect exactly: "to optimize the
/// memory and network I/O, our implementation declares the counters and
/// messages as 16-bit short primitive types" — so a vertex funneling more
/// than 32767 walkers to one neighbor sends a negative counter (two's-
/// complement wraparound), destroying walker conservation. The Graft message
/// constraint "messages are non-negative" catches it (§4.2).

/// Buggy variant: 16-bit counter messages.
struct RWShortTraits {
  using VertexValue = pregel::Int64Value;  // walkers currently here
  using EdgeValue = pregel::NullValue;
  using Message = pregel::ShortValue;  // per-neighbor walker counter
};

/// Fixed variant: 64-bit counter messages.
struct RWTraits {
  using VertexValue = pregel::Int64Value;
  using EdgeValue = pregel::NullValue;
  using Message = pregel::Int64Value;
};

/// Shared implementation; Traits picks the counter width. The per-walker
/// random moves come from the context RNG, so a Graft replay of any captured
/// (vertex, superstep) reproduces the exact same walker dispersal.
template <typename Traits>
class RandomWalkComputation : public pregel::Computation<Traits> {
 public:
  RandomWalkComputation(int num_steps, int64_t initial_walkers)
      : num_steps_(num_steps), initial_walkers_(initial_walkers) {}

  void Compute(pregel::ComputeContext<Traits>& ctx,
               pregel::Vertex<Traits>& vertex,
               const std::vector<typename Traits::Message>& messages) override {
    int64_t walkers;
    if (ctx.superstep() == 0) {
      walkers = initial_walkers_;
    } else {
      walkers = 0;
      for (const auto& m : messages) walkers += m.value;
      if (vertex.num_edges() == 0) {
        // Sinks cannot disperse, so they retain walkers across supersteps;
        // overwriting would silently destroy them (walker conservation is
        // the invariant the fixed variant is tested against).
        walkers += vertex.value().value;
      }
    }
    vertex.set_value(pregel::Int64Value{walkers});
    if (ctx.superstep() >= num_steps_ || vertex.num_edges() == 0 ||
        walkers <= 0) {
      vertex.VoteToHalt();
      return;
    }
    // One counter per out-neighbor; each walker bumps a random counter.
    // With the ShortValue message type the counter increments wrap at
    // 32767 exactly like a Java short (§4.2's bug).
    counters_.assign(vertex.num_edges(), typename Traits::Message{});
    for (int64_t w = 0; w < walkers; ++w) {
      size_t pick = static_cast<size_t>(ctx.rng().NextBounded(counters_.size()));
      ++counters_[pick].value;
    }
    const auto& edges = vertex.edges();
    for (size_t i = 0; i < edges.size(); ++i) {
      if (counters_[i].value != 0) {
        ctx.SendMessage(edges[i].target, counters_[i]);
      }
    }
  }

 private:
  int num_steps_;
  int64_t initial_walkers_;
  // Worker-local scratch, reused across Compute() calls (safe: one
  // Computation instance per worker thread).
  std::vector<typename Traits::Message> counters_;
};

struct RandomWalkResult {
  pregel::JobStats stats;
  std::map<VertexId, int64_t> walkers;
  int64_t total_walkers = 0;  // should equal V * initial_walkers if no bug
  int64_t negative_message_vertices = 0;
};

/// Runs the fixed (64-bit) variant.
Result<RandomWalkResult> RunRandomWalk(const graph::SimpleGraph& g,
                                       int num_steps,
                                       int64_t initial_walkers = 100,
                                       int num_workers = 2,
                                       uint64_t seed = 0x2a11ULL);

/// Runs the buggy (16-bit) variant from §4.2.
Result<RandomWalkResult> RunRandomWalkShort(const graph::SimpleGraph& g,
                                            int num_steps,
                                            int64_t initial_walkers = 100,
                                            int num_workers = 2,
                                            uint64_t seed = 0x2a11ULL);

template <typename Traits>
pregel::ComputationFactory<Traits> MakeRandomWalkFactory(
    int num_steps, int64_t initial_walkers) {
  return [num_steps, initial_walkers] {
    return std::make_unique<RandomWalkComputation<Traits>>(num_steps,
                                                           initial_walkers);
  };
}

}  // namespace algos
}  // namespace graft

#endif  // GRAFT_ALGOS_RANDOM_WALK_H_
