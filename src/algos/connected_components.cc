#include "algos/connected_components.h"

#include <set>

#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace algos {

using pregel::Int64Value;

void ConnectedComponentsComputation::Compute(
    pregel::ComputeContext<CCTraits>& ctx, pregel::Vertex<CCTraits>& vertex,
    const std::vector<Int64Value>& messages) {
  if (ctx.superstep() == 0) {
    // Component id starts as the vertex's own id and only decreases.
    vertex.set_value(Int64Value{vertex.id()});
    ctx.SendMessageToAllEdges(vertex, vertex.value());
    vertex.VoteToHalt();
    return;
  }
  int64_t best = vertex.value().value;
  for (const Int64Value& m : messages) {
    if (m.value < best) best = m.value;
  }
  if (best < vertex.value().value) {
    vertex.set_value(Int64Value{best});
    ctx.SendMessageToAllEdges(vertex, vertex.value());
  }
  vertex.VoteToHalt();
}

pregel::ComputationFactory<CCTraits> MakeConnectedComponentsFactory() {
  return [] { return std::make_unique<ConnectedComponentsComputation>(); };
}

Result<CCResult> RunConnectedComponents(const graph::SimpleGraph& g,
                                        int num_workers) {
  pregel::JobSpec<CCTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.job_id = "connected-components";
  // The min-combiner keeps inboxes at one message per vertex.
  spec.options.combiner = [](const Int64Value& a, const Int64Value& b) {
    return Int64Value{std::min(a.value, b.value)};
  };
  spec.vertices = pregel::LoadUnweighted<CCTraits>(
      g, [](VertexId) { return Int64Value{0}; });
  spec.computation = MakeConnectedComponentsFactory();
  CCResult result;
  std::set<int64_t> components;
  spec.post_run = [&](pregel::Engine<CCTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<CCTraits>& v) {
      result.component[v.id()] = v.value().value;
      components.insert(v.value().value);
    });
  };
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  GRAFT_RETURN_NOT_OK(summary.job_status);
  result.stats = std::move(summary.stats);
  result.num_components = static_cast<int64_t>(components.size());
  return result;
}

}  // namespace algos
}  // namespace graft
