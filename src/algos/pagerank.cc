#include "algos/pagerank.h"

#include <cmath>

#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace algos {

using pregel::AggregatorOp;
using pregel::AggregatorSpec;
using pregel::AggValue;
using pregel::DoubleValue;

void PageRankComputation::Compute(
    pregel::ComputeContext<PageRankTraits>& ctx,
    pregel::Vertex<PageRankTraits>& vertex,
    const std::vector<DoubleValue>& messages) {
  double old_rank = vertex.value().value;
  if (ctx.superstep() == 0) {
    vertex.set_value(
        DoubleValue{1.0 / static_cast<double>(ctx.total_num_vertices())});
  } else {
    double incoming = 0.0;
    for (const DoubleValue& m : messages) incoming += m.value;
    double n = static_cast<double>(ctx.total_num_vertices());
    vertex.set_value(DoubleValue{(1.0 - damping_) / n + damping_ * incoming});
    // Convergence metric only — merge-order FP error is far below the
    // epsilon the master compares against.
    // bsp-lint: allow(fp-agg)
    ctx.Aggregate("pagerank.delta",
                  AggValue{std::fabs(vertex.value().value - old_rank)});
  }
  if (ctx.superstep() < max_iterations_) {
    size_t degree = vertex.num_edges();
    if (degree > 0) {
      ctx.SendMessageToAllEdges(
          vertex,
          DoubleValue{vertex.value().value / static_cast<double>(degree)});
    } else {
      // Dangling mass is redistributed uniformly; the sum's merge-order
      // error does not affect ranking.
      // bsp-lint: allow(fp-agg)
      ctx.Aggregate("pagerank.dangling", AggValue{vertex.value().value});
    }
  } else {
    vertex.VoteToHalt();
  }
}

void PageRankMaster::Initialize(pregel::MasterContext& ctx) {
  GRAFT_CHECK_OK(ctx.RegisterAggregator(
      "pagerank.delta",
      AggregatorSpec{AggregatorOp::kSum, AggValue{0.0}, false}));
  GRAFT_CHECK_OK(ctx.RegisterAggregator(
      "pagerank.dangling",
      AggregatorSpec{AggregatorOp::kSum, AggValue{0.0}, false}));
}

void PageRankMaster::Compute(pregel::MasterContext& ctx) {
  if (ctx.superstep() > max_iterations_) {
    ctx.HaltComputation();
  }
}

Result<PageRankResult> RunPageRank(const graph::SimpleGraph& g,
                                   int iterations, int num_workers) {
  pregel::JobSpec<PageRankTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.job_id = "pagerank";
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{a.value + b.value};
  };
  spec.vertices = pregel::LoadUnweighted<PageRankTraits>(
      g, [](VertexId) { return DoubleValue{0.0}; });
  spec.computation = [iterations] {
    return std::make_unique<PageRankComputation>(iterations);
  };
  spec.master = [iterations]() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<PageRankMaster>(iterations);
  };
  PageRankResult result;
  spec.post_run = [&result](pregel::Engine<PageRankTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<PageRankTraits>& v) {
      result.rank[v.id()] = v.value().value;
    });
  };
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  GRAFT_RETURN_NOT_OK(summary.job_status);
  result.stats = std::move(summary.stats);
  return result;
}

}  // namespace algos
}  // namespace graft
