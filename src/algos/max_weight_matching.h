#ifndef GRAFT_ALGOS_MAX_WEIGHT_MATCHING_H_
#define GRAFT_ALGOS_MAX_WEIGHT_MATCHING_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/string_util.h"
#include "graph/simple_graph.h"
#include "pregel/computation.h"
#include "pregel/engine.h"

namespace graft {
namespace algos {

/// Approximate maximum-weight matching (Preis's ½-approximation [23],
/// vertex-centric formulation), the §4.3 debugging scenario: in each round
/// every live vertex points at its maximum-weight neighbor; if two vertices
/// point at each other, the edge joins the matching and both endpoints (with
/// all incident edges) leave the graph. On a correctly-encoded weighted
/// undirected graph the locally-heaviest-edge argument guarantees progress
/// every round, so the algorithm terminates. The paper's scenario feeds it a
/// corrupted graph whose symmetric edges disagree on weight — mutual
/// pointing can then never happen for some vertices and the job loops
/// forever (bounded here only by Options::max_supersteps).
///
/// Rounds take two supersteps:
///   even (PROPOSE): pick argmax-weight neighbor, remember it, send PROPOSE.
///   odd  (MATCH):   if our pick proposed to us too, record the match, tell
///                   every neighbor MATCHED, and halt. Unmatched vertices
///                   prune edges to matched neighbors at the start of the
///                   next PROPOSE superstep.

enum class MWMState : uint8_t {
  kActive = 0,
  kMatched = 1,
  kIsolated = 2,  // ran out of neighbors without matching
};

std::string_view MWMStateName(MWMState state);

struct MWMVertexValue {
  MWMState state = MWMState::kActive;
  VertexId matched_to = -1;
  VertexId proposed_to = -1;

  void Write(BinaryWriter& w) const {
    w.WriteU8(static_cast<uint8_t>(state));
    w.WriteSignedVarint(matched_to);
    w.WriteSignedVarint(proposed_to);
  }
  static Result<MWMVertexValue> Read(BinaryReader& r) {
    MWMVertexValue v;
    GRAFT_ASSIGN_OR_RETURN(uint8_t state, r.ReadU8());
    if (state > static_cast<uint8_t>(MWMState::kIsolated)) {
      return Status::OutOfRange("bad MWMState " + std::to_string(state));
    }
    v.state = static_cast<MWMState>(state);
    GRAFT_ASSIGN_OR_RETURN(v.matched_to, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(v.proposed_to, r.ReadSignedVarint());
    return v;
  }
  std::string ToString() const {
    return StrFormat("%s matched_to=%lld proposed_to=%lld",
                     std::string(MWMStateName(state)).c_str(),
                     static_cast<long long>(matched_to),
                     static_cast<long long>(proposed_to));
  }
  std::string ToCpp() const {
    return StrFormat(
        "graft::algos::MWMVertexValue{static_cast<graft::algos::MWMState>(%d), "
        "%lld, %lld}",
        static_cast<int>(state), static_cast<long long>(matched_to),
        static_cast<long long>(proposed_to));
  }
  friend bool operator==(const MWMVertexValue&, const MWMVertexValue&) = default;
};

enum class MWMMessageType : uint8_t {
  kPropose = 0,
  kMatched = 1,
};

struct MWMMessage {
  MWMMessageType type = MWMMessageType::kPropose;
  VertexId sender = 0;

  void Write(BinaryWriter& w) const {
    w.WriteU8(static_cast<uint8_t>(type));
    w.WriteSignedVarint(sender);
  }
  static Result<MWMMessage> Read(BinaryReader& r) {
    MWMMessage m;
    GRAFT_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    if (type > static_cast<uint8_t>(MWMMessageType::kMatched)) {
      return Status::OutOfRange("bad MWMMessageType " + std::to_string(type));
    }
    m.type = static_cast<MWMMessageType>(type);
    GRAFT_ASSIGN_OR_RETURN(m.sender, r.ReadSignedVarint());
    return m;
  }
  std::string ToString() const {
    return StrFormat("%s(from=%lld)",
                     type == MWMMessageType::kPropose ? "PROPOSE" : "MATCHED",
                     static_cast<long long>(sender));
  }
  std::string ToCpp() const {
    return StrFormat(
        "graft::algos::MWMMessage{static_cast<graft::algos::MWMMessageType>(%d), "
        "%lld}",
        static_cast<int>(type), static_cast<long long>(sender));
  }
  friend bool operator==(const MWMMessage&, const MWMMessage&) = default;
};

struct MWMTraits {
  using VertexValue = MWMVertexValue;
  using EdgeValue = pregel::DoubleValue;  // edge weight
  using Message = MWMMessage;
};

class MaxWeightMatchingComputation : public pregel::Computation<MWMTraits> {
 public:
  void Compute(pregel::ComputeContext<MWMTraits>& ctx,
               pregel::Vertex<MWMTraits>& vertex,
               const std::vector<MWMMessage>& messages) override;
};

pregel::ComputationFactory<MWMTraits> MakeMaxWeightMatchingFactory();

std::vector<pregel::Vertex<MWMTraits>> LoadMatchingVertices(
    const graph::SimpleGraph& g);

struct MatchingResult {
  pregel::JobStats stats;
  /// matched pairs, each with u < v.
  std::map<VertexId, VertexId> matching;
  double total_weight = 0.0;
  bool converged = false;  // false = hit the superstep cap (§4.3's symptom)
};

/// Runs MWM on a weighted symmetric graph; `max_supersteps` is the safety
/// cap that stands in for "we see that it enters an infinite loop".
Result<MatchingResult> RunMaxWeightMatching(const graph::SimpleGraph& g,
                                            int num_workers = 2,
                                            int64_t max_supersteps = 2000);

/// Checks that `matching` is a valid matching in `g` (edges exist, pairs are
/// mutual, no vertex matched twice). Empty string = valid; otherwise a
/// description of the first violation.
std::string ValidateMatching(const graph::SimpleGraph& g,
                             const std::map<VertexId, VertexId>& matching);

}  // namespace algos
}  // namespace graft

#endif  // GRAFT_ALGOS_MAX_WEIGHT_MATCHING_H_
