#include "algos/max_weight_matching.h"

#include <algorithm>

#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace algos {

std::string_view MWMStateName(MWMState state) {
  switch (state) {
    case MWMState::kActive:
      return "ACTIVE";
    case MWMState::kMatched:
      return "MATCHED";
    case MWMState::kIsolated:
      return "ISOLATED";
  }
  return "?";
}

void MaxWeightMatchingComputation::Compute(
    pregel::ComputeContext<MWMTraits>& ctx, pregel::Vertex<MWMTraits>& vertex,
    const std::vector<MWMMessage>& messages) {
  MWMVertexValue value = vertex.value();
  if (value.state != MWMState::kActive) {
    vertex.VoteToHalt();
    return;
  }
  if (ctx.superstep() % 2 == 0) {
    // PROPOSE. First prune edges to neighbors that matched last round.
    for (const MWMMessage& m : messages) {
      if (m.type == MWMMessageType::kMatched) {
        vertex.RemoveEdgesTo(m.sender);
      }
    }
    if (vertex.num_edges() == 0) {
      value.state = MWMState::kIsolated;
      vertex.set_value(value);
      vertex.VoteToHalt();
      return;
    }
    // Argmax-weight neighbor; ties broken towards the larger id so both
    // endpoints of an equal-weight edge make consistent choices.
    const auto& edges = vertex.edges();
    size_t best = 0;
    for (size_t i = 1; i < edges.size(); ++i) {
      if (edges[i].value.value > edges[best].value.value ||
          (edges[i].value.value == edges[best].value.value &&
           edges[i].target > edges[best].target)) {
        best = i;
      }
    }
    value.proposed_to = edges[best].target;
    vertex.set_value(value);
    ctx.SendMessage(value.proposed_to,
                    MWMMessage{MWMMessageType::kPropose, vertex.id()});
    return;
  }
  // MATCH: did our pick propose to us?
  bool mutual = std::any_of(messages.begin(), messages.end(),
                            [&](const MWMMessage& m) {
                              return m.type == MWMMessageType::kPropose &&
                                     m.sender == value.proposed_to;
                            });
  if (mutual) {
    value.state = MWMState::kMatched;
    value.matched_to = value.proposed_to;
    vertex.set_value(value);
    ctx.SendMessageToAllEdges(vertex,
                              MWMMessage{MWMMessageType::kMatched, vertex.id()});
    vertex.VoteToHalt();
    return;
  }
  // No match this round; stay for the next PROPOSE superstep. The explicit
  // self-message-free path: remain active by not halting.
  vertex.set_value(value);
}

pregel::ComputationFactory<MWMTraits> MakeMaxWeightMatchingFactory() {
  return [] { return std::make_unique<MaxWeightMatchingComputation>(); };
}

std::vector<pregel::Vertex<MWMTraits>> LoadMatchingVertices(
    const graph::SimpleGraph& g) {
  return pregel::LoadVertices<MWMTraits>(
      g, [](VertexId) { return MWMVertexValue{}; },
      [](VertexId, VertexId, double w) { return pregel::DoubleValue{w}; });
}

Result<MatchingResult> RunMaxWeightMatching(const graph::SimpleGraph& g,
                                            int num_workers,
                                            int64_t max_supersteps) {
  pregel::JobSpec<MWMTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.max_supersteps = max_supersteps;
  spec.options.job_id = "max-weight-matching";
  spec.vertices = LoadMatchingVertices(g);
  spec.computation = MakeMaxWeightMatchingFactory();
  MatchingResult result;
  spec.post_run = [&](pregel::Engine<MWMTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<MWMTraits>& v) {
      const MWMVertexValue& value = v.value();
      if (value.state == MWMState::kMatched && v.id() < value.matched_to) {
        result.matching[v.id()] = value.matched_to;
        auto w = g.EdgeWeight(v.id(), value.matched_to);
        if (w.ok()) result.total_weight += *w;
      }
    });
  };
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  GRAFT_RETURN_NOT_OK(summary.job_status);
  result.stats = std::move(summary.stats);
  result.converged =
      result.stats.termination == pregel::TerminationReason::kAllHalted;
  return result;
}

std::string ValidateMatching(const graph::SimpleGraph& g,
                             const std::map<VertexId, VertexId>& matching) {
  std::map<VertexId, VertexId> partner;
  for (const auto& [u, v] : matching) {
    if (u >= v) {
      return StrFormat("pair (%lld,%lld) not normalized u<v",
                       static_cast<long long>(u), static_cast<long long>(v));
    }
    if (!g.HasEdge(u, v) || !g.HasEdge(v, u)) {
      return StrFormat("matched pair (%lld,%lld) is not an edge",
                       static_cast<long long>(u), static_cast<long long>(v));
    }
    if (partner.count(u) != 0 || partner.count(v) != 0) {
      return StrFormat("vertex matched twice in pair (%lld,%lld)",
                       static_cast<long long>(u), static_cast<long long>(v));
    }
    partner[u] = v;
    partner[v] = u;
  }
  return "";
}

}  // namespace algos
}  // namespace graft
