#include "algos/sssp.h"

#include <limits>

#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace algos {

using pregel::DoubleValue;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void SsspComputation::Compute(pregel::ComputeContext<SsspTraits>& ctx,
                              pregel::Vertex<SsspTraits>& vertex,
                              const std::vector<DoubleValue>& messages) {
  double candidate = ctx.superstep() == 0 && vertex.id() == source_
                         ? 0.0
                         : vertex.value().value;
  for (const DoubleValue& m : messages) {
    if (m.value < candidate) candidate = m.value;
  }
  if (candidate < vertex.value().value) {
    vertex.set_value(DoubleValue{candidate});
    for (const auto& edge : vertex.edges()) {
      ctx.SendMessage(edge.target, DoubleValue{candidate + edge.value.value});
    }
  }
  vertex.VoteToHalt();
}

Result<SsspResult> RunSssp(const graph::SimpleGraph& g, VertexId source,
                           int num_workers) {
  if (!g.HasVertex(source)) {
    return Status::InvalidArgument("SSSP source vertex " +
                                   std::to_string(source) + " not in graph");
  }
  pregel::JobSpec<SsspTraits> spec;
  spec.options.num_workers = num_workers;
  spec.options.job_id = "sssp";
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{std::min(a.value, b.value)};
  };
  spec.vertices = pregel::LoadVertices<SsspTraits>(
      g, [](VertexId) { return DoubleValue{kInf}; },
      [](VertexId, VertexId, double w) { return DoubleValue{w}; });
  spec.computation = [source] {
    return std::make_unique<SsspComputation>(source);
  };
  SsspResult result;
  spec.post_run = [&result](pregel::Engine<SsspTraits>& engine) {
    engine.ForEachVertex([&](const pregel::Vertex<SsspTraits>& v) {
      result.distance[v.id()] = v.value().value;
    });
  };
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  GRAFT_RETURN_NOT_OK(summary.job_status);
  result.stats = std::move(summary.stats);
  return result;
}

}  // namespace algos
}  // namespace graft
