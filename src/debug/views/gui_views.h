#ifndef GRAFT_DEBUG_VIEWS_GUI_VIEWS_H_
#define GRAFT_DEBUG_VIEWS_GUI_VIEWS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "debug/debug_session.h"
#include "debug/vertex_trace.h"
#include "debug/views/text_table.h"
#include "debug/views/view_api.h"
#include "io/trace_store.h"

namespace graft {
namespace debug {

/// Everything the Graft GUI shows for one superstep (§3.2): the captured
/// vertex contexts, the master context, and the M/V/E status flags.
template <pregel::JobTraits Traits>
struct SuperstepSnapshot {
  int64_t superstep = 0;
  std::vector<VertexTrace<Traits>> traces;
  std::optional<MasterTrace> master;

  bool AnyMessageViolation() const {
    for (const auto& t : traces) {
      if ((t.reasons & kReasonMessageValue) != 0) return true;
    }
    return false;
  }
  bool AnyVertexValueViolation() const {
    for (const auto& t : traces) {
      if ((t.reasons & kReasonVertexValue) != 0) return true;
    }
    return false;
  }
  bool AnyException() const {
    for (const auto& t : traces) {
      if (t.exception.has_value()) return true;
    }
    return false;
  }
};

template <pregel::JobTraits Traits>
Result<SuperstepSnapshot<Traits>> LoadSnapshot(
    const DebugSession<Traits>& session, int64_t superstep) {
  SuperstepSnapshot<Traits> snapshot;
  snapshot.superstep = superstep;
  GRAFT_ASSIGN_OR_RETURN(snapshot.traces, session.VertexTraces(superstep));
  auto master = session.Master(superstep);
  if (master.ok()) snapshot.master = std::move(master).value();
  return snapshot;
}

/// Convenience overload opening a one-shot DebugSession. Prefer holding a
/// session when loading several supersteps of one job.
template <pregel::JobTraits Traits>
Result<SuperstepSnapshot<Traits>> LoadSnapshot(const TraceStore& store,
                                               const std::string& job_id,
                                               int64_t superstep) {
  GRAFT_ASSIGN_OR_RETURN(DebugSession<Traits> session,
                         DebugSession<Traits>::Open(&store, job_id));
  return LoadSnapshot(session, superstep);
}

namespace internal_views {

inline std::string StatusFlags(bool msg_violation, bool vv_violation,
                               bool exception) {
  // The three boxes on the left of the paper's GUI: M (message constraint),
  // V (vertex-value constraint), E (exception); "OK" = green, "RED" = red.
  return StrFormat("[M] %s   [V] %s   [E] %s",
                   msg_violation ? "RED" : "OK",
                   vv_violation ? "RED" : "OK", exception ? "RED" : "OK");
}

inline std::string AggregatorLine(
    const std::map<std::string, pregel::AggValue>& aggs) {
  if (aggs.empty()) return "Aggregators: (none)";
  std::string out = "Aggregators:";
  for (const auto& [name, value] : aggs) {
    out += " " + name + "=" + value.ToString();
  }
  return out;
}

}  // namespace internal_views

/// Builds a paginated ViewResult straight from a loaded snapshot — the
/// bridge between the snapshot world (GraftGui, exports) and the structured
/// ViewRequest/ViewResult API in view_api.h. `request.superstep` is ignored;
/// the snapshot's superstep wins.
template <pregel::JobTraits Traits>
ViewResult BuildView(const SuperstepSnapshot<Traits>& snapshot,
                     const std::string& job_id, ViewRequest request) {
  request.superstep = snapshot.superstep;
  return BuildViewFromTraces(snapshot.traces, snapshot.master, job_id,
                             request);
}

/// Graphviz DOT export of the node-link view — captured vertices as labeled
/// nodes (dimmed when inactive, paper-style), uncaptured neighbors as small
/// id-only nodes.
template <pregel::JobTraits Traits>
std::string ExportNodeLinkDot(const SuperstepSnapshot<Traits>& snapshot) {
  std::set<VertexId> captured;
  for (const auto& t : snapshot.traces) captured.insert(t.id);
  std::string out = "digraph graft {\n  rankdir=LR;\n";
  std::set<VertexId> emitted_small;
  for (const auto& t : snapshot.traces) {
    out += StrFormat(
        "  v%lld [shape=box, style=%s, label=\"%lld\\n%s\"];\n",
        static_cast<long long>(t.id), t.halted_after ? "dashed" : "solid",
        static_cast<long long>(t.id),
        JsonWriter::Escape(t.value_after.ToString()).c_str());
    for (const auto& e : t.edges) {
      if (captured.count(e.target) == 0 &&
          emitted_small.insert(e.target).second) {
        out += StrFormat("  v%lld [shape=point, label=\"%lld\"];\n",
                         static_cast<long long>(e.target),
                         static_cast<long long>(e.target));
      }
      out += StrFormat("  v%lld -> v%lld;\n", static_cast<long long>(t.id),
                       static_cast<long long>(e.target));
    }
  }
  out += "}\n";
  return out;
}

/// Full-fidelity JSON export of a superstep snapshot, the interchange format
/// a browser front-end (the paper's actual GUI) would consume.
template <pregel::JobTraits Traits>
std::string ExportSnapshotJson(const SuperstepSnapshot<Traits>& snapshot,
                               const std::string& job_id) {
  JsonWriter w;
  w.BeginObject();
  w.KV("job", job_id);
  w.KV("superstep", snapshot.superstep);
  w.KV("message_violation", snapshot.AnyMessageViolation());
  w.KV("vertex_value_violation", snapshot.AnyVertexValueViolation());
  w.KV("exception", snapshot.AnyException());
  if (snapshot.master.has_value()) {
    w.Key("master");
    w.BeginObject();
    w.KV("halted", snapshot.master->halted);
    w.Key("aggregators");
    w.BeginObject();
    for (const auto& [name, value] : snapshot.master->aggregators_after) {
      w.KV(name, value.ToString());
    }
    w.EndObject();
    w.EndObject();
  }
  w.Key("vertices");
  w.BeginArray();
  for (const auto& t : snapshot.traces) {
    w.BeginObject();
    w.KV("id", t.id);
    w.KV("reasons", CaptureReasonsToString(t.reasons));
    w.KV("value_before", t.value_before.ToString());
    w.KV("value_after", t.value_after.ToString());
    w.KV("inactive", t.halted_after);
    w.Key("edges");
    w.BeginArray();
    for (const auto& e : t.edges) {
      w.BeginObject();
      w.KV("target", e.target);
      w.KV("value", e.value.ToString());
      w.EndObject();
    }
    w.EndArray();
    w.Key("incoming");
    w.BeginArray();
    for (const auto& m : t.incoming) w.String(m.ToString());
    w.EndArray();
    w.Key("outgoing");
    w.BeginArray();
    for (const auto& [target, m] : t.outgoing) {
      w.BeginObject();
      w.KV("target", target);
      w.KV("message", m.ToString());
      w.EndObject();
    }
    w.EndArray();
    w.Key("violations");
    w.BeginArray();
    for (const auto& v : t.violations) w.String(v.detail);
    w.EndArray();
    if (t.exception.has_value()) {
      w.KV("exception", t.exception->type + ": " + t.exception->message);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

/// Self-contained HTML page for a superstep snapshot — the closest artifact
/// to the paper's browser GUI screenshots (Figures 3-5): the M/V/E status
/// bar, the aggregator panel, the tabular view, and the violations table.
template <pregel::JobTraits Traits>
std::string ExportSnapshotHtml(const SuperstepSnapshot<Traits>& snapshot,
                               const std::string& job_id) {
  auto esc = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '&': out += "&amp;"; break;
        default: out.push_back(c);
      }
    }
    return out;
  };
  auto flag = [](bool red) {
    return red ? "<span class=\"red\">RED</span>"
               : "<span class=\"ok\">OK</span>";
  };
  std::string html =
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>Graft — " + esc(job_id) + "</title>\n"
      "<style>body{font-family:monospace}table{border-collapse:collapse}"
      "td,th{border:1px solid #999;padding:2px 6px}"
      ".red{color:#fff;background:#c00;padding:1px 4px}"
      ".ok{color:#fff;background:#090;padding:1px 4px}"
      ".inactive{color:#999}</style></head><body>\n";
  html += StrFormat("<h1>Graft GUI — job '%s' — superstep %lld</h1>\n",
                    esc(job_id).c_str(),
                    static_cast<long long>(snapshot.superstep));
  html += "<p>[M] " + std::string(flag(snapshot.AnyMessageViolation())) +
          " [V] " + flag(snapshot.AnyVertexValueViolation()) + " [E] " +
          flag(snapshot.AnyException()) + "</p>\n";
  if (snapshot.master.has_value()) {
    html += "<h2>Aggregators</h2><table><tr><th>name</th><th>value</th></tr>";
    for (const auto& [name, value] : snapshot.master->aggregators_after) {
      html += "<tr><td>" + esc(name) + "</td><td>" +
              esc(value.ToString()) + "</td></tr>";
    }
    html += "</table>\n";
  }
  html += "<h2>Captured vertices</h2>\n<table><tr><th>id</th><th>value</th>"
          "<th>edges</th><th>in</th><th>out</th><th>reasons</th></tr>\n";
  for (const auto& t : snapshot.traces) {
    html += StrFormat("<tr%s><td>%lld</td><td>%s</td><td>%zu</td>"
                      "<td>%zu</td><td>%zu</td><td>%s</td></tr>\n",
                      t.halted_after ? " class=\"inactive\"" : "",
                      static_cast<long long>(t.id),
                      esc(t.value_after.ToString()).c_str(), t.edges.size(),
                      t.incoming.size(), t.outgoing.size(),
                      CaptureReasonsToString(t.reasons).c_str());
  }
  html += "</table>\n<h2>Violations &amp; exceptions</h2>\n"
          "<table><tr><th>kind</th><th>vertex</th><th>detail</th></tr>\n";
  for (const auto& t : snapshot.traces) {
    for (const auto& v : t.violations) {
      html += StrFormat(
          "<tr><td>%s</td><td>%lld</td><td>%s</td></tr>\n",
          v.kind == ViolationInfo::Kind::kVertexValue ? "vertex-value"
                                                      : "message-value",
          static_cast<long long>(v.source), esc(v.detail).c_str());
    }
    if (t.exception.has_value()) {
      html += StrFormat("<tr><td>exception</td><td>%lld</td><td>%s</td></tr>\n",
                        static_cast<long long>(t.id),
                        esc(t.exception->message).c_str());
    }
  }
  html += "</table>\n</body></html>\n";
  return html;
}

/// Stateful wrapper bundling the three views with Next/Previous superstep
/// stepping — the terminal incarnation of the paper's browser GUI.
template <pregel::JobTraits Traits>
class GraftGui {
 public:
  GraftGui(const TraceStore* store, std::string job_id)
      : store_(store), job_id_(std::move(job_id)) {
    auto session = DebugSession<Traits>::Open(store_, job_id_);
    if (session.ok()) {
      session_.emplace(std::move(session).value());
      supersteps_ = session_->supersteps();
    } else {
      // Corrupt manifest: degrade to the directory scan so the views still
      // show whatever traces are readable.
      supersteps_ = ListCapturedSupersteps(*store_, job_id_);
    }
  }

  bool HasCaptures() const { return !supersteps_.empty(); }
  const std::vector<int64_t>& supersteps() const { return supersteps_; }
  int64_t current_superstep() const {
    return supersteps_.empty() ? -1 : supersteps_[cursor_];
  }

  /// "Play supersteps": move the cursor. Clamped at the ends.
  void SeekFirst() { cursor_ = 0; }
  void SeekLast() {
    cursor_ = supersteps_.empty() ? 0 : supersteps_.size() - 1;
  }
  bool NextSuperstep() {
    if (cursor_ + 1 >= supersteps_.size()) return false;
    ++cursor_;
    return true;
  }
  bool PreviousSuperstep() {
    if (cursor_ == 0) return false;
    --cursor_;
    return true;
  }
  Status SeekTo(int64_t superstep) {
    for (size_t i = 0; i < supersteps_.size(); ++i) {
      if (supersteps_[i] == superstep) {
        cursor_ = i;
        return Status::OK();
      }
    }
    return Status::NotFound("no captures in superstep " +
                            std::to_string(superstep));
  }

  Result<SuperstepSnapshot<Traits>> Snapshot() const {
    if (supersteps_.empty()) {
      return Status::NotFound("job '" + job_id_ + "' has no captures");
    }
    if (session_.has_value()) {
      return LoadSnapshot(*session_, current_superstep());
    }
    return LoadSnapshot<Traits>(*store_, job_id_, current_superstep());
  }

  /// Structured view of the current superstep — the GraftGui entry point
  /// into the ViewRequest/ViewResult API (request.superstep is overridden by
  /// the cursor).
  Result<ViewResult> View(const ViewRequest& request) const {
    GRAFT_ASSIGN_OR_RETURN(auto snapshot, Snapshot());
    return BuildView(snapshot, job_id_, request);
  }

  Result<std::string> NodeLinkView() const {
    ViewRequest request;
    request.kind = ViewKind::kNodeLink;
    request.limit = kViewNoLimit;
    GRAFT_ASSIGN_OR_RETURN(ViewResult view, View(request));
    return view.ToText();
  }
  Result<std::string> TabularView(const std::string& search = "") const {
    ViewRequest request;
    request.kind = ViewKind::kTabular;
    request.limit = kViewNoLimit;
    request.search = search;
    GRAFT_ASSIGN_OR_RETURN(ViewResult view, View(request));
    return view.ToText();
  }
  Result<std::string> ViolationsView() const {
    ViewRequest request;
    request.kind = ViewKind::kViolations;
    request.limit = kViewNoLimit;
    GRAFT_ASSIGN_OR_RETURN(ViewResult view, View(request));
    return view.ToText();
  }
  Result<std::string> DotExport() const {
    GRAFT_ASSIGN_OR_RETURN(auto snapshot, Snapshot());
    return ExportNodeLinkDot(snapshot);
  }
  Result<std::string> JsonExport() const {
    GRAFT_ASSIGN_OR_RETURN(auto snapshot, Snapshot());
    return ExportSnapshotJson(snapshot, job_id_);
  }
  Result<std::string> HtmlExport() const {
    GRAFT_ASSIGN_OR_RETURN(auto snapshot, Snapshot());
    return ExportSnapshotHtml(snapshot, job_id_);
  }

 private:
  const TraceStore* store_;
  std::string job_id_;
  std::optional<DebugSession<Traits>> session_;
  std::vector<int64_t> supersteps_;
  size_t cursor_ = 0;
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_VIEWS_GUI_VIEWS_H_
