#include "debug/views/text_table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace graft {
namespace debug {

namespace {
std::string Ms(double seconds) { return StrFormat("%.3f", seconds * 1e3); }
}  // namespace

void TextTable::AddRow(std::vector<std::string> cells) {
  GRAFT_CHECK(cells.size() == headers_.size())
      << "row arity " << cells.size() << " != header arity "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string RenderSuperstepProfile(const obs::RunReport& report) {
  TextTable table({"superstep", "mutate_ms", "deliver_ms", "master_ms",
                   "compute_ms", "agg_ms", "max_wait_ms", "total_ms"});
  for (const obs::SuperstepProfile& prof : report.per_superstep) {
    double max_wait = 0.0;
    for (const obs::WorkerPhaseProfile& wp : prof.workers) {
      max_wait = std::max(max_wait, wp.barrier_wait_seconds);
    }
    table.AddRow({StrFormat("%lld", static_cast<long long>(prof.superstep)),
                  Ms(prof.mutation_seconds), Ms(prof.delivery_wall_seconds),
                  Ms(prof.master_seconds), Ms(prof.compute_wall_seconds),
                  Ms(prof.aggregator_merge_seconds), Ms(max_wait),
                  Ms(prof.total_seconds)});
  }
  return table.Render();
}

std::string RenderWorkerProfile(const obs::RunReport& report,
                                int64_t superstep) {
  for (const obs::SuperstepProfile& prof : report.per_superstep) {
    if (prof.superstep != superstep) continue;
    TextTable table({"worker", "compute_ms", "deliver_ms", "wait_ms",
                     "vertices", "messages"});
    for (const obs::WorkerPhaseProfile& wp : prof.workers) {
      table.AddRow({StrFormat("%d", wp.worker), Ms(wp.compute_seconds),
                    Ms(wp.delivery_seconds), Ms(wp.barrier_wait_seconds),
                    WithThousandsSeparators(wp.vertices_computed),
                    WithThousandsSeparators(wp.messages_sent)});
    }
    return table.Render();
  }
  return "";
}

std::string RenderCaptureProfile(const obs::RunReport& report) {
  const obs::CaptureProfile& c = report.capture;
  if (!c.enabled) return "";
  std::string out = StrFormat(
      "captures: vertex=%s master=%s violations=%s exceptions=%s "
      "dropped=%s\noverhead: serialize=%.3fms append=%.3fms traces=%s "
      "(%s appends, %s flushes)\n",
      WithThousandsSeparators(c.vertex_captures).c_str(),
      WithThousandsSeparators(c.master_captures).c_str(),
      WithThousandsSeparators(c.violations).c_str(),
      WithThousandsSeparators(c.exceptions).c_str(),
      WithThousandsSeparators(c.dropped_by_limit).c_str(),
      c.serialize_seconds * 1e3, c.append_seconds * 1e3,
      HumanBytes(c.trace_bytes).c_str(),
      WithThousandsSeparators(c.store_appends).c_str(),
      WithThousandsSeparators(c.store_flushes).c_str());
  if (c.async_sink) {
    out += StrFormat(
        "spool: flush=%.3fms batches=%s max_queue=%s backpressure_waits=%s\n",
        c.flush_seconds * 1e3,
        WithThousandsSeparators(c.spool_batches).c_str(),
        WithThousandsSeparators(c.spool_max_queue_depth).c_str(),
        WithThousandsSeparators(c.spool_backpressure_waits).c_str());
  }
  return out;
}

}  // namespace debug
}  // namespace graft
