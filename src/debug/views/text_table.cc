#include "debug/views/text_table.h"

#include <algorithm>

#include "common/logging.h"

namespace graft {
namespace debug {

void TextTable::AddRow(std::vector<std::string> cells) {
  GRAFT_CHECK(cells.size() == headers_.size())
      << "row arity " << cells.size() << " != header arity "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(headers_);
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace debug
}  // namespace graft
