#ifndef GRAFT_DEBUG_VIEWS_TEXT_TABLE_H_
#define GRAFT_DEBUG_VIEWS_TEXT_TABLE_H_

#include <string>
#include <vector>

#include "obs/run_report.h"

namespace graft {
namespace debug {

/// Fixed-width text table renderer shared by the Tabular and Violations
/// views and the benchmark harness output. Columns auto-size to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with a header rule, e.g.:
  ///   id   | value      | state
  ///   -----+------------+-------
  ///   672  | color=-1   | IN_SET
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One row per superstep: phase wall times (mutation, delivery, master,
/// compute, aggregator merge), the slowest worker's barrier wait, and the
/// superstep total. The GUI-equivalent of the paper's per-superstep panel,
/// fed by the engine's run report.
std::string RenderSuperstepProfile(const obs::RunReport& report);

/// One row per worker of superstep `superstep`: compute/delivery/barrier
/// seconds plus vertices computed and messages sent. Returns "" when the
/// report has no such superstep.
std::string RenderWorkerProfile(const obs::RunReport& report,
                                int64_t superstep);

/// Two-line summary of capture overhead (counts, seconds, bytes); "" when
/// capture accounting is absent (run without Graft).
std::string RenderCaptureProfile(const obs::RunReport& report);

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_VIEWS_TEXT_TABLE_H_
