#ifndef GRAFT_DEBUG_VIEWS_TEXT_TABLE_H_
#define GRAFT_DEBUG_VIEWS_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace graft {
namespace debug {

/// Fixed-width text table renderer shared by the Tabular and Violations
/// views and the benchmark harness output. Columns auto-size to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with a header rule, e.g.:
  ///   id   | value      | state
  ///   -----+------------+-------
  ///   672  | color=-1   | IN_SET
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_VIEWS_TEXT_TABLE_H_
