#ifndef GRAFT_DEBUG_VIEWS_VIEW_API_H_
#define GRAFT_DEBUG_VIEWS_VIEW_API_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "debug/debug_session.h"
#include "debug/vertex_trace.h"

namespace graft {
namespace debug {

template <pregel::JobTraits Traits>
struct SuperstepSnapshot;

/// The three GUI panels of §3.2 plus the per-vertex drill-down the paper's
/// tabular rows expand into on click.
enum class ViewKind : uint8_t {
  kNodeLink = 0,    // Figure 3: nodes, values, adjacency, messages
  kTabular = 1,     // Figure 4: one summary row per captured vertex
  kViolations = 2,  // Figure 5: constraint violations + exceptions
  kVertex = 3,      // one vertex's full context (point lookup or history)
};

enum class ViewFormat : uint8_t { kText = 0, kJson = 1 };

/// "no pagination" sentinel for limit.
inline constexpr uint64_t kViewNoLimit = UINT64_MAX;
/// Default page size of the HTTP debug endpoints.
inline constexpr uint64_t kViewDefaultLimit = 100;

const char* ViewKindName(ViewKind kind);

/// One view query: which panel, which superstep (nullopt = the first
/// captured one; for kVertex, nullopt = the vertex's whole history), window
/// and filter. This is the wire surface of the debug endpoints — every query
/// parameter maps onto one field.
struct ViewRequest {
  ViewKind kind = ViewKind::kTabular;
  std::optional<int64_t> superstep;
  /// Vertex id for kVertex.
  std::optional<VertexId> vertex;
  uint64_t offset = 0;
  uint64_t limit = kViewDefaultLimit;
  /// Matches by vertex id, neighbor id, value substring, or message
  /// substring (§3.2's search feature). Empty matches everything.
  std::string search;
  ViewFormat format = ViewFormat::kText;
};

struct ViewEdge {
  VertexId target = 0;
  std::string value;   // "-" for valueless edges
  bool captured = false;  // target itself captured this superstep
};

struct ViewMessage {
  VertexId target = 0;
  std::string message;
};

/// One captured vertex, fully stringified: the structured row the GUI (or
/// any JSON consumer) renders. Values go through ToString once here so the
/// result is traits-free.
struct ViewVertexRow {
  int64_t superstep = 0;
  VertexId id = 0;
  std::string value_before;
  std::string value_after;
  bool inactive = false;
  std::string reasons;
  std::vector<ViewEdge> edges;
  std::vector<std::string> incoming;
  std::vector<ViewMessage> outgoing;
  std::vector<std::string> violations;
  std::string exception;  // "" = none
};

struct ViewViolationRow {
  std::string kind;  // "vertex-value" | "message-value" | "exception"
  VertexId vertex = 0;
  std::string destination;  // "-" when not a message violation
  std::string detail;
};

/// A rendered view page: structured rows plus totals, independent of the
/// Traits type. `total_rows` counts rows matching the search before
/// pagination; `vertices`/`violations` hold the [offset, offset+limit)
/// window. Render to a terminal table via ToText() or to the HTTP wire
/// format via ToJson().
struct ViewResult {
  ViewKind kind = ViewKind::kTabular;
  std::string job_id;
  int64_t superstep = 0;

  // The paper GUI's M/V/E status boxes.
  bool message_violation = false;
  bool vertex_value_violation = false;
  bool any_exception = false;

  std::map<std::string, std::string> aggregators;
  int64_t total_vertices = 0;  // global graph size, 0 when unknown
  int64_t total_edges = 0;

  uint64_t total_rows = 0;
  uint64_t offset = 0;
  uint64_t limit = kViewNoLimit;
  std::string search;

  std::vector<ViewVertexRow> vertices;
  std::vector<ViewViolationRow> violations;

  /// True when the window covers every matching row.
  bool Complete() const {
    return offset == 0 && (vertices.size() + violations.size()) == total_rows;
  }

  std::string ToText() const;
  std::string ToJson() const;
  std::string Render(ViewFormat format) const {
    return format == ViewFormat::kJson ? ToJson() : ToText();
  }
};

namespace internal_views {

/// Matches a trace by id, neighbor id, value substring, or message
/// substring, against the stringified row (ViewRequest::search semantics).
bool RowMatchesSearch(const ViewVertexRow& row, const std::string& query);

}  // namespace internal_views

/// Stringifies one trace into a row. `captured` marks which neighbor ids
/// were themselves captured this superstep (the paper renders them as full
/// nodes, the rest id-only).
template <pregel::JobTraits Traits>
ViewVertexRow MakeVertexRow(const VertexTrace<Traits>& trace,
                            const std::set<VertexId>& captured) {
  ViewVertexRow row;
  row.superstep = trace.superstep;
  row.id = trace.id;
  row.value_before = trace.value_before.ToString();
  row.value_after = trace.value_after.ToString();
  row.inactive = trace.halted_after;
  row.reasons = CaptureReasonsToString(trace.reasons);
  row.edges.reserve(trace.edges.size());
  for (const auto& e : trace.edges) {
    row.edges.push_back(ViewEdge{e.target, e.value.ToString(),
                                 captured.count(e.target) != 0});
  }
  row.incoming.reserve(trace.incoming.size());
  for (const auto& m : trace.incoming) row.incoming.push_back(m.ToString());
  row.outgoing.reserve(trace.outgoing.size());
  for (const auto& [target, m] : trace.outgoing) {
    row.outgoing.push_back(ViewMessage{target, m.ToString()});
  }
  for (const auto& v : trace.violations) row.violations.push_back(v.detail);
  if (trace.exception.has_value()) {
    row.exception = trace.exception->type + ": " + trace.exception->message +
                    " @ " + trace.exception->context;
  }
  return row;
}

/// Builds a ViewResult from already-loaded traces. Search + pagination are
/// applied here; totals reflect the pre-pagination match count.
template <pregel::JobTraits Traits>
ViewResult BuildViewFromTraces(const std::vector<VertexTrace<Traits>>& traces,
                               const std::optional<MasterTrace>& master,
                               const std::string& job_id,
                               const ViewRequest& request) {
  ViewResult result;
  result.kind = request.kind;
  result.job_id = job_id;
  result.superstep = request.superstep.value_or(
      traces.empty() ? 0 : traces.front().superstep);
  result.offset = request.offset;
  result.limit = request.limit;
  result.search = request.search;

  std::set<VertexId> captured;
  for (const auto& t : traces) {
    captured.insert(t.id);
    if ((t.reasons & kReasonMessageValue) != 0) result.message_violation = true;
    if ((t.reasons & kReasonVertexValue) != 0) {
      result.vertex_value_violation = true;
    }
    if (t.exception.has_value()) result.any_exception = true;
  }
  if (!traces.empty()) {
    result.total_vertices = traces.front().total_vertices;
    result.total_edges = traces.front().total_edges;
    for (const auto& [name, value] : traces.front().aggregators) {
      result.aggregators[name] = value.ToString();
    }
  }
  if (master.has_value()) {
    result.aggregators.clear();
    for (const auto& [name, value] : master->aggregators_after) {
      result.aggregators[name] = value.ToString();
    }
  }

  if (request.kind == ViewKind::kViolations) {
    std::vector<ViewViolationRow> rows;
    for (const auto& t : traces) {
      for (const auto& v : t.violations) {
        ViewViolationRow row;
        row.kind = v.kind == ViolationInfo::Kind::kVertexValue
                       ? "vertex-value"
                       : "message-value";
        row.vertex = v.source;
        row.destination = v.kind == ViolationInfo::Kind::kMessageValue
                              ? std::to_string(v.destination)
                              : "-";
        row.detail = v.detail;
        rows.push_back(std::move(row));
      }
      if (t.exception.has_value()) {
        ViewViolationRow row;
        row.kind = "exception";
        row.vertex = t.id;
        row.destination = "-";
        row.detail = t.exception->type + ": " + t.exception->message + " @ " +
                     t.exception->context;
        rows.push_back(std::move(row));
      }
    }
    result.total_rows = rows.size();
    for (uint64_t i = request.offset;
         i < rows.size() && result.violations.size() < request.limit; ++i) {
      result.violations.push_back(std::move(rows[i]));
    }
    return result;
  }

  uint64_t matched = 0;
  for (const auto& t : traces) {
    ViewVertexRow row = MakeVertexRow(t, captured);
    if (!internal_views::RowMatchesSearch(row, request.search)) continue;
    const uint64_t ordinal = matched++;
    if (ordinal < request.offset) continue;
    if (result.vertices.size() >= request.limit) continue;
    result.vertices.push_back(std::move(row));
  }
  result.total_rows = matched;
  return result;
}

/// The structured replacement for the Render*View free functions: one view
/// query against an open DebugSession. kVertex resolves through the
/// manifest's point index (O(1) store reads when cached); the snapshot kinds
/// load the requested superstep's traces.
template <pregel::JobTraits Traits>
Result<ViewResult> RenderView(const DebugSession<Traits>& session,
                              const ViewRequest& request) {
  if (request.kind == ViewKind::kVertex) {
    if (!request.vertex.has_value()) {
      return Status::InvalidArgument("vertex view requires a vertex id");
    }
    std::vector<VertexTrace<Traits>> traces;
    if (request.superstep.has_value()) {
      GRAFT_ASSIGN_OR_RETURN(
          VertexTrace<Traits> trace,
          session.FindVertexTrace(*request.superstep, *request.vertex));
      traces.push_back(std::move(trace));
    } else {
      GRAFT_ASSIGN_OR_RETURN(traces, session.VertexHistory(*request.vertex));
      if (traces.empty()) {
        return Status::NotFound(
            StrFormat("no captures for vertex %lld in job '%s'",
                      static_cast<long long>(*request.vertex),
                      session.job_id().c_str()));
      }
    }
    ViewResult result = BuildViewFromTraces(traces, std::nullopt,
                                            session.job_id(), request);
    result.superstep = traces.front().superstep;
    return result;
  }

  int64_t superstep;
  if (request.superstep.has_value()) {
    superstep = *request.superstep;
  } else {
    if (session.supersteps().empty()) {
      return Status::NotFound("job '" + session.job_id() +
                              "' has no captures");
    }
    superstep = session.supersteps().front();
  }
  GRAFT_ASSIGN_OR_RETURN(std::vector<VertexTrace<Traits>> traces,
                         session.VertexTraces(superstep));
  std::optional<MasterTrace> master;
  auto master_result = session.Master(superstep);
  if (master_result.ok()) master = std::move(master_result).value();
  ViewRequest resolved = request;
  resolved.superstep = superstep;
  return BuildViewFromTraces(traces, master, session.job_id(), resolved);
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_VIEWS_VIEW_API_H_
