#include "debug/views/view_api.h"

#include "common/json_writer.h"
#include "common/string_util.h"
#include "debug/views/text_table.h"

namespace graft {
namespace debug {

const char* ViewKindName(ViewKind kind) {
  switch (kind) {
    case ViewKind::kNodeLink:
      return "node-link";
    case ViewKind::kTabular:
      return "tabular";
    case ViewKind::kViolations:
      return "violations";
    case ViewKind::kVertex:
      return "vertex";
  }
  return "?";
}

namespace internal_views {

bool RowMatchesSearch(const ViewVertexRow& row, const std::string& query) {
  if (query.empty()) return true;
  if (std::to_string(row.id) == query) return true;
  for (const auto& e : row.edges) {
    if (std::to_string(e.target) == query) return true;
  }
  if (row.value_before.find(query) != std::string::npos ||
      row.value_after.find(query) != std::string::npos) {
    return true;
  }
  for (const auto& m : row.incoming) {
    if (m.find(query) != std::string::npos) return true;
  }
  for (const auto& m : row.outgoing) {
    if (m.message.find(query) != std::string::npos) return true;
  }
  return false;
}

}  // namespace internal_views

namespace {

std::string StatusFlagsLine(const ViewResult& result) {
  // The three boxes on the left of the paper's GUI: M (message constraint),
  // V (vertex-value constraint), E (exception); "OK" = green, "RED" = red.
  return StrFormat("[M] %s   [V] %s   [E] %s",
                   result.message_violation ? "RED" : "OK",
                   result.vertex_value_violation ? "RED" : "OK",
                   result.any_exception ? "RED" : "OK");
}

std::string AggregatorsLine(const ViewResult& result) {
  if (result.aggregators.empty()) return "Aggregators: (none)";
  std::string out = "Aggregators:";
  for (const auto& [name, value] : result.aggregators) {
    out += " " + name + "=" + value;
  }
  return out;
}

void AppendVertexRowText(const ViewVertexRow& row, bool with_superstep,
                         std::string* out) {
  if (with_superstep) {
    *out += StrFormat("superstep %lld:\n",
                      static_cast<long long>(row.superstep));
  }
  *out += StrFormat("(%lld) %s -> %s  [%s]  reasons=%s\n",
                    static_cast<long long>(row.id), row.value_before.c_str(),
                    row.value_after.c_str(),
                    row.inactive ? "inactive" : "active",
                    row.reasons.c_str());
  if (!row.edges.empty()) {
    *out += "  edges: ";
    bool first = true;
    for (const auto& e : row.edges) {
      if (!first) *out += ", ";
      first = false;
      *out += std::to_string(e.target);
      if (e.value != "-") *out += "(" + e.value + ")";
      if (e.captured) *out += "*";
    }
    *out += "   (* = captured)\n";
  }
  for (const auto& m : row.incoming) {
    *out += "  in:  " + m + "\n";
  }
  for (const auto& m : row.outgoing) {
    *out += StrFormat("  out: -> %lld  %s\n",
                      static_cast<long long>(m.target), m.message.c_str());
  }
  if (!row.exception.empty()) {
    *out += "  EXCEPTION: " + row.exception + "\n";
  }
}

std::string PaginationSuffix(const ViewResult& result, size_t shown) {
  if (result.Complete()) return "";
  return StrFormat(" (rows %llu..%llu of %llu)",
                   static_cast<unsigned long long>(result.offset),
                   static_cast<unsigned long long>(result.offset + shown),
                   static_cast<unsigned long long>(result.total_rows));
}

}  // namespace

std::string ViewResult::ToText() const {
  std::string out;
  switch (kind) {
    case ViewKind::kNodeLink: {
      out = StrFormat(
          "=== Graft GUI / Node-link View — job '%s' — superstep %lld ===\n",
          job_id.c_str(), static_cast<long long>(superstep));
      out += StatusFlagsLine(*this);
      out.push_back('\n');
      if (!aggregators.empty() || total_rows > 0) {
        out += AggregatorsLine(*this);
        out.push_back('\n');
      }
      if (total_vertices > 0 || total_edges > 0) {
        out += StrFormat("Global: vertices=%lld edges=%lld\n",
                         static_cast<long long>(total_vertices),
                         static_cast<long long>(total_edges));
      }
      out.push_back('\n');
      for (const auto& row : vertices) {
        AppendVertexRowText(row, /*with_superstep=*/false, &out);
      }
      if (!Complete()) {
        out += StrFormat("... %s\n",
                         PaginationSuffix(*this, vertices.size()).c_str());
      }
      return out;
    }
    case ViewKind::kTabular: {
      out = StrFormat(
          "=== Graft GUI / Tabular View — job '%s' — superstep %lld%s ===\n",
          job_id.c_str(), static_cast<long long>(superstep),
          search.empty() ? "" : (" — search '" + search + "'").c_str());
      out += StatusFlagsLine(*this);
      out.push_back('\n');
      TextTable table({"id", "value before", "value after", "deg", "in",
                       "out", "state", "reasons"});
      for (const auto& row : vertices) {
        table.AddRow({std::to_string(row.id), Ellipsize(row.value_before, 28),
                      Ellipsize(row.value_after, 28),
                      std::to_string(row.edges.size()),
                      std::to_string(row.incoming.size()),
                      std::to_string(row.outgoing.size()),
                      row.inactive ? "inactive" : "active", row.reasons});
      }
      out += table.Render();
      out += StrFormat("%llu vertices%s\n",
                       static_cast<unsigned long long>(total_rows),
                       PaginationSuffix(*this, vertices.size()).c_str());
      return out;
    }
    case ViewKind::kViolations: {
      out = StrFormat(
          "=== Graft GUI / Violations & Exceptions — job '%s' — superstep "
          "%lld ===\n",
          job_id.c_str(), static_cast<long long>(superstep));
      TextTable table({"kind", "vertex", "dst", "detail"});
      for (const auto& row : violations) {
        table.AddRow({row.kind, std::to_string(row.vertex), row.destination,
                      Ellipsize(row.detail,
                                row.kind == "exception" ? 72 : 48)});
      }
      out += table.Render();
      out += StrFormat("%llu violations/exceptions%s\n",
                       static_cast<unsigned long long>(total_rows),
                       PaginationSuffix(*this, violations.size()).c_str());
      return out;
    }
    case ViewKind::kVertex: {
      const long long vid =
          vertices.empty() ? 0 : static_cast<long long>(vertices.front().id);
      out = StrFormat("=== Graft GUI / Vertex %lld — job '%s' ===\n", vid,
                      job_id.c_str());
      for (const auto& row : vertices) {
        AppendVertexRowText(row, /*with_superstep=*/true, &out);
      }
      out += StrFormat("%llu captures%s\n",
                       static_cast<unsigned long long>(total_rows),
                       PaginationSuffix(*this, vertices.size()).c_str());
      return out;
    }
  }
  return out;
}

std::string ViewResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("job", job_id);
  w.KV("view", ViewKindName(kind));
  w.KV("superstep", superstep);
  w.KV("message_violation", message_violation);
  w.KV("vertex_value_violation", vertex_value_violation);
  w.KV("exception", any_exception);
  w.Key("aggregators");
  w.BeginObject();
  for (const auto& [name, value] : aggregators) w.KV(name, value);
  w.EndObject();
  if (total_vertices > 0 || total_edges > 0) {
    w.KV("total_vertices", total_vertices);
    w.KV("total_edges", total_edges);
  }
  w.Key("page");
  w.BeginObject();
  w.KV("total", total_rows);
  w.KV("offset", offset);
  if (limit != kViewNoLimit) w.KV("limit", limit);
  w.KV("returned",
       static_cast<uint64_t>(kind == ViewKind::kViolations
                                 ? violations.size()
                                 : vertices.size()));
  if (!search.empty()) w.KV("search", search);
  w.EndObject();
  if (kind == ViewKind::kViolations) {
    w.Key("violations");
    w.BeginArray();
    for (const auto& row : violations) {
      w.BeginObject();
      w.KV("kind", row.kind);
      w.KV("vertex", row.vertex);
      w.KV("destination", row.destination);
      w.KV("detail", row.detail);
      w.EndObject();
    }
    w.EndArray();
  } else {
    w.Key("vertices");
    w.BeginArray();
    for (const auto& row : vertices) {
      w.BeginObject();
      if (kind == ViewKind::kVertex) w.KV("superstep", row.superstep);
      w.KV("id", row.id);
      w.KV("reasons", row.reasons);
      w.KV("value_before", row.value_before);
      w.KV("value_after", row.value_after);
      w.KV("inactive", row.inactive);
      w.Key("edges");
      w.BeginArray();
      for (const auto& e : row.edges) {
        w.BeginObject();
        w.KV("target", e.target);
        w.KV("value", e.value);
        w.KV("captured", e.captured);
        w.EndObject();
      }
      w.EndArray();
      w.Key("incoming");
      w.BeginArray();
      for (const auto& m : row.incoming) w.String(m);
      w.EndArray();
      w.Key("outgoing");
      w.BeginArray();
      for (const auto& m : row.outgoing) {
        w.BeginObject();
        w.KV("target", m.target);
        w.KV("message", m.message);
        w.EndObject();
      }
      w.EndArray();
      w.Key("violations");
      w.BeginArray();
      for (const auto& v : row.violations) w.String(v);
      w.EndArray();
      if (!row.exception.empty()) w.KV("exception", row.exception);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace debug
}  // namespace graft
