#ifndef GRAFT_DEBUG_INSTRUMENTED_COMPUTATION_H_
#define GRAFT_DEBUG_INSTRUMENTED_COMPUTATION_H_

#include <memory>
#include <optional>
#include <typeinfo>
#include <utility>
#include <vector>

#include "analysis/predicate.h"
#include "debug/capture_manager.h"
#include "debug/vertex_trace.h"
#include "pregel/computation.h"
#include "pregel/compute_context.h"

namespace graft {
namespace debug {

/// The Graft Instrumenter (§3.1). The paper wraps the user's
/// vertex.compute() with Javassist bytecode rewriting; the C++ equivalent is
/// this decorator, which the DebugRunner substitutes for the user's
/// Computation. On every Compute() call it:
///
///   1. wraps the engine's ComputeContext in an interceptor that records
///      outgoing messages (for eagerly-captured vertices) and checks the
///      message-value constraint on each send (category 4);
///   2. calls the user's original Compute(), catching any exception
///      (category 5);
///   3. checks the vertex-value constraint on the post-compute value
///      (category 3);
///   4. decides whether the vertex should be captured — it is targeted
///      (categories 1/2 ± neighbors), capture-all-active is on, or a
///      constraint/exception fired — and if so appends the full vertex
///      context to the trace store.
///
/// Cost discipline (this is what the Figure 7 overhead bench measures): the
/// per-vertex work scales with what the DebugConfig actually asks for. An
/// untargeted vertex pays
///   * nothing extra beyond a hash lookup and a try/catch frame when only
///     exception capture is on (the DC-sp floor);
///   * one virtual indirection per SendMessage when a message constraint is
///     configured (DC-msg);
///   * one predicate call after Compute() when a vertex-value constraint is
///     configured (DC-vv).
/// The full trace is materialized only when a capture actually happens.
template <pregel::JobTraits Traits>
class InstrumentedComputation : public pregel::Computation<Traits> {
 public:
  using Message = typename Traits::Message;
  using VertexT = pregel::Vertex<Traits>;
  using VertexValue = typename Traits::VertexValue;
  using EdgeT = pregel::Edge<typename Traits::EdgeValue>;

  InstrumentedComputation(std::unique_ptr<pregel::Computation<Traits>> inner,
                          CaptureManager<Traits>* manager)
      : inner_(std::move(inner)), manager_(manager) {
    GRAFT_CHECK(inner_ != nullptr);
    GRAFT_CHECK(manager_ != nullptr);
  }

  void Compute(pregel::ComputeContext<Traits>& ctx, VertexT& vertex,
               const std::vector<Message>& messages) override {
    const int64_t superstep = ctx.superstep();
    const bool selected =
        manager_->config().ShouldCaptureSuperstep(superstep);
    uint32_t target_reasons = 0;
    if (selected) {
      target_reasons = manager_->TargetReasons(vertex.id());
      if (manager_->capture_all_active()) target_reasons |= kReasonAllActive;
    }
    const bool under_limit = manager_->UnderCaptureLimit();
    if (target_reasons != 0 && !under_limit) {
      manager_->CountSkippedByLimit();
    }
    const bool eager = target_reasons != 0 && under_limit;
    const bool check_msgs = selected && manager_->has_message_constraint();
    const bool check_vv = selected && manager_->has_vertex_value_constraint();
    // Unarmed breakpoints cost exactly this null check per vertex (the
    // BM_PageRankSocEpinionsBreakpointOff bench guards it).
    const bool check_bp = selected && manager_->breakpoint() != nullptr;
    const bool catch_exceptions =
        selected && manager_->config().CaptureExceptions();

    if (!eager && !check_msgs && !check_vv && !check_bp && !catch_exceptions) {
      inner_->Compute(ctx, vertex, messages);
      return;
    }
    if (!eager && !check_msgs && !check_vv && !check_bp) {
      // Exceptions-only path (the DC-sp floor for untargeted vertices):
      // beyond one RNG-state read, zero work until a throw actually
      // happens. The trace then snapshots the post-throw state
      // (edges_snapshot_post) — the value may reflect partial mutation,
      // which the trace flags.
      const uint64_t entry_rng_state = ctx.rng().state();
      try {
        inner_->Compute(ctx, vertex, messages);
        return;
      } catch (const std::exception& e) {
        CaptureExceptionLazily(ctx, vertex, messages, entry_rng_state,
                               ExceptionInfo{
                                   typeid(e).name(), e.what(),
                                   StrFormat("at Compute() superstep=%lld "
                                             "vertex=%lld job=%s",
                                             static_cast<long long>(superstep),
                                             static_cast<long long>(
                                                 vertex.id()),
                                             manager_->job_id().c_str())});
      }
      return;
    }

    // Cheap entry-state snapshot; needed by any capture that fires.
    const VertexValue value_before = vertex.value();
    const uint64_t rng_state = ctx.rng().state();
    std::vector<EdgeT> edges_before;
    if (eager) edges_before = vertex.edges();

    Interceptor ictx(&ctx, manager_, vertex.id(), check_msgs,
                     /*record_outcome=*/eager);
    pregel::ComputeContext<Traits>& call_ctx =
        (eager || check_msgs) ? static_cast<pregel::ComputeContext<Traits>&>(
                                    ictx)
                              : ctx;

    std::optional<ExceptionInfo> exception;
    try {
      inner_->Compute(call_ctx, vertex, messages);
    } catch (const std::exception& e) {
      exception = ExceptionInfo{
          typeid(e).name(), e.what(),
          StrFormat("at Compute() superstep=%lld vertex=%lld job=%s",
                    static_cast<long long>(superstep),
                    static_cast<long long>(vertex.id()),
                    manager_->job_id().c_str())};
    }

    uint32_t reasons = target_reasons;
    std::vector<ViolationInfo> violations = ictx.TakeViolations();
    if (!violations.empty()) reasons |= kReasonMessageValue;
    if (exception.has_value() && catch_exceptions) {
      reasons |= kReasonException;
    }
    if (check_vv &&
        !manager_->config().VertexValueConstraint(vertex.value(), vertex.id(),
                                                  superstep)) {
      reasons |= kReasonVertexValue;
      violations.push_back(
          ViolationInfo{ViolationInfo::Kind::kVertexValue, vertex.id(), 0,
                        vertex.value().ToString()});
    }
    if (check_bp) {
      analysis::PredicateInput bp_input;
      bp_input.value = analysis::NumericValueOf(vertex.value());
      bp_input.value_before = analysis::NumericValueOf(value_before);
      bp_input.superstep = superstep;
      bp_input.vertex_id = vertex.id();
      bp_input.out_degree = static_cast<int64_t>(vertex.edges().size());
      bp_input.in_degree = static_cast<int64_t>(messages.size());
      bp_input.halted = vertex.halted();
      bp_input.has_exception = exception.has_value();
      bp_input.violations = static_cast<int64_t>(violations.size());
      bp_input.worker = ctx.worker_index();
      bp_input.aggregators = &ctx.VisibleAggregators();
      if (manager_->breakpoint()->Eval(bp_input)) {
        reasons |= kReasonBreakpoint;
        manager_->CountBreakpointHit();
      }
    }

    if (reasons != 0 && manager_->UnderCaptureLimit()) {
      VertexTrace<Traits> trace;
      trace.superstep = superstep;
      trace.id = vertex.id();
      trace.reasons = reasons;
      trace.value_before = value_before;
      trace.rng_state = rng_state;
      if (eager) {
        trace.edges = std::move(edges_before);
      } else {
        // The capture decision was made only after Compute() ran; the edge
        // snapshot therefore reflects any local edge mutations it made.
        trace.edges = vertex.edges();
        trace.edges_snapshot_post = true;
      }
      trace.incoming = messages;
      trace.aggregators = ctx.VisibleAggregators();
      trace.total_vertices = ctx.total_num_vertices();
      trace.total_edges = ctx.total_num_edges();
      trace.value_after = vertex.value();
      trace.halted_after = vertex.halted();
      trace.outgoing = ictx.TakeOutgoing();
      trace.aggregations = ictx.TakeAggregations();
      trace.violations = std::move(violations);
      trace.exception = exception;
      Result<bool> recorded =
          manager_->RecordVertexTrace(trace, ctx.worker_index());
      if (!recorded.ok()) {
        // Capture I/O failure — an infrastructure abort (retryable from a
        // checkpoint), not a vertex bug.
        throw pregel::WorkerAbortError(recorded.status());
      }
    }

    if (exception.has_value() &&
        manager_->config().AbortOnException()) {
      // Re-raise so the engine aborts the job, like an uncaught exception in
      // a Giraph worker. The captured trace survives for post-mortem use.
      throw pregel::VertexComputeError(exception->message);
    }
  }

 private:
  /// Builds and records a best-effort trace for an exception caught on the
  /// zero-overhead path, then honors AbortOnException.
  void CaptureExceptionLazily(pregel::ComputeContext<Traits>& ctx,
                              VertexT& vertex,
                              const std::vector<Message>& messages,
                              uint64_t entry_rng_state,
                              ExceptionInfo exception) {
    std::string message = exception.message;
    if (manager_->UnderCaptureLimit()) {
      VertexTrace<Traits> trace;
      trace.superstep = ctx.superstep();
      trace.id = vertex.id();
      trace.reasons = kReasonException;
      trace.value_before = vertex.value();  // post-throw snapshot
      trace.rng_state = entry_rng_state;
      trace.edges = vertex.edges();
      trace.edges_snapshot_post = true;
      trace.incoming = messages;
      trace.aggregators = ctx.VisibleAggregators();
      trace.total_vertices = ctx.total_num_vertices();
      trace.total_edges = ctx.total_num_edges();
      trace.value_after = vertex.value();
      trace.halted_after = vertex.halted();
      trace.exception = std::move(exception);
      Result<bool> recorded =
          manager_->RecordVertexTrace(trace, ctx.worker_index());
      if (!recorded.ok()) {
        throw pregel::WorkerAbortError(recorded.status());
      }
    }
    if (manager_->config().AbortOnException()) {
      throw pregel::VertexComputeError(message);
    }
  }

  /// Context decorator: forwards everything to the engine's context, checks
  /// the message-value constraint on each send, and (for eager captures)
  /// records outgoing messages and aggregator updates.
  class Interceptor final : public pregel::ComputeContext<Traits> {
   public:
    using EdgeValue = typename Traits::EdgeValue;

    Interceptor(pregel::ComputeContext<Traits>* inner,
                CaptureManager<Traits>* manager, VertexId vertex_id,
                bool check_messages, bool record_outcome)
        : inner_(inner),
          manager_(manager),
          vertex_id_(vertex_id),
          check_messages_(check_messages),
          record_outcome_(record_outcome) {}

    std::vector<ViolationInfo>&& TakeViolations() {
      return std::move(violations_);
    }
    std::vector<std::pair<VertexId, Message>>&& TakeOutgoing() {
      return std::move(outgoing_);
    }
    std::vector<std::pair<std::string, pregel::AggValue>>&&
    TakeAggregations() {
      return std::move(aggregations_);
    }

    int64_t superstep() const override { return inner_->superstep(); }
    int64_t total_num_vertices() const override {
      return inner_->total_num_vertices();
    }
    int64_t total_num_edges() const override {
      return inner_->total_num_edges();
    }
    void SendMessage(VertexId target, const Message& message) override {
      if (check_messages_ &&
          !manager_->config().MessageValueConstraint(
              message, vertex_id_, target, inner_->superstep())) {
        violations_.push_back(
            ViolationInfo{ViolationInfo::Kind::kMessageValue, vertex_id_,
                          target, message.ToString()});
      }
      if (record_outcome_) outgoing_.emplace_back(target, message);
      inner_->SendMessage(target, message);
    }
    pregel::AggValue GetAggregated(const std::string& name) const override {
      return inner_->GetAggregated(name);
    }
    void Aggregate(const std::string& name,
                   const pregel::AggValue& update) override {
      if (record_outcome_) aggregations_.emplace_back(name, update);
      inner_->Aggregate(name, update);
    }
    const std::map<std::string, pregel::AggValue>& VisibleAggregators()
        const override {
      return inner_->VisibleAggregators();
    }
    Rng& rng() override { return inner_->rng(); }
    void RemoveVertexRequest(VertexId id) override {
      inner_->RemoveVertexRequest(id);
    }
    void AddEdgeRequest(VertexId source, VertexId target,
                        const EdgeValue& value) override {
      inner_->AddEdgeRequest(source, target, value);
    }
    void RemoveEdgeRequest(VertexId source, VertexId target) override {
      inner_->RemoveEdgeRequest(source, target);
    }
    int worker_index() const override { return inner_->worker_index(); }

   private:
    pregel::ComputeContext<Traits>* inner_;
    CaptureManager<Traits>* manager_;
    VertexId vertex_id_;
    bool check_messages_;
    bool record_outcome_;

    std::vector<ViolationInfo> violations_;
    std::vector<std::pair<VertexId, Message>> outgoing_;
    std::vector<std::pair<std::string, pregel::AggValue>> aggregations_;
  };

  std::unique_ptr<pregel::Computation<Traits>> inner_;
  CaptureManager<Traits>* manager_;
};

/// Wraps a user factory so every worker's Computation is instrumented —
/// the programmatic equivalent of "the Graft Instrumenter takes as input the
/// user's DebugConfig file and vertex.compute() function" (§3.1).
template <pregel::JobTraits Traits>
pregel::ComputationFactory<Traits> InstrumentFactory(
    pregel::ComputationFactory<Traits> user_factory,
    CaptureManager<Traits>* manager) {
  return [user_factory = std::move(user_factory), manager] {
    return std::make_unique<InstrumentedComputation<Traits>>(user_factory(),
                                                             manager);
  };
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_INSTRUMENTED_COMPUTATION_H_
