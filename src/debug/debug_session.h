#ifndef GRAFT_DEBUG_DEBUG_SESSION_H_
#define GRAFT_DEBUG_DEBUG_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/predicate.h"
#include "common/result.h"
#include "common/string_util.h"
#include "debug/capture_manager.h"
#include "debug/vertex_trace.h"
#include "io/trace_block_cache.h"
#include "io/trace_store.h"

namespace graft {
namespace debug {

/// Filter for DebugSession::Select. Unset fields match everything; set
/// fields are conjunctive.
struct TraceQuery {
  std::optional<int64_t> superstep;
  std::optional<VertexId> vertex;
  /// Any-of reason bits (CaptureReason mask); 0 matches every reason.
  uint32_t reason_mask = 0;
  bool only_exceptions = false;
  bool only_violations = false;
  /// Compiled predicate-DSL filter (DESIGN.md §14), evaluated against each
  /// candidate trace via PredicateInputFromTrace. Null matches everything.
  /// Shared so concurrent readers can reuse one compiled expression.
  std::shared_ptr<const analysis::Predicate> predicate;
};

/// Loads the manifest of `job_id` if one was written. Absent manifests are
/// not an error (crashed or pre-v2 jobs): the result holds std::nullopt and
/// callers fall back to directory scans.
Result<std::optional<TraceManifest>> LoadTraceManifest(
    const TraceStore& store, const std::string& job_id);

/// LoadTraceManifest through `cache` (nullptr = uncached): present manifests
/// are decoded once per (store, job) and shared; absence is never cached, so
/// a job that finishes later becomes visible on the next call.
Result<std::optional<TraceManifest>> LoadTraceManifestCached(
    const TraceStore& store, const std::string& job_id,
    TraceBlockCache* cache);

/// Supersteps for which any vertex or master trace exists, ascending. This
/// is the directory-scan primitive DebugSession falls back to when a job
/// has no manifest.
std::vector<int64_t> ListCapturedSupersteps(const TraceStore& store,
                                            const std::string& job_id);

/// The one read API over a job's captured traces (DESIGN.md §10): open a
/// job, then query captures by superstep / vertex / reason / exception as
/// typed records. Views, the reproducer, and test codegen all consume this
/// instead of parsing trace files themselves.
///
/// When the job wrote a manifest (every successful run since format v2),
/// point lookups — FindVertexTrace, VertexHistory, Master — resolve through
/// the (vertex, superstep) → (file, record ordinal) index in O(1) store
/// reads. Without one (crashed mid-run, or a seed-format job) every query
/// transparently degrades to the historical directory scan. Records with an
/// unknown format version or kind are skipped, not fatal.
template <pregel::JobTraits Traits>
class DebugSession {
 public:
  /// Opens a job for reading. `store` must outlive the session. Fails only
  /// on a corrupt manifest, never on a missing one. With a non-null `cache`
  /// (which must also outlive the session) every record/manifest decode goes
  /// through the shared TraceBlockCache, so concurrent sessions over the
  /// same job share decoded blocks and warm point lookups do zero store
  /// reads.
  static Result<DebugSession> Open(const TraceStore* store,
                                   std::string job_id,
                                   TraceBlockCache* cache = nullptr) {
    DebugSession session(store, std::move(job_id));
    session.cache_ = cache;
    GRAFT_ASSIGN_OR_RETURN(
        std::optional<TraceManifest> manifest,
        LoadTraceManifestCached(*store, session.job_id_, cache));
    if (manifest.has_value()) {
      session.has_manifest_ = true;
      session.IndexManifest(*std::move(manifest));
    } else {
      session.supersteps_ = ListCapturedSupersteps(*store, session.job_id_);
    }
    return session;
  }

  const std::string& job_id() const { return job_id_; }
  const TraceStore& store() const { return *store_; }
  bool has_manifest() const { return has_manifest_; }

  /// Supersteps with at least one captured record, ascending.
  const std::vector<int64_t>& supersteps() const { return supersteps_; }

  /// All vertex traces captured in `superstep`, ordered by vertex id.
  Result<std::vector<VertexTrace<Traits>>> VertexTraces(
      int64_t superstep) const {
    std::vector<VertexTrace<Traits>> traces;
    const std::string prefix =
        StrFormat("%s/superstep_%06lld/", job_id_.c_str(),
                  static_cast<long long>(superstep));
    for (const std::string& file : store_->ListFiles(prefix)) {
      if (file.size() < 7 ||
          file.compare(file.size() - 7, 7, ".vtrace") != 0) {
        continue;
      }
      GRAFT_ASSIGN_OR_RETURN(TraceBlockCache::BlockPtr records,
                             ReadFileRecords(file));
      for (const std::string& record : *records) {
        GRAFT_ASSIGN_OR_RETURN(std::optional<VertexTrace<Traits>> trace,
                               DecodeVertexRecord(record));
        if (trace.has_value()) traces.push_back(*std::move(trace));
      }
    }
    std::sort(traces.begin(), traces.end(),
              [](const VertexTrace<Traits>& a, const VertexTrace<Traits>& b) {
                return a.id < b.id;
              });
    return traces;
  }

  /// The trace of one vertex in one superstep. O(1) store reads with a
  /// manifest; a scan of the superstep's files without.
  Result<VertexTrace<Traits>> FindVertexTrace(int64_t superstep,
                                              VertexId id) const {
    if (has_manifest_) {
      auto it = vertex_index_.find({superstep, id});
      if (it == vertex_index_.end()) return NoTraceError(superstep, id);
      const TraceManifestEntry& entry = it->second;
      GRAFT_ASSIGN_OR_RETURN(
          std::string record,
          ReadOneRecord(VertexTraceFile(job_id_, superstep, entry.worker),
                        entry.record_index));
      GRAFT_ASSIGN_OR_RETURN(std::optional<VertexTrace<Traits>> trace,
                             DecodeVertexRecord(record));
      if (!trace.has_value()) return NoTraceError(superstep, id);
      return *std::move(trace);
    }
    GRAFT_ASSIGN_OR_RETURN(std::vector<VertexTrace<Traits>> traces,
                           VertexTraces(superstep));
    for (VertexTrace<Traits>& trace : traces) {
      if (trace.id == id) return std::move(trace);
    }
    return NoTraceError(superstep, id);
  }

  /// Every captured superstep of one vertex, ascending — the data behind
  /// the GUI's Next/Previous superstep replay.
  Result<std::vector<VertexTrace<Traits>>> VertexHistory(VertexId id) const {
    std::vector<VertexTrace<Traits>> history;
    if (has_manifest_) {
      // The index is superstep-major, so entries of one vertex are not
      // contiguous; walk the index (cheap, in memory) and do O(1) record
      // reads only for the matches.
      for (const auto& [key, entry] : vertex_index_) {
        if (key.second != id) continue;
        auto trace = FindVertexTrace(key.first, id);
        if (trace.ok()) history.push_back(std::move(trace).value());
      }
      return history;
    }
    for (int64_t superstep : supersteps_) {
      auto trace = FindVertexTrace(superstep, id);
      if (trace.ok()) history.push_back(std::move(trace).value());
    }
    return history;
  }

  /// The master trace of a superstep. Manifest-backed jobs answer absence
  /// from the in-memory index without probing the store — the cache never
  /// holds negative entries, so a store probe for a missing file would cost
  /// one read (and one cache miss) on every call.
  Result<MasterTrace> Master(int64_t superstep) const {
    if (has_manifest_ && master_steps_.count(superstep) == 0) {
      return Status::NotFound(StrFormat(
          "no master trace for superstep %lld of job '%s'",
          static_cast<long long>(superstep), job_id_.c_str()));
    }
    const std::string file = MasterTraceFile(job_id_, superstep);
    GRAFT_ASSIGN_OR_RETURN(std::string record, ReadOneRecord(file, 0));
    return MasterTrace::Deserialize(record);
  }

  /// Supersteps with a master trace, ascending (manifest-backed jobs only;
  /// empty for directory-scan sessions).
  const std::set<int64_t>& master_supersteps() const { return master_steps_; }

  /// Typed query across the whole job: captures matching every set filter,
  /// ordered by (superstep, vertex id).
  Result<std::vector<VertexTrace<Traits>>> Select(
      const TraceQuery& query) const {
    std::vector<VertexTrace<Traits>> out;
    auto matches = [&query](const VertexTrace<Traits>& t) {
      if (query.reason_mask != 0 && (t.reasons & query.reason_mask) == 0) {
        return false;
      }
      if (query.only_exceptions && !t.exception.has_value()) return false;
      if (query.only_violations && t.violations.empty()) return false;
      if (query.predicate != nullptr &&
          !query.predicate->Eval(
              analysis::PredicateInputFromTrace<Traits>(t))) {
        return false;
      }
      return true;
    };
    if (query.vertex.has_value()) {
      if (query.superstep.has_value()) {
        auto trace = FindVertexTrace(*query.superstep, *query.vertex);
        if (trace.ok() && matches(*trace)) {
          out.push_back(std::move(trace).value());
        } else if (!trace.ok() && !trace.status().IsNotFound()) {
          return trace.status();
        }
        return out;
      }
      GRAFT_ASSIGN_OR_RETURN(out, VertexHistory(*query.vertex));
      std::erase_if(out, [&](const VertexTrace<Traits>& t) {
        return !matches(t);
      });
      return out;
    }
    for (int64_t superstep : supersteps_) {
      if (query.superstep.has_value() && superstep != *query.superstep) {
        continue;
      }
      GRAFT_ASSIGN_OR_RETURN(std::vector<VertexTrace<Traits>> traces,
                             VertexTraces(superstep));
      for (VertexTrace<Traits>& trace : traces) {
        if (matches(trace)) out.push_back(std::move(trace));
      }
    }
    return out;
  }

  /// The cache this session reads through; nullptr when uncached.
  TraceBlockCache* cache() const { return cache_; }

 private:
  DebugSession(const TraceStore* store, std::string job_id)
      : store_(store), job_id_(std::move(job_id)) {}

  /// All records of one trace file: the shared cached block when a cache is
  /// attached, a private copy otherwise.
  Result<TraceBlockCache::BlockPtr> ReadFileRecords(
      const std::string& file) const {
    if (cache_ != nullptr) return cache_->GetFileBlock(*store_, file);
    GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           store_->ReadAll(file));
    return std::make_shared<const TraceBlockCache::Block>(std::move(records));
  }

  Result<std::string> ReadOneRecord(const std::string& file,
                                    uint64_t index) const {
    if (cache_ != nullptr) return cache_->ReadRecord(*store_, file, index);
    return store_->ReadRecord(file, index);
  }

  /// Decodes one vertex record, treating unknown-version/kind frames as
  /// skippable (returns nullopt) rather than fatal.
  static Result<std::optional<VertexTrace<Traits>>> DecodeVertexRecord(
      std::string_view record) {
    GRAFT_ASSIGN_OR_RETURN(ParsedTraceRecord parsed,
                           ParseTraceRecord(record));
    if (parsed.ShouldSkip()) return std::optional<VertexTrace<Traits>>();
    if (parsed.header.has_value() &&
        parsed.header->kind != TraceRecordKind::kVertex) {
      return std::optional<VertexTrace<Traits>>();
    }
    GRAFT_ASSIGN_OR_RETURN(VertexTrace<Traits> trace,
                           VertexTrace<Traits>::Deserialize(record));
    return std::optional<VertexTrace<Traits>>(std::move(trace));
  }

  Status NoTraceError(int64_t superstep, VertexId id) const {
    return Status::NotFound(StrFormat(
        "no trace for vertex %lld in superstep %lld of job '%s'",
        static_cast<long long>(id), static_cast<long long>(superstep),
        job_id_.c_str()));
  }

  void IndexManifest(TraceManifest manifest) {
    std::set<int64_t> steps;
    for (const TraceManifestEntry& entry : manifest.entries) {
      steps.insert(entry.superstep);
      if (entry.kind == TraceRecordKind::kVertex) {
        vertex_index_.emplace(std::make_pair(entry.superstep, entry.vertex_id),
                              entry);
      }
      if (entry.kind == TraceRecordKind::kMaster) {
        master_steps_.insert(entry.superstep);
      }
    }
    supersteps_.assign(steps.begin(), steps.end());
  }

  const TraceStore* store_;
  std::string job_id_;
  TraceBlockCache* cache_ = nullptr;
  bool has_manifest_ = false;
  std::vector<int64_t> supersteps_;
  /// (superstep, vertex) → manifest entry; only for manifest-backed jobs.
  std::map<std::pair<int64_t, VertexId>, TraceManifestEntry> vertex_index_;
  /// Supersteps with a kMaster manifest entry; only for manifest-backed jobs.
  std::set<int64_t> master_steps_;
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_DEBUG_SESSION_H_
