#include "debug/vertex_trace.h"

namespace graft {
namespace debug {

std::string CaptureReasonsToString(uint32_t reasons) {
  static constexpr std::pair<CaptureReason, const char*> kNames[] = {
      {kReasonSpecified, "spec"},    {kReasonRandom, "random"},
      {kReasonNeighbor, "nbr"},      {kReasonVertexValue, "vv"},
      {kReasonMessageValue, "msg"},  {kReasonException, "exc"},
      {kReasonAllActive, "active"},  {kReasonBreakpoint, "bp"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((reasons & bit) != 0) {
      if (!out.empty()) out.push_back('|');
      out += name;
    }
  }
  return out.empty() ? "none" : out;
}

std::string EncodeTraceRecord(const TraceRecordHeader& header,
                              std::string_view body) {
  BinaryWriter h;
  h.WriteU8(header.version);
  h.WriteU8(static_cast<uint8_t>(header.kind));
  h.WriteSignedVarint(header.superstep);
  h.WriteSignedVarint(header.vertex_id);
  BinaryWriter w;
  w.WriteU8(kTraceRecordMagic);
  w.WriteVarint(h.buffer().size());
  w.WriteRaw(h.buffer().data(), h.buffer().size());
  w.WriteRaw(body.data(), body.size());
  return std::move(w.TakeBuffer());
}

Result<ParsedTraceRecord> ParseTraceRecord(std::string_view record) {
  if (record.empty()) {
    return Status::InvalidArgument("empty trace record");
  }
  if (static_cast<uint8_t>(record[0]) != kTraceRecordMagic) {
    // Legacy (seed-format) record: no frame, body is the whole record.
    return ParsedTraceRecord{std::nullopt, record};
  }
  BinaryReader r(record);
  GRAFT_RETURN_NOT_OK(r.Skip(1));  // magic
  GRAFT_ASSIGN_OR_RETURN(uint64_t header_len, r.ReadVarint());
  if (r.remaining() < header_len) {
    return Status::InvalidArgument("truncated trace record header");
  }
  const size_t body_start = r.position() + static_cast<size_t>(header_len);
  BinaryReader h(record.substr(r.position(), static_cast<size_t>(header_len)));
  TraceRecordHeader header;
  GRAFT_ASSIGN_OR_RETURN(header.version, h.ReadU8());
  GRAFT_ASSIGN_OR_RETURN(uint8_t kind, h.ReadU8());
  header.kind = static_cast<TraceRecordKind>(kind);
  GRAFT_ASSIGN_OR_RETURN(header.superstep, h.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(header.vertex_id, h.ReadSignedVarint());
  // Fields beyond these are from a newer writer; header_len already skipped
  // them for us.
  return ParsedTraceRecord{header, record.substr(body_start)};
}

std::string TraceManifest::Serialize() const {
  BinaryWriter body;
  body.WriteVarint(entries.size());
  for (const TraceManifestEntry& e : entries) {
    body.WriteU8(static_cast<uint8_t>(e.kind));
    body.WriteSignedVarint(e.superstep);
    body.WriteSignedVarint(e.vertex_id);
    body.WriteSignedVarint(e.worker);
    body.WriteVarint(e.record_index);
  }
  TraceRecordHeader header;
  header.kind = TraceRecordKind::kManifest;
  return EncodeTraceRecord(header, body.buffer());
}

Result<TraceManifest> TraceManifest::Deserialize(std::string_view record) {
  GRAFT_ASSIGN_OR_RETURN(ParsedTraceRecord parsed, ParseTraceRecord(record));
  if (!parsed.header.has_value() ||
      parsed.header->kind != TraceRecordKind::kManifest) {
    return Status::InvalidArgument("record is not a trace manifest");
  }
  if (parsed.header->version > kTraceFormatVersion) {
    return Status::InvalidArgument("unsupported trace manifest version " +
                                   std::to_string(parsed.header->version));
  }
  BinaryReader r(parsed.body);
  TraceManifest manifest;
  GRAFT_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  manifest.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TraceManifestEntry e;
    GRAFT_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
    e.kind = static_cast<TraceRecordKind>(kind);
    GRAFT_ASSIGN_OR_RETURN(e.superstep, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(e.vertex_id, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(int64_t worker, r.ReadSignedVarint());
    e.worker = static_cast<int32_t>(worker);
    GRAFT_ASSIGN_OR_RETURN(e.record_index, r.ReadVarint());
    manifest.entries.push_back(e);
  }
  // Trailing bytes are future manifest fields; ignore them.
  return manifest;
}

std::string ManifestFile(const std::string& job_id) {
  return job_id + "/manifest.idx";
}

void MasterTrace::Write(BinaryWriter& w) const {
  w.WriteU8(kFormatVersion);
  w.WriteSignedVarint(superstep);
  w.WriteSignedVarint(total_vertices);
  w.WriteSignedVarint(total_edges);
  w.WriteVarint(aggregators.size());
  for (const auto& [name, value] : aggregators) {
    w.WriteString(name);
    value.Write(w);
  }
  w.WriteVarint(aggregators_after.size());
  for (const auto& [name, value] : aggregators_after) {
    w.WriteString(name);
    value.Write(w);
  }
  w.WriteBool(halted);
}

Result<MasterTrace> MasterTrace::Read(BinaryReader& r) {
  GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported master trace version " +
                                   std::to_string(version));
  }
  MasterTrace t;
  GRAFT_ASSIGN_OR_RETURN(t.superstep, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(t.total_vertices, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(t.total_edges, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(uint64_t num_aggs, r.ReadVarint());
  for (uint64_t i = 0; i < num_aggs; ++i) {
    GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(pregel::AggValue value, pregel::AggValue::Read(r));
    t.aggregators.emplace(std::move(name), std::move(value));
  }
  GRAFT_ASSIGN_OR_RETURN(uint64_t num_after, r.ReadVarint());
  for (uint64_t i = 0; i < num_after; ++i) {
    GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(pregel::AggValue value, pregel::AggValue::Read(r));
    t.aggregators_after.emplace(std::move(name), std::move(value));
  }
  GRAFT_ASSIGN_OR_RETURN(t.halted, r.ReadBool());
  return t;
}

std::string MasterTrace::Serialize() const {
  BinaryWriter w;
  Write(w);
  return std::move(w.TakeBuffer());
}

std::string MasterTrace::SerializeFramed() const {
  TraceRecordHeader header;
  header.kind = TraceRecordKind::kMaster;
  header.superstep = superstep;
  return EncodeTraceRecord(header, Serialize());
}

Result<MasterTrace> MasterTrace::Deserialize(std::string_view record) {
  GRAFT_ASSIGN_OR_RETURN(ParsedTraceRecord parsed, ParseTraceRecord(record));
  if (parsed.header.has_value() &&
      parsed.header->kind != TraceRecordKind::kMaster) {
    return Status::InvalidArgument("record is not a master trace");
  }
  BinaryReader r(parsed.body);
  return Read(r);
}

}  // namespace debug
}  // namespace graft
