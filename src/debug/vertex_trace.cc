#include "debug/vertex_trace.h"

namespace graft {
namespace debug {

std::string CaptureReasonsToString(uint32_t reasons) {
  static constexpr std::pair<CaptureReason, const char*> kNames[] = {
      {kReasonSpecified, "spec"},    {kReasonRandom, "random"},
      {kReasonNeighbor, "nbr"},      {kReasonVertexValue, "vv"},
      {kReasonMessageValue, "msg"},  {kReasonException, "exc"},
      {kReasonAllActive, "active"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((reasons & bit) != 0) {
      if (!out.empty()) out.push_back('|');
      out += name;
    }
  }
  return out.empty() ? "none" : out;
}

void MasterTrace::Write(BinaryWriter& w) const {
  w.WriteU8(kFormatVersion);
  w.WriteSignedVarint(superstep);
  w.WriteSignedVarint(total_vertices);
  w.WriteSignedVarint(total_edges);
  w.WriteVarint(aggregators.size());
  for (const auto& [name, value] : aggregators) {
    w.WriteString(name);
    value.Write(w);
  }
  w.WriteVarint(aggregators_after.size());
  for (const auto& [name, value] : aggregators_after) {
    w.WriteString(name);
    value.Write(w);
  }
  w.WriteBool(halted);
}

Result<MasterTrace> MasterTrace::Read(BinaryReader& r) {
  GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported master trace version " +
                                   std::to_string(version));
  }
  MasterTrace t;
  GRAFT_ASSIGN_OR_RETURN(t.superstep, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(t.total_vertices, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(t.total_edges, r.ReadSignedVarint());
  GRAFT_ASSIGN_OR_RETURN(uint64_t num_aggs, r.ReadVarint());
  for (uint64_t i = 0; i < num_aggs; ++i) {
    GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(pregel::AggValue value, pregel::AggValue::Read(r));
    t.aggregators.emplace(std::move(name), std::move(value));
  }
  GRAFT_ASSIGN_OR_RETURN(uint64_t num_after, r.ReadVarint());
  for (uint64_t i = 0; i < num_after; ++i) {
    GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(pregel::AggValue value, pregel::AggValue::Read(r));
    t.aggregators_after.emplace(std::move(name), std::move(value));
  }
  GRAFT_ASSIGN_OR_RETURN(t.halted, r.ReadBool());
  return t;
}

std::string MasterTrace::Serialize() const {
  BinaryWriter w;
  Write(w);
  return std::move(w.TakeBuffer());
}

Result<MasterTrace> MasterTrace::Deserialize(std::string_view record) {
  BinaryReader r(record);
  return Read(r);
}

}  // namespace debug
}  // namespace graft
