#ifndef GRAFT_DEBUG_DEBUG_CONFIG_H_
#define GRAFT_DEBUG_DEBUG_CONFIG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "pregel/vertex.h"

namespace graft {
namespace debug {

/// The user-facing capture specification (§3.1, Figure 2). Users subclass
/// and override what they need; everything defaults to "capture nothing
/// except exceptions". The five capture categories:
///
///   1. vertices listed by id (optionally plus their neighbors)
///   2. a random sample of a given size (optionally plus neighbors)
///   3. vertices whose post-compute value violates a constraint
///   4. vertices that send a message violating a constraint
///   5. vertices that raise exceptions
///
/// plus the capture-all-active alternative, a per-superstep filter, and the
/// max-captures "safety net" threshold the paper describes.
template <pregel::JobTraits Traits>
class DebugConfig {
 public:
  using VertexValue = typename Traits::VertexValue;
  using Message = typename Traits::Message;

  virtual ~DebugConfig() = default;

  /// Category 1: capture these vertex ids.
  virtual std::vector<VertexId> VerticesToCapture() const { return {}; }

  /// Category 2: capture this many uniformly-random vertices.
  virtual int NumRandomVerticesToCapture() const { return 0; }

  /// Also capture the out-neighbors of category-1/2 vertices.
  virtual bool CaptureNeighborsOfVertices() const { return false; }

  /// Category 3. Return true when `value` satisfies the constraint; a false
  /// return captures the vertex with reason kReasonVertexValue. Override
  /// HasVertexValueConstraint() too (it gates the per-vertex check).
  virtual bool HasVertexValueConstraint() const { return false; }
  virtual bool VertexValueConstraint(const VertexValue& value, VertexId id,
                                     int64_t superstep) const {
    (void)value;
    (void)id;
    (void)superstep;
    return true;
  }

  /// Category 4. Checked on every SendMessage while instrumented. Return
  /// true when the message satisfies the constraint. Note the paper's
  /// limitation (§7): the constraint may depend on the destination id but
  /// not the destination's value.
  virtual bool HasMessageValueConstraint() const { return false; }
  virtual bool MessageValueConstraint(const Message& message,
                                      VertexId source, VertexId destination,
                                      int64_t superstep) const {
    (void)message;
    (void)source;
    (void)destination;
    (void)superstep;
    return true;
  }

  /// Category 5: capture vertices whose Compute() throws. On by default.
  virtual bool CaptureExceptions() const { return true; }

  /// After capturing an exception, rethrow it so the job aborts (Giraph
  /// behaviour), or swallow it and let the run continue — handy when
  /// gathering many exception contexts in one run.
  virtual bool AbortOnException() const { return true; }

  /// Alternative mode: capture every vertex that executes Compute().
  /// The §4.3 scenario combines this with ShouldCaptureSuperstep to inspect
  /// the small active graph after superstep 500.
  virtual bool CaptureAllActiveVertices() const { return false; }

  /// Limits capturing to selected supersteps. Default: all.
  virtual bool ShouldCaptureSuperstep(int64_t superstep) const {
    (void)superstep;
    return true;
  }

  /// The adjustable safety-net threshold: once this many vertex contexts
  /// have been captured, Graft stops capturing (§3.1).
  virtual uint64_t MaxCaptures() const { return 10'000'000; }

  /// Seed for the category-2 random sample, so debug runs are repeatable.
  virtual uint64_t RandomSeed() const { return 0xdeb06u; }
};

/// Closure-driven DebugConfig for composing configs programmatically (the
/// Table 3 DC-* configurations in the benchmark harness use this; examples
/// subclass DebugConfig directly, mirroring the paper's Figure 2).
template <pregel::JobTraits Traits>
class ConfigurableDebugConfig : public DebugConfig<Traits> {
 public:
  using VertexValue = typename Traits::VertexValue;
  using Message = typename Traits::Message;
  using VertexValuePredicate =
      std::function<bool(const VertexValue&, VertexId, int64_t)>;
  using MessagePredicate =
      std::function<bool(const Message&, VertexId, VertexId, int64_t)>;
  using SuperstepPredicate = std::function<bool(int64_t)>;

  ConfigurableDebugConfig& set_vertices(std::vector<VertexId> ids) {
    vertices_ = std::move(ids);
    return *this;
  }
  ConfigurableDebugConfig& set_num_random(int n) {
    num_random_ = n;
    return *this;
  }
  ConfigurableDebugConfig& set_capture_neighbors(bool v) {
    capture_neighbors_ = v;
    return *this;
  }
  ConfigurableDebugConfig& set_vertex_value_constraint(
      VertexValuePredicate p) {
    vertex_value_constraint_ = std::move(p);
    return *this;
  }
  ConfigurableDebugConfig& set_message_value_constraint(MessagePredicate p) {
    message_constraint_ = std::move(p);
    return *this;
  }
  ConfigurableDebugConfig& set_capture_all_active(bool v) {
    capture_all_active_ = v;
    return *this;
  }
  ConfigurableDebugConfig& set_superstep_filter(SuperstepPredicate p) {
    superstep_filter_ = std::move(p);
    return *this;
  }
  ConfigurableDebugConfig& set_max_captures(uint64_t n) {
    max_captures_ = n;
    return *this;
  }
  ConfigurableDebugConfig& set_abort_on_exception(bool v) {
    abort_on_exception_ = v;
    return *this;
  }
  ConfigurableDebugConfig& set_random_seed(uint64_t seed) {
    random_seed_ = seed;
    return *this;
  }

  std::vector<VertexId> VerticesToCapture() const override {
    return vertices_;
  }
  int NumRandomVerticesToCapture() const override { return num_random_; }
  bool CaptureNeighborsOfVertices() const override {
    return capture_neighbors_;
  }
  bool HasVertexValueConstraint() const override {
    return vertex_value_constraint_ != nullptr;
  }
  bool VertexValueConstraint(const VertexValue& value, VertexId id,
                             int64_t superstep) const override {
    return vertex_value_constraint_ == nullptr ||
           vertex_value_constraint_(value, id, superstep);
  }
  bool HasMessageValueConstraint() const override {
    return message_constraint_ != nullptr;
  }
  bool MessageValueConstraint(const Message& message, VertexId source,
                              VertexId destination,
                              int64_t superstep) const override {
    return message_constraint_ == nullptr ||
           message_constraint_(message, source, destination, superstep);
  }
  bool CaptureAllActiveVertices() const override {
    return capture_all_active_;
  }
  bool ShouldCaptureSuperstep(int64_t superstep) const override {
    return superstep_filter_ == nullptr || superstep_filter_(superstep);
  }
  uint64_t MaxCaptures() const override { return max_captures_; }
  bool AbortOnException() const override { return abort_on_exception_; }
  uint64_t RandomSeed() const override { return random_seed_; }

 private:
  std::vector<VertexId> vertices_;
  int num_random_ = 0;
  bool capture_neighbors_ = false;
  VertexValuePredicate vertex_value_constraint_;
  MessagePredicate message_constraint_;
  bool capture_all_active_ = false;
  SuperstepPredicate superstep_filter_;
  uint64_t max_captures_ = 10'000'000;
  bool abort_on_exception_ = true;
  uint64_t random_seed_ = 0xdeb06u;
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_DEBUG_CONFIG_H_
