#include "debug/debug_session.h"

#include <set>

namespace graft {
namespace debug {

std::vector<int64_t> ListCapturedSupersteps(const TraceStore& store,
                                            const std::string& job_id) {
  std::set<int64_t> supersteps;
  const std::string prefix = JobTracePrefix(job_id);
  for (const std::string& file : store.ListFiles(prefix)) {
    // Expect "<job>/superstep_NNNNNN/...".
    size_t start = prefix.size();
    const std::string marker = "superstep_";
    if (file.compare(start, marker.size(), marker) != 0) continue;
    start += marker.size();
    size_t end = file.find('/', start);
    if (end == std::string::npos) continue;
    int64_t superstep;
    if (ParseInt64(std::string_view(file).substr(start, end - start),
                   &superstep)) {
      supersteps.insert(superstep);
    }
  }
  return {supersteps.begin(), supersteps.end()};
}

Result<std::optional<TraceManifest>> LoadTraceManifest(
    const TraceStore& store, const std::string& job_id) {
  const std::string file = ManifestFile(job_id);
  if (!store.Exists(file)) return std::optional<TraceManifest>();
  GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         store.ReadAll(file));
  if (records.empty()) return std::optional<TraceManifest>();
  // The writer appends exactly one manifest record per completed run; read
  // the newest in case a job id was reused without clearing the store.
  GRAFT_ASSIGN_OR_RETURN(TraceManifest manifest,
                         TraceManifest::Deserialize(records.back()));
  return std::optional<TraceManifest>(std::move(manifest));
}

}  // namespace debug
}  // namespace graft
