#include "debug/debug_session.h"

#include <set>

namespace graft {
namespace debug {

std::vector<int64_t> ListCapturedSupersteps(const TraceStore& store,
                                            const std::string& job_id) {
  std::set<int64_t> supersteps;
  const std::string prefix = JobTracePrefix(job_id);
  for (const std::string& file : store.ListFiles(prefix)) {
    // Expect "<job>/superstep_NNNNNN/...".
    size_t start = prefix.size();
    const std::string marker = "superstep_";
    if (file.compare(start, marker.size(), marker) != 0) continue;
    start += marker.size();
    size_t end = file.find('/', start);
    if (end == std::string::npos) continue;
    int64_t superstep;
    if (ParseInt64(std::string_view(file).substr(start, end - start),
                   &superstep)) {
      supersteps.insert(superstep);
    }
  }
  return {supersteps.begin(), supersteps.end()};
}

Result<std::optional<TraceManifest>> LoadTraceManifest(
    const TraceStore& store, const std::string& job_id) {
  const std::string file = ManifestFile(job_id);
  if (!store.Exists(file)) return std::optional<TraceManifest>();
  GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         store.ReadAll(file));
  if (records.empty()) return std::optional<TraceManifest>();
  // The writer appends exactly one manifest record per completed run; read
  // the newest in case a job id was reused without clearing the store.
  GRAFT_ASSIGN_OR_RETURN(TraceManifest manifest,
                         TraceManifest::Deserialize(records.back()));
  return std::optional<TraceManifest>(std::move(manifest));
}

Result<std::optional<TraceManifest>> LoadTraceManifestCached(
    const TraceStore& store, const std::string& job_id,
    TraceBlockCache* cache) {
  if (cache == nullptr) return LoadTraceManifest(store, job_id);
  // Probe existence uncached: a missing manifest (job still running, or a
  // crashed run) must become visible as soon as the writer appends it, so
  // only the decoded present manifest is cached. The cache key lives under
  // the job's trace prefix so RunJob's InvalidatePrefix drops it on re-run.
  const std::string file = ManifestFile(job_id);
  if (!store.Exists(file)) return std::optional<TraceManifest>();
  GRAFT_ASSIGN_OR_RETURN(
      TraceBlockCache::AnyPtr any,
      cache->GetOrLoad(
          store.store_uid(), file + "#decoded",
          [&]() -> Result<std::pair<TraceBlockCache::AnyPtr, size_t>> {
            GRAFT_ASSIGN_OR_RETURN(std::optional<TraceManifest> manifest,
                                   LoadTraceManifest(store, job_id));
            if (!manifest.has_value()) {
              // Raced a concurrent DeletePrefix; treat as absent.
              return std::make_pair(TraceBlockCache::AnyPtr(), size_t{0});
            }
            const size_t bytes =
                sizeof(TraceManifest) +
                manifest->entries.size() * sizeof(TraceManifestEntry);
            auto shared = std::make_shared<const TraceManifest>(
                *std::move(manifest));
            return std::make_pair(TraceBlockCache::AnyPtr(shared), bytes);
          }));
  if (any == nullptr) return std::optional<TraceManifest>();
  // Sessions index a private copy; the decode (not the copy) was the
  // expensive part, and service deployments cache whole sessions anyway.
  return std::optional<TraceManifest>(
      *std::static_pointer_cast<const TraceManifest>(any));
}

}  // namespace debug
}  // namespace graft
