#ifndef GRAFT_DEBUG_TRACE_READER_H_
#define GRAFT_DEBUG_TRACE_READER_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"
#include "debug/capture_manager.h"
#include "debug/vertex_trace.h"
#include "io/trace_store.h"

namespace graft {
namespace debug {

/// Read-side of the trace store: what the Graft GUI and the Context
/// Reproducer consume. All functions are free of engine state — they only
/// need the TraceStore and the job id, mirroring how the paper's GUI reads
/// HDFS trace files after (or during) a run.

/// Supersteps for which any vertex or master trace exists, ascending.
std::vector<int64_t> ListCapturedSupersteps(const TraceStore& store,
                                            const std::string& job_id);

/// All vertex traces captured in `superstep`, ordered by vertex id.
template <pregel::JobTraits Traits>
Result<std::vector<VertexTrace<Traits>>> ReadVertexTraces(
    const TraceStore& store, const std::string& job_id, int64_t superstep) {
  std::vector<VertexTrace<Traits>> traces;
  std::string prefix =
      StrFormat("%s/superstep_%06lld/", job_id.c_str(),
                static_cast<long long>(superstep));
  for (const std::string& file : store.ListFiles(prefix)) {
    if (file.size() < 7 || file.compare(file.size() - 7, 7, ".vtrace") != 0) {
      continue;
    }
    GRAFT_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           store.ReadAll(file));
    for (const std::string& record : records) {
      GRAFT_ASSIGN_OR_RETURN(VertexTrace<Traits> trace,
                             VertexTrace<Traits>::Deserialize(record));
      traces.push_back(std::move(trace));
    }
  }
  std::sort(traces.begin(), traces.end(),
            [](const VertexTrace<Traits>& a, const VertexTrace<Traits>& b) {
              return a.id < b.id;
            });
  return traces;
}

/// The trace of a single vertex in a superstep.
template <pregel::JobTraits Traits>
Result<VertexTrace<Traits>> ReadVertexTrace(const TraceStore& store,
                                            const std::string& job_id,
                                            int64_t superstep, VertexId id) {
  GRAFT_ASSIGN_OR_RETURN(std::vector<VertexTrace<Traits>> traces,
                         (ReadVertexTraces<Traits>(store, job_id, superstep)));
  for (VertexTrace<Traits>& trace : traces) {
    if (trace.id == id) return std::move(trace);
  }
  return Status::NotFound(StrFormat(
      "no trace for vertex %lld in superstep %lld of job '%s'",
      static_cast<long long>(id), static_cast<long long>(superstep),
      job_id.c_str()));
}

/// All supersteps of one vertex's captures, ascending by superstep — the
/// data behind the GUI's Next/Previous superstep replay of a vertex.
template <pregel::JobTraits Traits>
Result<std::vector<VertexTrace<Traits>>> ReadVertexHistory(
    const TraceStore& store, const std::string& job_id, VertexId id) {
  std::vector<VertexTrace<Traits>> history;
  for (int64_t superstep : ListCapturedSupersteps(store, job_id)) {
    auto trace = ReadVertexTrace<Traits>(store, job_id, superstep, id);
    if (trace.ok()) history.push_back(std::move(trace).value());
  }
  return history;
}

/// The master trace of a superstep.
Result<MasterTrace> ReadMasterTrace(const TraceStore& store,
                                    const std::string& job_id,
                                    int64_t superstep);

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_TRACE_READER_H_
