#ifndef GRAFT_DEBUG_TRACE_READER_H_
#define GRAFT_DEBUG_TRACE_READER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "debug/debug_session.h"
#include "debug/vertex_trace.h"
#include "io/trace_store.h"

namespace graft {
namespace debug {

/// Historical free-function read API, kept as thin wrappers over
/// DebugSession (DESIGN.md §10). Each call opens a fresh session; callers
/// issuing several queries against one job should open a DebugSession once
/// and hold it — manifest-backed sessions answer point lookups in O(1).

/// Supersteps for which any vertex or master trace exists, ascending.
std::vector<int64_t> ListCapturedSupersteps(const TraceStore& store,
                                            const std::string& job_id);

/// All vertex traces captured in `superstep`, ordered by vertex id.
template <pregel::JobTraits Traits>
Result<std::vector<VertexTrace<Traits>>> ReadVertexTraces(
    const TraceStore& store, const std::string& job_id, int64_t superstep) {
  GRAFT_ASSIGN_OR_RETURN(DebugSession<Traits> session,
                         DebugSession<Traits>::Open(&store, job_id));
  return session.VertexTraces(superstep);
}

/// The trace of a single vertex in a superstep.
template <pregel::JobTraits Traits>
Result<VertexTrace<Traits>> ReadVertexTrace(const TraceStore& store,
                                            const std::string& job_id,
                                            int64_t superstep, VertexId id) {
  GRAFT_ASSIGN_OR_RETURN(DebugSession<Traits> session,
                         DebugSession<Traits>::Open(&store, job_id));
  return session.FindVertexTrace(superstep, id);
}

/// All supersteps of one vertex's captures, ascending by superstep — the
/// data behind the GUI's Next/Previous superstep replay of a vertex.
template <pregel::JobTraits Traits>
Result<std::vector<VertexTrace<Traits>>> ReadVertexHistory(
    const TraceStore& store, const std::string& job_id, VertexId id) {
  GRAFT_ASSIGN_OR_RETURN(DebugSession<Traits> session,
                         DebugSession<Traits>::Open(&store, job_id));
  return session.VertexHistory(id);
}

/// The master trace of a superstep.
Result<MasterTrace> ReadMasterTrace(const TraceStore& store,
                                    const std::string& job_id,
                                    int64_t superstep);

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_TRACE_READER_H_
