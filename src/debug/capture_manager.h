#ifndef GRAFT_DEBUG_CAPTURE_MANAGER_H_
#define GRAFT_DEBUG_CAPTURE_MANAGER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/stopwatch.h"
#include "debug/debug_config.h"
#include "debug/vertex_trace.h"
#include "io/trace_sink.h"
#include "io/trace_store.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/vertex.h"

namespace graft {
namespace analysis {
class Predicate;  // analysis/predicate.h; stored by pointer only
}  // namespace analysis

namespace debug {

/// Trace-file naming convention inside the TraceStore (the stand-in for the
/// paper's HDFS trace directory).
std::string VertexTraceFile(const std::string& job_id, int64_t superstep,
                            int worker);
std::string MasterTraceFile(const std::string& job_id, int64_t superstep);
std::string JobTracePrefix(const std::string& job_id);

/// Point-in-time copy of a CaptureManager's counters. JobRunner snapshots
/// these at every checkpoint boundary and rewinds the manager on recovery,
/// so the summary of a recovered run counts each capture exactly once. The
/// sink's per-job I/O stats ride along under the same protocol — without
/// them a recovered run double-counts the failed attempt's appends and
/// serialize/append seconds (ISSUE 5 satellite 3).
struct CaptureCounters {
  uint64_t captures = 0;
  uint64_t master_captures = 0;
  uint64_t violations = 0;
  uint64_t exceptions = 0;
  uint64_t dropped_by_limit = 0;
  uint64_t breakpoint_hits = 0;
  double serialize_seconds = 0.0;
  TraceSinkStats sink;  // carries the producer-side append/flush accounting

  friend bool operator==(const CaptureCounters&,
                         const CaptureCounters&) = default;
};

/// Deletes every trace file of `job_id` for supersteps >= `superstep`. Run
/// before re-executing from a checkpoint so the recovered run's re-captures
/// append into empty files instead of duplicating records. The manifest file
/// lives outside the superstep_* layout and survives this.
Status PruneTracesFrom(TraceStore& store, const std::string& job_id,
                       int64_t superstep);

/// Per-debug-run shared state: the resolved capture target set (specified +
/// random + their neighbors), the capture counters, the manifest index under
/// construction, and the trace sink all appends go through. Thread-safe:
/// worker threads consult the (immutable after Prepare) target set, append
/// through the sink, and index into their own per-worker manifest slot.
template <pregel::JobTraits Traits>
class CaptureManager {
 public:
  /// Full constructor: captures flow through `sink` (not owned; must outlive
  /// the manager) and a manifest index is built with one contention-free
  /// slot per worker plus one for the master.
  CaptureManager(TraceStore* store, TraceSink* sink,
                 const DebugConfig<Traits>* config, std::string job_id,
                 int num_workers)
      : store_(store),
        sink_(sink),
        config_(config),
        job_id_(std::move(job_id)),
        num_workers_(num_workers),
        manifest_slots_(static_cast<size_t>(num_workers) + 1) {
    InitFromConfig();
  }

  /// Convenience constructor preserving the historical signature: a private
  /// synchronous sink over `store`, no manifest (unit tests and ad-hoc
  /// captures outside RunJob).
  CaptureManager(TraceStore* store, const DebugConfig<Traits>* config,
                 std::string job_id)
      : owned_sink_(std::make_unique<SyncTraceSink>(store)),
        store_(store),
        sink_(owned_sink_.get()),
        config_(config),
        job_id_(std::move(job_id)) {
    InitFromConfig();
  }

  CaptureManager(const CaptureManager&) = delete;
  CaptureManager& operator=(const CaptureManager&) = delete;

  /// Resolves categories 1 and 2 against the loaded graph: picks the random
  /// sample, then expands the base set with out-neighbors when requested.
  /// Call once, after graph load and before Engine::Run.
  void PrepareTargets(const std::vector<pregel::Vertex<Traits>>& vertices) {
    targets_.clear();
    for (VertexId id : config_->VerticesToCapture()) {
      targets_[id] |= kReasonSpecified;
    }
    int num_random = config_->NumRandomVerticesToCapture();
    if (num_random > 0 && !vertices.empty()) {
      // Reservoir-free sampling: draw distinct indices.
      Rng rng(Mix64(config_->RandomSeed() ^ 0x5a3bULL));
      std::unordered_map<size_t, bool> chosen;
      size_t want = std::min(static_cast<size_t>(num_random), vertices.size());
      while (chosen.size() < want) {
        chosen.emplace(static_cast<size_t>(rng.NextBounded(vertices.size())),
                       true);
      }
      for (const auto& [index, unused] : chosen) {
        (void)unused;
        targets_[vertices[index].id()] |= kReasonRandom;
      }
    }
    if (config_->CaptureNeighborsOfVertices() && !targets_.empty()) {
      std::vector<VertexId> neighbors;
      for (const auto& v : vertices) {
        auto it = targets_.find(v.id());
        if (it == targets_.end() ||
            (it->second & (kReasonSpecified | kReasonRandom)) == 0) {
          continue;
        }
        for (const auto& e : v.edges()) neighbors.push_back(e.target);
      }
      for (VertexId n : neighbors) targets_[n] |= kReasonNeighbor;
    }
  }

  /// Reason bits from categories 1/2 (+neighbors) for this vertex, or 0.
  uint32_t TargetReasons(VertexId id) const {
    auto it = targets_.find(id);
    return it == targets_.end() ? 0 : it->second;
  }

  const DebugConfig<Traits>& config() const { return *config_; }
  const std::string& job_id() const { return job_id_; }
  TraceSink* sink() const { return sink_; }

  bool has_message_constraint() const { return has_message_constraint_; }
  bool has_vertex_value_constraint() const {
    return has_vertex_value_constraint_;
  }
  bool capture_all_active() const { return capture_all_active_; }

  /// Arms a conditional breakpoint (DESIGN.md §14). `predicate` is not
  /// owned and must outlive the manager; null disarms. Call before
  /// Engine::Run — the pointer is read without synchronization by worker
  /// threads.
  void ArmBreakpoint(const analysis::Predicate* predicate) {
    breakpoint_ = predicate;
  }
  const analysis::Predicate* breakpoint() const { return breakpoint_; }

  /// Accounts one vertex.compute() call that satisfied the armed
  /// breakpoint. Counted for every hit, including ones whose capture was
  /// then dropped by the limit — the minimizer's oracle needs the true
  /// count, not the recorded one.
  void CountBreakpointHit() {
    breakpoint_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t num_breakpoint_hits() const {
    return breakpoint_hits_.load(std::memory_order_relaxed);
  }

  /// True while the safety-net threshold has not been reached.
  bool UnderCaptureLimit() const {
    return captures_.load(std::memory_order_relaxed) < max_captures_;
  }

  /// Accounts a capture that was skipped because the threshold was hit.
  void CountSkippedByLimit() {
    dropped_by_limit_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a vertex trace (if still under the limit). Returns whether it
  /// was written, or the sink's error — capture I/O failures are part of
  /// the run's outcome, not a log-and-continue event. With an async sink
  /// "written" means accepted for flushing; a deferred store failure
  /// surfaces at the next append or superstep-barrier quiesce.
  Result<bool> RecordVertexTrace(const VertexTrace<Traits>& trace,
                                 int worker) {
    uint64_t n = captures_.fetch_add(1, std::memory_order_relaxed);
    if (n >= max_captures_) {
      captures_.fetch_sub(1, std::memory_order_relaxed);
      ++dropped_by_limit_;
      return false;
    }
    Stopwatch serialize_clock;
    std::string payload = trace.SerializeFramed();
    obs::AtomicDoubleAdd(&serialize_seconds_,
                         serialize_clock.ElapsedSeconds());
    Status append = sink_->Append(
        VertexTraceFile(job_id_, trace.superstep, worker), payload);
    if (!append.ok()) {
      // The trace never reached the sink; undo the reservation so the
      // counters only ever count accepted captures.
      captures_.fetch_sub(1, std::memory_order_relaxed);
      return append;
    }
    if ((trace.reasons & (kReasonVertexValue | kReasonMessageValue)) != 0) {
      violations_.fetch_add(trace.violations.size(),
                            std::memory_order_relaxed);
    }
    if (trace.exception.has_value()) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    IndexRecord(worker, TraceRecordKind::kVertex, trace.superstep, trace.id);
    return true;
  }

  Status RecordMasterTrace(const MasterTrace& trace) {
    Stopwatch serialize_clock;
    std::string payload = trace.SerializeFramed();
    obs::AtomicDoubleAdd(&serialize_seconds_,
                         serialize_clock.ElapsedSeconds());
    GRAFT_RETURN_NOT_OK(
        sink_->Append(MasterTraceFile(job_id_, trace.superstep), payload));
    master_captures_.fetch_add(1, std::memory_order_relaxed);
    IndexRecord(static_cast<int>(manifest_slots_.size()) - 1,
                TraceRecordKind::kMaster, trace.superstep, 0);
    return Status::OK();
  }

  /// Counter snapshot/rewind for checkpoint-coordinated recovery. Only
  /// callable between supersteps with the sink quiesced (no concurrent
  /// Record* calls, no in-flight background flushes).
  CaptureCounters SnapshotCounters() const {
    CaptureCounters c;
    c.captures = num_captures();
    c.master_captures = num_master_captures();
    c.violations = num_violations();
    c.exceptions = num_exceptions();
    c.dropped_by_limit = num_dropped_by_limit();
    c.breakpoint_hits = num_breakpoint_hits();
    c.serialize_seconds = serialize_seconds();
    c.sink = sink_->stats();
    return c;
  }
  void RestoreCounters(const CaptureCounters& c) {
    captures_.store(c.captures, std::memory_order_relaxed);
    master_captures_.store(c.master_captures, std::memory_order_relaxed);
    violations_.store(c.violations, std::memory_order_relaxed);
    exceptions_.store(c.exceptions, std::memory_order_relaxed);
    dropped_by_limit_.store(c.dropped_by_limit, std::memory_order_relaxed);
    breakpoint_hits_.store(c.breakpoint_hits, std::memory_order_relaxed);
    serialize_seconds_.store(c.serialize_seconds, std::memory_order_relaxed);
    sink_->RestoreStats(c.sink);
  }

  /// Drops manifest entries for supersteps >= `superstep` and resets the
  /// per-file ordinal trackers. Must accompany PruneTracesFrom on recovery:
  /// pruned files restart at record ordinal 0.
  void RewindManifest(int64_t superstep) {
    for (ManifestSlot& slot : manifest_slots_) {
      std::lock_guard<std::mutex> lock(slot.mutex);
      std::erase_if(slot.entries, [superstep](const TraceManifestEntry& e) {
        return e.superstep >= superstep;
      });
      slot.current_superstep = -1;
      slot.next_index = 0;
    }
  }

  /// Writes the job's manifest index as one framed record to
  /// ManifestFile(job_id). Called once at the end of a successful run, after
  /// the final sink quiesce; entries are emitted in sorted order so the
  /// manifest bytes are deterministic regardless of worker interleaving.
  Status WriteManifest() {
    if (manifest_slots_.empty()) return Status::OK();
    TraceManifest manifest;
    for (ManifestSlot& slot : manifest_slots_) {
      std::lock_guard<std::mutex> lock(slot.mutex);
      manifest.entries.insert(manifest.entries.end(), slot.entries.begin(),
                              slot.entries.end());
    }
    // A run that captured nothing leaves the store untouched — readers treat
    // an absent manifest and an absent job identically (scan of nothing).
    if (manifest.entries.empty()) return Status::OK();
    std::sort(manifest.entries.begin(), manifest.entries.end());
    return store_->Append(ManifestFile(job_id_), manifest.Serialize());
  }

  uint64_t num_captures() const {
    return captures_.load(std::memory_order_relaxed);
  }
  uint64_t num_violations() const {
    return violations_.load(std::memory_order_relaxed);
  }
  uint64_t num_exceptions() const {
    return exceptions_.load(std::memory_order_relaxed);
  }
  uint64_t num_dropped_by_limit() const {
    return dropped_by_limit_.load(std::memory_order_relaxed);
  }
  uint64_t num_master_captures() const {
    return master_captures_.load(std::memory_order_relaxed);
  }
  double serialize_seconds() const {
    return serialize_seconds_.load(std::memory_order_relaxed);
  }

  /// Total bytes of trace data this job has written — the paper's "small
  /// log files" claim is checked against this in the benches.
  uint64_t TraceBytes() const {
    return store_->TotalBytes(JobTracePrefix(job_id_));
  }

  /// Fills the capture half of a run report. The I/O fields come from the
  /// sink's per-job stats, which rewind with the checkpoint protocol — a
  /// recovered run reports each durable append exactly once, where the
  /// store's lifetime io_stats would also count the failed attempt.
  void FillCaptureProfile(obs::CaptureProfile* capture) const {
    capture->enabled = true;
    capture->vertex_captures = num_captures();
    capture->master_captures = num_master_captures();
    capture->violations = num_violations();
    capture->exceptions = num_exceptions();
    capture->dropped_by_limit = num_dropped_by_limit();
    capture->serialize_seconds = serialize_seconds();
    capture->trace_bytes = TraceBytes();
    TraceSinkStats io = sink_->stats();
    capture->append_seconds = io.append_seconds;
    capture->store_appends = io.appends;
    capture->store_flushes = io.flushes;
    capture->async_sink = sink_->async();
    capture->flush_seconds = io.flush_seconds;
    capture->spool_batches = io.batches;
    capture->spool_max_queue_depth = io.max_queue_depth;
    capture->spool_backpressure_waits = io.backpressure_waits;
  }

  /// Copies the capture counters into `registry` as capture.* metrics.
  void ExportMetrics(obs::MetricsRegistry* registry) const {
    registry->GetCounter("capture.vertex_captures_total")
        ->Increment(num_captures());
    registry->GetCounter("capture.master_captures_total")
        ->Increment(num_master_captures());
    registry->GetCounter("capture.violations_total")
        ->Increment(num_violations());
    registry->GetCounter("capture.exceptions_total")
        ->Increment(num_exceptions());
    registry->GetCounter("capture.dropped_by_limit_total")
        ->Increment(num_dropped_by_limit());
    registry->GetCounter("capture.breakpoint_hits_total")
        ->Increment(num_breakpoint_hits());
    registry->GetGauge("capture.serialize_seconds")
        ->Add(serialize_seconds());
    registry->GetGauge("capture.trace_bytes")
        ->Add(static_cast<double>(TraceBytes()));
    TraceSinkStats io = sink_->stats();
    registry->GetGauge("capture.append_seconds")->Add(io.append_seconds);
    registry->GetGauge("capture.flush_seconds")->Add(io.flush_seconds);
    registry->GetCounter("capture.spool_batches_total")
        ->Increment(io.batches);
    registry->GetCounter("capture.spool_backpressure_waits_total")
        ->Increment(io.backpressure_waits);
    registry->GetGauge("capture.spool_max_queue_depth")
        ->Set(static_cast<double>(io.max_queue_depth));
  }

 private:
  /// Manifest entries produced by one writer thread (worker w at index w,
  /// the master at the last index). The mutex is uncontended in steady
  /// state — only the owner thread appends; Rewind/Write run at barriers.
  struct ManifestSlot {
    std::mutex mutex;
    std::vector<TraceManifestEntry> entries;
    int64_t current_superstep = -1;
    uint64_t next_index = 0;
  };

  void InitFromConfig() {
    GRAFT_CHECK(store_ != nullptr);
    GRAFT_CHECK(sink_ != nullptr);
    GRAFT_CHECK(config_ != nullptr);
    GRAFT_CHECK(num_workers_ > 0);
    has_message_constraint_ = config_->HasMessageValueConstraint();
    has_vertex_value_constraint_ = config_->HasVertexValueConstraint();
    capture_all_active_ = config_->CaptureAllActiveVertices();
    max_captures_ = config_->MaxCaptures();
  }

  void IndexRecord(int slot_index, TraceRecordKind kind, int64_t superstep,
                   VertexId vertex_id) {
    if (manifest_slots_.empty() || slot_index < 0 ||
        static_cast<size_t>(slot_index) >= manifest_slots_.size()) {
      return;
    }
    ManifestSlot& slot = manifest_slots_[static_cast<size_t>(slot_index)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.current_superstep != superstep) {
      slot.current_superstep = superstep;
      slot.next_index = 0;
    }
    TraceManifestEntry entry;
    entry.kind = kind;
    entry.superstep = superstep;
    entry.vertex_id = vertex_id;
    entry.worker = kind == TraceRecordKind::kMaster ? -1 : slot_index;
    entry.record_index = slot.next_index++;
    slot.entries.push_back(entry);
  }

  std::unique_ptr<TraceSink> owned_sink_;  // compat-constructor sink only
  TraceStore* store_;
  TraceSink* sink_;
  const DebugConfig<Traits>* config_;
  std::string job_id_;
  int num_workers_ = 1;
  std::vector<ManifestSlot> manifest_slots_;

  std::unordered_map<VertexId, uint32_t> targets_;
  bool has_message_constraint_ = false;
  bool has_vertex_value_constraint_ = false;
  bool capture_all_active_ = false;
  uint64_t max_captures_ = 0;
  const analysis::Predicate* breakpoint_ = nullptr;

  std::atomic<uint64_t> captures_{0};
  std::atomic<uint64_t> master_captures_{0};
  std::atomic<uint64_t> violations_{0};
  std::atomic<uint64_t> exceptions_{0};
  std::atomic<uint64_t> dropped_by_limit_{0};
  std::atomic<uint64_t> breakpoint_hits_{0};
  std::atomic<double> serialize_seconds_{0.0};
};

inline std::string VertexTraceFile(const std::string& job_id,
                                   int64_t superstep, int worker) {
  return StrFormat("%s/superstep_%06lld/worker_%03d.vtrace", job_id.c_str(),
                   static_cast<long long>(superstep), worker);
}

inline std::string MasterTraceFile(const std::string& job_id,
                                   int64_t superstep) {
  return StrFormat("%s/superstep_%06lld/master.mtrace", job_id.c_str(),
                   static_cast<long long>(superstep));
}

inline std::string JobTracePrefix(const std::string& job_id) {
  return job_id + "/";
}

inline Status PruneTracesFrom(TraceStore& store, const std::string& job_id,
                              int64_t superstep) {
  const std::string prefix = JobTracePrefix(job_id);
  int64_t pruned_dirs = -1;  // dedup: superstep dirs arrive sorted per file
  for (const std::string& file : store.ListFiles(prefix)) {
    const std::string_view rest = std::string_view(file).substr(prefix.size());
    if (rest.size() <= 10 || rest.substr(0, 10) != "superstep_") continue;
    const size_t slash = rest.find('/');
    if (slash == std::string_view::npos) continue;
    const int64_t s = std::stoll(std::string(rest.substr(10, slash - 10)));
    if (s < superstep || s == pruned_dirs) continue;
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(
        prefix + std::string(rest.substr(0, slash + 1))));
    pruned_dirs = s;
  }
  return Status::OK();
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_CAPTURE_MANAGER_H_
