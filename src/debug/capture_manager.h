#ifndef GRAFT_DEBUG_CAPTURE_MANAGER_H_
#define GRAFT_DEBUG_CAPTURE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/stopwatch.h"
#include "debug/debug_config.h"
#include "debug/vertex_trace.h"
#include "io/trace_store.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pregel/vertex.h"

namespace graft {
namespace debug {

/// Trace-file naming convention inside the TraceStore (the stand-in for the
/// paper's HDFS trace directory).
std::string VertexTraceFile(const std::string& job_id, int64_t superstep,
                            int worker);
std::string MasterTraceFile(const std::string& job_id, int64_t superstep);
std::string JobTracePrefix(const std::string& job_id);

/// Point-in-time copy of a CaptureManager's counters. JobRunner snapshots
/// these at every checkpoint boundary and rewinds the manager on recovery,
/// so the summary of a recovered run counts each capture exactly once.
struct CaptureCounters {
  uint64_t captures = 0;
  uint64_t master_captures = 0;
  uint64_t violations = 0;
  uint64_t exceptions = 0;
  uint64_t dropped_by_limit = 0;
  double serialize_seconds = 0.0;
  double append_seconds = 0.0;
};

/// Deletes every trace file of `job_id` for supersteps >= `superstep`. Run
/// before re-executing from a checkpoint so the recovered run's re-captures
/// append into empty files instead of duplicating records.
Status PruneTracesFrom(TraceStore& store, const std::string& job_id,
                       int64_t superstep);

/// Per-debug-run shared state: the resolved capture target set (specified +
/// random + their neighbors), the capture counters, and the trace sink.
/// Thread-safe: worker threads consult the (immutable after Prepare) target
/// set and append through the store's own synchronization.
template <pregel::JobTraits Traits>
class CaptureManager {
 public:
  CaptureManager(TraceStore* store, const DebugConfig<Traits>* config,
                 std::string job_id)
      : store_(store), config_(config), job_id_(std::move(job_id)) {
    GRAFT_CHECK(store_ != nullptr);
    GRAFT_CHECK(config_ != nullptr);
    has_message_constraint_ = config_->HasMessageValueConstraint();
    has_vertex_value_constraint_ = config_->HasVertexValueConstraint();
    capture_all_active_ = config_->CaptureAllActiveVertices();
    max_captures_ = config_->MaxCaptures();
  }

  CaptureManager(const CaptureManager&) = delete;
  CaptureManager& operator=(const CaptureManager&) = delete;

  /// Resolves categories 1 and 2 against the loaded graph: picks the random
  /// sample, then expands the base set with out-neighbors when requested.
  /// Call once, after graph load and before Engine::Run.
  void PrepareTargets(const std::vector<pregel::Vertex<Traits>>& vertices) {
    targets_.clear();
    for (VertexId id : config_->VerticesToCapture()) {
      targets_[id] |= kReasonSpecified;
    }
    int num_random = config_->NumRandomVerticesToCapture();
    if (num_random > 0 && !vertices.empty()) {
      // Reservoir-free sampling: draw distinct indices.
      Rng rng(Mix64(config_->RandomSeed() ^ 0x5a3bULL));
      std::unordered_map<size_t, bool> chosen;
      size_t want = std::min(static_cast<size_t>(num_random), vertices.size());
      while (chosen.size() < want) {
        chosen.emplace(static_cast<size_t>(rng.NextBounded(vertices.size())),
                       true);
      }
      for (const auto& [index, unused] : chosen) {
        (void)unused;
        targets_[vertices[index].id()] |= kReasonRandom;
      }
    }
    if (config_->CaptureNeighborsOfVertices() && !targets_.empty()) {
      std::vector<VertexId> neighbors;
      for (const auto& v : vertices) {
        auto it = targets_.find(v.id());
        if (it == targets_.end() ||
            (it->second & (kReasonSpecified | kReasonRandom)) == 0) {
          continue;
        }
        for (const auto& e : v.edges()) neighbors.push_back(e.target);
      }
      for (VertexId n : neighbors) targets_[n] |= kReasonNeighbor;
    }
  }

  /// Reason bits from categories 1/2 (+neighbors) for this vertex, or 0.
  uint32_t TargetReasons(VertexId id) const {
    auto it = targets_.find(id);
    return it == targets_.end() ? 0 : it->second;
  }

  const DebugConfig<Traits>& config() const { return *config_; }
  const std::string& job_id() const { return job_id_; }

  bool has_message_constraint() const { return has_message_constraint_; }
  bool has_vertex_value_constraint() const {
    return has_vertex_value_constraint_;
  }
  bool capture_all_active() const { return capture_all_active_; }

  /// True while the safety-net threshold has not been reached.
  bool UnderCaptureLimit() const {
    return captures_.load(std::memory_order_relaxed) < max_captures_;
  }

  /// Accounts a capture that was skipped because the threshold was hit.
  void CountSkippedByLimit() {
    dropped_by_limit_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a vertex trace (if still under the limit). Returns whether it
  /// was written, or the store's error — capture I/O failures are part of
  /// the run's outcome, not a log-and-continue event (ISSUE 3 satellite 2).
  Result<bool> RecordVertexTrace(const VertexTrace<Traits>& trace,
                                 int worker) {
    uint64_t n = captures_.fetch_add(1, std::memory_order_relaxed);
    if (n >= max_captures_) {
      captures_.fetch_sub(1, std::memory_order_relaxed);
      ++dropped_by_limit_;
      return false;
    }
    Stopwatch serialize_clock;
    std::string payload = trace.Serialize();
    obs::AtomicDoubleAdd(&serialize_seconds_,
                         serialize_clock.ElapsedSeconds());
    Stopwatch append_clock;
    Status append = store_->Append(
        VertexTraceFile(job_id_, trace.superstep, worker), payload);
    if (!append.ok()) {
      // The trace never reached the store; undo the reservation so the
      // counters only ever count durable captures.
      captures_.fetch_sub(1, std::memory_order_relaxed);
      return append;
    }
    if ((trace.reasons & (kReasonVertexValue | kReasonMessageValue)) != 0) {
      violations_.fetch_add(trace.violations.size(),
                            std::memory_order_relaxed);
    }
    if (trace.exception.has_value()) {
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    obs::AtomicDoubleAdd(&append_seconds_, append_clock.ElapsedSeconds());
    return true;
  }

  Status RecordMasterTrace(const MasterTrace& trace) {
    Stopwatch serialize_clock;
    std::string payload = trace.Serialize();
    obs::AtomicDoubleAdd(&serialize_seconds_,
                         serialize_clock.ElapsedSeconds());
    Stopwatch append_clock;
    GRAFT_RETURN_NOT_OK(
        store_->Append(MasterTraceFile(job_id_, trace.superstep), payload));
    master_captures_.fetch_add(1, std::memory_order_relaxed);
    obs::AtomicDoubleAdd(&append_seconds_, append_clock.ElapsedSeconds());
    return Status::OK();
  }

  /// Counter snapshot/rewind for checkpoint-coordinated recovery. Only
  /// callable between supersteps (no concurrent Record* calls).
  CaptureCounters SnapshotCounters() const {
    CaptureCounters c;
    c.captures = num_captures();
    c.master_captures = num_master_captures();
    c.violations = num_violations();
    c.exceptions = num_exceptions();
    c.dropped_by_limit = num_dropped_by_limit();
    c.serialize_seconds = serialize_seconds();
    c.append_seconds = append_seconds();
    return c;
  }
  void RestoreCounters(const CaptureCounters& c) {
    captures_.store(c.captures, std::memory_order_relaxed);
    master_captures_.store(c.master_captures, std::memory_order_relaxed);
    violations_.store(c.violations, std::memory_order_relaxed);
    exceptions_.store(c.exceptions, std::memory_order_relaxed);
    dropped_by_limit_.store(c.dropped_by_limit, std::memory_order_relaxed);
    serialize_seconds_.store(c.serialize_seconds, std::memory_order_relaxed);
    append_seconds_.store(c.append_seconds, std::memory_order_relaxed);
  }

  uint64_t num_captures() const {
    return captures_.load(std::memory_order_relaxed);
  }
  uint64_t num_violations() const {
    return violations_.load(std::memory_order_relaxed);
  }
  uint64_t num_exceptions() const {
    return exceptions_.load(std::memory_order_relaxed);
  }
  uint64_t num_dropped_by_limit() const {
    return dropped_by_limit_.load(std::memory_order_relaxed);
  }
  uint64_t num_master_captures() const {
    return master_captures_.load(std::memory_order_relaxed);
  }
  double serialize_seconds() const {
    return serialize_seconds_.load(std::memory_order_relaxed);
  }
  double append_seconds() const {
    return append_seconds_.load(std::memory_order_relaxed);
  }

  /// Total bytes of trace data this job has written — the paper's "small
  /// log files" claim is checked against this in the benches.
  uint64_t TraceBytes() const {
    return store_->TotalBytes(JobTracePrefix(job_id_));
  }

  /// Fills the capture half of a run report. The store-level fields
  /// (store_appends/store_flushes) are job-agnostic lifetime counters of the
  /// underlying store; callers that share a store across jobs should diff.
  void FillCaptureProfile(obs::CaptureProfile* capture) const {
    capture->enabled = true;
    capture->vertex_captures = num_captures();
    capture->master_captures = num_master_captures();
    capture->violations = num_violations();
    capture->exceptions = num_exceptions();
    capture->dropped_by_limit = num_dropped_by_limit();
    capture->serialize_seconds = serialize_seconds();
    capture->append_seconds = append_seconds();
    capture->trace_bytes = TraceBytes();
    TraceStore::IoStats io = store_->io_stats();
    capture->store_appends = io.appends;
    capture->store_flushes = io.flushes;
  }

  /// Copies the capture counters into `registry` as capture.* metrics.
  void ExportMetrics(obs::MetricsRegistry* registry) const {
    registry->GetCounter("capture.vertex_captures_total")
        ->Increment(num_captures());
    registry->GetCounter("capture.master_captures_total")
        ->Increment(num_master_captures());
    registry->GetCounter("capture.violations_total")
        ->Increment(num_violations());
    registry->GetCounter("capture.exceptions_total")
        ->Increment(num_exceptions());
    registry->GetCounter("capture.dropped_by_limit_total")
        ->Increment(num_dropped_by_limit());
    registry->GetGauge("capture.serialize_seconds")
        ->Add(serialize_seconds());
    registry->GetGauge("capture.append_seconds")->Add(append_seconds());
    registry->GetGauge("capture.trace_bytes")
        ->Add(static_cast<double>(TraceBytes()));
  }

 private:
  TraceStore* store_;
  const DebugConfig<Traits>* config_;
  std::string job_id_;

  std::unordered_map<VertexId, uint32_t> targets_;
  bool has_message_constraint_ = false;
  bool has_vertex_value_constraint_ = false;
  bool capture_all_active_ = false;
  uint64_t max_captures_ = 0;

  std::atomic<uint64_t> captures_{0};
  std::atomic<uint64_t> master_captures_{0};
  std::atomic<uint64_t> violations_{0};
  std::atomic<uint64_t> exceptions_{0};
  std::atomic<uint64_t> dropped_by_limit_{0};
  std::atomic<double> serialize_seconds_{0.0};
  std::atomic<double> append_seconds_{0.0};
};

inline std::string VertexTraceFile(const std::string& job_id,
                                   int64_t superstep, int worker) {
  return StrFormat("%s/superstep_%06lld/worker_%03d.vtrace", job_id.c_str(),
                   static_cast<long long>(superstep), worker);
}

inline std::string MasterTraceFile(const std::string& job_id,
                                   int64_t superstep) {
  return StrFormat("%s/superstep_%06lld/master.mtrace", job_id.c_str(),
                   static_cast<long long>(superstep));
}

inline std::string JobTracePrefix(const std::string& job_id) {
  return job_id + "/";
}

inline Status PruneTracesFrom(TraceStore& store, const std::string& job_id,
                              int64_t superstep) {
  const std::string prefix = JobTracePrefix(job_id);
  int64_t pruned_dirs = -1;  // dedup: superstep dirs arrive sorted per file
  for (const std::string& file : store.ListFiles(prefix)) {
    const std::string_view rest = std::string_view(file).substr(prefix.size());
    if (rest.size() <= 10 || rest.substr(0, 10) != "superstep_") continue;
    const size_t slash = rest.find('/');
    if (slash == std::string_view::npos) continue;
    const int64_t s = std::stoll(std::string(rest.substr(10, slash - 10)));
    if (s < superstep || s == pruned_dirs) continue;
    GRAFT_RETURN_NOT_OK(store.DeletePrefix(
        prefix + std::string(rest.substr(0, slash + 1))));
    pruned_dirs = s;
  }
  return Status::OK();
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_CAPTURE_MANAGER_H_
