#ifndef GRAFT_DEBUG_DEBUG_RUNNER_H_
#define GRAFT_DEBUG_DEBUG_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "debug/capture_manager.h"
#include "debug/instrumented_computation.h"
#include "io/trace_store.h"
#include "pregel/engine.h"

namespace graft {
namespace debug {

/// Summary of one debugged run — job stats plus what Graft captured. This
/// is the programmatic equivalent of what the paper's GUI shows in its
/// header bar, and the row source for the Figure 7 harness.
struct DebugRunSummary {
  pregel::JobStats stats;
  /// Non-OK when the job aborted (e.g. an exception escaped Compute() with
  /// AbortOnException). Traces written before the abort remain readable.
  Status job_status;
  uint64_t captures = 0;
  uint64_t violations = 0;
  uint64_t exceptions = 0;
  uint64_t dropped_by_capture_limit = 0;
  uint64_t trace_bytes = 0;
};

/// Runs a Giraph job under Graft (§3.1 architecture figure: "Submits
/// original Giraph program and DebugConfig to Graft"): resolves the
/// DebugConfig's capture targets against the loaded graph, wraps the user's
/// computation with the Instrumenter, subscribes a master-context capture
/// observer, runs the engine, and returns the capture summary. Trace files
/// land in `store` under `options.job_id`.
///
/// `post_run` (optional) is invoked with the engine after the run so callers
/// can inspect final vertex values without re-running. `pre_run` (optional)
/// is invoked before Engine::Run — the hook for attaching extensions such as
/// the InvariantChecker (§7 complex constraints).
template <pregel::JobTraits Traits>
DebugRunSummary RunWithGraft(
    typename pregel::Engine<Traits>::Options options,
    std::vector<pregel::Vertex<Traits>> vertices,
    pregel::ComputationFactory<Traits> user_factory,
    pregel::MasterFactory master_factory, const DebugConfig<Traits>& config,
    TraceStore* store,
    std::function<void(pregel::Engine<Traits>&)> post_run = nullptr,
    std::function<void(pregel::Engine<Traits>&)> pre_run = nullptr) {
  CaptureManager<Traits> manager(store, &config, options.job_id);
  manager.PrepareTargets(vertices);

  /// Captures the master context every superstep (§3.4: Graft does this
  /// automatically whenever the program has a master.compute()).
  class MasterCaptureObserver final
      : public pregel::Engine<Traits>::SuperstepObserver {
   public:
    MasterCaptureObserver(CaptureManager<Traits>* manager, bool has_master)
        : manager_(manager), has_master_(has_master) {}

    void OnSuperstepStart(
        int64_t superstep,
        const std::map<std::string, pregel::AggValue>& aggs) override {
      (void)superstep;
      before_ = aggs;
    }
    void OnMasterComputed(int64_t superstep,
                          const std::map<std::string, pregel::AggValue>& aggs,
                          bool master_halted) override {
      if (!has_master_) return;
      if (!manager_->config().ShouldCaptureSuperstep(superstep)) return;
      MasterTrace trace;
      trace.superstep = superstep;
      trace.total_vertices = engine_->NumAliveVertices();
      trace.total_edges = engine_->NumEdges();
      trace.aggregators = before_;
      trace.aggregators_after = aggs;
      trace.halted = master_halted;
      manager_->RecordMasterTrace(trace);
    }
    void set_engine(const pregel::Engine<Traits>* engine) { engine_ = engine; }

   private:
    CaptureManager<Traits>* manager_;
    bool has_master_;
    std::map<std::string, pregel::AggValue> before_;
    const pregel::Engine<Traits>* engine_ = nullptr;
  };

  const bool has_master = master_factory != nullptr;
  // `options` is moved into the engine below; keep what the wiring needs.
  obs::MetricsRegistry* metrics = options.metrics;
  pregel::Engine<Traits> engine(
      std::move(options), std::move(vertices),
      InstrumentFactory<Traits>(std::move(user_factory), &manager),
      std::move(master_factory));
  MasterCaptureObserver observer(&manager, has_master);
  observer.set_engine(&engine);
  engine.AddObserver(&observer);

  if (pre_run) pre_run(engine);

  DebugRunSummary summary;
  auto stats = engine.Run();
  if (stats.ok()) {
    summary.stats = std::move(stats).value();
  } else {
    summary.job_status = stats.status();
  }
  summary.captures = manager.num_captures();
  summary.violations = manager.num_violations();
  summary.exceptions = manager.num_exceptions();
  summary.dropped_by_capture_limit = manager.num_dropped_by_limit();
  summary.trace_bytes = manager.TraceBytes();
  // Attach the capture-overhead half of the run report (the engine filled
  // the phase-timing half during Run).
  manager.FillCaptureProfile(&summary.stats.report.capture);
  if (metrics != nullptr) {
    manager.ExportMetrics(metrics);
    store->ExportMetrics(metrics);
  }
  if (post_run) post_run(engine);
  return summary;
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_DEBUG_RUNNER_H_
