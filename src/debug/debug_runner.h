#ifndef GRAFT_DEBUG_DEBUG_RUNNER_H_
#define GRAFT_DEBUG_DEBUG_RUNNER_H_

#include <utility>

#include "common/result.h"
#include "pregel/job.h"

namespace graft {
namespace debug {

/// Summary of one debugged run — job stats plus what Graft captured and how
/// many recoveries it took. Debugged runs and plain runs share one summary
/// type because they share one runner (pregel::RunJob).
using DebugRunSummary = pregel::JobRunSummary;

/// Runs a Giraph job under Graft (§3.1 architecture figure: "Submits
/// original Giraph program and DebugConfig to Graft"). Thin veneer over
/// pregel::RunJob — capture wiring, checkpointing, fault injection, and
/// recovery all live there; this entry point only asserts that the spec
/// actually asks for debugging. Trace files land in `spec.trace_store`
/// under `spec.options.job_id`.
template <pregel::JobTraits Traits>
Result<DebugRunSummary> RunWithGraft(pregel::JobSpec<Traits> spec) {
  if (spec.debug_config == nullptr) {
    return Status::InvalidArgument(
        "RunWithGraft requires JobSpec.debug_config (use pregel::RunJob for "
        "un-instrumented runs)");
  }
  return pregel::RunJob(std::move(spec));
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_DEBUG_RUNNER_H_
