#ifndef GRAFT_DEBUG_VERTEX_TRACE_H_
#define GRAFT_DEBUG_VERTEX_TRACE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/string_util.h"
#include "pregel/agg_value.h"
#include "pregel/vertex.h"

namespace graft {
namespace debug {

/// Why a vertex was captured — the five DebugConfig categories of §3.1 plus
/// neighbor-of-captured and capture-all-active. A single capture can have
/// several reasons (bitmask).
enum CaptureReason : uint32_t {
  kReasonSpecified = 1u << 0,       // category 1: listed by id
  kReasonRandom = 1u << 1,          // category 2: random sample member
  kReasonNeighbor = 1u << 2,        // neighbor of a category-1/2 vertex
  kReasonVertexValue = 1u << 3,     // category 3: vertex-value constraint
  kReasonMessageValue = 1u << 4,    // category 4: message-value constraint
  kReasonException = 1u << 5,       // category 5: Compute() threw
  kReasonAllActive = 1u << 6,       // capture-all-active mode
  kReasonBreakpoint = 1u << 7,      // conditional breakpoint predicate fired
};

/// "spec|random|nbr|vv|msg|exc|active" style rendering of a reason mask.
std::string CaptureReasonsToString(uint32_t reasons);

// ---------------------------------------------------------------------------
// Versioned record framing (DESIGN.md §10)
// ---------------------------------------------------------------------------
//
// Every record appended to a trace file since format v2 is framed as
//
//   [magic u8 = 0xA7]
//   [header_len varint]
//   [header: version u8, kind u8, superstep svarint, vertex_id svarint,
//            ...future fields...]
//   [body: the kind-specific serialization]
//
// Readers skip header bytes beyond the fields they know (header_len bounds
// the header), so new header fields are forward-compatible. Records whose
// version or kind is unknown are skippable, not fatal. Seed-format ("v0")
// records have no frame: their first byte is the body version (0x01), which
// can never be the magic, so ParseTraceRecord transparently detects them.

inline constexpr uint8_t kTraceRecordMagic = 0xA7;
inline constexpr uint8_t kTraceFormatVersion = 2;

enum class TraceRecordKind : uint8_t {
  kVertex = 0,    // body is VertexTrace<Traits>
  kMaster = 1,    // body is MasterTrace
  kManifest = 2,  // body is TraceManifest
};

/// The envelope of one framed record. `superstep`/`vertex_id` duplicate the
/// body's leading fields so index builders and generic tooling (trace_dump)
/// can classify records without knowing the Traits type.
struct TraceRecordHeader {
  uint8_t version = kTraceFormatVersion;
  TraceRecordKind kind = TraceRecordKind::kVertex;
  int64_t superstep = 0;
  VertexId vertex_id = 0;  // 0 for master/manifest records

  friend bool operator==(const TraceRecordHeader&,
                         const TraceRecordHeader&) = default;
};

/// Frames `body` with a v2 header.
std::string EncodeTraceRecord(const TraceRecordHeader& header,
                              std::string_view body);

/// A parsed frame. `header` is empty for legacy (seed-format) records; in
/// that case `body` is the whole record and the caller must infer the kind
/// from the file name, as pre-v2 readers did.
struct ParsedTraceRecord {
  std::optional<TraceRecordHeader> header;
  std::string_view body;  // points into the input record

  /// True when this record's version/kind is unknown to this build and it
  /// should be skipped rather than decoded.
  bool ShouldSkip() const {
    return header.has_value() &&
           (header->version > kTraceFormatVersion ||
            static_cast<uint8_t>(header->kind) >
                static_cast<uint8_t>(TraceRecordKind::kManifest));
  }
};

/// Splits a record into header + body. Legacy records (first byte != magic)
/// parse successfully with an empty header. Fails only on a corrupt frame
/// (truncated header).
Result<ParsedTraceRecord> ParseTraceRecord(std::string_view record);

// ---------------------------------------------------------------------------
// Per-job manifest index (DESIGN.md §10)
// ---------------------------------------------------------------------------

/// One indexed record: (kind, superstep, vertex) → (worker file, append
/// ordinal). `record_index` is the offset unit of TraceStore::ReadRecord.
struct TraceManifestEntry {
  TraceRecordKind kind = TraceRecordKind::kVertex;
  int64_t superstep = 0;
  VertexId vertex_id = 0;
  int32_t worker = 0;  // worker index; -1 for master records
  uint64_t record_index = 0;

  friend bool operator==(const TraceManifestEntry&,
                         const TraceManifestEntry&) = default;
  friend auto operator<=>(const TraceManifestEntry&,
                          const TraceManifestEntry&) = default;
};

/// The index of a whole job, written as a single framed record to
/// ManifestFile(job_id) at the end of a successful run. Absence is not an
/// error: readers fall back to directory scans (e.g. crashed or pre-v2
/// jobs). Unknown trailing bytes after the entry array are ignored.
struct TraceManifest {
  std::vector<TraceManifestEntry> entries;

  /// Fully framed record (kind = kManifest), ready for TraceStore::Append.
  std::string Serialize() const;
  static Result<TraceManifest> Deserialize(std::string_view record);
};

/// "<job_id>/manifest.idx" — deliberately outside the superstep_* directory
/// layout so recovery's PruneTracesFrom never deletes it.
std::string ManifestFile(const std::string& job_id);

/// Exception captured from a Compute() call (category 5). C++ has no
/// portable stack traces without a dependency; `context` carries the
/// synthesized frame description (algorithm, phase, vertex, superstep) that
/// the Violations & Exceptions view displays where the paper shows a Java
/// stack trace.
struct ExceptionInfo {
  std::string type;     // typeid name of the exception class
  std::string message;  // what()
  std::string context;  // synthesized "stack" context

  void Write(BinaryWriter& w) const {
    w.WriteString(type);
    w.WriteString(message);
    w.WriteString(context);
  }
  static Result<ExceptionInfo> Read(BinaryReader& r) {
    ExceptionInfo e;
    GRAFT_ASSIGN_OR_RETURN(e.type, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(e.message, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(e.context, r.ReadString());
    return e;
  }
  friend bool operator==(const ExceptionInfo&, const ExceptionInfo&) = default;
};

/// One constraint violation (categories 3/4). `detail` holds the offending
/// value rendered via ToString so the Violations view can show it without
/// re-deserializing typed values.
struct ViolationInfo {
  enum class Kind : uint8_t { kVertexValue = 0, kMessageValue = 1 };

  Kind kind = Kind::kVertexValue;
  VertexId source = 0;       // the captured vertex
  VertexId destination = 0;  // message target (kMessageValue only)
  std::string detail;

  void Write(BinaryWriter& w) const {
    w.WriteU8(static_cast<uint8_t>(kind));
    w.WriteSignedVarint(source);
    w.WriteSignedVarint(destination);
    w.WriteString(detail);
  }
  static Result<ViolationInfo> Read(BinaryReader& r) {
    ViolationInfo v;
    GRAFT_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
    if (kind > 1) {
      return Status::OutOfRange("bad ViolationInfo kind");
    }
    v.kind = static_cast<Kind>(kind);
    GRAFT_ASSIGN_OR_RETURN(v.source, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(v.destination, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(v.detail, r.ReadString());
    return v;
  }
  friend bool operator==(const ViolationInfo&, const ViolationInfo&) = default;
};

/// The full captured context of one vertex.compute() call (§3.1): the five
/// pieces of data the Giraph API exposes — id, out-edges, incoming messages,
/// aggregators, global data — plus the RNG stream state (so replay is exact,
/// DESIGN.md §1) and the observed outcome (new value, sent messages, halt
/// decision, violations, exception) that the GUI displays and the Context
/// Reproducer diffs replays against.
template <pregel::JobTraits Traits>
struct VertexTrace {
  using VertexValue = typename Traits::VertexValue;
  using EdgeValue = typename Traits::EdgeValue;
  using Message = typename Traits::Message;
  using EdgeT = pregel::Edge<EdgeValue>;

  static constexpr uint8_t kFormatVersion = 1;

  int64_t superstep = 0;
  VertexId id = 0;
  uint32_t reasons = 0;

  // -- context (inputs to Compute) --
  VertexValue value_before{};
  std::vector<EdgeT> edges;  // at Compute() entry (see edges_snapshot_post)
  std::vector<Message> incoming;
  std::map<std::string, pregel::AggValue> aggregators;
  int64_t total_vertices = 0;
  int64_t total_edges = 0;
  uint64_t rng_state = 0;
  /// True when the capture decision was made only after Compute() ran (a
  /// constraint fired mid-call), so `edges` was snapshotted post-call and
  /// may reflect local edge mutations.
  bool edges_snapshot_post = false;

  // -- outcome (what Compute did) --
  VertexValue value_after{};
  bool halted_after = false;
  std::vector<std::pair<VertexId, Message>> outgoing;
  std::vector<std::pair<std::string, pregel::AggValue>> aggregations;
  std::vector<ViolationInfo> violations;
  std::optional<ExceptionInfo> exception;

  void Write(BinaryWriter& w) const {
    w.WriteU8(kFormatVersion);
    w.WriteSignedVarint(superstep);
    w.WriteSignedVarint(id);
    w.WriteVarint(reasons);
    value_before.Write(w);
    w.WriteVarint(edges.size());
    for (const EdgeT& e : edges) {
      w.WriteSignedVarint(e.target);
      e.value.Write(w);
    }
    w.WriteVarint(incoming.size());
    for (const Message& m : incoming) m.Write(w);
    w.WriteVarint(aggregators.size());
    for (const auto& [name, value] : aggregators) {
      w.WriteString(name);
      value.Write(w);
    }
    w.WriteSignedVarint(total_vertices);
    w.WriteSignedVarint(total_edges);
    w.WriteFixed64(rng_state);
    w.WriteBool(edges_snapshot_post);
    value_after.Write(w);
    w.WriteBool(halted_after);
    w.WriteVarint(outgoing.size());
    for (const auto& [target, m] : outgoing) {
      w.WriteSignedVarint(target);
      m.Write(w);
    }
    w.WriteVarint(aggregations.size());
    for (const auto& [name, value] : aggregations) {
      w.WriteString(name);
      value.Write(w);
    }
    w.WriteVarint(violations.size());
    for (const ViolationInfo& v : violations) v.Write(w);
    w.WriteBool(exception.has_value());
    if (exception.has_value()) exception->Write(w);
  }

  static Result<VertexTrace> Read(BinaryReader& r) {
    GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
    if (version != kFormatVersion) {
      return Status::InvalidArgument("unsupported vertex trace version " +
                                     std::to_string(version));
    }
    VertexTrace t;
    GRAFT_ASSIGN_OR_RETURN(t.superstep, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(t.id, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(uint64_t reasons, r.ReadVarint());
    t.reasons = static_cast<uint32_t>(reasons);
    GRAFT_ASSIGN_OR_RETURN(t.value_before, VertexValue::Read(r));
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_edges, r.ReadVarint());
    t.edges.reserve(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
      EdgeT e;
      GRAFT_ASSIGN_OR_RETURN(e.target, r.ReadSignedVarint());
      GRAFT_ASSIGN_OR_RETURN(e.value, EdgeValue::Read(r));
      t.edges.push_back(std::move(e));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_incoming, r.ReadVarint());
    t.incoming.reserve(num_incoming);
    for (uint64_t i = 0; i < num_incoming; ++i) {
      GRAFT_ASSIGN_OR_RETURN(Message m, Message::Read(r));
      t.incoming.push_back(std::move(m));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_aggs, r.ReadVarint());
    for (uint64_t i = 0; i < num_aggs; ++i) {
      GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      GRAFT_ASSIGN_OR_RETURN(pregel::AggValue value,
                             pregel::AggValue::Read(r));
      t.aggregators.emplace(std::move(name), std::move(value));
    }
    GRAFT_ASSIGN_OR_RETURN(t.total_vertices, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(t.total_edges, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(t.rng_state, r.ReadFixed64());
    GRAFT_ASSIGN_OR_RETURN(t.edges_snapshot_post, r.ReadBool());
    GRAFT_ASSIGN_OR_RETURN(t.value_after, VertexValue::Read(r));
    GRAFT_ASSIGN_OR_RETURN(t.halted_after, r.ReadBool());
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_outgoing, r.ReadVarint());
    t.outgoing.reserve(num_outgoing);
    for (uint64_t i = 0; i < num_outgoing; ++i) {
      VertexId target;
      GRAFT_ASSIGN_OR_RETURN(target, r.ReadSignedVarint());
      GRAFT_ASSIGN_OR_RETURN(Message m, Message::Read(r));
      t.outgoing.emplace_back(target, std::move(m));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_aggregations, r.ReadVarint());
    for (uint64_t i = 0; i < num_aggregations; ++i) {
      GRAFT_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      GRAFT_ASSIGN_OR_RETURN(pregel::AggValue value,
                             pregel::AggValue::Read(r));
      t.aggregations.emplace_back(std::move(name), std::move(value));
    }
    GRAFT_ASSIGN_OR_RETURN(uint64_t num_violations, r.ReadVarint());
    for (uint64_t i = 0; i < num_violations; ++i) {
      GRAFT_ASSIGN_OR_RETURN(ViolationInfo v, ViolationInfo::Read(r));
      t.violations.push_back(std::move(v));
    }
    GRAFT_ASSIGN_OR_RETURN(bool has_exception, r.ReadBool());
    if (has_exception) {
      GRAFT_ASSIGN_OR_RETURN(ExceptionInfo e, ExceptionInfo::Read(r));
      t.exception = std::move(e);
    }
    return t;
  }

  /// Serialized body (no frame) — the seed-format record layout.
  std::string Serialize() const {
    BinaryWriter w;
    Write(w);
    return std::move(w.TakeBuffer());
  }

  /// v2 framed record for TraceStore::Append.
  std::string SerializeFramed() const {
    TraceRecordHeader header;
    header.kind = TraceRecordKind::kVertex;
    header.superstep = superstep;
    header.vertex_id = id;
    return EncodeTraceRecord(header, Serialize());
  }

  /// Accepts both v2 framed records and legacy (seed-format) bare bodies.
  /// Trailing body bytes beyond the known fields are ignored.
  static Result<VertexTrace> Deserialize(std::string_view record) {
    GRAFT_ASSIGN_OR_RETURN(ParsedTraceRecord parsed, ParseTraceRecord(record));
    if (parsed.header.has_value() &&
        parsed.header->kind != TraceRecordKind::kVertex) {
      return Status::InvalidArgument("record is not a vertex trace");
    }
    BinaryReader r(parsed.body);
    return Read(r);
  }
};

/// Captured master.compute() context (§3.4, "just the aggregator values"):
/// the aggregator values the master saw on entry (its full input context),
/// the values after it returned (its observable output), and its halt
/// decision. Replay re-runs Compute() from `aggregators` and diffs against
/// `aggregators_after`/`halted`.
struct MasterTrace {
  static constexpr uint8_t kFormatVersion = 1;

  int64_t superstep = 0;
  int64_t total_vertices = 0;
  int64_t total_edges = 0;
  std::map<std::string, pregel::AggValue> aggregators;  // before Compute()
  std::map<std::string, pregel::AggValue> aggregators_after;
  bool halted = false;

  void Write(BinaryWriter& w) const;
  static Result<MasterTrace> Read(BinaryReader& r);
  /// Serialized body (no frame) — the seed-format record layout.
  std::string Serialize() const;
  /// v2 framed record for TraceStore::Append.
  std::string SerializeFramed() const;
  /// Accepts both v2 framed records and legacy (seed-format) bare bodies.
  static Result<MasterTrace> Deserialize(std::string_view record);
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_VERTEX_TRACE_H_
