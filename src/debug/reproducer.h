#ifndef GRAFT_DEBUG_REPRODUCER_H_
#define GRAFT_DEBUG_REPRODUCER_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "debug/debug_session.h"
#include "debug/mock_context.h"
#include "debug/vertex_trace.h"
#include "pregel/computation.h"
#include "pregel/master.h"

namespace graft {
namespace debug {

/// What a replayed Compute() call did, for diffing against the recorded
/// outcome in the trace.
template <pregel::JobTraits Traits>
struct ReplayOutcome {
  typename Traits::VertexValue value_after{};
  bool voted_halt = false;
  std::vector<std::pair<VertexId, typename Traits::Message>> sent;
  std::vector<std::pair<std::string, pregel::AggValue>> aggregations;
  std::optional<std::string> exception;
};

/// The in-process half of the Context Reproducer (§3.3): reconstructs the
/// exact context of a captured (vertex, superstep) from its trace — value,
/// edges, incoming messages, aggregators, global data, RNG stream — and
/// re-runs the user's Compute() against a MockComputeContext. This is what
/// a developer steps through under gdb; the generated test file (codegen.h)
/// is the same call sequence as standalone source.
template <pregel::JobTraits Traits>
ReplayOutcome<Traits> ReplayVertex(const VertexTrace<Traits>& trace,
                                   pregel::Computation<Traits>& computation) {
  MockComputeContext<Traits> ctx;
  ctx.set_superstep(trace.superstep);
  ctx.set_total_num_vertices(trace.total_vertices);
  ctx.set_total_num_edges(trace.total_edges);
  for (const auto& [name, value] : trace.aggregators) {
    ctx.set_aggregated(name, value);
  }
  ctx.set_rng_state(trace.rng_state);

  pregel::Vertex<Traits> vertex(trace.id, trace.value_before, trace.edges);
  ReplayOutcome<Traits> outcome;
  try {
    computation.Compute(ctx, vertex, trace.incoming);
  } catch (const std::exception& e) {
    outcome.exception = e.what();
  }
  outcome.value_after = vertex.value();
  outcome.voted_halt = vertex.halted();
  outcome.sent = ctx.sent_messages();
  outcome.aggregations = ctx.aggregations();
  return outcome;
}

/// Result of diffing a replay against the recorded outcome. Replay fidelity
/// is the property the paper's whole "reproduce" step rests on; we make it
/// checkable (and check it in tests over every captured vertex).
struct ReplayFidelity {
  bool value_matches = true;
  bool halt_matches = true;
  bool messages_match = true;
  bool aggregations_match = true;
  bool exception_matches = true;
  std::string mismatch_detail;

  bool Faithful() const {
    return value_matches && halt_matches && messages_match &&
           aggregations_match && exception_matches;
  }
};

/// Replays `trace` through `computation` and diffs every recorded effect.
/// For lazily-captured traces (edges_snapshot_post — the capture decision
/// was made after Compute() ran, so recorded edges/outgoing reflect the
/// post-call state) only the value and halt decision are compared.
template <pregel::JobTraits Traits>
ReplayFidelity CheckReplayFidelity(const VertexTrace<Traits>& trace,
                                   pregel::Computation<Traits>& computation) {
  ReplayOutcome<Traits> outcome = ReplayVertex(trace, computation);
  ReplayFidelity fidelity;
  if (!(outcome.value_after == trace.value_after)) {
    fidelity.value_matches = false;
    fidelity.mismatch_detail += "value: replay=" +
                                outcome.value_after.ToString() +
                                " recorded=" + trace.value_after.ToString() +
                                "; ";
  }
  if (outcome.voted_halt != trace.halted_after) {
    fidelity.halt_matches = false;
    fidelity.mismatch_detail += "halt decision differs; ";
  }
  bool recorded_exception = trace.exception.has_value();
  if (outcome.exception.has_value() != recorded_exception ||
      (recorded_exception &&
       outcome.exception.value() != trace.exception->message)) {
    fidelity.exception_matches = false;
    fidelity.mismatch_detail += "exception differs; ";
  }
  if (!trace.edges_snapshot_post) {
    if (outcome.sent != trace.outgoing) {
      fidelity.messages_match = false;
      fidelity.mismatch_detail +=
          StrFormat("outgoing messages differ (replay %zu vs recorded %zu); ",
                    outcome.sent.size(), trace.outgoing.size());
    }
    if (outcome.aggregations != trace.aggregations) {
      fidelity.aggregations_match = false;
      fidelity.mismatch_detail += "aggregations differ; ";
    }
  }
  return fidelity;
}

/// Reproduces a captured master.compute() execution (§3.4): seeds a mock
/// master context with the captured aggregator values and re-runs
/// Compute(). Returns the mock for inspecting SetAggregated calls and the
/// halt decision.
inline MockMasterContext ReplayMaster(const MasterTrace& trace,
                                      pregel::MasterCompute& master) {
  MockMasterContext ctx;
  ctx.set_superstep(trace.superstep);
  ctx.set_total_num_vertices(trace.total_vertices);
  ctx.set_total_num_edges(trace.total_edges);
  for (const auto& [name, value] : trace.aggregators) {
    ctx.set_aggregated(name, value);
  }
  master.Compute(ctx);
  return ctx;
}

/// Session-based conveniences: fetch the capture through the DebugSession
/// read API (O(1) with a manifest) and replay it — the programmatic
/// equivalent of clicking a vertex in the GUI and hitting "replay".

template <pregel::JobTraits Traits>
Result<ReplayOutcome<Traits>> ReplayVertexAt(
    const DebugSession<Traits>& session, int64_t superstep, VertexId id,
    pregel::Computation<Traits>& computation) {
  GRAFT_ASSIGN_OR_RETURN(VertexTrace<Traits> trace,
                         session.FindVertexTrace(superstep, id));
  return ReplayVertex(trace, computation);
}

template <pregel::JobTraits Traits>
Result<ReplayFidelity> CheckReplayFidelityAt(
    const DebugSession<Traits>& session, int64_t superstep, VertexId id,
    pregel::Computation<Traits>& computation) {
  GRAFT_ASSIGN_OR_RETURN(VertexTrace<Traits> trace,
                         session.FindVertexTrace(superstep, id));
  return CheckReplayFidelity(trace, computation);
}

/// Diffs a master replay against the recorded post-compute state.
inline ReplayFidelity CheckMasterReplayFidelity(const MasterTrace& trace,
                                                pregel::MasterCompute& master) {
  MockMasterContext ctx = ReplayMaster(trace, master);
  ReplayFidelity fidelity;
  if (ctx.VisibleAggregators() != trace.aggregators_after) {
    fidelity.aggregations_match = false;
    fidelity.mismatch_detail += "post-compute aggregator values differ; ";
  }
  if (ctx.IsHalted() != trace.halted) {
    fidelity.halt_matches = false;
    fidelity.mismatch_detail += "halt decision differs; ";
  }
  return fidelity;
}

template <pregel::JobTraits Traits>
Result<ReplayFidelity> CheckMasterReplayFidelityAt(
    const DebugSession<Traits>& session, int64_t superstep,
    pregel::MasterCompute& master) {
  GRAFT_ASSIGN_OR_RETURN(MasterTrace trace, session.Master(superstep));
  return CheckMasterReplayFidelity(trace, master);
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_REPRODUCER_H_
