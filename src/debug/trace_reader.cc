#include "debug/trace_reader.h"

#include "debug/capture_manager.h"

namespace graft {
namespace debug {

Result<MasterTrace> ReadMasterTrace(const TraceStore& store,
                                    const std::string& job_id,
                                    int64_t superstep) {
  const std::string file = MasterTraceFile(job_id, superstep);
  GRAFT_ASSIGN_OR_RETURN(std::string record, store.ReadRecord(file, 0));
  return MasterTrace::Deserialize(record);
}

}  // namespace debug
}  // namespace graft
