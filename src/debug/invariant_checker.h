#ifndef GRAFT_DEBUG_INVARIANT_CHECKER_H_
#define GRAFT_DEBUG_INVARIANT_CHECKER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "debug/capture_manager.h"
#include "io/trace_store.h"
#include "pregel/engine.h"

namespace graft {
namespace debug {

/// One cross-vertex invariant violation observed at a superstep boundary.
struct InvariantViolation {
  static constexpr uint8_t kFormatVersion = 1;

  int64_t superstep = 0;
  std::string invariant;  // the registered name
  VertexId u = 0;
  VertexId v = 0;  // == u for global invariants
  std::string detail;

  void Write(BinaryWriter& w) const {
    w.WriteU8(kFormatVersion);
    w.WriteSignedVarint(superstep);
    w.WriteString(invariant);
    w.WriteSignedVarint(u);
    w.WriteSignedVarint(v);
    w.WriteString(detail);
  }
  static Result<InvariantViolation> Read(BinaryReader& r) {
    GRAFT_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
    if (version != kFormatVersion) {
      return Status::InvalidArgument("unsupported invariant trace version");
    }
    InvariantViolation out;
    GRAFT_ASSIGN_OR_RETURN(out.superstep, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(out.invariant, r.ReadString());
    GRAFT_ASSIGN_OR_RETURN(out.u, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(out.v, r.ReadSignedVarint());
    GRAFT_ASSIGN_OR_RETURN(out.detail, r.ReadString());
    return out;
  }

  friend bool operator==(const InvariantViolation&,
                         const InvariantViolation&) = default;
};

/// Trace file holding a superstep's invariant violations.
inline std::string InvariantTraceFile(const std::string& job_id,
                                      int64_t superstep) {
  return StrFormat("%s/superstep_%06lld/invariants.itrace", job_id.c_str(),
                   static_cast<long long>(superstep));
}

/// §7 "More complex constraints", implemented: the paper's users asked for
/// constraints Graft's per-vertex/per-message DebugConfig cannot express —
/// "no two adjacent vertices should be assigned the same color". This
/// checker subscribes to the engine as a superstep observer and evaluates
///
///   * adjacency invariants — a predicate over (vertex u, vertex v, edge
///     value) for every edge, with access to BOTH endpoint values (the
///     capability §7 says DebugConfig lacks), and
///   * global invariants — a predicate over the whole engine state,
///
/// at the end of every selected superstep, appending violations to the
/// trace store next to Graft's vertex traces. Cost: O(V + E) per checked
/// superstep; use `set_check_every` to sample supersteps on large graphs.
template <pregel::JobTraits Traits>
class InvariantChecker final
    : public pregel::Engine<Traits>::SuperstepObserver {
 public:
  using EngineT = pregel::Engine<Traits>;
  using VertexT = pregel::Vertex<Traits>;
  using EdgeValue = typename Traits::EdgeValue;
  /// Returns true when the invariant HOLDS for the edge (u, v).
  using AdjacencyPredicate =
      std::function<bool(const VertexT& u, const VertexT& v,
                         const EdgeValue& edge)>;
  /// Returns true when the invariant HOLDS globally.
  using GlobalPredicate = std::function<bool(const EngineT& engine)>;

  InvariantChecker(TraceStore* store, std::string job_id)
      : store_(store), job_id_(std::move(job_id)) {
    GRAFT_CHECK(store_ != nullptr);
  }

  /// Must be called before Engine::Run (the engine pointer is needed to
  /// walk vertices at superstep boundaries).
  void AttachTo(EngineT* engine) {
    engine_ = engine;
    engine->AddObserver(this);
  }

  void AddAdjacencyInvariant(std::string name, AdjacencyPredicate predicate) {
    adjacency_.emplace_back(std::move(name), std::move(predicate));
  }
  void AddGlobalInvariant(std::string name, GlobalPredicate predicate) {
    global_.emplace_back(std::move(name), std::move(predicate));
  }

  /// Check only every k-th superstep (violations in between go unnoticed —
  /// the trade the paper's "safety net" thresholds also make).
  void set_check_every(int64_t k) { check_every_ = k < 1 ? 1 : k; }
  /// Stop recording after this many violations.
  void set_max_violations(uint64_t n) { max_violations_ = n; }

  uint64_t num_violations() const { return violations_.size(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

  void OnSuperstepEnd(int64_t superstep,
                      const pregel::SuperstepStats& stats) override {
    (void)stats;
    if (engine_ == nullptr) return;
    if (superstep % check_every_ != 0) return;
    if (violations_.size() >= max_violations_) return;
    for (const auto& [name, predicate] : global_) {
      if (!predicate(*engine_)) {
        Record(InvariantViolation{0, name, 0, 0, "global invariant failed"},
               superstep);
      }
    }
    if (adjacency_.empty()) return;
    engine_->ForEachVertex([&](const VertexT& u) {
      if (violations_.size() >= max_violations_) return;
      for (const auto& edge : u.edges()) {
        auto v = engine_->FindVertex(edge.target);
        if (!v.ok()) continue;  // dangling edge after vertex removal
        for (const auto& [name, predicate] : adjacency_) {
          if (!predicate(u, **v, edge.value)) {
            Record(
                InvariantViolation{
                    0, name, u.id(), edge.target,
                    StrFormat("u={%s} v={%s}", u.value().ToString().c_str(),
                              (*v)->value().ToString().c_str())},
                superstep);
          }
        }
      }
    });
  }

  /// Reads back the violations of one superstep from the store.
  static Result<std::vector<InvariantViolation>> ReadViolations(
      const TraceStore& store, const std::string& job_id, int64_t superstep) {
    GRAFT_ASSIGN_OR_RETURN(
        std::vector<std::string> records,
        store.ReadAll(InvariantTraceFile(job_id, superstep)));
    std::vector<InvariantViolation> out;
    for (const std::string& record : records) {
      BinaryReader r(record);
      GRAFT_ASSIGN_OR_RETURN(InvariantViolation v,
                             InvariantViolation::Read(r));
      out.push_back(std::move(v));
    }
    return out;
  }

 private:
  void Record(InvariantViolation violation, int64_t superstep) {
    if (violations_.size() >= max_violations_) return;
    violation.superstep = superstep;
    BinaryWriter w;
    violation.Write(w);
    GRAFT_CHECK_OK(
        store_->Append(InvariantTraceFile(job_id_, superstep), w.buffer()));
    violations_.push_back(std::move(violation));
  }

  TraceStore* store_;
  std::string job_id_;
  EngineT* engine_ = nullptr;
  std::vector<std::pair<std::string, AdjacencyPredicate>> adjacency_;
  std::vector<std::pair<std::string, GlobalPredicate>> global_;
  int64_t check_every_ = 1;
  uint64_t max_violations_ = 100'000;
  std::vector<InvariantViolation> violations_;
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_INVARIANT_CHECKER_H_
