#ifndef GRAFT_DEBUG_MOCK_CONTEXT_H_
#define GRAFT_DEBUG_MOCK_CONTEXT_H_

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "pregel/compute_context.h"
#include "pregel/master.h"

namespace graft {
namespace debug {

/// The C++ analogue of the Mockito mock objects in the paper's generated
/// JUnit files (§3.3, Figure 6): a fully scriptable ComputeContext that
/// replays a captured vertex context — superstep number, global totals,
/// aggregator values, RNG stream — and records everything the replayed
/// Compute() call does (sends, aggregations, mutation requests) for
/// inspection or assertion.
///
/// Both the in-process Reproducer and the generated test files use this
/// class, so a generated file is plain code against the public API.
template <pregel::JobTraits Traits>
class MockComputeContext : public pregel::ComputeContext<Traits> {
 public:
  using Message = typename Traits::Message;
  using EdgeValue = typename Traits::EdgeValue;

  MockComputeContext() : rng_(0) {}

  // -- scripting the captured context --
  void set_superstep(int64_t s) { superstep_ = s; }
  void set_total_num_vertices(int64_t n) { total_vertices_ = n; }
  void set_total_num_edges(int64_t n) { total_edges_ = n; }
  void set_aggregated(const std::string& name, pregel::AggValue value) {
    aggregators_[name] = std::move(value);
  }
  /// Restores the exact RNG stream the vertex saw on the cluster.
  void set_rng_state(uint64_t state) { rng_ = Rng(state); }
  void set_worker_index(int w) { worker_ = w; }

  // -- recorded effects --
  const std::vector<std::pair<VertexId, Message>>& sent_messages() const {
    return sent_;
  }
  const std::vector<std::pair<std::string, pregel::AggValue>>& aggregations()
      const {
    return aggregations_;
  }
  const std::vector<VertexId>& removed_vertices() const {
    return removed_vertices_;
  }
  const std::vector<std::tuple<VertexId, VertexId, EdgeValue>>& added_edges()
      const {
    return added_edges_;
  }
  const std::vector<std::pair<VertexId, VertexId>>& removed_edges() const {
    return removed_edges_;
  }

  // -- ComputeContext interface --
  int64_t superstep() const override { return superstep_; }
  int64_t total_num_vertices() const override { return total_vertices_; }
  int64_t total_num_edges() const override { return total_edges_; }
  void SendMessage(VertexId target, const Message& message) override {
    sent_.emplace_back(target, message);
  }
  pregel::AggValue GetAggregated(const std::string& name) const override {
    auto it = aggregators_.find(name);
    return it == aggregators_.end() ? pregel::AggValue{} : it->second;
  }
  void Aggregate(const std::string& name,
                 const pregel::AggValue& update) override {
    aggregations_.emplace_back(name, update);
  }
  const std::map<std::string, pregel::AggValue>& VisibleAggregators()
      const override {
    return aggregators_;
  }
  Rng& rng() override { return rng_; }
  void RemoveVertexRequest(VertexId id) override {
    removed_vertices_.push_back(id);
  }
  void AddEdgeRequest(VertexId source, VertexId target,
                      const EdgeValue& value) override {
    added_edges_.emplace_back(source, target, value);
  }
  void RemoveEdgeRequest(VertexId source, VertexId target) override {
    removed_edges_.emplace_back(source, target);
  }
  int worker_index() const override { return worker_; }

 private:
  int64_t superstep_ = 0;
  int64_t total_vertices_ = 0;
  int64_t total_edges_ = 0;
  std::map<std::string, pregel::AggValue> aggregators_;
  Rng rng_;
  int worker_ = 0;

  std::vector<std::pair<VertexId, Message>> sent_;
  std::vector<std::pair<std::string, pregel::AggValue>> aggregations_;
  std::vector<VertexId> removed_vertices_;
  std::vector<std::tuple<VertexId, VertexId, EdgeValue>> added_edges_;
  std::vector<std::pair<VertexId, VertexId>> removed_edges_;
};

/// Scriptable MasterContext for reproducing master.compute() executions
/// (§3.4): seeded with a captured MasterTrace's aggregator values, it
/// records SetAggregated overwrites and the halt decision.
class MockMasterContext : public pregel::MasterContext {
 public:
  void set_superstep(int64_t s) { superstep_ = s; }
  void set_total_num_vertices(int64_t n) { total_vertices_ = n; }
  void set_total_num_edges(int64_t n) { total_edges_ = n; }
  void set_aggregated(const std::string& name, pregel::AggValue value) {
    aggregators_[name] = std::move(value);
  }
  void set_rng_state(uint64_t state) { rng_ = Rng(state); }

  const std::vector<std::pair<std::string, pregel::AggValue>>& set_calls()
      const {
    return set_calls_;
  }

  int64_t superstep() const override { return superstep_; }
  int64_t total_num_vertices() const override { return total_vertices_; }
  int64_t total_num_edges() const override { return total_edges_; }
  Status RegisterAggregator(const std::string& name,
                            const pregel::AggregatorSpec& spec) override {
    specs_[name] = spec;
    if (aggregators_.count(name) == 0) aggregators_[name] = spec.initial;
    return Status::OK();
  }
  pregel::AggValue GetAggregated(const std::string& name) const override {
    auto it = aggregators_.find(name);
    return it == aggregators_.end() ? pregel::AggValue{} : it->second;
  }
  Status SetAggregated(const std::string& name,
                       const pregel::AggValue& value) override {
    aggregators_[name] = value;
    set_calls_.emplace_back(name, value);
    return Status::OK();
  }
  const std::map<std::string, pregel::AggValue>& VisibleAggregators()
      const override {
    return aggregators_;
  }
  void HaltComputation() override { halted_ = true; }
  bool IsHalted() const override { return halted_; }
  Rng& rng() override { return rng_; }

 private:
  int64_t superstep_ = 0;
  int64_t total_vertices_ = 0;
  int64_t total_edges_ = 0;
  std::map<std::string, pregel::AggValue> aggregators_;
  std::map<std::string, pregel::AggregatorSpec> specs_;
  std::vector<std::pair<std::string, pregel::AggValue>> set_calls_;
  bool halted_ = false;
  Rng rng_{0};
};

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_MOCK_CONTEXT_H_
