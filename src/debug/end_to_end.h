#ifndef GRAFT_DEBUG_END_TO_END_H_
#define GRAFT_DEBUG_END_TO_END_H_

#include <map>
#include <string>
#include <vector>

#include "debug/debug_session.h"
#include "graph/simple_graph.h"

namespace graft {
namespace debug {

/// Binding for end-to-end test generation (§3.4 "Small Graph Construction
/// and End-To-End Tests"): the offline GUI mode lets a user draw a small
/// graph and obtain either the adjacency-list text file (see
/// graph::WriteAdjacencyText) or "an end-to-end test code template, which
/// contains code that constructs the graph programmatically" — this is the
/// latter.
struct EndToEndBinding {
  std::vector<std::string> includes;
  std::string test_suite;
  std::string test_name;
  /// Snippet run after `graph` is built; must populate
  /// `std::map<graft::VertexId, std::string> final_values`, e.g.
  ///   auto result = graft::algos::RunConnectedComponents(graph).value();
  ///   std::map<graft::VertexId, std::string> final_values;
  ///   for (auto& [id, c] : result.component)
  ///     final_values[id] = std::to_string(c);
  std::string runner_snippet;
};

/// Emits a compilable gtest file that (1) constructs `g` programmatically,
/// (2) runs the user's program to termination via `runner_snippet`, and
/// (3) asserts the expected final value per vertex. When `expected` is
/// empty, assertions are emitted as TODO comments for the user to fill in —
/// the "from scratch" flavor; passing the values from an actual run gives
/// the "from actual run" flavor (§1 architecture figure).
std::string GenerateEndToEndTest(
    const graph::SimpleGraph& g,
    const std::map<VertexId, std::string>& expected,
    const EndToEndBinding& binding);

/// The "from actual run" expected-values map, read back through the
/// DebugSession API: each captured vertex's value after the last superstep
/// with vertex captures (the final superstep may hold only a master record).
/// Feed the result to GenerateEndToEndTest.
template <pregel::JobTraits Traits>
Result<std::map<VertexId, std::string>> ExpectedValuesFromSession(
    const DebugSession<Traits>& session) {
  std::map<VertexId, std::string> expected;
  const std::vector<int64_t>& steps = session.supersteps();
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    GRAFT_ASSIGN_OR_RETURN(std::vector<VertexTrace<Traits>> traces,
                           session.VertexTraces(*it));
    if (traces.empty()) continue;
    for (const VertexTrace<Traits>& trace : traces) {
      expected[trace.id] = trace.value_after.ToString();
    }
    break;
  }
  return expected;
}

}  // namespace debug
}  // namespace graft

#endif  // GRAFT_DEBUG_END_TO_END_H_
