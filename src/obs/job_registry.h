#ifndef GRAFT_OBS_JOB_REGISTRY_H_
#define GRAFT_OBS_JOB_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"
#include "obs/event_journal.h"
#include "obs/run_report.h"

namespace graft {

class JsonWriter;

namespace obs {

/// Lifecycle of one registered job, as seen by telemetry readers.
enum class JobState : int {
  kPending = 0,
  kRunning = 1,
  kRecovering = 2,
  kDone = 3,
  kFailed = 4,
};
const char* JobStateName(JobState state);
/// True when `name` is one of the JobStateName strings
/// ("pending"/"running"/"recovering"/"done"/"failed").
bool IsJobStateName(std::string_view name);

/// Live, concurrently-readable view of one job (DESIGN.md §11). The runner
/// side publishes — state transitions, a RunReport snapshot at every
/// superstep barrier, and the event journal while the job is live — and the
/// telemetry server side reads, each under one short-held mutex.
///
/// Lifetime protocol: the journal pointer attached via AttachJournal is only
/// dereferenced under mutex_ while attached. RunJob detaches it (caching a
/// final Chrome trace export and the journal counters) before the journal is
/// destroyed; DetachJournal's final pointer-clear takes mutex_, so it
/// serializes against any in-flight reader export and no reader can outlive
/// the journal. Readers arriving after the job finished get the cached
/// timeline.
class JobEntry {
 public:
  explicit JobEntry(std::string job_id);
  JobEntry(const JobEntry&) = delete;
  JobEntry& operator=(const JobEntry&) = delete;

  const std::string& job_id() const { return job_id_; }

  // -- publisher (runner) side --
  void MarkRunning();
  void MarkRecovering(const std::string& cause);
  void Finish(bool ok, const std::string& message);
  /// Serializes `report` and publishes it as the job's live snapshot; called
  /// by the engine at every superstep barrier and once more with the final
  /// report. The superstep counter readers poll comes from
  /// `report.supersteps`.
  void PublishReport(const RunReport& report);
  void AttachJournal(EventJournal* journal);
  /// Caches the journal's final Chrome-trace export + counters and clears
  /// the live pointer. Must be called before the journal dies.
  void DetachJournal();

  // -- reader (server) side --
  JobState state() const;
  int64_t superstep() const;
  uint64_t recoveries() const;
  /// Latest published RunReport JSON ("{}" before the first barrier).
  std::string ReportJson() const;
  /// Chrome trace-event JSON: a live journal snapshot while the job runs,
  /// the cached final export afterwards (an empty trace when the job never
  /// had a journal).
  std::string EventsJson() const;
  uint64_t journal_events() const;
  uint64_t journal_dropped() const;
  /// One summary object for the /jobs listing.
  void AppendSummaryJson(JsonWriter* writer) const;
  /// Per-job progress series for the /metrics endpoint.
  void AppendPrometheusText(std::string_view prefix, std::string* out) const;

 private:
  const std::string job_id_;
  mutable std::mutex mutex_;
  JobState state_ = JobState::kPending;
  int64_t superstep_ = -1;
  uint64_t recoveries_ = 0;
  std::string status_message_;
  std::string report_json_ = "{}";
  std::string final_events_json_;
  EventJournal* journal_ = nullptr;
  uint64_t journal_events_ = 0;
  uint64_t journal_dropped_ = 0;
  Stopwatch age_;                    // since registration
  double last_update_seconds_ = 0.0; // age_ at the last publish
};

/// Process-wide job directory the telemetry server serves. Registering a
/// job id that already exists replaces the old entry (readers holding the
/// old shared_ptr keep a consistent finished view).
class JobRegistry {
 public:
  JobRegistry() = default;
  JobRegistry(const JobRegistry&) = delete;
  JobRegistry& operator=(const JobRegistry&) = delete;

  /// The default registry used when a JobSpec enables telemetry without
  /// naming one.
  static JobRegistry& Global();

  std::shared_ptr<JobEntry> Register(const std::string& job_id);
  std::shared_ptr<JobEntry> Find(const std::string& job_id) const;
  std::vector<std::shared_ptr<JobEntry>> List() const;

  /// {"jobs":[{...}, ...]} — one summary per job, sorted by id. A non-empty
  /// `status_filter` keeps only jobs whose JobStateName matches it.
  std::string ListJson(std::string_view status_filter = "") const;
  /// Per-job progress gauges (graft_job_superstep, graft_job_state, ...).
  std::string ToPrometheusText(std::string_view prefix = "graft_") const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<JobEntry>> jobs_;
};

}  // namespace obs
}  // namespace graft

#endif  // GRAFT_OBS_JOB_REGISTRY_H_
