#ifndef GRAFT_OBS_TELEMETRY_SERVER_H_
#define GRAFT_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"

namespace graft {
namespace obs {

struct TelemetryServerOptions {
  /// Bind address. Defaults to loopback — the server is a debugging surface,
  /// not an internet-facing one.
  std::string host = "127.0.0.1";
  /// 0 requests an ephemeral port; the bound port is available from port().
  uint16_t port = 0;
  int handler_threads = 2;
  /// Optional registry scraped by /metrics (may be null).
  MetricsRegistry* metrics = nullptr;
  /// Job directory served under /jobs (defaults to JobRegistry::Global()).
  JobRegistry* registry = nullptr;
  std::string metrics_prefix = "graft_";
};

/// Dependency-free HTTP/1.1 server for the live telemetry plane
/// (DESIGN.md §11): one listener thread accepts connections and a small
/// handler pool serves them, one request per connection (Connection: close).
///
/// Routes:
///   GET /healthz            -> "ok"
///   GET /metrics            -> Prometheus text (registry + per-job gauges)
///   GET /jobs               -> {"jobs":[...]} summaries
///   GET /jobs/<id>/report   -> live RunReport JSON (updated at barriers)
///   GET /jobs/<id>/events   -> Chrome trace-event JSON from the journal
class TelemetryServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Binds, listens, and starts the listener + handler threads. Returns a
  /// running server or an IOError (address in use, bad host, ...).
  static Result<std::unique_ptr<TelemetryServer>> Start(
      TelemetryServerOptions options);

  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Stops accepting, drains handler threads, closes the socket. Idempotent.
  void Stop();

  /// The bound port (resolved when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Pure request router — exposed so tests can exercise routing without a
  /// socket. `target` is the request path (query strings are stripped).
  Response Handle(std::string_view method, std::string_view target) const;

  /// Total requests served (any status), for tests and smoke checks.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  explicit TelemetryServer(TelemetryServerOptions options);

  Status Bind();
  void ListenLoop();
  void HandlerLoop();
  void ServeConnection(int fd);

  TelemetryServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;

  std::thread listener_;
  std::vector<std::thread> handlers_;
};

}  // namespace obs
}  // namespace graft

#endif  // GRAFT_OBS_TELEMETRY_SERVER_H_
