#ifndef GRAFT_OBS_TELEMETRY_SERVER_H_
#define GRAFT_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"

namespace graft {
namespace obs {

/// One parsed HTTP request as the route handlers see it: split target,
/// decoded query parameters, captured path parameters, and (for POST) the
/// body.
struct HttpRequest {
  std::string method;  // GET / HEAD / POST / ...
  std::string path;    // target with query string stripped
  /// Query parameters, %XX-decoded. Repeated keys keep the last value.
  std::map<std::string, std::string> query;
  /// Path-pattern captures: "/jobs/{id}/report" matched against
  /// "/jobs/pr-1/report" yields {"id": "pr-1"}.
  std::map<std::string, std::string> params;
  std::string body;

  /// Query parameter or `fallback` when absent.
  std::string QueryParam(const std::string& key,
                         const std::string& fallback = "") const {
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
};

struct TelemetryServerOptions {
  /// Bind address. Defaults to loopback — the server is a debugging surface,
  /// not an internet-facing one.
  std::string host = "127.0.0.1";
  /// 0 requests an ephemeral port; the bound port is available from port().
  uint16_t port = 0;
  int handler_threads = 2;
  /// Optional registry scraped by /metrics (may be null).
  MetricsRegistry* metrics = nullptr;
  /// Job directory served under /jobs (defaults to JobRegistry::Global()).
  JobRegistry* registry = nullptr;
  std::string metrics_prefix = "graft_";
  /// Called on every /metrics scrape before export, so subsystems with
  /// pull-based counters (e.g. the trace block cache) can refresh their
  /// gauges. Receives `metrics` (never null when invoked).
  std::function<void(MetricsRegistry*)> before_metrics;
  /// Largest accepted request body; larger POSTs get 413.
  size_t max_body_bytes = 1 << 20;
};

/// Dependency-free HTTP/1.1 server for the live telemetry plane
/// (DESIGN.md §11): one listener thread accepts connections and a small
/// handler pool serves them, one request per connection (Connection: close).
///
/// Dispatch is a registered route table: (method, path pattern) → handler,
/// where a pattern segment "{name}" captures one non-empty path segment into
/// HttpRequest::params. HEAD matches GET routes (the body is dropped at the
/// serve layer, after Content-Length is computed). A path that matches some
/// route under a different method yields 405; no pattern match yields 404.
/// Handlers returning a non-OK Status are mapped through one shared
/// Status → HTTP error envelope (kNotFound→404, kInvalidArgument→400,
/// kUnavailable→503, ...).
///
/// Built-in routes:
///   GET  /healthz            -> "ok"
///   GET  /metrics            -> Prometheus text (registry + per-job gauges)
///   GET  /jobs               -> {"jobs":[...]} summaries, stable id order;
///                               ?status=running filters by lifecycle state
///   GET  /jobs/{id}          -> live RunReport JSON (alias of /report)
///   GET  /jobs/{id}/report   -> live RunReport JSON (updated at barriers)
///   GET  /jobs/{id}/events   -> Chrome trace-event JSON from the journal
/// Additional routes (the debug service's /jobs POST and /debug/* reads) are
/// registered via RegisterRoute before Start.
class TelemetryServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;

    static Response Json(std::string body, int status = 200) {
      Response r;
      r.status = status;
      r.content_type = "application/json";
      r.body = std::move(body);
      return r;
    }
  };

  using RouteHandler = std::function<Response(const HttpRequest&)>;

  /// HTTP status for a non-OK Status (kNotFound→404, kInvalidArgument→400,
  /// kUnavailable→503, ...; unknown codes → 500).
  static int HttpStatusFor(const Status& status);

  /// The shared error envelope: {"error":{"status":...,"message":...}} with
  /// HttpStatusFor's code.
  static Response ErrorResponse(const Status& status);

  /// Binds, listens, and starts the listener + handler threads. Returns a
  /// running server or an IOError (address in use, bad host, ...).
  static Result<std::unique_ptr<TelemetryServer>> Start(
      TelemetryServerOptions options);

  /// Builds a server without binding — for registering routes (and routing
  /// tests via Handle). Call Serve() to bind and start threads.
  static std::unique_ptr<TelemetryServer> Create(
      TelemetryServerOptions options);

  /// Binds and starts the listener + handler threads on a Create()d server.
  Status Serve();

  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Registers a handler for `method` + `pattern` ("/jobs/{id}/report").
  /// Not thread-safe once the server is started; register before Start.
  void RegisterRoute(std::string method, std::string pattern,
                     RouteHandler handler);

  /// Stops accepting, drains handler threads, closes the socket. Idempotent.
  void Stop();

  /// The bound port (resolved when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Pure request router — exposed so tests can exercise routing without a
  /// socket. `target` is the request target (query strings are parsed, not
  /// required to be pre-stripped).
  Response Handle(std::string_view method, std::string_view target) const {
    return Handle(method, target, std::string_view());
  }
  Response Handle(std::string_view method, std::string_view target,
                  std::string_view body) const;

  /// Total requests served (any status), for tests and smoke checks.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string method;
    std::string pattern;
    std::vector<std::string> segments;  // pattern split on '/'
    RouteHandler handler;
  };

  explicit TelemetryServer(TelemetryServerOptions options);

  void RegisterBuiltinRoutes();
  Status Bind();
  void ListenLoop();
  void HandlerLoop();
  void ServeConnection(int fd);

  TelemetryServerOptions options_;
  std::vector<Route> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;

  std::thread listener_;
  std::vector<std::thread> handlers_;
};

}  // namespace obs
}  // namespace graft

#endif  // GRAFT_OBS_TELEMETRY_SERVER_H_
