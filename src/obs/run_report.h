#ifndef GRAFT_OBS_RUN_REPORT_H_
#define GRAFT_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace graft {

class JsonWriter;

namespace obs {

/// Engine phases profiled every superstep. Names are stable identifiers used
/// by the JSON and Prometheus exports.
enum class Phase : int {
  kMutation = 0,        // topology mutation application
  kDelivery = 1,        // message delivery into partition inboxes
  kMaster = 2,          // master.compute()
  kCompute = 3,         // vertex Compute() phase
  kBarrierWait = 4,     // worker idle time at the superstep barriers
  kAggregatorMerge = 5, // per-worker aggregation merge
};
inline constexpr int kNumPhases = 6;
const char* PhaseName(Phase phase);

/// One worker's slice of one superstep. `compute_seconds` and
/// `delivery_seconds` are the worker's busy time inside the respective
/// parallel phases; `barrier_wait_seconds` is the time it spent idle waiting
/// for the slowest worker (phase wall time minus own busy time, summed over
/// both parallel phases) — the straggler signal.
struct WorkerPhaseProfile {
  int worker = 0;
  double compute_seconds = 0.0;
  double delivery_seconds = 0.0;
  double barrier_wait_seconds = 0.0;
  uint64_t vertices_computed = 0;
  uint64_t messages_sent = 0;
};

/// Phase timings for one superstep; wall-clock for the serial phases, wall
/// plus per-worker busy breakdown for the parallel ones.
struct SuperstepProfile {
  int64_t superstep = 0;
  double mutation_seconds = 0.0;
  double delivery_wall_seconds = 0.0;
  double master_seconds = 0.0;
  double compute_wall_seconds = 0.0;
  double aggregator_merge_seconds = 0.0;
  double total_seconds = 0.0;
  /// True for the trailing superstep of a run that terminated before its
  /// vertex phase (master halt / all vertices halted): mutation, delivery,
  /// and master timings are real, compute and aggregator merge never ran.
  bool partial = false;
  std::vector<WorkerPhaseProfile> workers;
};

/// Capture-layer overhead, measured (not benchmarked): what the Graft
/// instrumentation actually spent serializing and appending traces during
/// the run. This makes the paper's Figure 7 "capture overhead" a first-class
/// quantity in every debugged run.
struct CaptureProfile {
  bool enabled = false;
  uint64_t vertex_captures = 0;
  uint64_t master_captures = 0;
  uint64_t violations = 0;
  uint64_t exceptions = 0;
  uint64_t dropped_by_limit = 0;
  double serialize_seconds = 0.0;  // building trace records
  double append_seconds = 0.0;     // producer-side TraceSink::Append calls
  uint64_t trace_bytes = 0;
  uint64_t store_appends = 0;
  uint64_t store_flushes = 0;
  /// Async (spooling) sink accounting. With the sync sink, append_seconds is
  /// the store-write time and these stay zero; with the async sink,
  /// append_seconds is only the enqueue cost on the BSP critical path and
  /// flush_seconds is the store-write time paid on the background flusher.
  bool async_sink = false;
  double flush_seconds = 0.0;
  uint64_t spool_batches = 0;
  uint64_t spool_max_queue_depth = 0;
  uint64_t spool_backpressure_waits = 0;

  /// Capture cost on the BSP critical path. Background flush time is
  /// deliberately excluded: it overlaps compute, which is the point of the
  /// async sink.
  double OverheadSeconds() const { return serialize_seconds + append_seconds; }
};

/// BSP-sanitizer accounting (DESIGN.md §9): contract violations found by the
/// analysis layer, broken down by rule, plus the measured cost of the
/// determinism re-execution probes — the analysis analogue of
/// CaptureProfile's capture-overhead accounting.
struct AnalysisProfile {
  bool enabled = false;
  bool fail_on_violation = false;
  uint64_t findings_total = 0;
  /// (FindingKindName, count) for every kind with at least one finding.
  std::vector<std::pair<std::string, uint64_t>> findings_by_kind;
  uint64_t determinism_probes = 0;
  uint64_t determinism_mismatches = 0;
  double probe_seconds = 0.0;
};

/// One recovery: either the JobRunner restarted the whole job from a
/// checkpoint after a retryable (kUnavailable) failure, or — in delta
/// checkpoint mode — the engine rebuilt a single failed partition in place
/// (confined recovery) while the healthy partitions kept their state.
struct RecoveryEvent {
  int attempt = 0;                // 1-based retry attempt number (0 when
                                  // the recovery was confined in-engine)
  int64_t restored_superstep = 0; // superstep the checkpoint resumed at
  std::string cause;              // status message of the failure recovered
  double restore_seconds = 0.0;   // time spent rebuilding engine state
  bool confined = false;          // true: only one partition recomputed
  int partition = -1;             // the rebuilt partition (confined only)
};

/// Checkpoint/recovery accounting for one job (DESIGN.md "Fault tolerance &
/// recovery"): what checkpointing cost, and every recovery the JobRunner or
/// engine performed. Checkpoint counters are cumulative across recovery
/// attempts. In delta mode `checkpoint_bytes` covers only the per-checkpoint
/// value deltas + meta; the once-per-epoch topology stream and the
/// continuous outbox log are accounted separately so the per-superstep
/// checkpoint cost is visible on its own.
struct RecoveryProfile {
  bool checkpoints_enabled = false;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_bytes = 0;     // serialized payload bytes
  double checkpoint_seconds = 0.0;   // wall time inside checkpoint writes
  double restore_seconds = 0.0;      // wall time inside checkpoint restores
  uint64_t topology_bytes = 0;       // delta mode: packed-edge parts written
  uint64_t log_bytes = 0;            // delta mode: outbox log records
  uint64_t confined_recoveries = 0;  // in-engine single-partition rebuilds
  uint64_t recoveries = 0;           // == events.size()
  std::vector<RecoveryEvent> events;
};

/// Machine-readable profile of one Engine::Run(): per-worker x per-superstep
/// phase timings plus capture-overhead accounting. Attached to JobStats.
struct RunReport {
  std::string job_id;
  int num_workers = 0;
  int64_t supersteps = 0;
  double total_seconds = 0.0;
  std::vector<SuperstepProfile> per_superstep;
  CaptureProfile capture;
  AnalysisProfile analysis;
  RecoveryProfile recovery;

  // -- aggregates over per_superstep --
  double TotalComputeWallSeconds() const;
  double TotalDeliveryWallSeconds() const;
  double TotalMasterSeconds() const;
  double TotalMutationSeconds() const;
  double TotalAggregatorMergeSeconds() const;
  /// Sum of every worker's barrier-wait seconds (idle-time integral).
  double TotalBarrierWaitSeconds() const;
  double MaxSuperstepSeconds() const;

  /// Serializes the full report (reuses common/json_writer).
  void AppendJson(JsonWriter* writer) const;
  std::string ToJson() const;

  /// Prometheus text exposition of the report's aggregate series, labelled
  /// with the job id.
  std::string ToPrometheusText(std::string_view prefix = "graft_") const;
};

}  // namespace obs
}  // namespace graft

#endif  // GRAFT_OBS_RUN_REPORT_H_
