#include "obs/job_registry.h"

#include <utility>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace graft {
namespace obs {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kRecovering:
      return "recovering";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

bool IsJobStateName(std::string_view name) {
  for (int s = 0; s <= static_cast<int>(JobState::kFailed); ++s) {
    if (name == JobStateName(static_cast<JobState>(s))) return true;
  }
  return false;
}

JobEntry::JobEntry(std::string job_id) : job_id_(std::move(job_id)) {}

void JobEntry::MarkRunning() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = JobState::kRunning;
  last_update_seconds_ = age_.ElapsedSeconds();
}

void JobEntry::MarkRecovering(const std::string& cause) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = JobState::kRecovering;
  ++recoveries_;
  status_message_ = cause;
  last_update_seconds_ = age_.ElapsedSeconds();
}

void JobEntry::Finish(bool ok, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = ok ? JobState::kDone : JobState::kFailed;
  status_message_ = message;
  last_update_seconds_ = age_.ElapsedSeconds();
}

void JobEntry::PublishReport(const RunReport& report) {
  // Serialize outside the lock; only the pointer swap is guarded.
  std::string json = report.ToJson();
  std::lock_guard<std::mutex> lock(mutex_);
  superstep_ = report.supersteps;
  report_json_ = std::move(json);
  if (state_ == JobState::kRecovering) state_ = JobState::kRunning;
  last_update_seconds_ = age_.ElapsedSeconds();
}

void JobEntry::AttachJournal(EventJournal* journal) {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_ = journal;
}

void JobEntry::DetachJournal() {
  EventJournal* journal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    journal = journal_;
  }
  if (journal == nullptr) return;
  // Export outside the lock — snapshotting a large journal is not cheap and
  // the journal outlives this call by contract.
  std::string events = journal->ToChromeTraceJson();
  const uint64_t appended = journal->appended();
  const uint64_t dropped = journal->dropped();
  std::lock_guard<std::mutex> lock(mutex_);
  final_events_json_ = std::move(events);
  journal_events_ = appended;
  journal_dropped_ = dropped;
  journal_ = nullptr;
}

JobState JobEntry::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int64_t JobEntry::superstep() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return superstep_;
}

uint64_t JobEntry::recoveries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recoveries_;
}

std::string JobEntry::ReportJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_json_;
}

std::string JobEntry::EventsJson() const {
  // The live snapshot must run under mutex_: DetachJournal clears journal_
  // under the same mutex before the runner destroys the journal, so holding
  // it across the export is what keeps the journal alive for this reader.
  // (Snapshotting the pointer and exporting unlocked would race a job that
  // finishes mid-export.) Publishers are serialized with a reader's export;
  // that stall is bounded by the journal's capacity and only hit while a
  // scrape overlaps a barrier.
  std::lock_guard<std::mutex> lock(mutex_);
  if (journal_ != nullptr) return journal_->ToChromeTraceJson();
  if (!final_events_json_.empty()) return final_events_json_;
  return EventJournal::ChromeTraceJson({});
}

uint64_t JobEntry::journal_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (journal_ != nullptr) return journal_->appended();
  return journal_events_;
}

uint64_t JobEntry::journal_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (journal_ != nullptr) return journal_->dropped();
  return journal_dropped_;
}

void JobEntry::AppendSummaryJson(JsonWriter* writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter& w = *writer;
  w.BeginObject();
  w.KV("job_id", job_id_);
  w.KV("state", JobStateName(state_));
  w.KV("superstep", superstep_);
  w.KV("recoveries", recoveries_);
  w.KV("status", status_message_);
  w.KV("age_seconds", age_.ElapsedSeconds());
  w.KV("last_update_seconds", last_update_seconds_);
  const bool live = journal_ != nullptr;
  w.KV("journal_events",
       live ? journal_->appended() : journal_events_);
  w.KV("journal_dropped",
       live ? journal_->dropped() : journal_dropped_);
  w.Key("endpoints");
  w.BeginObject();
  w.KV("report", "/jobs/" + job_id_ + "/report");
  w.KV("events", "/jobs/" + job_id_ + "/events");
  w.EndObject();
  w.EndObject();
}

void JobEntry::AppendPrometheusText(std::string_view prefix,
                                    std::string* out) const {
  JobState state;
  int64_t superstep;
  uint64_t recoveries;
  uint64_t events;
  uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state = state_;
    superstep = superstep_;
    recoveries = recoveries_;
    events = journal_ != nullptr ? journal_->appended() : journal_events_;
    dropped = journal_ != nullptr ? journal_->dropped() : journal_dropped_;
  }
  const std::string label =
      "{job_id=\"" + PrometheusLabelValue(job_id_) + "\"}";
  const std::string p(prefix);
  *out += p + "job_superstep" + label + " " +
          StrFormat("%lld", static_cast<long long>(superstep)) + "\n";
  *out += p + "job_state" + label + " " +
          StrFormat("%d", static_cast<int>(state)) + "\n";
  *out += p + "job_recoveries_total" + label + " " +
          StrFormat("%llu", static_cast<unsigned long long>(recoveries)) +
          "\n";
  *out += p + "job_journal_events_total" + label + " " +
          StrFormat("%llu", static_cast<unsigned long long>(events)) + "\n";
  *out += p + "job_journal_dropped_total" + label + " " +
          StrFormat("%llu", static_cast<unsigned long long>(dropped)) + "\n";
}

JobRegistry& JobRegistry::Global() {
  static JobRegistry* registry = new JobRegistry();
  return *registry;
}

std::shared_ptr<JobEntry> JobRegistry::Register(const std::string& job_id) {
  auto entry = std::make_shared<JobEntry>(job_id);
  std::lock_guard<std::mutex> lock(mutex_);
  jobs_[job_id] = entry;
  return entry;
}

std::shared_ptr<JobEntry> JobRegistry::Find(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(job_id);
  return it != jobs_.end() ? it->second : nullptr;
}

std::vector<std::shared_ptr<JobEntry>> JobRegistry::List() const {
  std::vector<std::shared_ptr<JobEntry>> entries;
  std::lock_guard<std::mutex> lock(mutex_);
  entries.reserve(jobs_.size());
  for (const auto& [_, entry] : jobs_) entries.push_back(entry);
  return entries;
}

std::string JobRegistry::ListJson(std::string_view status_filter) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("jobs");
  w.BeginArray();
  // List() iterates the id-keyed map, so the output order is stable across
  // calls regardless of registration order.
  for (const auto& entry : List()) {
    if (!status_filter.empty() &&
        status_filter != JobStateName(entry->state())) {
      continue;
    }
    entry->AppendSummaryJson(&w);
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string JobRegistry::ToPrometheusText(std::string_view prefix) const {
  std::string out;
  const std::string p(prefix);
  auto entries = List();
  if (entries.empty()) return out;
  out += "# HELP " + p + "job_superstep Last superstep barrier the job published.\n";
  out += "# TYPE " + p + "job_superstep gauge\n";
  out += "# HELP " + p +
         "job_state Job lifecycle state (0=pending 1=running 2=recovering "
         "3=done 4=failed).\n";
  out += "# TYPE " + p + "job_state gauge\n";
  out += "# HELP " + p + "job_recoveries_total Recovery attempts consumed.\n";
  out += "# TYPE " + p + "job_recoveries_total counter\n";
  out += "# HELP " + p +
         "job_journal_events_total Events appended to the job's journal.\n";
  out += "# TYPE " + p + "job_journal_events_total counter\n";
  out += "# HELP " + p +
         "job_journal_dropped_total Journal events lost to ring wrap.\n";
  out += "# TYPE " + p + "job_journal_dropped_total counter\n";
  // One labelled sample set per job. TYPE/HELP already emitted once per
  // family above — entries only append samples.
  std::string samples[5];
  for (const auto& entry : entries) {
    std::string block;
    entry->AppendPrometheusText(prefix, &block);
    // Split the per-job block back into family-grouped lines so all samples
    // of one family stay contiguous (required by the exposition format).
    size_t pos = 0;
    int family = 0;
    while (pos < block.size() && family < 5) {
      size_t end = block.find('\n', pos);
      if (end == std::string::npos) break;
      samples[family] += block.substr(pos, end - pos + 1);
      pos = end + 1;
      ++family;
    }
  }
  for (const std::string& s : samples) out += s;
  return out;
}

}  // namespace obs
}  // namespace graft
