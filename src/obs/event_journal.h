#ifndef GRAFT_OBS_EVENT_JOURNAL_H_
#define GRAFT_OBS_EVENT_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace graft {

class JsonWriter;

namespace obs {

/// Small process-wide thread ordinal, assigned on first use. Journal events
/// carry it so a trace viewer can tell apart threads that share a worker
/// index (e.g. the engine thread and the capture flusher, both worker -1).
int CurrentThreadOrdinal();

enum class EventKind : uint8_t {
  kSpan = 0,     // interval with start + duration (Chrome "X")
  kInstant = 1,  // point event (Chrome "i")
  kCounter = 2,  // sampled value (Chrome "C")
};
const char* EventKindName(EventKind kind);

/// One structured telemetry event. `name` and `category` must be pointers to
/// static-duration strings (string literals): the journal stores the pointer,
/// never copies, which is what keeps Append lock-free and allocation-free.
struct JournalEvent {
  const char* name = "";
  const char* category = "";
  EventKind kind = EventKind::kInstant;
  int32_t worker = -1;    // BSP worker index; -1 = engine/master/background
  int32_t thread = 0;     // CurrentThreadOrdinal() of the emitting thread
  int64_t superstep = -1; // -1 = outside any superstep
  uint64_t start_ns = 0;  // steady-clock ns since the journal's epoch
  uint64_t duration_ns = 0;  // 0 for instants/counters
  uint64_t value = 0;        // free payload: bytes, counts, sampled value
};

/// Sharded, bounded, lock-free-append structured event journal — the
/// timeline half of the obs:: layer (DESIGN.md §11). Writers claim a ticket
/// with one relaxed fetch_add on their shard and publish the event through a
/// per-slot seqlock; when a shard's ring wraps, the oldest events are
/// overwritten and counted in dropped(). Snapshot() (and the exporters built
/// on it) can run concurrently with active writers: a slot caught mid-write
/// fails seqlock validation and is skipped, never torn.
///
/// A null `EventJournal*` is the disabled state everywhere in the engine and
/// capture wiring: the hot path pays one pointer test and nothing else
/// (bench-verified by BM_PageRankSocEpinionsJournalOff).
class EventJournal {
 public:
  /// `capacity` is the total number of retained events, split evenly across
  /// `num_shards` rings (each shard keeps at least 64).
  explicit EventJournal(size_t capacity = 1 << 16, int num_shards = 8);
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Steady-clock nanoseconds since this journal's construction.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Publishes one event. Lock-free and wait-free apart from the CAS-free
  /// ticket fetch_add; safe from any thread. `event.thread` is overwritten
  /// with the calling thread's ordinal.
  void Append(JournalEvent event);

  // Convenience emitters.
  void Span(const char* name, const char* category, int worker,
            int64_t superstep, uint64_t start_ns, uint64_t value = 0);
  void Instant(const char* name, const char* category, int worker,
               int64_t superstep, uint64_t value = 0);
  void CounterSample(const char* name, const char* category, int worker,
                     int64_t superstep, uint64_t value);

  /// Committed events, oldest-first by start time. Safe to call while
  /// writers are active; events mid-write are skipped.
  std::vector<JournalEvent> Snapshot() const;

  /// Total events ever appended (including overwritten ones).
  uint64_t appended() const;
  /// Events lost to ring wrap-around — the oldest-dropped accounting.
  uint64_t dropped() const;
  size_t capacity() const { return shard_capacity_ * num_shards_; }
  int num_shards() const { return num_shards_; }

  /// One JSON object per line, one line per event.
  std::string ToJsonl() const;
  /// Chrome trace-event JSON ({"traceEvents":[...]}), loadable in Perfetto
  /// and chrome://tracing. Spans map to "X" (complete) events, instants to
  /// "i", counters to "C"; tid is the worker lane (worker + 1, engine = 0)
  /// so a run renders as a per-worker flame view.
  std::string ToChromeTraceJson() const;
  static std::string ChromeTraceJson(const std::vector<JournalEvent>& events);
  static void AppendEventJson(const JournalEvent& event, JsonWriter* writer);

 private:
  /// Per-slot seqlock: `seq` holds ticket + 1 once the slot is committed,
  /// an all-ones locked sentinel while a writer owns the fields mid-publish,
  /// and 0 when never written. Writers claim the slot with a CAS to the
  /// sentinel, so two writers lapping each other on one slot can never
  /// commit interleaved fields (the loser drops its event). All fields are
  /// relaxed atomics so a racing Snapshot stays data-race-free; torn reads
  /// are rejected by the seq re-check.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> category{nullptr};
    std::atomic<uint8_t> kind{0};
    std::atomic<int32_t> worker{0};
    std::atomic<int32_t> thread{0};
    std::atomic<int64_t> superstep{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> value{0};
  };
  struct alignas(64) Shard {
    std::atomic<uint64_t> tickets{0};
    std::unique_ptr<Slot[]> slots;
  };

  const std::chrono::steady_clock::time_point epoch_;
  size_t shard_capacity_;
  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

/// RAII interval measured against an EventJournal; the journal-span analogue
/// of obs::ScopedSpan. A null journal disables the span entirely (one branch
/// in the constructor, one in End). End() publishes exactly once — an early
/// End() followed by destruction, or destruction during exception unwind,
/// never double-records.
class JournalSpan {
 public:
  JournalSpan() = default;
  JournalSpan(EventJournal* journal, const char* name, const char* category,
              int worker, int64_t superstep)
      : journal_(journal),
        name_(name),
        category_(category),
        worker_(worker),
        superstep_(superstep),
        start_ns_(journal != nullptr ? journal->NowNs() : 0) {}
  JournalSpan(const JournalSpan&) = delete;
  JournalSpan& operator=(const JournalSpan&) = delete;

  /// Publishes the span once; later calls (and the destructor) are no-ops.
  void End(uint64_t value = 0) {
    EventJournal* journal = std::exchange(journal_, nullptr);
    if (journal == nullptr) return;
    journal->Span(name_, category_, worker_, superstep_, start_ns_, value);
  }

  ~JournalSpan() { End(); }

 private:
  EventJournal* journal_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  int worker_ = -1;
  int64_t superstep_ = -1;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace graft

#endif  // GRAFT_OBS_EVENT_JOURNAL_H_
