#include "obs/event_journal.h"

#include <algorithm>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace graft {
namespace obs {

namespace {

/// Per-slot seqlock claim sentinel. Committed slots hold ticket + 1 (which
/// can never reach the all-ones value), empty slots hold 0.
constexpr uint64_t kSlotLocked = ~uint64_t{0};

}  // namespace

int CurrentThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kInstant:
      return "instant";
    case EventKind::kCounter:
      return "counter";
  }
  return "?";
}

EventJournal::EventJournal(size_t capacity, int num_shards)
    : epoch_(std::chrono::steady_clock::now()),
      num_shards_(std::max(num_shards, 1)) {
  shard_capacity_ =
      std::max<size_t>(64, capacity / static_cast<size_t>(num_shards_));
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shards_[s].slots = std::make_unique<Slot[]>(shard_capacity_);
  }
}

void EventJournal::Append(JournalEvent event) {
  event.thread = CurrentThreadOrdinal();
  Shard& shard =
      shards_[static_cast<size_t>(event.thread) % static_cast<size_t>(num_shards_)];
  const uint64_t ticket =
      shard.tickets.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = shard.slots[ticket % shard_capacity_];
  // Seqlock publish: claim, write fields, commit. The claim CAS takes the
  // slot's committed (or empty) seq to the locked sentinel, so exactly one
  // writer owns the fields at a time. Losing the CAS means another writer
  // lapped this one on the same slot mid-publish — possible only with a full
  // shard_capacity of appends in flight — and committing anyway could
  // validate a mix of both writers' fields; the event is dropped instead.
  // The acquire on success keeps the field stores after the claim; the
  // committing release store orders them before seq becomes ticket + 1.
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  do {
    if (seq == kSlotLocked) return;
  } while (!slot.seq.compare_exchange_weak(seq, kSlotLocked,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed));
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.category.store(event.category, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(event.kind),
                  std::memory_order_relaxed);
  slot.worker.store(event.worker, std::memory_order_relaxed);
  slot.thread.store(event.thread, std::memory_order_relaxed);
  slot.superstep.store(event.superstep, std::memory_order_relaxed);
  slot.start_ns.store(event.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(event.duration_ns, std::memory_order_relaxed);
  slot.value.store(event.value, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

void EventJournal::Span(const char* name, const char* category, int worker,
                        int64_t superstep, uint64_t start_ns,
                        uint64_t value) {
  JournalEvent event;
  event.name = name;
  event.category = category;
  event.kind = EventKind::kSpan;
  event.worker = worker;
  event.superstep = superstep;
  event.start_ns = start_ns;
  const uint64_t now = NowNs();
  event.duration_ns = now > start_ns ? now - start_ns : 0;
  event.value = value;
  Append(event);
}

void EventJournal::Instant(const char* name, const char* category, int worker,
                           int64_t superstep, uint64_t value) {
  JournalEvent event;
  event.name = name;
  event.category = category;
  event.kind = EventKind::kInstant;
  event.worker = worker;
  event.superstep = superstep;
  event.start_ns = NowNs();
  event.value = value;
  Append(event);
}

void EventJournal::CounterSample(const char* name, const char* category,
                                 int worker, int64_t superstep,
                                 uint64_t value) {
  JournalEvent event;
  event.name = name;
  event.category = category;
  event.kind = EventKind::kCounter;
  event.worker = worker;
  event.superstep = superstep;
  event.start_ns = NowNs();
  event.value = value;
  Append(event);
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  std::vector<JournalEvent> events;
  for (int s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    const uint64_t tickets = shard.tickets.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(tickets, shard_capacity_);
    const uint64_t first = tickets - kept;
    for (uint64_t t = first; t < tickets; ++t) {
      const Slot& slot = shard.slots[t % shard_capacity_];
      const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      // 0 = never written, kSlotLocked = writer mid-publish.
      if (seq_before == 0 || seq_before == kSlotLocked) continue;
      JournalEvent event;
      event.name = slot.name.load(std::memory_order_relaxed);
      event.category = slot.category.load(std::memory_order_relaxed);
      event.kind =
          static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
      event.worker = slot.worker.load(std::memory_order_relaxed);
      event.thread = slot.thread.load(std::memory_order_relaxed);
      event.superstep = slot.superstep.load(std::memory_order_relaxed);
      event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      event.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      event.value = slot.value.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
      // Accept only an untouched commit of a ticket in the retained window
      // (a concurrent wrap-around writer publishes a larger ticket).
      if (seq_after != seq_before || seq_before < first + 1 ||
          seq_before > tickets) {
        continue;
      }
      if (event.name == nullptr) continue;
      events.push_back(event);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const JournalEvent& a, const JournalEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

uint64_t EventJournal::appended() const {
  uint64_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    total += shards_[s].tickets.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t EventJournal::dropped() const {
  uint64_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const uint64_t tickets = shards_[s].tickets.load(std::memory_order_relaxed);
    if (tickets > shard_capacity_) total += tickets - shard_capacity_;
  }
  return total;
}

void EventJournal::AppendEventJson(const JournalEvent& event,
                                   JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.KV("name", event.name);
  w.KV("cat", event.category);
  w.KV("kind", EventKindName(event.kind));
  w.KV("worker", static_cast<int64_t>(event.worker));
  w.KV("thread", static_cast<int64_t>(event.thread));
  w.KV("superstep", event.superstep);
  w.KV("start_ns", event.start_ns);
  w.KV("duration_ns", event.duration_ns);
  w.KV("value", event.value);
  w.EndObject();
}

std::string EventJournal::ToJsonl() const {
  std::string out;
  for (const JournalEvent& event : Snapshot()) {
    JsonWriter writer;
    AppendEventJson(event, &writer);
    out += writer.TakeString();
    out += '\n';
  }
  return out;
}

namespace {

/// Chrome trace tid: one lane per worker, with a leading "engine" lane for
/// everything emitted outside a worker slice (worker == -1).
int64_t ChromeTid(const JournalEvent& event) {
  return event.worker >= 0 ? event.worker + 1 : 0;
}

void AppendChromeEvent(const JournalEvent& event, JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.KV("name", event.name);
  w.KV("cat", event.category);
  switch (event.kind) {
    case EventKind::kSpan:
      w.KV("ph", "X");
      break;
    case EventKind::kInstant:
      w.KV("ph", "i");
      w.KV("s", "t");  // thread-scoped instant
      break;
    case EventKind::kCounter:
      w.KV("ph", "C");
      break;
  }
  w.KV("pid", static_cast<int64_t>(1));
  w.KV("tid", ChromeTid(event));
  // Chrome trace timestamps are microseconds (fractional allowed).
  w.KV("ts", static_cast<double>(event.start_ns) / 1000.0);
  if (event.kind == EventKind::kSpan) {
    w.KV("dur", static_cast<double>(event.duration_ns) / 1000.0);
  }
  w.Key("args");
  w.BeginObject();
  w.KV("superstep", event.superstep);
  w.KV("worker", static_cast<int64_t>(event.worker));
  w.KV("thread", static_cast<int64_t>(event.thread));
  w.KV("value", event.value);
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string EventJournal::ChromeTraceJson(
    const std::vector<JournalEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  // Lane-name metadata so Perfetto labels the per-worker rows.
  std::vector<int64_t> tids;
  for (const JournalEvent& event : events) {
    const int64_t tid = ChromeTid(event);
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  w.BeginObject();
  w.KV("name", "process_name");
  w.KV("ph", "M");
  w.KV("pid", static_cast<int64_t>(1));
  w.Key("args");
  w.BeginObject();
  w.KV("name", "graft");
  w.EndObject();
  w.EndObject();
  for (int64_t tid : tids) {
    w.BeginObject();
    w.KV("name", "thread_name");
    w.KV("ph", "M");
    w.KV("pid", static_cast<int64_t>(1));
    w.KV("tid", tid);
    w.Key("args");
    w.BeginObject();
    w.KV("name", tid == 0 ? std::string("engine")
                          : StrFormat("worker %lld",
                                      static_cast<long long>(tid - 1)));
    w.EndObject();
    w.EndObject();
  }
  for (const JournalEvent& event : events) {
    AppendChromeEvent(event, &w);
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return w.TakeString();
}

std::string EventJournal::ToChromeTraceJson() const {
  return ChromeTraceJson(Snapshot());
}

}  // namespace obs
}  // namespace graft
