#ifndef GRAFT_OBS_METRICS_H_
#define GRAFT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace graft {

class JsonWriter;

namespace obs {

/// Relaxed-order add into an atomic double (CAS loop; portable across
/// standard libraries that lack atomic<double>::fetch_add).
void AtomicDoubleAdd(std::atomic<double>* target, double delta);

/// Relaxed-order max into an atomic double.
void AtomicDoubleMax(std::atomic<double>* target, double candidate);

/// Monotonically increasing event count. All operations are lock-free and
/// safe to call from any worker thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins double value with an atomic accumulate. Used for
/// "seconds spent in X" totals and point-in-time readings.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { AtomicDoubleAdd(&value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram with lock-free per-worker shards.
///
/// Each worker thread records into its own cache-line-aligned shard
/// (`Record(value, shard)`), so the superstep hot path takes no locks and
/// shares no cache lines between workers; shards are merged on demand
/// (`Merge()`), which the engine does at superstep barriers and at job end.
/// Bucket semantics follow Prometheus: bucket i counts values <= bounds[i],
/// with one final +Inf bucket.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;   // upper bounds, ascending
    std::vector<uint64_t> counts; // bounds.size() + 1 entries (last = +Inf)
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  Histogram(std::vector<double> bounds, int num_shards);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value, int shard = 0);

  /// Merged view across all shards.
  Snapshot Merge() const;

  const std::vector<double>& bounds() const { return bounds_; }
  int num_shards() const { return num_shards_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };

  std::vector<double> bounds_;
  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

/// Default exponential latency bounds in seconds (1us .. 100s), suitable for
/// per-superstep phase timings.
std::vector<double> DefaultLatencyBounds();

/// Thread-safe name -> metric registry. Get* calls create the metric on
/// first use and return a pointer that stays valid for the registry's
/// lifetime; the per-event hot path then touches only the metric's atomics.
/// Metric names use dotted form ("engine.compute_seconds"); exporters map
/// them to Prometheus identifiers by replacing non-alphanumerics with '_'.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Returns the existing histogram when `name` is already registered (the
  /// original bounds/shards win), so repeat callers can share it.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds,
                          int num_shards = 1);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — keys sorted, so
  /// output is deterministic for golden tests.
  void AppendJson(JsonWriter* writer) const;
  std::string ToJson() const;

  /// Registers help text emitted as the family's `# HELP` line. `name` is
  /// the dotted registry name; metrics without help get a generated line.
  void SetHelp(std::string_view name, std::string_view help);

  /// Prometheus text exposition (counters, gauges, and histograms with
  /// cumulative _bucket/_sum/_count series). `prefix` is prepended to every
  /// metric name. Scraper-safe: names are sanitized, `# HELP`/`# TYPE` are
  /// emitted exactly once per family, and if two dotted names sanitize to
  /// the same family id the later (by kind then name order) is dropped
  /// rather than emitted as a duplicate family.
  std::string ToPrometheusText(std::string_view prefix = "graft_") const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// "name.with.dots" -> "name_with_dots" for Prometheus exposition. Any
/// character outside [a-zA-Z0-9_:] becomes '_'; a leading digit gets a '_'
/// prepended so the result is always a valid metric identifier.
std::string PrometheusName(std::string_view name);

/// Escapes a label value for Prometheus text exposition: backslash, double
/// quote, and newline are escaped per the format spec.
std::string PrometheusLabelValue(std::string_view value);

/// Escapes `# HELP` text: backslash and newline.
std::string PrometheusHelpText(std::string_view value);

/// Scoped trace span: measures wall time from construction and records it
/// into a histogram shard (and optionally adds it to an accumulator gauge)
/// on Stop()/destruction. Cost: two steady_clock reads.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* histogram, int shard = 0,
                      Gauge* accumulator = nullptr)
      : histogram_(histogram), accumulator_(accumulator), shard_(shard) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records once and returns the elapsed seconds.
  double Stop() {
    if (stopped_) return elapsed_;
    stopped_ = true;
    elapsed_ = watch_.ElapsedSeconds();
    if (histogram_ != nullptr) histogram_->Record(elapsed_, shard_);
    if (accumulator_ != nullptr) accumulator_->Add(elapsed_);
    return elapsed_;
  }

  ~ScopedSpan() { Stop(); }

 private:
  Stopwatch watch_;
  Histogram* histogram_;
  Gauge* accumulator_;
  int shard_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace obs
}  // namespace graft

#endif  // GRAFT_OBS_METRICS_H_
