#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace graft {
namespace obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

/// Splits "/jobs/<id>/<leaf>" into id and leaf. Returns false for any other
/// shape (empty id, extra segments).
bool ParseJobPath(std::string_view rest, std::string* id, std::string* leaf) {
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    if (rest.empty()) return false;
    *id = std::string(rest);
    leaf->clear();
    return true;
  }
  std::string_view tail = rest.substr(slash + 1);
  if (slash == 0 || tail.empty() || tail.find('/') != std::string_view::npos) {
    return false;
  }
  *id = std::string(rest.substr(0, slash));
  *leaf = std::string(tail);
  return true;
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetryServerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &JobRegistry::Global();
  if (options_.handler_threads < 1) options_.handler_threads = 1;
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    TelemetryServerOptions options) {
  std::unique_ptr<TelemetryServer> server(
      new TelemetryServer(std::move(options)));
  GRAFT_RETURN_NOT_OK(server->Bind());
  server->listener_ = std::thread([s = server.get()] { s->ListenLoop(); });
  for (int i = 0; i < server->options_.handler_threads; ++i) {
    server->handlers_.emplace_back([s = server.get()] { s->HandlerLoop(); });
  }
  return server;
}

Status TelemetryServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("telemetry server: bad host " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IOError(StrFormat("bind(%s:%u): %s", options_.host.c_str(),
                                  static_cast<unsigned>(options_.port),
                                  std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        Status::IOError(StrFormat("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  return Status::OK();
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  {
    // The flag must flip under queue_mutex_: a handler holding the mutex
    // between its predicate check and wait() would otherwise miss both the
    // store and the notify and block forever.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_.exchange(true)) {
      // Already stopped; still join if a racing Stop lost.
    }
  }
  queue_cv_.notify_all();
  if (listener_.joinable()) listener_.join();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Close any connections that were accepted but never served.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void TelemetryServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR — re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void TelemetryServer::HandlerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               !pending_fds_.empty();
      });
      if (pending_fds_.empty()) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        continue;
      }
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // Bound how long a slow client can hold a handler thread.
  timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  // Read until the end of the request head (we ignore bodies: every route is
  // a GET). 8 KiB is plenty for any legitimate request line + headers.
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }

  Response response;
  const size_t line_end = head.find_first_of("\r\n");
  std::string method;
  std::string target;
  if (line_end != std::string::npos) {
    const std::string request_line = head.substr(0, line_end);
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = request_line.substr(0, sp1);
      target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  if (method.empty() || target.empty()) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    response = Handle(method, target);
  }

  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              StatusText(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  // HEAD gets the full header block (including Content-Length) but no body.
  if (method != "HEAD") out += response.body;

  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  // Count before close: a client that saw the response + EOF must observe
  // the incremented counter.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  ::close(fd);
}

TelemetryServer::Response TelemetryServer::Handle(
    std::string_view method, std::string_view target) const {
  Response r;
  // Strip query string and fragment; routes don't take parameters.
  const size_t cut = target.find_first_of("?#");
  if (cut != std::string_view::npos) target = target.substr(0, cut);

  if (method != "GET" && method != "HEAD") {
    r.status = 405;
    r.body = "method not allowed\n";
    return r;
  }

  if (target == "/healthz") {
    r.body = "ok\n";
    return r;
  }
  if (target == "/metrics") {
    if (options_.metrics != nullptr) {
      r.body = options_.metrics->ToPrometheusText(options_.metrics_prefix);
    }
    r.body += options_.registry->ToPrometheusText(options_.metrics_prefix);
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  }
  if (target == "/jobs" || target == "/jobs/") {
    r.body = options_.registry->ListJson();
    r.content_type = "application/json";
    return r;
  }
  constexpr std::string_view kJobsPrefix = "/jobs/";
  if (target.size() > kJobsPrefix.size() &&
      target.substr(0, kJobsPrefix.size()) == kJobsPrefix) {
    std::string id;
    std::string leaf;
    if (!ParseJobPath(target.substr(kJobsPrefix.size()), &id, &leaf)) {
      r.status = 404;
      r.body = "not found\n";
      return r;
    }
    std::shared_ptr<JobEntry> entry = options_.registry->Find(id);
    if (entry == nullptr) {
      r.status = 404;
      r.body = "no such job: " + id + "\n";
      return r;
    }
    if (leaf.empty() || leaf == "report") {
      r.body = entry->ReportJson();
      r.content_type = "application/json";
      return r;
    }
    if (leaf == "events") {
      r.body = entry->EventsJson();
      r.content_type = "application/json";
      return r;
    }
    r.status = 404;
    r.body = "not found\n";
    return r;
  }

  r.status = 404;
  r.body = "not found\n";
  return r;
}

}  // namespace obs
}  // namespace graft
