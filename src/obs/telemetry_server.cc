#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace graft {
namespace obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> segments;
  size_t start = 0;
  if (!path.empty() && path[0] == '/') start = 1;
  while (start <= path.size()) {
    const size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) {
      segments.emplace_back(path.substr(start));
      break;
    }
    segments.emplace_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  // Normalize one trailing slash away ("/jobs/" == "/jobs"), but keep the
  // root as a single empty segment.
  if (segments.size() > 1 && segments.back().empty()) segments.pop_back();
  return segments;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < raw.size() && HexDigit(raw[i + 1]) >= 0 &&
               HexDigit(raw[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexDigit(raw[i + 1]) * 16 +
                                      HexDigit(raw[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQuery(std::string_view query) {
  std::map<std::string, std::string> params;
  for (std::string_view pair : SplitString(query, '&', /*skip_empty=*/true)) {
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      params[UrlDecode(pair)] = "";
    } else {
      params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return params;
}

/// Case-insensitive header lookup in a raw header block; returns the
/// trimmed value or "" when absent.
std::string FindHeader(std::string_view head, std::string_view name) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t end = head.find('\n', pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view line = head.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) return std::string(TrimString(line.substr(colon + 1)));
    }
    pos = end + 1;
  }
  return "";
}

}  // namespace

int TelemetryServer::HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

TelemetryServer::Response TelemetryServer::ErrorResponse(
    const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.KV("status", StatusCodeToString(status.code()));
  w.KV("message", status.message());
  w.EndObject();
  w.EndObject();
  return Response::Json(w.TakeString(), HttpStatusFor(status));
}

TelemetryServer::TelemetryServer(TelemetryServerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &JobRegistry::Global();
  if (options_.handler_threads < 1) options_.handler_threads = 1;
  RegisterBuiltinRoutes();
}

void TelemetryServer::RegisterRoute(std::string method, std::string pattern,
                                    RouteHandler handler) {
  Route route;
  route.method = std::move(method);
  route.pattern = pattern;
  route.segments = SplitPath(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

void TelemetryServer::RegisterBuiltinRoutes() {
  RegisterRoute("GET", "/healthz", [](const HttpRequest&) {
    Response r;
    r.body = "ok\n";
    return r;
  });

  RegisterRoute("GET", "/metrics", [this](const HttpRequest&) {
    Response r;
    if (options_.metrics != nullptr) {
      if (options_.before_metrics) options_.before_metrics(options_.metrics);
      r.body = options_.metrics->ToPrometheusText(options_.metrics_prefix);
    }
    r.body += options_.registry->ToPrometheusText(options_.metrics_prefix);
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  });

  RegisterRoute("GET", "/jobs", [this](const HttpRequest& request) {
    const std::string status_filter = request.QueryParam("status");
    if (!status_filter.empty() && !IsJobStateName(status_filter)) {
      return ErrorResponse(Status::InvalidArgument(
          "unknown status filter '" + status_filter +
          "' (want pending|running|recovering|done|failed)"));
    }
    return Response::Json(options_.registry->ListJson(status_filter));
  });

  auto report = [this](const HttpRequest& request) {
    std::shared_ptr<JobEntry> entry =
        options_.registry->Find(request.params.at("id"));
    if (entry == nullptr) {
      return ErrorResponse(
          Status::NotFound("no such job: " + request.params.at("id")));
    }
    return Response::Json(entry->ReportJson());
  };
  RegisterRoute("GET", "/jobs/{id}", report);
  RegisterRoute("GET", "/jobs/{id}/report", report);

  RegisterRoute("GET", "/jobs/{id}/events", [this](
                                                const HttpRequest& request) {
    std::shared_ptr<JobEntry> entry =
        options_.registry->Find(request.params.at("id"));
    if (entry == nullptr) {
      return ErrorResponse(
          Status::NotFound("no such job: " + request.params.at("id")));
    }
    return Response::Json(entry->EventsJson());
  });
}

std::unique_ptr<TelemetryServer> TelemetryServer::Create(
    TelemetryServerOptions options) {
  return std::unique_ptr<TelemetryServer>(
      new TelemetryServer(std::move(options)));
}

Status TelemetryServer::Serve() {
  GRAFT_RETURN_NOT_OK(Bind());
  listener_ = std::thread([this] { ListenLoop(); });
  for (int i = 0; i < options_.handler_threads; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::OK();
}

Result<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    TelemetryServerOptions options) {
  std::unique_ptr<TelemetryServer> server = Create(std::move(options));
  GRAFT_RETURN_NOT_OK(server->Serve());
  return server;
}

Status TelemetryServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("telemetry server: bad host " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IOError(StrFormat("bind(%s:%u): %s", options_.host.c_str(),
                                  static_cast<unsigned>(options_.port),
                                  std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        Status::IOError(StrFormat("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  return Status::OK();
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  {
    // The flag must flip under queue_mutex_: a handler holding the mutex
    // between its predicate check and wait() would otherwise miss both the
    // store and the notify and block forever.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_.exchange(true)) {
      // Already stopped; still join if a racing Stop lost.
    }
  }
  queue_cv_.notify_all();
  if (listener_.joinable()) listener_.join();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Close any connections that were accepted but never served.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void TelemetryServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR — re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void TelemetryServer::HandlerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               !pending_fds_.empty();
      });
      if (pending_fds_.empty()) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        continue;
      }
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // Bound how long a slow client can hold a handler thread.
  timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  // Read until the end of the request head. 8 KiB is plenty for any
  // legitimate request line + headers; bodies are read separately below.
  std::string data;
  char buf[2048];
  size_t head_end = std::string::npos;
  size_t body_start = 0;
  while (data.size() < 8192) {
    size_t probe = data.find("\r\n\r\n");
    if (probe != std::string::npos) {
      head_end = probe;
      body_start = probe + 4;
      break;
    }
    probe = data.find("\n\n");
    if (probe != std::string::npos) {
      head_end = probe;
      body_start = probe + 2;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }

  Response response;
  std::string method;
  std::string target;
  std::string body;
  bool body_too_large = false;
  if (head_end != std::string::npos) {
    const std::string_view head = std::string_view(data).substr(0, head_end);
    const size_t line_end = head.find_first_of("\r\n");
    const std::string_view request_line =
        head.substr(0, line_end == std::string_view::npos ? head.size()
                                                          : line_end);
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 = sp1 == std::string_view::npos
                           ? std::string_view::npos
                           : request_line.find(' ', sp1 + 1);
    if (sp1 != std::string_view::npos && sp2 != std::string_view::npos) {
      method = std::string(request_line.substr(0, sp1));
      target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    }
    // Read the body when the client declared one (POST job specs).
    const std::string length_header = FindHeader(head, "content-length");
    int64_t content_length = 0;
    if (!length_header.empty() &&
        ParseInt64(length_header, &content_length) && content_length > 0) {
      if (static_cast<size_t>(content_length) > options_.max_body_bytes) {
        body_too_large = true;
      } else {
        body = data.substr(body_start);
        while (body.size() < static_cast<size_t>(content_length)) {
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n <= 0) break;
          body.append(buf, static_cast<size_t>(n));
        }
        body.resize(static_cast<size_t>(content_length));
      }
    }
  }

  if (method.empty() || target.empty()) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (body_too_large) {
    response.status = 413;
    response.body = "payload too large\n";
  } else {
    response = Handle(method, target, body);
  }

  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              StatusText(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  // HEAD gets the full header block (including Content-Length) but no body.
  if (method != "HEAD") out += response.body;

  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  // Count before close: a client that saw the response + EOF must observe
  // the incremented counter.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  ::close(fd);
}

TelemetryServer::Response TelemetryServer::Handle(
    std::string_view method, std::string_view target,
    std::string_view body) const {
  HttpRequest request;
  request.method = std::string(method);
  request.body = std::string(body);

  // Split query string and fragment off the path.
  std::string_view path = target;
  const size_t hash = path.find('#');
  if (hash != std::string_view::npos) path = path.substr(0, hash);
  const size_t question = path.find('?');
  if (question != std::string_view::npos) {
    request.query = ParseQuery(path.substr(question + 1));
    path = path.substr(0, question);
  }
  request.path = std::string(path);

  const std::vector<std::string> segments = SplitPath(path);
  // HEAD is served by GET routes; the serve layer drops the body.
  const std::string_view route_method = method == "HEAD" ? "GET" : method;

  bool path_matched = false;
  for (const Route& route : routes_) {
    if (route.segments.size() != segments.size()) continue;
    std::map<std::string, std::string> params;
    bool match = true;
    for (size_t i = 0; i < segments.size(); ++i) {
      const std::string& pattern = route.segments[i];
      if (pattern.size() >= 2 && pattern.front() == '{' &&
          pattern.back() == '}') {
        // A parameter captures one non-empty segment ("/jobs//report" must
        // not match "/jobs/{id}/report").
        if (segments[i].empty()) {
          match = false;
          break;
        }
        params[pattern.substr(1, pattern.size() - 2)] = segments[i];
      } else if (pattern != segments[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    path_matched = true;
    if (route.method != route_method) continue;
    request.params = std::move(params);
    return route.handler(request);
  }

  if (path_matched) {
    Response r;
    r.status = 405;
    r.body = "method not allowed\n";
    return r;
  }
  return ErrorResponse(Status::NotFound("not found: " + request.path));
}

}  // namespace obs
}  // namespace graft
