#include "obs/run_report.h"

#include <algorithm>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace graft {
namespace obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kMutation:
      return "mutation";
    case Phase::kDelivery:
      return "delivery";
    case Phase::kMaster:
      return "master";
    case Phase::kCompute:
      return "compute";
    case Phase::kBarrierWait:
      return "barrier_wait";
    case Phase::kAggregatorMerge:
      return "aggregator_merge";
  }
  return "?";
}

double RunReport::TotalComputeWallSeconds() const {
  double total = 0;
  for (const SuperstepProfile& s : per_superstep) {
    total += s.compute_wall_seconds;
  }
  return total;
}

double RunReport::TotalDeliveryWallSeconds() const {
  double total = 0;
  for (const SuperstepProfile& s : per_superstep) {
    total += s.delivery_wall_seconds;
  }
  return total;
}

double RunReport::TotalMasterSeconds() const {
  double total = 0;
  for (const SuperstepProfile& s : per_superstep) total += s.master_seconds;
  return total;
}

double RunReport::TotalMutationSeconds() const {
  double total = 0;
  for (const SuperstepProfile& s : per_superstep) total += s.mutation_seconds;
  return total;
}

double RunReport::TotalAggregatorMergeSeconds() const {
  double total = 0;
  for (const SuperstepProfile& s : per_superstep) {
    total += s.aggregator_merge_seconds;
  }
  return total;
}

double RunReport::TotalBarrierWaitSeconds() const {
  double total = 0;
  for (const SuperstepProfile& s : per_superstep) {
    for (const WorkerPhaseProfile& w : s.workers) {
      total += w.barrier_wait_seconds;
    }
  }
  return total;
}

double RunReport::MaxSuperstepSeconds() const {
  double max = 0;
  for (const SuperstepProfile& s : per_superstep) {
    max = std::max(max, s.total_seconds);
  }
  return max;
}

void RunReport::AppendJson(JsonWriter* writer) const {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.KV("job_id", job_id);
  w.KV("num_workers", static_cast<int64_t>(num_workers));
  w.KV("supersteps", supersteps);
  w.KV("total_seconds", total_seconds);
  w.Key("phase_totals");
  w.BeginObject();
  w.KV(PhaseName(Phase::kMutation), TotalMutationSeconds());
  w.KV(PhaseName(Phase::kDelivery), TotalDeliveryWallSeconds());
  w.KV(PhaseName(Phase::kMaster), TotalMasterSeconds());
  w.KV(PhaseName(Phase::kCompute), TotalComputeWallSeconds());
  w.KV(PhaseName(Phase::kBarrierWait), TotalBarrierWaitSeconds());
  w.KV(PhaseName(Phase::kAggregatorMerge), TotalAggregatorMergeSeconds());
  w.EndObject();
  w.Key("per_superstep");
  w.BeginArray();
  for (const SuperstepProfile& s : per_superstep) {
    w.BeginObject();
    w.KV("superstep", s.superstep);
    w.KV("mutation_seconds", s.mutation_seconds);
    w.KV("delivery_wall_seconds", s.delivery_wall_seconds);
    w.KV("master_seconds", s.master_seconds);
    w.KV("compute_wall_seconds", s.compute_wall_seconds);
    w.KV("aggregator_merge_seconds", s.aggregator_merge_seconds);
    w.KV("total_seconds", s.total_seconds);
    w.KV("partial", s.partial);
    w.Key("workers");
    w.BeginArray();
    for (const WorkerPhaseProfile& wp : s.workers) {
      w.BeginObject();
      w.KV("worker", static_cast<int64_t>(wp.worker));
      w.KV("compute_seconds", wp.compute_seconds);
      w.KV("delivery_seconds", wp.delivery_seconds);
      w.KV("barrier_wait_seconds", wp.barrier_wait_seconds);
      w.KV("vertices_computed", wp.vertices_computed);
      w.KV("messages_sent", wp.messages_sent);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("capture");
  w.BeginObject();
  w.KV("enabled", capture.enabled);
  w.KV("vertex_captures", capture.vertex_captures);
  w.KV("master_captures", capture.master_captures);
  w.KV("violations", capture.violations);
  w.KV("exceptions", capture.exceptions);
  w.KV("dropped_by_limit", capture.dropped_by_limit);
  w.KV("serialize_seconds", capture.serialize_seconds);
  w.KV("append_seconds", capture.append_seconds);
  w.KV("overhead_seconds", capture.OverheadSeconds());
  w.KV("trace_bytes", capture.trace_bytes);
  w.KV("store_appends", capture.store_appends);
  w.KV("store_flushes", capture.store_flushes);
  w.KV("async_sink", capture.async_sink);
  w.KV("flush_seconds", capture.flush_seconds);
  w.KV("spool_batches", capture.spool_batches);
  w.KV("spool_max_queue_depth", capture.spool_max_queue_depth);
  w.KV("spool_backpressure_waits", capture.spool_backpressure_waits);
  w.EndObject();
  w.Key("analysis");
  w.BeginObject();
  w.KV("enabled", analysis.enabled);
  w.KV("fail_on_violation", analysis.fail_on_violation);
  w.KV("findings_total", analysis.findings_total);
  w.Key("findings_by_kind");
  w.BeginObject();
  for (const auto& [kind, count] : analysis.findings_by_kind) {
    w.KV(kind, count);
  }
  w.EndObject();
  w.KV("determinism_probes", analysis.determinism_probes);
  w.KV("determinism_mismatches", analysis.determinism_mismatches);
  w.KV("probe_seconds", analysis.probe_seconds);
  w.EndObject();
  w.Key("recovery");
  w.BeginObject();
  w.KV("checkpoints_enabled", recovery.checkpoints_enabled);
  w.KV("checkpoints_written", recovery.checkpoints_written);
  w.KV("checkpoint_bytes", recovery.checkpoint_bytes);
  w.KV("checkpoint_seconds", recovery.checkpoint_seconds);
  w.KV("restore_seconds", recovery.restore_seconds);
  w.KV("topology_bytes", recovery.topology_bytes);
  w.KV("log_bytes", recovery.log_bytes);
  w.KV("confined_recoveries", recovery.confined_recoveries);
  w.KV("recoveries", recovery.recoveries);
  w.Key("events");
  w.BeginArray();
  for (const RecoveryEvent& e : recovery.events) {
    w.BeginObject();
    w.KV("attempt", static_cast<int64_t>(e.attempt));
    w.KV("restored_superstep", e.restored_superstep);
    w.KV("cause", e.cause);
    w.KV("restore_seconds", e.restore_seconds);
    w.KV("confined", e.confined);
    w.KV("partition", static_cast<int64_t>(e.partition));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
}

std::string RunReport::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return writer.TakeString();
}

namespace {

std::string PromDouble(double value) { return StrFormat("%.9g", value); }

}  // namespace

std::string RunReport::ToPrometheusText(std::string_view prefix) const {
  const std::string p(prefix);
  const std::string escaped_job = PrometheusLabelValue(job_id);
  const std::string job = "{job=\"" + escaped_job + "\"}";
  std::string out;
  auto gauge = [&](const std::string& name, const std::string& value) {
    out += "# HELP " + p + name + " Graft run report field " + name + ".\n";
    out += "# TYPE " + p + name + " gauge\n";
    out += p + name + job + " " + value + "\n";
  };
  gauge("run_total_seconds", PromDouble(total_seconds));
  gauge("run_supersteps", std::to_string(supersteps));
  gauge("run_workers", std::to_string(num_workers));
  out += "# HELP " + p +
         "run_phase_seconds Wall seconds per engine phase over the run.\n";
  out += "# TYPE " + p + "run_phase_seconds gauge\n";
  const std::pair<Phase, double> phases[] = {
      {Phase::kMutation, TotalMutationSeconds()},
      {Phase::kDelivery, TotalDeliveryWallSeconds()},
      {Phase::kMaster, TotalMasterSeconds()},
      {Phase::kCompute, TotalComputeWallSeconds()},
      {Phase::kBarrierWait, TotalBarrierWaitSeconds()},
      {Phase::kAggregatorMerge, TotalAggregatorMergeSeconds()},
  };
  for (const auto& [phase, seconds] : phases) {
    out += p + "run_phase_seconds{job=\"" + escaped_job + "\",phase=\"" +
           PhaseName(phase) + "\"} " + PromDouble(seconds) + "\n";
  }
  if (capture.enabled) {
    gauge("capture_vertex_captures", std::to_string(capture.vertex_captures));
    gauge("capture_master_captures", std::to_string(capture.master_captures));
    gauge("capture_violations", std::to_string(capture.violations));
    gauge("capture_exceptions", std::to_string(capture.exceptions));
    gauge("capture_dropped_by_limit",
          std::to_string(capture.dropped_by_limit));
    gauge("capture_serialize_seconds", PromDouble(capture.serialize_seconds));
    gauge("capture_append_seconds", PromDouble(capture.append_seconds));
    gauge("capture_overhead_seconds", PromDouble(capture.OverheadSeconds()));
    gauge("capture_trace_bytes", std::to_string(capture.trace_bytes));
    gauge("capture_store_appends", std::to_string(capture.store_appends));
    gauge("capture_store_flushes", std::to_string(capture.store_flushes));
    gauge("capture_async_sink", capture.async_sink ? "1" : "0");
    gauge("capture_flush_seconds", PromDouble(capture.flush_seconds));
    gauge("capture_spool_batches", std::to_string(capture.spool_batches));
    gauge("capture_spool_max_queue_depth",
          std::to_string(capture.spool_max_queue_depth));
    gauge("capture_spool_backpressure_waits",
          std::to_string(capture.spool_backpressure_waits));
  }
  if (analysis.enabled) {
    gauge("analysis_findings_total", std::to_string(analysis.findings_total));
    out += "# HELP " + p + "analysis_findings Findings by analysis kind.\n";
    out += "# TYPE " + p + "analysis_findings gauge\n";
    for (const auto& [kind, count] : analysis.findings_by_kind) {
      out += p + "analysis_findings{job=\"" + escaped_job + "\",kind=\"" +
             PrometheusLabelValue(kind) + "\"} " + std::to_string(count) +
             "\n";
    }
    gauge("analysis_determinism_probes",
          std::to_string(analysis.determinism_probes));
    gauge("analysis_determinism_mismatches",
          std::to_string(analysis.determinism_mismatches));
    gauge("analysis_probe_seconds", PromDouble(analysis.probe_seconds));
  }
  if (recovery.checkpoints_enabled) {
    gauge("checkpoints_written", std::to_string(recovery.checkpoints_written));
    gauge("checkpoint_bytes", std::to_string(recovery.checkpoint_bytes));
    gauge("checkpoint_seconds", PromDouble(recovery.checkpoint_seconds));
    gauge("restore_seconds", PromDouble(recovery.restore_seconds));
    gauge("checkpoint_topology_bytes",
          std::to_string(recovery.topology_bytes));
    gauge("checkpoint_log_bytes", std::to_string(recovery.log_bytes));
    gauge("confined_recoveries",
          std::to_string(recovery.confined_recoveries));
    gauge("recoveries", std::to_string(recovery.recoveries));
  }
  return out;
}

}  // namespace obs
}  // namespace graft
