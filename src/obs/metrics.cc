#include "obs/metrics.h"

#include <algorithm>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace graft {
namespace obs {

void AtomicDoubleAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<double>* target, double candidate) {
  double current = target->load(std::memory_order_relaxed);
  while (current < candidate &&
         !target->compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds, int num_shards)
    : bounds_(std::move(bounds)), num_shards_(std::max(num_shards, 1)) {
  GRAFT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shards_[s].counts =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shards_[s].counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(double value, int shard) {
  if (shard < 0 || shard >= num_shards_) shard = 0;
  Shard& s = shards_[shard];
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(&s.sum, value);
  AtomicDoubleMax(&s.max, value);
}

Histogram::Snapshot Histogram::Merge() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (int i = 0; i < num_shards_; ++i) {
    const Shard& s = shards_[i];
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  return snap;
}

std::vector<double> DefaultLatencyBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds,
                                         int num_shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds),
                                                  num_shards))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::AppendJson(JsonWriter* writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer->BeginObject();
  writer->Key("counters");
  writer->BeginObject();
  for (const auto& [name, counter] : counters_) {
    writer->KV(name, counter->value());
  }
  writer->EndObject();
  writer->Key("gauges");
  writer->BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    writer->KV(name, gauge->value());
  }
  writer->EndObject();
  writer->Key("histograms");
  writer->BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->Merge();
    writer->Key(name);
    writer->BeginObject();
    writer->KV("count", snap.count);
    writer->KV("sum", snap.sum);
    writer->KV("max", snap.max);
    writer->Key("bounds");
    writer->BeginArray();
    for (double b : snap.bounds) writer->Double(b);
    writer->EndArray();
    writer->Key("counts");
    writer->BeginArray();
    for (uint64_t c : snap.counts) writer->UInt(c);
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return writer.TakeString();
}

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out.push_back('_');
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusHelpText(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void MetricsRegistry::SetHelp(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_[std::string(name)] = std::string(help);
}

namespace {

std::string FormatDouble(double value) {
  std::string s = StrFormat("%.9g", value);
  return s;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // One family per sanitized id: HELP then TYPE exactly once, then samples.
  // Sanitization can collide ("a.b" and "a_b" both map to "a_b"); the first
  // registered family wins and later colliders are dropped — emitting a
  // second `# TYPE` for the same id would make real scrapers reject the
  // whole exposition.
  std::vector<std::string> emitted_ids;
  auto claim = [&emitted_ids](const std::string& id) {
    if (std::find(emitted_ids.begin(), emitted_ids.end(), id) !=
        emitted_ids.end()) {
      return false;
    }
    emitted_ids.push_back(id);
    return true;
  };
  auto help_for = [this](const std::string& name,
                         const char* fallback) -> std::string {
    auto it = help_.find(name);
    if (it != help_.end()) return PrometheusHelpText(it->second);
    return std::string(fallback) + " " + PrometheusHelpText(name) + ".";
  };
  for (const auto& [name, counter] : counters_) {
    std::string id = std::string(prefix) + PrometheusName(name);
    if (!claim(id)) continue;
    out += "# HELP " + id + " " + help_for(name, "Counter") + "\n";
    out += "# TYPE " + id + " counter\n";
    out += id + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string id = std::string(prefix) + PrometheusName(name);
    if (!claim(id)) continue;
    out += "# HELP " + id + " " + help_for(name, "Gauge") + "\n";
    out += "# TYPE " + id + " gauge\n";
    out += id + " " + FormatDouble(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string id = std::string(prefix) + PrometheusName(name);
    if (!claim(id)) continue;
    Histogram::Snapshot snap = histogram->Merge();
    out += "# HELP " + id + " " + help_for(name, "Histogram") + "\n";
    out += "# TYPE " + id + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snap.bounds.size(); ++b) {
      cumulative += snap.counts[b];
      out += id + "_bucket{le=\"" + FormatDouble(snap.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += id + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += id + "_sum " + FormatDouble(snap.sum) + "\n";
    out += id + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace graft
