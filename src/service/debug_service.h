#ifndef GRAFT_SERVICE_DEBUG_SERVICE_H_
#define GRAFT_SERVICE_DEBUG_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "analysis/minimizer.h"
#include "common/result.h"
#include "io/trace_block_cache.h"
#include "io/trace_store.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "service/algo_catalog.h"
#include "service/job_queue.h"

namespace graft {
namespace service {

struct DebugServiceOptions {
  /// Trace store jobs write to and debug reads read from. Required.
  TraceStore* store = nullptr;
  /// Job directory submissions register into (null = JobRegistry::Global()).
  obs::JobRegistry* registry = nullptr;
  /// Metrics for the run + read paths (may be null).
  obs::MetricsRegistry* metrics = nullptr;
  /// Shared decoded-block cache debug reads go through
  /// (null = TraceBlockCache::Global()).
  TraceBlockCache* cache = nullptr;
  /// Catalog of runnable algos (null = AlgoCatalog::Global()).
  const AlgoCatalog* catalog = nullptr;
  /// Worker threads executing submitted jobs.
  int worker_threads = 2;
  /// Submissions queued beyond the running ones before POST /jobs answers
  /// 503.
  size_t queue_capacity = 16;
};

/// Graft-as-a-service (DESIGN.md §13): job submission over HTTP plus the
/// paginated debug read API, layered onto a TelemetryServer's route table.
///
///   POST /jobs                       accept a JSON job spec, run it on the
///                                    worker pool; 202 {job_id,...},
///                                    400 bad spec, 409 duplicate id,
///                                    503 queue full
///   GET  /jobs/{id}/debug/supersteps captured supersteps (manifest-backed)
///   GET  /jobs/{id}/debug/vertices   one superstep's captures, paginated
///   GET  /jobs/{id}/debug/vertex/{vid}  point lookup / full history
///   GET  /jobs/{id}/debug/master     a superstep's master trace
///   GET  /jobs/{id}/debug/violations constraint violations + exceptions
///   POST /jobs/{id}/minimize         delta-debug the job down to a
///                                    smallest-known failing subgraph
///                                    (body: {"oracle": "predicate|
///                                    sanitizer|failure", "predicate": ...,
///                                    "max_probes": N}); 202 accepted,
///                                    404 unknown job, 409 job still
///                                    running / minimization in flight
///   GET  /jobs/{id}/minimize         minimization progress or final report
///   GET  /jobs/{id}/minimize/reproducer  the generated gtest source
///                                    (text/plain; 404 until done)
///
/// Common read query parameters: superstep=N (default: first captured),
/// offset / limit (limit=all disables), search=<q>, format=json|text.
/// Reads of a job that is still pending/running answer 409 — traces are
/// complete only after the run finishes; reads of unknown jobs 404.
///
/// Every read opens a DebugSession through the shared TraceBlockCache, so N
/// concurrent readers of the same job decode each trace block once.
class DebugService {
 public:
  explicit DebugService(DebugServiceOptions options);
  ~DebugService();
  DebugService(const DebugService&) = delete;
  DebugService& operator=(const DebugService&) = delete;

  /// Registers the POST /jobs and /jobs/{id}/debug/* routes. Call before
  /// the server starts serving.
  void RegisterRoutes(obs::TelemetryServer* server);

  /// Parses + enqueues one job-spec body; returns the accepted request
  /// (job_id filled). Exposed for tests and non-HTTP embedders.
  Result<JobRequest> Submit(std::string_view body);

  /// Blocks until every accepted job has finished. Test hook.
  void DrainJobs() { queue_.Drain(); }

  uint64_t jobs_submitted() const {
    return sequence_.load(std::memory_order_relaxed);
  }

  /// The algo recorded for `job_id` at submit time ("" when unknown — e.g.
  /// jobs run outside this service).
  std::string AlgoForJob(const std::string& job_id) const;

  /// Parses + enqueues one minimization for a previously-submitted job.
  /// Exposed for tests and non-HTTP embedders; HTTP maps the error codes
  /// (NotFound→404, FailedPrecondition/AlreadyExists→409, ...).
  Status SubmitMinimize(const std::string& job_id, std::string_view body);

  /// One minimization's lifecycle, snapshot for pollers.
  struct MinimizeStatus {
    std::string state;  // pending|running|done|failed
    std::string error;
    analysis::MinimizerProgress progress;
    /// MinimizerReport::ToJson of the finished run ("" until done).
    std::string report_json;
    /// Generated gtest source ("" until done / bug not reproduced).
    std::string reproducer;
  };
  /// kNotFound when no minimization was ever submitted for `job_id`.
  Result<MinimizeStatus> MinimizeStatusForJob(const std::string& job_id) const;

 private:
  obs::TelemetryServer::Response HandleSubmit(
      const obs::HttpRequest& request);
  obs::TelemetryServer::Response HandleSupersteps(
      const obs::HttpRequest& request);
  obs::TelemetryServer::Response HandleMaster(
      const obs::HttpRequest& request);
  obs::TelemetryServer::Response HandleView(const obs::HttpRequest& request,
                                            debug::ViewKind kind);
  obs::TelemetryServer::Response HandleMinimizeSubmit(
      const obs::HttpRequest& request);
  obs::TelemetryServer::Response HandleMinimizeStatus(
      const obs::HttpRequest& request);
  obs::TelemetryServer::Response HandleMinimizeReproducer(
      const obs::HttpRequest& request);

  /// Runs one accepted minimization on a queue worker.
  void RunMinimize(const std::string& job_id, const JobRequest& request,
                   const analysis::MinimizerOptions& options);

  /// kFailedPrecondition while the job is still pending/running/recovering,
  /// OK when finished or unknown to the registry (pre-existing traces).
  Status CheckReadable(const std::string& job_id) const;

  DebugServiceOptions options_;
  JobQueue queue_;
  std::atomic<uint64_t> sequence_{0};
  mutable std::mutex mutex_;
  /// Everything a minimization needs to rebuild the job, kept per submitted
  /// job id (minimize re-runs the whole job; the original request is the
  /// recipe).
  std::map<std::string, JobRequest> job_requests_;
  std::map<std::string, MinimizeStatus> minimizations_;
};

}  // namespace service
}  // namespace graft

#endif  // GRAFT_SERVICE_DEBUG_SERVICE_H_
