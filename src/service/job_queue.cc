#include "service/job_queue.h"

#include <algorithm>
#include <utility>

namespace graft {
namespace service {

JobQueue::JobQueue(int workers, size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  const int n = std::max(1, workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobQueue::~JobQueue() { Stop(); }

Status JobQueue::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return Status::Unavailable("job queue is shutting down");
    }
    if (tasks_.size() >= capacity_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("job queue is full; retry later");
    }
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return Status::OK();
}

void JobQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // A second Stop still joins below in case the first lost a race, but
      // joined threads are skipped via joinable().
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void JobQueue::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
}

size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size() + running_;
}

void JobQueue::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained backlog
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++running_;
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace service
}  // namespace graft
