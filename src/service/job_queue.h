#ifndef GRAFT_SERVICE_JOB_QUEUE_H_
#define GRAFT_SERVICE_JOB_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace graft {
namespace service {

/// Bounded task queue with a fixed worker pool — the execution engine behind
/// POST /jobs. Submissions beyond `capacity` are rejected with kUnavailable
/// (the HTTP layer maps that to 503 + Retry-After semantics) instead of
/// queuing unboundedly: a debug service that accepts every job and runs them
/// hours later is worse than one that says "busy".
///
/// Stop() drains: workers finish the tasks already accepted, then exit.
/// Tasks must not throw.
class JobQueue {
 public:
  JobQueue(int workers, size_t capacity);
  ~JobQueue();
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `task` for a worker; kUnavailable when the queue is at
  /// capacity or the queue is stopping.
  Status Submit(std::function<void()> task);

  /// Stops accepting and joins workers after the accepted backlog drains.
  /// Idempotent.
  void Stop();

  /// Blocks until every accepted task has finished executing. Test hook.
  void Drain();

  size_t depth() const;
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  size_t running_ = 0;
  bool stopping_ = false;
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace graft

#endif  // GRAFT_SERVICE_JOB_QUEUE_H_
