#include "service/algo_catalog.h"

#include <limits>
#include <memory>
#include <utility>

#include "algos/connected_components.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "common/string_util.h"
#include "debug/codegen.h"
#include "debug/debug_config.h"
#include "debug/debug_session.h"
#include "graph/generators.h"
#include "pregel/job.h"
#include "pregel/loader.h"

namespace graft {
namespace service {

namespace {

/// Builds the capture config every algo shares from the request's capture
/// knobs. Returned by value; the runner keeps it alive across RunJob.
template <pregel::JobTraits Traits>
debug::ConfigurableDebugConfig<Traits> MakeCaptureConfig(
    const JobRequest& request) {
  debug::ConfigurableDebugConfig<Traits> config;
  config.set_capture_all_active(request.capture_all)
      .set_vertices(request.capture_vertices)
      .set_num_random(static_cast<int>(request.num_random))
      .set_capture_neighbors(request.capture_neighbors)
      .set_max_captures(static_cast<uint64_t>(request.max_captures))
      .set_random_seed(request.engine_seed);
  return config;
}

/// The shared RunJob scaffolding: capture config, store, telemetry,
/// sanitizer, checkpointing. The caller fills the algorithm-specific fields
/// (vertices, computation, master, combiner) before passing the spec in.
template <pregel::JobTraits Traits>
Status RunWithCapture(const JobRequest& request, const RunEnv& env,
                      pregel::JobSpec<Traits> spec) {
  debug::ConfigurableDebugConfig<Traits> config =
      MakeCaptureConfig<Traits>(request);
  spec.options.num_workers = request.workers;
  spec.options.max_supersteps = request.max_supersteps;
  spec.options.seed = request.engine_seed;
  spec.options.job_id = request.job_id;
  spec.options.metrics = env.metrics;
  spec.debug_config = &config;
  spec.trace_store = env.store;
  spec.sanitizer.enabled = request.sanitizer;
  spec.checkpoint.interval = request.checkpoint_interval;
  spec.telemetry.journal = request.journal;
  spec.telemetry.publish = true;
  spec.telemetry.registry = env.registry;
  GRAFT_ASSIGN_OR_RETURN(pregel::JobRunSummary summary,
                         pregel::RunJob(std::move(spec)));
  // Job-level failures (compute errors, exhausted retries) are already
  // published to the registry entry by RunJob; the traces that were written
  // stay readable, which is the point of the debugger.
  (void)summary;
  return Status::OK();
}

/// Per-algo spec builders: graph + algorithm fields (vertices, computation,
/// master, combiner) only. Runners layer the capture/telemetry scaffolding
/// on top; the minimizer re-runs them bare, per probe.

Result<pregel::JobSpec<algos::PageRankTraits>> BuildPageRankSpec(
    const JobRequest& request) {
  using Traits = algos::PageRankTraits;
  using pregel::DoubleValue;
  GRAFT_ASSIGN_OR_RETURN(graph::SimpleGraph g, BuildRequestedGraph(request));
  pregel::JobSpec<Traits> spec;
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{a.value + b.value};
  };
  spec.vertices = pregel::LoadUnweighted<Traits>(
      g, [](VertexId) { return DoubleValue{0.0}; });
  const int iterations = static_cast<int>(request.iterations);
  spec.computation = [iterations] {
    return std::make_unique<algos::PageRankComputation>(iterations);
  };
  spec.master = [iterations]() -> std::unique_ptr<pregel::MasterCompute> {
    return std::make_unique<algos::PageRankMaster>(iterations);
  };
  return spec;
}

Result<pregel::JobSpec<algos::CCTraits>> BuildConnectedComponentsSpec(
    const JobRequest& request) {
  using Traits = algos::CCTraits;
  using pregel::Int64Value;
  GRAFT_ASSIGN_OR_RETURN(graph::SimpleGraph g, BuildRequestedGraph(request));
  pregel::JobSpec<Traits> spec;
  spec.options.combiner = [](const Int64Value& a, const Int64Value& b) {
    return Int64Value{std::min(a.value, b.value)};
  };
  spec.vertices = pregel::LoadUnweighted<Traits>(
      g, [](VertexId) { return Int64Value{0}; });
  spec.computation = algos::MakeConnectedComponentsFactory();
  return spec;
}

Result<pregel::JobSpec<algos::SsspTraits>> BuildSsspSpec(
    const JobRequest& request) {
  using Traits = algos::SsspTraits;
  using pregel::DoubleValue;
  GRAFT_ASSIGN_OR_RETURN(graph::SimpleGraph g, BuildRequestedGraph(request));
  graph::AssignRandomWeights(&g, 1.0, 10.0, request.graph_seed,
                             /*symmetric=*/request.undirected);
  pregel::JobSpec<Traits> spec;
  spec.options.combiner = [](const DoubleValue& a, const DoubleValue& b) {
    return DoubleValue{std::min(a.value, b.value)};
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  spec.vertices = pregel::LoadVertices<Traits>(
      g, [](VertexId) { return DoubleValue{kInf}; },
      [](VertexId, VertexId, double w) { return DoubleValue{w}; });
  const VertexId source = request.source;
  spec.computation = [source] {
    return std::make_unique<algos::SsspComputation>(source);
  };
  return spec;
}

Status RunPageRankJob(const JobRequest& request, const RunEnv& env) {
  GRAFT_ASSIGN_OR_RETURN(auto spec, BuildPageRankSpec(request));
  return RunWithCapture(request, env, std::move(spec));
}

Status RunConnectedComponentsJob(const JobRequest& request,
                                 const RunEnv& env) {
  GRAFT_ASSIGN_OR_RETURN(auto spec, BuildConnectedComponentsSpec(request));
  return RunWithCapture(request, env, std::move(spec));
}

Status RunSsspJob(const JobRequest& request, const RunEnv& env) {
  GRAFT_ASSIGN_OR_RETURN(auto spec, BuildSsspSpec(request));
  return RunWithCapture(request, env, std::move(spec));
}

/// The shared minimizer scaffolding: rebuild the algo's spec skeleton from
/// the request, hand the graph to JobMinimizer, and replay the request's
/// engine knobs into both the probes and the generated reproducer.
template <pregel::JobTraits Traits>
Result<analysis::MinimizerReport> MinimizeJob(
    Result<pregel::JobSpec<Traits>> (*build)(const JobRequest&),
    const JobRequest& request, const analysis::MinimizerOptions& options,
    const analysis::MinimizerProgressFn& progress,
    debug::JobCodegenBinding binding) {
  GRAFT_ASSIGN_OR_RETURN(pregel::JobSpec<Traits> skeleton, build(request));
  std::vector<pregel::Vertex<Traits>> vertices = std::move(skeleton.vertices);
  skeleton.vertices.clear();
  skeleton.options.num_workers = request.workers;
  skeleton.options.max_supersteps = request.max_supersteps;
  skeleton.options.seed = request.engine_seed;
  binding.num_workers = request.workers;
  binding.seed = request.engine_seed;
  auto shared =
      std::make_shared<const pregel::JobSpec<Traits>>(std::move(skeleton));
  analysis::JobMinimizer<Traits> minimizer([shared] { return *shared; },
                                           std::move(vertices), options);
  minimizer.set_progress(progress);
  return minimizer.Run(std::move(binding));
}

Result<analysis::MinimizerReport> MinimizePageRankJob(
    const JobRequest& request, const analysis::MinimizerOptions& options,
    const analysis::MinimizerProgressFn& progress) {
  debug::JobCodegenBinding binding;
  binding.traits_type = "graft::algos::PageRankTraits";
  binding.includes = {"algos/pagerank.h"};
  binding.computation_factory = StrFormat(
      "[] { return std::make_unique<graft::algos::PageRankComputation>(%lld);"
      " }",
      static_cast<long long>(request.iterations));
  binding.master_factory = StrFormat(
      "[]() -> std::unique_ptr<graft::pregel::MasterCompute> {\n"
      "    return std::make_unique<graft::algos::PageRankMaster>(%lld);\n"
      "  }",
      static_cast<long long>(request.iterations));
  binding.combiner =
      "[](const graft::pregel::DoubleValue& a,\n"
      "     const graft::pregel::DoubleValue& b) {\n"
      "    return graft::pregel::DoubleValue{a.value + b.value};\n"
      "  }";
  return MinimizeJob<algos::PageRankTraits>(BuildPageRankSpec, request,
                                            options, progress,
                                            std::move(binding));
}

Result<analysis::MinimizerReport> MinimizeConnectedComponentsJob(
    const JobRequest& request, const analysis::MinimizerOptions& options,
    const analysis::MinimizerProgressFn& progress) {
  debug::JobCodegenBinding binding;
  binding.traits_type = "graft::algos::CCTraits";
  binding.includes = {"algos/connected_components.h"};
  binding.computation_factory =
      "graft::algos::MakeConnectedComponentsFactory()";
  binding.combiner =
      "[](const graft::pregel::Int64Value& a,\n"
      "     const graft::pregel::Int64Value& b) {\n"
      "    return graft::pregel::Int64Value{std::min(a.value, b.value)};\n"
      "  }";
  return MinimizeJob<algos::CCTraits>(BuildConnectedComponentsSpec, request,
                                      options, progress, std::move(binding));
}

Result<analysis::MinimizerReport> MinimizeSsspJob(
    const JobRequest& request, const analysis::MinimizerOptions& options,
    const analysis::MinimizerProgressFn& progress) {
  debug::JobCodegenBinding binding;
  binding.traits_type = "graft::algos::SsspTraits";
  binding.includes = {"algos/sssp.h"};
  binding.computation_factory = StrFormat(
      "[] { return std::make_unique<graft::algos::SsspComputation>(%lld); }",
      static_cast<long long>(request.source));
  binding.combiner =
      "[](const graft::pregel::DoubleValue& a,\n"
      "     const graft::pregel::DoubleValue& b) {\n"
      "    return graft::pregel::DoubleValue{std::min(a.value, b.value)};\n"
      "  }";
  return MinimizeJob<algos::SsspTraits>(BuildSsspSpec, request, options,
                                        progress, std::move(binding));
}

template <pregel::JobTraits Traits>
Result<debug::ViewResult> ViewJob(const TraceStore& store,
                                  const std::string& job_id,
                                  TraceBlockCache* cache,
                                  const debug::ViewRequest& request) {
  GRAFT_ASSIGN_OR_RETURN(debug::DebugSession<Traits> session,
                         debug::DebugSession<Traits>::Open(
                             &store, job_id, cache));
  return debug::RenderView(session, request);
}

}  // namespace

const AlgoCatalog& AlgoCatalog::Global() {
  static const AlgoCatalog* catalog = [] {
    auto* c = new AlgoCatalog();
    c->Register("pagerank", RunPageRankJob, ViewJob<algos::PageRankTraits>,
                MinimizePageRankJob);
    c->Register("cc", RunConnectedComponentsJob, ViewJob<algos::CCTraits>,
                MinimizeConnectedComponentsJob);
    c->Register("sssp", RunSsspJob, ViewJob<algos::SsspTraits>,
                MinimizeSsspJob);
    return c;
  }();
  return *catalog;
}

void AlgoCatalog::Register(std::string name, Runner runner, Viewer viewer,
                           Minimizer minimizer) {
  entries_[std::move(name)] =
      Entry{std::move(runner), std::move(viewer), std::move(minimizer)};
}

std::vector<std::string> AlgoCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  return names;
}

Status AlgoCatalog::Run(const JobRequest& request, const RunEnv& env) const {
  auto it = entries_.find(request.algo);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown algo '" + request.algo + "'");
  }
  if (env.store == nullptr) {
    return Status::InvalidArgument("AlgoCatalog::Run requires a trace store");
  }
  return it->second.runner(request, env);
}

Result<debug::ViewResult> AlgoCatalog::View(
    const std::string& algo, const TraceStore& store,
    const std::string& job_id, TraceBlockCache* cache,
    const debug::ViewRequest& request) const {
  auto it = entries_.find(algo);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown algo '" + algo + "'");
  }
  return it->second.viewer(store, job_id, cache, request);
}

Result<analysis::MinimizerReport> AlgoCatalog::Minimize(
    const std::string& algo, const JobRequest& request,
    const analysis::MinimizerOptions& options,
    const analysis::MinimizerProgressFn& progress) const {
  auto it = entries_.find(algo);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown algo '" + algo + "'");
  }
  if (it->second.minimizer == nullptr) {
    return Status::Unimplemented("algo '" + algo +
                                 "' does not support minimization");
  }
  return it->second.minimizer(request, options, progress);
}

}  // namespace service
}  // namespace graft
