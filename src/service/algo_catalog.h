#ifndef GRAFT_SERVICE_ALGO_CATALOG_H_
#define GRAFT_SERVICE_ALGO_CATALOG_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/minimizer.h"
#include "common/result.h"
#include "debug/views/view_api.h"
#include "io/trace_block_cache.h"
#include "io/trace_store.h"
#include "obs/job_registry.h"
#include "obs/metrics.h"
#include "service/job_request.h"

namespace graft {
namespace service {

/// Everything a catalog runner needs from the hosting service.
struct RunEnv {
  TraceStore* store = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::JobRegistry* registry = nullptr;
};

/// Named algorithms the debug service can execute and read back. Each entry
/// erases one Traits type behind two closures: a Runner that builds the
/// JobSpec (graph, computation, capture config from the request) and drives
/// RunJob, and a Viewer that opens a cached DebugSession over the finished
/// job and renders one ViewRequest. Registration happens once at static-init
/// time in algo_catalog.cc; the catalog is immutable afterwards, so lookups
/// are lock-free.
class AlgoCatalog {
 public:
  using Runner = std::function<Status(const JobRequest&, const RunEnv&)>;
  using Viewer = std::function<Result<debug::ViewResult>(
      const TraceStore&, const std::string& job_id, TraceBlockCache*,
      const debug::ViewRequest&)>;
  /// Rebuilds the request's job and delta-debugs it down to a
  /// smallest-known failing subgraph (DESIGN.md §14). Blocking — meant for
  /// a JobQueue worker; probes re-run the job against a private in-memory
  /// store, so nothing it does touches the service's trace store.
  using Minimizer = std::function<Result<analysis::MinimizerReport>(
      const JobRequest&, const analysis::MinimizerOptions&,
      const analysis::MinimizerProgressFn&)>;

  /// The built-in catalog: pagerank, cc, sssp.
  static const AlgoCatalog& Global();

  AlgoCatalog() = default;

  void Register(std::string name, Runner runner, Viewer viewer,
                Minimizer minimizer = nullptr);

  bool Has(const std::string& name) const {
    return entries_.count(name) != 0;
  }
  /// Registered algo names, sorted.
  std::vector<std::string> Names() const;

  /// Runs `request` to completion (blocking; meant for a JobQueue worker).
  /// Returns spec errors; job-level failures land in the registry entry.
  Status Run(const JobRequest& request, const RunEnv& env) const;

  /// Opens `job_id` with `request.algo`'s Traits and renders one view.
  Result<debug::ViewResult> View(const std::string& algo,
                                 const TraceStore& store,
                                 const std::string& job_id,
                                 TraceBlockCache* cache,
                                 const debug::ViewRequest& request) const;

  /// Re-runs `request`'s job under the minimizer with `algo`'s Traits.
  /// kUnimplemented for algos registered without a Minimizer.
  Result<analysis::MinimizerReport> Minimize(
      const std::string& algo, const JobRequest& request,
      const analysis::MinimizerOptions& options,
      const analysis::MinimizerProgressFn& progress) const;

 private:
  struct Entry {
    Runner runner;
    Viewer viewer;
    Minimizer minimizer;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace service
}  // namespace graft

#endif  // GRAFT_SERVICE_ALGO_CATALOG_H_
