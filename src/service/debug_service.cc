#include "service/debug_service.h"

#include <map>
#include <utility>
#include <vector>

#include "common/json_parser.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "debug/capture_manager.h"
#include "debug/debug_session.h"
#include "debug/vertex_trace.h"

namespace graft {
namespace service {

namespace {

using obs::HttpRequest;
using Response = obs::TelemetryServer::Response;

/// Largest page a single read answers; larger asks are clamped, not errors.
constexpr uint64_t kMaxPageLimit = 10'000;

Result<debug::ViewRequest> ParseViewRequest(const HttpRequest& request,
                                            debug::ViewKind kind) {
  debug::ViewRequest view;
  view.kind = kind;
  // The HTTP debug API answers JSON unless asked for the terminal rendering.
  view.format = debug::ViewFormat::kJson;
  const std::string format = request.QueryParam("format", "json");
  if (format == "text") {
    view.format = debug::ViewFormat::kText;
  } else if (format != "json") {
    return Status::InvalidArgument("format must be json or text");
  }
  if (const std::string s = request.QueryParam("superstep"); !s.empty()) {
    int64_t superstep = 0;
    if (!ParseInt64(s, &superstep)) {
      return Status::InvalidArgument("superstep must be an integer");
    }
    view.superstep = superstep;
  }
  if (const std::string s = request.QueryParam("offset"); !s.empty()) {
    int64_t offset = 0;
    if (!ParseInt64(s, &offset) || offset < 0) {
      return Status::InvalidArgument("offset must be a non-negative integer");
    }
    view.offset = static_cast<uint64_t>(offset);
  }
  if (const std::string s = request.QueryParam("limit"); !s.empty()) {
    if (s == "all") {
      view.limit = debug::kViewNoLimit;
    } else {
      int64_t limit = 0;
      if (!ParseInt64(s, &limit) || limit < 1) {
        return Status::InvalidArgument("limit must be a positive integer or 'all'");
      }
      view.limit = std::min<uint64_t>(static_cast<uint64_t>(limit),
                                      kMaxPageLimit);
    }
  }
  view.search = request.QueryParam("search");
  return view;
}

Response RenderedView(const debug::ViewResult& view,
                      debug::ViewFormat format) {
  if (format == debug::ViewFormat::kJson) {
    return Response::Json(view.ToJson());
  }
  Response r;
  r.body = view.ToText();
  return r;
}

}  // namespace

DebugService::DebugService(DebugServiceOptions options)
    : options_(options),
      queue_(options.worker_threads, options.queue_capacity) {
  if (options_.registry == nullptr) {
    options_.registry = &obs::JobRegistry::Global();
  }
  if (options_.cache == nullptr) options_.cache = &TraceBlockCache::Global();
  if (options_.catalog == nullptr) options_.catalog = &AlgoCatalog::Global();
}

DebugService::~DebugService() { queue_.Stop(); }

void DebugService::RegisterRoutes(obs::TelemetryServer* server) {
  server->RegisterRoute("POST", "/jobs", [this](const HttpRequest& request) {
    return HandleSubmit(request);
  });
  server->RegisterRoute("GET", "/jobs/{id}/debug/supersteps",
                        [this](const HttpRequest& request) {
                          return HandleSupersteps(request);
                        });
  server->RegisterRoute("GET", "/jobs/{id}/debug/master",
                        [this](const HttpRequest& request) {
                          return HandleMaster(request);
                        });
  server->RegisterRoute("GET", "/jobs/{id}/debug/vertices",
                        [this](const HttpRequest& request) {
                          return HandleView(request, debug::ViewKind::kTabular);
                        });
  server->RegisterRoute(
      "GET", "/jobs/{id}/debug/violations",
      [this](const HttpRequest& request) {
        return HandleView(request, debug::ViewKind::kViolations);
      });
  server->RegisterRoute("GET", "/jobs/{id}/debug/vertex/{vid}",
                        [this](const HttpRequest& request) {
                          return HandleView(request, debug::ViewKind::kVertex);
                        });
  server->RegisterRoute("POST", "/jobs/{id}/minimize",
                        [this](const HttpRequest& request) {
                          return HandleMinimizeSubmit(request);
                        });
  server->RegisterRoute("GET", "/jobs/{id}/minimize",
                        [this](const HttpRequest& request) {
                          return HandleMinimizeStatus(request);
                        });
  server->RegisterRoute("GET", "/jobs/{id}/minimize/reproducer",
                        [this](const HttpRequest& request) {
                          return HandleMinimizeReproducer(request);
                        });
}

Result<JobRequest> DebugService::Submit(std::string_view body) {
  GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<JsonValue> spec, ParseJson(body));
  const uint64_t sequence =
      sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  GRAFT_ASSIGN_OR_RETURN(JobRequest request,
                         ParseJobRequest(*spec, sequence));
  if (!options_.catalog->Has(request.algo)) {
    return Status::InvalidArgument(
        "unknown algo '" + request.algo + "' (have: " +
        JoinStrings(options_.catalog->Names(), ", ") + ")");
  }
  // Resubmitting a *finished* job id re-runs it (RunJob wipes the stale
  // manifest and invalidates cached blocks); a live one is a conflict.
  std::shared_ptr<obs::JobEntry> existing =
      options_.registry->Find(request.job_id);
  if (existing != nullptr) {
    const obs::JobState state = existing->state();
    if (state != obs::JobState::kDone && state != obs::JobState::kFailed) {
      return Status::AlreadyExists("job '" + request.job_id + "' is already " +
                                   obs::JobStateName(state));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_requests_[request.job_id] = request;
  }
  // Visible as pending immediately; RunJob re-registers (replacing this
  // entry) when a worker picks the job up.
  std::shared_ptr<obs::JobEntry> entry =
      options_.registry->Register(request.job_id);
  RunEnv env{options_.store, options_.metrics, options_.registry};
  const AlgoCatalog* catalog = options_.catalog;
  JobRequest queued = request;
  Status submitted = queue_.Submit([catalog, queued, env] {
    Status run = catalog->Run(queued, env);
    if (!run.ok()) {
      // Spec-level failures never reach RunJob's own registry publishing;
      // surface them on the pending entry so pollers see a terminal state.
      std::shared_ptr<obs::JobEntry> failed =
          env.registry->Find(queued.job_id);
      if (failed != nullptr) failed->Finish(false, run.ToString());
    }
  });
  if (!submitted.ok()) {
    entry->Finish(false, submitted.ToString());
    return submitted;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.jobs_submitted_total")->Increment();
  }
  return request;
}

std::string DebugService::AlgoForJob(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = job_requests_.find(job_id);
  return it != job_requests_.end() ? it->second.algo : "";
}

Status DebugService::SubmitMinimize(const std::string& job_id,
                                    std::string_view body) {
  JobRequest job_request;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = job_requests_.find(job_id);
    if (it == job_requests_.end()) {
      return Status::NotFound(
          "job '" + job_id +
          "' was not submitted through this service; minimize needs the "
          "original job spec");
    }
    job_request = it->second;
  }
  // Minimization re-runs the job from its spec, so the original run must be
  // over (same rule as debug reads; also keeps one job's probes from racing
  // its own capture output).
  GRAFT_RETURN_NOT_OK(CheckReadable(job_id));

  analysis::MinimizerOptions minimize;
  if (!body.empty()) {
    GRAFT_ASSIGN_OR_RETURN(std::unique_ptr<JsonValue> spec, ParseJson(body));
    GRAFT_ASSIGN_OR_RETURN(const std::string oracle,
                           spec->GetString("oracle", "sanitizer"));
    GRAFT_ASSIGN_OR_RETURN(minimize.oracle, analysis::ParseOracleKind(oracle));
    GRAFT_ASSIGN_OR_RETURN(minimize.predicate,
                           spec->GetString("predicate", ""));
    GRAFT_ASSIGN_OR_RETURN(const std::string kind,
                           spec->GetString("finding_kind", ""));
    if (!kind.empty()) {
      bool known = false;
      for (int i = 0; i < analysis::kNumFindingKinds; ++i) {
        const auto candidate = static_cast<analysis::FindingKind>(i);
        if (kind == analysis::FindingKindName(candidate)) {
          minimize.finding_kind = candidate;
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::InvalidArgument("unknown finding_kind '" + kind + "'");
      }
    }
    GRAFT_ASSIGN_OR_RETURN(const int64_t max_probes,
                           spec->GetInt("max_probes", minimize.max_probes));
    if (max_probes < 1) {
      return Status::InvalidArgument("max_probes must be >= 1");
    }
    minimize.max_probes = static_cast<int>(max_probes);
    GRAFT_ASSIGN_OR_RETURN(
        minimize.bisect_supersteps,
        spec->GetBool("bisect_supersteps", minimize.bisect_supersteps));
    GRAFT_ASSIGN_OR_RETURN(
        minimize.minimize_edges,
        spec->GetBool("minimize_edges", minimize.minimize_edges));
  }
  if (minimize.oracle == analysis::OracleKind::kPredicate) {
    // Fail bad predicates at submit time, not on the worker.
    GRAFT_RETURN_NOT_OK(analysis::Predicate::Validate(minimize.predicate));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = minimizations_.find(job_id);
    if (it != minimizations_.end() && it->second.state != "done" &&
        it->second.state != "failed") {
      return Status::AlreadyExists("a minimization of job '" + job_id +
                                   "' is already " + it->second.state);
    }
    minimizations_[job_id] = MinimizeStatus{"pending", "", {}, "", ""};
  }
  Status submitted = queue_.Submit([this, job_id, job_request, minimize] {
    RunMinimize(job_id, job_request, minimize);
  });
  if (!submitted.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    minimizations_.erase(job_id);
    return submitted;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.minimizer_jobs_total")->Increment();
  }
  return Status::OK();
}

void DebugService::RunMinimize(const std::string& job_id,
                               const JobRequest& request,
                               const analysis::MinimizerOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    minimizations_[job_id].state = "running";
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetGauge("service.minimizer_active")->Add(1);
  }
  analysis::MinimizerProgressFn progress =
      [this, job_id](const analysis::MinimizerProgress& p) {
        std::lock_guard<std::mutex> lock(mutex_);
        minimizations_[job_id].progress = p;
      };
  Result<analysis::MinimizerReport> report =
      options_.catalog->Minimize(request.algo, request, options, progress);
  if (options_.metrics != nullptr) {
    options_.metrics->GetGauge("service.minimizer_active")->Add(-1);
    if (report.ok()) {
      options_.metrics->GetCounter("service.minimizer_probes_total")
          ->Increment(static_cast<uint64_t>(report->probes));
    } else {
      options_.metrics->GetCounter("service.minimizer_failed_total")
          ->Increment();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  MinimizeStatus& state = minimizations_[job_id];
  if (!report.ok()) {
    state.state = "failed";
    state.error = report.status().ToString();
    return;
  }
  state.state = "done";
  state.report_json = report->ToJson();
  state.reproducer = std::move(report->reproducer_code);
}

Result<DebugService::MinimizeStatus> DebugService::MinimizeStatusForJob(
    const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = minimizations_.find(job_id);
  if (it == minimizations_.end()) {
    return Status::NotFound("no minimization submitted for job '" + job_id +
                            "'");
  }
  return it->second;
}

Status DebugService::CheckReadable(const std::string& job_id) const {
  std::shared_ptr<obs::JobEntry> entry = options_.registry->Find(job_id);
  if (entry == nullptr) return Status::OK();  // pre-existing traces
  const obs::JobState state = entry->state();
  if (state == obs::JobState::kDone || state == obs::JobState::kFailed) {
    return Status::OK();
  }
  return Status::FailedPrecondition(
      "job '" + job_id + "' is still " + obs::JobStateName(state) +
      "; debug reads require a finished job");
}

Response DebugService::HandleSubmit(const HttpRequest& request) {
  Result<JobRequest> accepted = Submit(request.body);
  if (!accepted.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("service.jobs_rejected_total")->Increment();
    }
    return obs::TelemetryServer::ErrorResponse(accepted.status());
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("job_id", accepted->job_id);
  w.KV("algo", accepted->algo);
  w.KV("state", "pending");
  w.Key("endpoints");
  w.BeginObject();
  w.KV("report", "/jobs/" + accepted->job_id + "/report");
  w.KV("events", "/jobs/" + accepted->job_id + "/events");
  w.KV("debug", "/jobs/" + accepted->job_id + "/debug/supersteps");
  w.EndObject();
  w.EndObject();
  return Response::Json(w.TakeString(), /*status=*/202);
}

Response DebugService::HandleSupersteps(const HttpRequest& request) {
  const std::string& job_id = request.params.at("id");
  if (Status readable = CheckReadable(job_id); !readable.ok()) {
    return obs::TelemetryServer::ErrorResponse(readable);
  }
  auto manifest = debug::LoadTraceManifestCached(*options_.store, job_id,
                                                 options_.cache);
  if (!manifest.ok()) {
    return obs::TelemetryServer::ErrorResponse(manifest.status());
  }
  // (superstep → {vertex records, has master}) from the manifest's index, or
  // from a directory scan for manifest-less (crashed / pre-v2) jobs.
  std::map<int64_t, std::pair<uint64_t, bool>> steps;
  if (manifest->has_value()) {
    for (const debug::TraceManifestEntry& entry : (*manifest)->entries) {
      auto& slot = steps[entry.superstep];
      if (entry.kind == debug::TraceRecordKind::kVertex) ++slot.first;
      if (entry.kind == debug::TraceRecordKind::kMaster) slot.second = true;
    }
  } else {
    for (int64_t superstep :
         debug::ListCapturedSupersteps(*options_.store, job_id)) {
      steps.emplace(superstep, std::make_pair(uint64_t{0}, false));
    }
  }
  if (steps.empty()) {
    return obs::TelemetryServer::ErrorResponse(
        Status::NotFound("job '" + job_id + "' has no captures"));
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.debug_reads_total")->Increment();
  }
  if (request.QueryParam("format", "json") == "text") {
    Response r;
    r.body = StrFormat("job '%s': %llu captured supersteps\n", job_id.c_str(),
                       static_cast<unsigned long long>(steps.size()));
    for (const auto& [superstep, info] : steps) {
      r.body += StrFormat("superstep %lld: %llu vertex records%s\n",
                          static_cast<long long>(superstep),
                          static_cast<unsigned long long>(info.first),
                          info.second ? ", master" : "");
    }
    return r;
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("job", job_id);
  w.KV("manifest", manifest->has_value());
  w.Key("supersteps");
  w.BeginArray();
  for (const auto& [superstep, info] : steps) {
    w.BeginObject();
    w.KV("superstep", superstep);
    w.KV("vertex_records", info.first);
    w.KV("master", info.second);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return Response::Json(w.TakeString());
}

Response DebugService::HandleMaster(const HttpRequest& request) {
  const std::string& job_id = request.params.at("id");
  if (Status readable = CheckReadable(job_id); !readable.ok()) {
    return obs::TelemetryServer::ErrorResponse(readable);
  }
  // The manifest's kMaster entries answer "which supersteps have a master
  // trace" from memory. Gating reads on it matters for the cache: absence is
  // never cached, so probing the store for a missing master file would cost
  // one read per request forever.
  auto manifest = debug::LoadTraceManifestCached(*options_.store, job_id,
                                                 options_.cache);
  if (!manifest.ok()) {
    return obs::TelemetryServer::ErrorResponse(manifest.status());
  }
  int64_t superstep = -1;
  if (const std::string s = request.QueryParam("superstep"); !s.empty()) {
    if (!ParseInt64(s, &superstep)) {
      return obs::TelemetryServer::ErrorResponse(
          Status::InvalidArgument("superstep must be an integer"));
    }
    if (manifest->has_value()) {
      bool has_master = false;
      for (const debug::TraceManifestEntry& entry : (*manifest)->entries) {
        if (entry.kind == debug::TraceRecordKind::kMaster &&
            entry.superstep == superstep) {
          has_master = true;
          break;
        }
      }
      if (!has_master) {
        return obs::TelemetryServer::ErrorResponse(Status::NotFound(
            StrFormat("no master trace for superstep %lld of job '%s'",
                      static_cast<long long>(superstep), job_id.c_str())));
      }
    }
  } else {
    // Default: the first superstep with a master record (manifest-backed),
    // else the first captured superstep.
    bool found = false;
    if (manifest->has_value()) {
      for (const debug::TraceManifestEntry& entry : (*manifest)->entries) {
        if (entry.kind != debug::TraceRecordKind::kMaster) continue;
        if (!found || entry.superstep < superstep) superstep = entry.superstep;
        found = true;
      }
      if (!found) {
        return obs::TelemetryServer::ErrorResponse(
            Status::NotFound("job '" + job_id + "' has no master traces"));
      }
    }
    if (!found) {
      std::vector<int64_t> steps =
          debug::ListCapturedSupersteps(*options_.store, job_id);
      if (steps.empty()) {
        return obs::TelemetryServer::ErrorResponse(
            Status::NotFound("job '" + job_id + "' has no captures"));
      }
      superstep = steps.front();
    }
  }
  auto record = options_.cache->ReadRecord(
      *options_.store, debug::MasterTraceFile(job_id, superstep), 0);
  if (!record.ok()) {
    if (record.status().IsNotFound()) {
      return obs::TelemetryServer::ErrorResponse(Status::NotFound(
          StrFormat("no master trace for superstep %lld of job '%s'",
                    static_cast<long long>(superstep), job_id.c_str())));
    }
    return obs::TelemetryServer::ErrorResponse(record.status());
  }
  auto master = debug::MasterTrace::Deserialize(*record);
  if (!master.ok()) {
    return obs::TelemetryServer::ErrorResponse(master.status());
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.debug_reads_total")->Increment();
  }
  if (request.QueryParam("format", "json") == "text") {
    Response r;
    r.body = StrFormat(
        "=== Master — job '%s' — superstep %lld ===\n"
        "vertices=%lld edges=%lld halted=%s\n",
        job_id.c_str(), static_cast<long long>(master->superstep),
        static_cast<long long>(master->total_vertices),
        static_cast<long long>(master->total_edges),
        master->halted ? "yes" : "no");
    for (const auto& [name, value] : master->aggregators_after) {
      r.body += "  " + name + " = " + value.ToString() + "\n";
    }
    return r;
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("job", job_id);
  w.KV("superstep", master->superstep);
  w.KV("total_vertices", master->total_vertices);
  w.KV("total_edges", master->total_edges);
  w.KV("halted", master->halted);
  w.Key("aggregators_before");
  w.BeginObject();
  for (const auto& [name, value] : master->aggregators) {
    w.KV(name, value.ToString());
  }
  w.EndObject();
  w.Key("aggregators_after");
  w.BeginObject();
  for (const auto& [name, value] : master->aggregators_after) {
    w.KV(name, value.ToString());
  }
  w.EndObject();
  w.EndObject();
  return Response::Json(w.TakeString());
}

Response DebugService::HandleView(const HttpRequest& request,
                                  debug::ViewKind kind) {
  const std::string& job_id = request.params.at("id");
  if (Status readable = CheckReadable(job_id); !readable.ok()) {
    return obs::TelemetryServer::ErrorResponse(readable);
  }
  std::string algo = request.QueryParam("algo");
  if (algo.empty()) algo = AlgoForJob(job_id);
  if (algo.empty()) {
    return obs::TelemetryServer::ErrorResponse(Status::InvalidArgument(
        "job '" + job_id +
        "' was not submitted through this service; pass ?algo= (have: " +
        JoinStrings(options_.catalog->Names(), ", ") + ")"));
  }
  Result<debug::ViewRequest> view = ParseViewRequest(request, kind);
  if (!view.ok()) return obs::TelemetryServer::ErrorResponse(view.status());
  if (kind == debug::ViewKind::kVertex) {
    int64_t vid = 0;
    if (!ParseInt64(request.params.at("vid"), &vid)) {
      return obs::TelemetryServer::ErrorResponse(
          Status::InvalidArgument("vertex id must be an integer"));
    }
    view->vertex = vid;
  }
  Result<debug::ViewResult> result = options_.catalog->View(
      algo, *options_.store, job_id, options_.cache, *view);
  if (!result.ok()) {
    return obs::TelemetryServer::ErrorResponse(result.status());
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.debug_reads_total")->Increment();
    options_.metrics
        ->GetCounter(StrFormat("service.debug_reads.%s_total",
                               debug::ViewKindName(kind)))
        ->Increment();
  }
  return RenderedView(*result, view->format);
}

Response DebugService::HandleMinimizeSubmit(const HttpRequest& request) {
  const std::string& job_id = request.params.at("id");
  Status submitted = SubmitMinimize(job_id, request.body);
  if (!submitted.ok()) {
    return obs::TelemetryServer::ErrorResponse(submitted);
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("job_id", job_id);
  w.KV("state", "pending");
  w.Key("endpoints");
  w.BeginObject();
  w.KV("status", "/jobs/" + job_id + "/minimize");
  w.KV("reproducer", "/jobs/" + job_id + "/minimize/reproducer");
  w.EndObject();
  w.EndObject();
  return Response::Json(w.TakeString(), /*status=*/202);
}

Response DebugService::HandleMinimizeStatus(const HttpRequest& request) {
  const std::string& job_id = request.params.at("id");
  Result<MinimizeStatus> status = MinimizeStatusForJob(job_id);
  if (!status.ok()) {
    return obs::TelemetryServer::ErrorResponse(status.status());
  }
  if (status->state == "done") {
    // The finished report verbatim, plus the lifecycle envelope.
    JsonWriter w;
    w.BeginObject();
    w.KV("job_id", job_id);
    w.KV("state", status->state);
    w.Key("report");
    w.Raw(status->report_json);
    w.EndObject();
    return Response::Json(w.TakeString());
  }
  JsonWriter w;
  w.BeginObject();
  w.KV("job_id", job_id);
  w.KV("state", status->state);
  if (!status->error.empty()) w.KV("error", status->error);
  w.Key("progress");
  w.BeginObject();
  w.KV("phase", status->progress.phase);
  w.KV("probes", static_cast<int64_t>(status->progress.probes));
  w.KV("failing_probes",
       static_cast<int64_t>(status->progress.failing_probes));
  w.KV("current_vertices",
       static_cast<uint64_t>(status->progress.current_vertices));
  w.KV("current_edges",
       static_cast<uint64_t>(status->progress.current_edges));
  w.KV("superstep_cap", status->progress.superstep_cap);
  w.EndObject();
  w.EndObject();
  return Response::Json(w.TakeString());
}

Response DebugService::HandleMinimizeReproducer(const HttpRequest& request) {
  const std::string& job_id = request.params.at("id");
  Result<MinimizeStatus> status = MinimizeStatusForJob(job_id);
  if (!status.ok()) {
    return obs::TelemetryServer::ErrorResponse(status.status());
  }
  if (status->state != "done") {
    return obs::TelemetryServer::ErrorResponse(Status::NotFound(
        "minimization of job '" + job_id + "' is " + status->state +
        "; the reproducer exists only once it is done"));
  }
  if (status->reproducer.empty()) {
    return obs::TelemetryServer::ErrorResponse(Status::NotFound(
        "minimization of job '" + job_id +
        "' did not reproduce the failure; no reproducer was generated"));
  }
  Response r;
  r.body = status->reproducer;
  return r;
}

}  // namespace service
}  // namespace graft
