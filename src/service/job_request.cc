#include "service/job_request.h"

#include <algorithm>

#include "common/json_parser.h"
#include "common/string_util.h"
#include "graph/generators.h"

namespace graft {
namespace service {

namespace {

constexpr int64_t kMaxRequestVertices = 5'000'000;
constexpr int64_t kMaxRequestEdges = 50'000'000;

bool KnownGenerator(const std::string& name) {
  return name == "erdos-renyi" || name == "power-law" || name == "grid" ||
         name == "ring" || name == "complete" || name == "binary-tree" ||
         name == "star";
}

Status ParseGraph(const JsonValue& graph, JobRequest* out) {
  GRAFT_ASSIGN_OR_RETURN(out->generator,
                         graph.GetString("generator", out->generator));
  if (!KnownGenerator(out->generator)) {
    return Status::InvalidArgument(
        "unknown graph.generator '" + out->generator +
        "' (want erdos-renyi|power-law|grid|ring|complete|binary-tree|star)");
  }
  GRAFT_ASSIGN_OR_RETURN(out->vertices,
                         graph.GetInt("vertices", out->vertices));
  GRAFT_ASSIGN_OR_RETURN(out->edges, graph.GetInt("edges", out->edges));
  GRAFT_ASSIGN_OR_RETURN(out->rows, graph.GetInt("rows", out->rows));
  GRAFT_ASSIGN_OR_RETURN(out->cols, graph.GetInt("cols", out->cols));
  GRAFT_ASSIGN_OR_RETURN(
      int64_t seed, graph.GetInt("seed", static_cast<int64_t>(out->graph_seed)));
  out->graph_seed = static_cast<uint64_t>(seed);
  GRAFT_ASSIGN_OR_RETURN(out->undirected,
                         graph.GetBool("undirected", out->undirected));
  if (out->vertices < 1 || out->vertices > kMaxRequestVertices) {
    return Status::InvalidArgument(
        StrFormat("graph.vertices out of range [1, %lld]",
                  static_cast<long long>(kMaxRequestVertices)));
  }
  if (out->edges < 0 || out->edges > kMaxRequestEdges) {
    return Status::InvalidArgument(
        StrFormat("graph.edges out of range [0, %lld]",
                  static_cast<long long>(kMaxRequestEdges)));
  }
  if (out->generator == "grid" && (out->rows < 0 || out->cols < 0)) {
    return Status::InvalidArgument("graph.rows/cols must be non-negative");
  }
  return Status::OK();
}

Status ParseCapture(const JsonValue& capture, JobRequest* out) {
  GRAFT_ASSIGN_OR_RETURN(out->capture_all,
                         capture.GetBool("all_active", out->capture_all));
  if (const JsonValue* ids = capture.Get("vertices"); ids != nullptr) {
    if (!ids->is_array()) {
      return Status::InvalidArgument("capture.vertices must be an array");
    }
    for (const auto& id : ids->items()) {
      const auto exact = id->AsInt64();
      if (!exact.has_value()) {
        return Status::InvalidArgument(
            "capture.vertices entries must be integers");
      }
      out->capture_vertices.push_back(*exact);
    }
    // An explicit vertex list turns off the capture-everything default
    // unless the body asked for both.
    if (capture.Get("all_active") == nullptr) out->capture_all = false;
  }
  GRAFT_ASSIGN_OR_RETURN(out->num_random,
                         capture.GetInt("num_random", out->num_random));
  if (out->num_random > 0 && capture.Get("all_active") == nullptr &&
      capture.Get("vertices") == nullptr) {
    out->capture_all = false;
  }
  GRAFT_ASSIGN_OR_RETURN(
      out->capture_neighbors,
      capture.GetBool("neighbors", out->capture_neighbors));
  GRAFT_ASSIGN_OR_RETURN(out->max_captures,
                         capture.GetInt("max_captures", out->max_captures));
  if (out->num_random < 0 || out->max_captures < 1) {
    return Status::InvalidArgument(
        "capture.num_random must be >= 0 and capture.max_captures >= 1");
  }
  return Status::OK();
}

}  // namespace

Result<JobRequest> ParseJobRequest(const JsonValue& body, uint64_t sequence) {
  if (!body.is_object()) {
    return Status::InvalidArgument("job spec must be a JSON object");
  }
  JobRequest out;
  GRAFT_ASSIGN_OR_RETURN(out.algo, body.GetString("algo", ""));
  if (out.algo.empty()) {
    return Status::InvalidArgument("job spec requires an \"algo\" field");
  }
  GRAFT_ASSIGN_OR_RETURN(out.job_id, body.GetString("job_id", ""));
  if (out.job_id.empty()) {
    out.job_id = StrFormat("%s-%llu", out.algo.c_str(),
                           static_cast<unsigned long long>(sequence));
  }
  if (out.job_id.find('/') != std::string::npos ||
      out.job_id.find('?') != std::string::npos ||
      out.job_id.find('#') != std::string::npos ||
      out.job_id.find(' ') != std::string::npos) {
    return Status::InvalidArgument(
        "job_id must not contain '/', '?', '#', or spaces");
  }

  if (const JsonValue* graph = body.Get("graph"); graph != nullptr) {
    if (!graph->is_object()) {
      return Status::InvalidArgument("\"graph\" must be an object");
    }
    GRAFT_RETURN_NOT_OK(ParseGraph(*graph, &out));
  }
  if (const JsonValue* params = body.Get("params"); params != nullptr) {
    if (!params->is_object()) {
      return Status::InvalidArgument("\"params\" must be an object");
    }
    GRAFT_ASSIGN_OR_RETURN(out.iterations,
                           params->GetInt("iterations", out.iterations));
    GRAFT_ASSIGN_OR_RETURN(out.source, params->GetInt("source", out.source));
    if (out.iterations < 1 || out.iterations > 100'000) {
      return Status::InvalidArgument(
          "params.iterations out of range [1, 100000]");
    }
  }
  if (const JsonValue* engine = body.Get("engine"); engine != nullptr) {
    if (!engine->is_object()) {
      return Status::InvalidArgument("\"engine\" must be an object");
    }
    GRAFT_ASSIGN_OR_RETURN(int64_t workers,
                           engine->GetInt("workers", out.workers));
    if (workers < 1 || workers > 64) {
      return Status::InvalidArgument("engine.workers out of range [1, 64]");
    }
    out.workers = static_cast<int>(workers);
    GRAFT_ASSIGN_OR_RETURN(
        out.max_supersteps,
        engine->GetInt("max_supersteps", out.max_supersteps));
    if (out.max_supersteps < 1) {
      return Status::InvalidArgument("engine.max_supersteps must be >= 1");
    }
    GRAFT_ASSIGN_OR_RETURN(
        int64_t seed,
        engine->GetInt("seed", static_cast<int64_t>(out.engine_seed)));
    out.engine_seed = static_cast<uint64_t>(seed);
  }
  if (const JsonValue* capture = body.Get("capture"); capture != nullptr) {
    if (!capture->is_object()) {
      return Status::InvalidArgument("\"capture\" must be an object");
    }
    GRAFT_RETURN_NOT_OK(ParseCapture(*capture, &out));
  }
  GRAFT_ASSIGN_OR_RETURN(out.sanitizer,
                         body.GetBool("sanitizer", out.sanitizer));
  GRAFT_ASSIGN_OR_RETURN(
      out.checkpoint_interval,
      body.GetInt("checkpoint_interval", out.checkpoint_interval));
  if (out.checkpoint_interval < 0) {
    return Status::InvalidArgument("checkpoint_interval must be >= 0");
  }
  GRAFT_ASSIGN_OR_RETURN(out.journal, body.GetBool("journal", out.journal));
  return out;
}

Result<graph::SimpleGraph> BuildRequestedGraph(const JobRequest& request) {
  const uint64_t n = static_cast<uint64_t>(request.vertices);
  graph::SimpleGraph g;
  if (request.generator == "erdos-renyi") {
    const uint64_t m = request.edges > 0 ? static_cast<uint64_t>(request.edges)
                                         : n * 4;
    g = graph::GenerateErdosRenyi(n, m, request.graph_seed);
  } else if (request.generator == "power-law") {
    const int epv =
        request.edges > 0
            ? static_cast<int>(std::min<int64_t>(request.edges, 64))
            : 3;
    g = graph::GeneratePowerLaw(n, epv, request.graph_seed);
  } else if (request.generator == "grid") {
    const int rows = request.rows > 0 ? static_cast<int>(request.rows) : 10;
    const int cols = request.cols > 0 ? static_cast<int>(request.cols) : 10;
    g = graph::GenerateGrid(rows, cols);
  } else if (request.generator == "ring") {
    g = graph::GenerateRing(n);
  } else if (request.generator == "complete") {
    g = graph::GenerateComplete(static_cast<int>(std::min<int64_t>(
        request.vertices, 2'000)));
  } else if (request.generator == "binary-tree") {
    g = graph::GenerateBinaryTree(n);
  } else if (request.generator == "star") {
    g = graph::GenerateStar(n);
  } else {
    return Status::InvalidArgument("unknown graph generator '" +
                                   request.generator + "'");
  }
  // The directed generators get symmetrized on request; the fixed-shape
  // families are already undirected.
  if (request.undirected &&
      (request.generator == "erdos-renyi" || request.generator == "power-law")) {
    g = graph::MakeUndirected(g);
  }
  return g;
}

}  // namespace service
}  // namespace graft
