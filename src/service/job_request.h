#ifndef GRAFT_SERVICE_JOB_REQUEST_H_
#define GRAFT_SERVICE_JOB_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/simple_graph.h"

namespace graft {

class JsonValue;

namespace service {

/// One POST /jobs body, parsed and validated — the algo-agnostic half of a
/// debug-service job submission. Every field maps onto one JSON member of
/// the job-spec schema (see DESIGN.md §13):
///
///   {
///     "algo": "pagerank",                    // pagerank | cc | sssp
///     "job_id": "my-run",                    // optional; derived when absent
///     "graph": {"generator": "erdos-renyi",  // power-law | grid | ring |
///               "vertices": 1000,            //   complete | binary-tree |
///               "edges": 4000,               //   star | erdos-renyi
///               "seed": 42,
///               "undirected": true},
///     "params": {"iterations": 20,           // pagerank
///                "source": 0},               // sssp
///     "engine": {"workers": 2, "max_supersteps": 10000, "seed": 7},
///     "capture": {"all_active": true,        // or:
///                 "vertices": [1, 2, 3],
///                 "num_random": 10,
///                 "neighbors": false,
///                 "max_captures": 100000},
///     "sanitizer": false,
///     "checkpoint_interval": 0,
///     "journal": true
///   }
struct JobRequest {
  std::string algo;
  std::string job_id;

  // -- graph --
  std::string generator = "erdos-renyi";
  int64_t vertices = 100;
  /// Edge budget: m for erdos-renyi, edges-per-vertex for power-law,
  /// ignored by the fixed-shape generators. 0 = generator default.
  int64_t edges = 0;
  int64_t rows = 0;  // grid
  int64_t cols = 0;  // grid
  uint64_t graph_seed = 42;
  bool undirected = true;

  // -- algorithm parameters --
  int64_t iterations = 10;  // pagerank
  VertexId source = 0;      // sssp

  // -- engine knobs --
  int workers = 2;
  int64_t max_supersteps = 10'000;
  uint64_t engine_seed = 0x6a0b5eedULL;

  // -- capture knobs --
  bool capture_all = true;
  std::vector<VertexId> capture_vertices;
  int64_t num_random = 0;
  bool capture_neighbors = false;
  int64_t max_captures = 1'000'000;

  // -- extras --
  bool sanitizer = false;
  int64_t checkpoint_interval = 0;
  bool journal = true;
};

/// Parses and validates one POST /jobs body. Unknown algos, unknown
/// generators, and out-of-range sizes are kInvalidArgument; absent optional
/// members keep their defaults. `sequence` seeds the derived job id when the
/// body names none.
Result<JobRequest> ParseJobRequest(const JsonValue& body, uint64_t sequence);

/// Materializes the requested graph. kInvalidArgument on unknown generator
/// names (ParseJobRequest already rejects them; this guards direct callers).
Result<graph::SimpleGraph> BuildRequestedGraph(const JobRequest& request);

}  // namespace service
}  // namespace graft

#endif  // GRAFT_SERVICE_JOB_REQUEST_H_
