#include "graph/simple_graph.h"

namespace graft {
namespace graph {

size_t SimpleGraph::AddVertex(VertexId id) {
  auto [it, inserted] = index_.try_emplace(id, ids_.size());
  if (inserted) {
    ids_.push_back(id);
    adjacency_.emplace_back();
  }
  return it->second;
}

Result<size_t> SimpleGraph::IndexOf(VertexId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("vertex id " + std::to_string(id) +
                            " not in graph");
  }
  return it->second;
}

void SimpleGraph::AddEdge(VertexId source, VertexId target, double weight) {
  size_t src_index = AddVertex(source);
  AddVertex(target);
  adjacency_[src_index].push_back(Edge{target, weight});
  ++num_edges_;
}

void SimpleGraph::AddUndirectedEdge(VertexId a, VertexId b, double weight) {
  AddEdge(a, b, weight);
  AddEdge(b, a, weight);
}

const std::vector<SimpleGraph::Edge>& SimpleGraph::OutEdgesOf(
    VertexId id) const {
  static const std::vector<Edge>* empty = new std::vector<Edge>;
  auto it = index_.find(id);
  if (it == index_.end()) return *empty;
  return adjacency_[it->second];
}

bool SimpleGraph::HasEdge(VertexId source, VertexId target) const {
  for (const Edge& e : OutEdgesOf(source)) {
    if (e.target == target) return true;
  }
  return false;
}

Result<double> SimpleGraph::EdgeWeight(VertexId source, VertexId target) const {
  for (const Edge& e : OutEdgesOf(source)) {
    if (e.target == target) return e.weight;
  }
  return Status::NotFound("edge " + std::to_string(source) + "->" +
                          std::to_string(target) + " not in graph");
}

}  // namespace graph
}  // namespace graft
