#include "graph/builder.h"

#include <algorithm>

#include "graph/generators.h"
#include "graph/graph_text.h"

namespace graft {
namespace graph {

std::vector<std::string> PremadeGraphMenu() {
  return {"ring", "grid", "complete", "binary-tree", "star", "triangle"};
}

Result<GraphBuilder> GraphBuilder::FromPremade(const std::string& name,
                                               int size_hint) {
  if (size_hint < 3) size_hint = 3;
  if (name == "ring") {
    return FromGraph(GenerateRing(static_cast<uint64_t>(size_hint)));
  }
  if (name == "grid") {
    int side = 2;
    while (side * side < size_hint) ++side;
    return FromGraph(GenerateGrid(side, side));
  }
  if (name == "complete") return FromGraph(GenerateComplete(size_hint));
  if (name == "binary-tree") {
    return FromGraph(GenerateBinaryTree(static_cast<uint64_t>(size_hint)));
  }
  if (name == "star") {
    return FromGraph(GenerateStar(static_cast<uint64_t>(size_hint)));
  }
  if (name == "triangle") return FromGraph(GenerateComplete(3));
  return Status::NotFound("unknown premade graph: " + name);
}

GraphBuilder GraphBuilder::FromGraph(const SimpleGraph& g) {
  GraphBuilder b;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    b.vertices_.push_back(g.IdAt(i));
    for (const auto& e : g.OutEdges(i)) {
      b.edges_.push_back(Edge{g.IdAt(i), e.target, e.weight});
    }
  }
  return b;
}

bool GraphBuilder::HasVertex(VertexId id) const {
  return std::find(vertices_.begin(), vertices_.end(), id) != vertices_.end();
}

bool GraphBuilder::HasEdge(VertexId source, VertexId target) const {
  return std::any_of(edges_.begin(), edges_.end(), [&](const Edge& e) {
    return e.source == source && e.target == target;
  });
}

size_t GraphBuilder::NumVertices() const { return vertices_.size(); }
uint64_t GraphBuilder::NumEdges() const { return edges_.size(); }

Status GraphBuilder::AddVertex(VertexId id) {
  if (HasVertex(id)) {
    return Status::AlreadyExists("vertex " + std::to_string(id) +
                                 " already exists");
  }
  vertices_.push_back(id);
  return Status::OK();
}

Status GraphBuilder::RemoveVertex(VertexId id) {
  auto it = std::find(vertices_.begin(), vertices_.end(), id);
  if (it == vertices_.end()) {
    return Status::NotFound("vertex " + std::to_string(id) + " not found");
  }
  vertices_.erase(it);
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const Edge& e) {
                                return e.source == id || e.target == id;
                              }),
               edges_.end());
  return Status::OK();
}

Status GraphBuilder::AddEdge(VertexId source, VertexId target, double weight) {
  if (!HasVertex(source)) vertices_.push_back(source);
  if (!HasVertex(target)) vertices_.push_back(target);
  if (HasEdge(source, target)) {
    return Status::AlreadyExists("edge " + std::to_string(source) + "->" +
                                 std::to_string(target) + " already exists");
  }
  edges_.push_back(Edge{source, target, weight});
  return Status::OK();
}

Status GraphBuilder::AddUndirectedEdge(VertexId a, VertexId b, double weight) {
  GRAFT_RETURN_NOT_OK(AddEdge(a, b, weight));
  return AddEdge(b, a, weight);
}

Status GraphBuilder::RemoveEdge(VertexId source, VertexId target) {
  auto it = std::find_if(edges_.begin(), edges_.end(), [&](const Edge& e) {
    return e.source == source && e.target == target;
  });
  if (it == edges_.end()) {
    return Status::NotFound("edge " + std::to_string(source) + "->" +
                            std::to_string(target) + " not found");
  }
  edges_.erase(it);
  return Status::OK();
}

Status GraphBuilder::SetEdgeWeight(VertexId source, VertexId target,
                                   double weight) {
  for (Edge& e : edges_) {
    if (e.source == source && e.target == target) {
      e.weight = weight;
      return Status::OK();
    }
  }
  return Status::NotFound("edge " + std::to_string(source) + "->" +
                          std::to_string(target) + " not found");
}

Status GraphBuilder::SetUndirectedEdgeWeight(VertexId a, VertexId b,
                                             double weight) {
  GRAFT_RETURN_NOT_OK(SetEdgeWeight(a, b, weight));
  return SetEdgeWeight(b, a, weight);
}

SimpleGraph GraphBuilder::Build() const {
  SimpleGraph g;
  for (VertexId v : vertices_) g.AddVertex(v);
  for (const Edge& e : edges_) g.AddEdge(e.source, e.target, e.weight);
  return g;
}

std::string GraphBuilder::ToAdjacencyText() const {
  return WriteAdjacencyText(Build());
}

}  // namespace graph
}  // namespace graft
