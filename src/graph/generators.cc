#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace graft {
namespace graph {

SimpleGraph GeneratePowerLaw(uint64_t n, int edges_per_vertex, uint64_t seed) {
  GRAFT_CHECK(edges_per_vertex >= 1);
  const uint64_t m = static_cast<uint64_t>(edges_per_vertex);
  SimpleGraph g;
  g.Reserve(n);
  Rng rng(Mix64(seed ^ 0x77ebULL));

  // Seed clique over the first m+1 vertices (or a path if n is tiny).
  uint64_t seed_size = std::min<uint64_t>(n, m + 1);
  for (uint64_t v = 0; v < seed_size; ++v) {
    g.AddVertex(static_cast<VertexId>(v));
  }
  // Endpoint pool for degree-proportional sampling: every time a vertex
  // gains an edge endpoint it is appended once, so sampling uniformly from
  // the pool samples vertices proportional to degree.
  std::vector<VertexId> pool;
  pool.reserve(2 * n * m);
  for (uint64_t v = 1; v < seed_size; ++v) {
    g.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(v - 1));
    pool.push_back(static_cast<VertexId>(v));
    pool.push_back(static_cast<VertexId>(v - 1));
  }

  std::vector<VertexId> chosen;
  for (uint64_t v = seed_size; v < n; ++v) {
    chosen.clear();
    uint64_t attach = std::min<uint64_t>(m, v);
    // Sample `attach` distinct earlier vertices proportional to degree.
    int attempts = 0;
    while (chosen.size() < attach) {
      VertexId t = pool.empty()
                       ? static_cast<VertexId>(rng.NextBounded(v))
                       : pool[rng.NextBounded(pool.size())];
      if (++attempts > 64) {
        // Degenerate corner (tiny graphs): fall back to uniform sampling.
        t = static_cast<VertexId>(rng.NextBounded(v));
      }
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
        attempts = 0;
      }
    }
    VertexId vid = static_cast<VertexId>(v);
    g.AddVertex(vid);
    for (VertexId t : chosen) {
      g.AddEdge(vid, t);
      pool.push_back(vid);
      pool.push_back(t);
    }
  }
  return g;
}

SimpleGraph GenerateRegularBipartite(uint64_t n, int degree, uint64_t seed) {
  GRAFT_CHECK(n % 2 == 0) << "bipartite generator needs an even vertex count";
  GRAFT_CHECK(degree >= 1);
  const uint64_t half = n / 2;
  GRAFT_CHECK(static_cast<uint64_t>(degree) <= half)
      << "degree exceeds side size";
  SimpleGraph g;
  g.Reserve(n);
  for (uint64_t v = 0; v < n; ++v) g.AddVertex(static_cast<VertexId>(v));

  // d distinct random cyclic shifts: L[i] -- R[(i + shift_r) mod half].
  // Distinct shifts guarantee exact d-regularity with no duplicate edges.
  Rng rng(Mix64(seed ^ 0xb1aaULL));
  std::unordered_set<uint64_t> shifts;
  while (shifts.size() < static_cast<uint64_t>(degree)) {
    shifts.insert(rng.NextBounded(half));
  }
  for (uint64_t shift : shifts) {
    for (uint64_t i = 0; i < half; ++i) {
      VertexId left = static_cast<VertexId>(i);
      VertexId right = static_cast<VertexId>(half + (i + shift) % half);
      g.AddUndirectedEdge(left, right);
    }
  }
  return g;
}

SimpleGraph GenerateErdosRenyi(uint64_t n, uint64_t m, uint64_t seed) {
  GRAFT_CHECK(n >= 2);
  SimpleGraph g;
  g.Reserve(n);
  for (uint64_t v = 0; v < n; ++v) g.AddVertex(static_cast<VertexId>(v));
  Rng rng(Mix64(seed ^ 0xe12dULL));
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  uint64_t added = 0;
  while (added < m) {
    uint64_t u = rng.NextBounded(n);
    uint64_t v = rng.NextBounded(n);
    if (u == v) continue;
    uint64_t key = u * n + v;
    if (!seen.insert(key).second) continue;
    g.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    ++added;
  }
  return g;
}

SimpleGraph GenerateGrid(int rows, int cols) {
  GRAFT_CHECK(rows >= 1 && cols >= 1);
  SimpleGraph g;
  auto id = [cols](int r, int c) {
    return static_cast<VertexId>(r) * cols + c;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.AddVertex(id(r, c));
      if (c + 1 < cols) g.AddUndirectedEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddUndirectedEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

SimpleGraph GenerateRing(uint64_t n) {
  GRAFT_CHECK(n >= 3);
  SimpleGraph g;
  for (uint64_t v = 0; v < n; ++v) g.AddVertex(static_cast<VertexId>(v));
  for (uint64_t v = 0; v < n; ++v) {
    g.AddUndirectedEdge(static_cast<VertexId>(v),
                        static_cast<VertexId>((v + 1) % n));
  }
  return g;
}

SimpleGraph GenerateComplete(int n) {
  GRAFT_CHECK(n >= 1);
  SimpleGraph g;
  for (int v = 0; v < n; ++v) g.AddVertex(v);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddUndirectedEdge(u, v);
  }
  return g;
}

SimpleGraph GenerateBinaryTree(uint64_t n) {
  GRAFT_CHECK(n >= 1);
  SimpleGraph g;
  g.AddVertex(0);
  for (uint64_t v = 1; v < n; ++v) {
    g.AddUndirectedEdge(static_cast<VertexId>((v - 1) / 2),
                        static_cast<VertexId>(v));
  }
  return g;
}

SimpleGraph GenerateStar(uint64_t n) {
  GRAFT_CHECK(n >= 2);
  SimpleGraph g;
  g.AddVertex(0);
  for (uint64_t v = 1; v < n; ++v) {
    g.AddUndirectedEdge(0, static_cast<VertexId>(v));
  }
  return g;
}

SimpleGraph MakeUndirected(const SimpleGraph& g) {
  // Snapshot sorted target lists for O(log d) reverse-edge membership tests.
  size_t n = g.NumVertices();
  std::vector<std::vector<VertexId>> sorted_targets(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& edges = g.OutEdges(i);
    sorted_targets[i].reserve(edges.size());
    for (const auto& e : edges) sorted_targets[i].push_back(e.target);
    std::sort(sorted_targets[i].begin(), sorted_targets[i].end());
  }
  SimpleGraph out = g;
  for (size_t i = 0; i < n; ++i) {
    VertexId u = g.IdAt(i);
    for (const auto& e : g.OutEdges(i)) {
      size_t j = g.IndexOf(e.target).value();
      const auto& rev = sorted_targets[j];
      if (!std::binary_search(rev.begin(), rev.end(), u)) {
        out.AddEdge(e.target, u, e.weight);
      }
    }
  }
  return out;
}

namespace {

/// Deterministic weight for the unordered pair {u, v}: both directions of a
/// symmetric edge get the same draw without any pair bookkeeping.
double PairWeight(uint64_t seed, VertexId u, VertexId v, double lo,
                  double hi) {
  VertexId a = std::min(u, v);
  VertexId b = std::max(u, v);
  uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(a)) ^
                     Mix64(static_cast<uint64_t>(b) * 0x9e3779b97f4a7c15ULL));
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

}  // namespace

void AssignRandomWeights(SimpleGraph* g, double lo, double hi, uint64_t seed,
                         bool symmetric) {
  for (size_t i = 0; i < g->NumVertices(); ++i) {
    VertexId u = g->IdAt(i);
    for (auto& e : g->MutableOutEdges(i)) {
      if (symmetric) {
        e.weight = PairWeight(seed, u, e.target, lo, hi);
      } else {
        uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(u)) ^
                           (static_cast<uint64_t>(e.target) * 0x2545f49ULL));
        e.weight = lo + (static_cast<double>(h >> 11) * 0x1.0p-53) * (hi - lo);
      }
    }
  }
}

uint64_t CorruptSymmetricWeights(SimpleGraph* g, double fraction,
                                 uint64_t seed) {
  uint64_t corrupted = 0;
  for (size_t i = 0; i < g->NumVertices(); ++i) {
    VertexId u = g->IdAt(i);
    for (auto& e : g->MutableOutEdges(i)) {
      // Perturb only the u < v direction so exactly one side of each pair
      // changes — the paper's "small fraction of edges incorrectly have
      // different weights on their symmetric edges".
      if (u >= e.target) continue;
      uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(u)) ^
                         Mix64(static_cast<uint64_t>(e.target) + 0x51edULL));
      double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (unit < fraction) {
        e.weight = e.weight * 1.5 + 1.0;
        ++corrupted;
      }
    }
  }
  return corrupted;
}

namespace {

Status SetDirectedWeight(SimpleGraph* g, VertexId source, VertexId target,
                         double weight) {
  GRAFT_ASSIGN_OR_RETURN(size_t index, g->IndexOf(source));
  for (auto& e : g->MutableOutEdges(index)) {
    if (e.target == target) {
      e.weight = weight;
      return Status::OK();
    }
  }
  return Status::NotFound("no such edge");
}

}  // namespace

Result<std::array<VertexId, 3>> InjectPreferenceCycle(SimpleGraph* g,
                                                      double strong) {
  // Find any triangle: u -- v -- w -- u (on the symmetric representation).
  for (size_t i = 0; i < g->NumVertices(); ++i) {
    VertexId u = g->IdAt(i);
    const auto& u_edges = g->OutEdges(i);
    for (const auto& uv : u_edges) {
      VertexId v = uv.target;
      if (v == u) continue;
      for (const auto& vw : g->OutEdgesOf(v)) {
        VertexId w = vw.target;
        if (w == u || w == v) continue;
        if (!g->HasEdge(w, u)) continue;
        // Corrupt: each corner's heaviest edge points to the next corner.
        GRAFT_RETURN_NOT_OK(SetDirectedWeight(g, u, v, strong));
        GRAFT_RETURN_NOT_OK(SetDirectedWeight(g, v, u, strong - 1.0));
        GRAFT_RETURN_NOT_OK(SetDirectedWeight(g, v, w, strong));
        GRAFT_RETURN_NOT_OK(SetDirectedWeight(g, w, v, strong - 1.0));
        GRAFT_RETURN_NOT_OK(SetDirectedWeight(g, w, u, strong));
        GRAFT_RETURN_NOT_OK(SetDirectedWeight(g, u, w, strong - 1.0));
        return std::array<VertexId, 3>{u, v, w};
      }
    }
  }
  return Status::NotFound("graph has no triangle to corrupt");
}

}  // namespace graph
}  // namespace graft
