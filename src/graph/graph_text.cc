#include "graph/graph_text.h"

#include <cstdio>

#include "common/string_util.h"

namespace graft {
namespace graph {

std::string WriteAdjacencyText(const SimpleGraph& g) {
  std::string out;
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    out += std::to_string(g.IdAt(i));
    for (const auto& e : g.OutEdges(i)) {
      out.push_back(' ');
      out += std::to_string(e.target);
      if (e.weight != 1.0) {
        out.push_back(':');
        out += StrFormat("%g", e.weight);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<SimpleGraph> ParseAdjacencyText(std::string_view text) {
  SimpleGraph g;
  size_t line_number = 0;
  for (std::string_view line : SplitString(text, '\n')) {
    ++line_number;
    line = TrimString(line);
    if (line.empty() || line.front() == '#') continue;
    auto tokens = SplitWhitespace(line);
    int64_t source;
    if (!ParseInt64(tokens[0], &source)) {
      return Status::InvalidArgument(
          StrFormat("line %zu: bad vertex id '%.*s'", line_number,
                    static_cast<int>(tokens[0].size()), tokens[0].data()));
    }
    g.AddVertex(source);
    for (size_t t = 1; t < tokens.size(); ++t) {
      std::string_view token = tokens[t];
      double weight = 1.0;
      size_t colon = token.find(':');
      if (colon != std::string_view::npos) {
        if (!ParseDouble(token.substr(colon + 1), &weight)) {
          return Status::InvalidArgument(
              StrFormat("line %zu: bad edge weight in '%.*s'", line_number,
                        static_cast<int>(token.size()), token.data()));
        }
        token = token.substr(0, colon);
      }
      int64_t target;
      if (!ParseInt64(token, &target)) {
        return Status::InvalidArgument(
            StrFormat("line %zu: bad edge target '%.*s'", line_number,
                      static_cast<int>(token.size()), token.data()));
      }
      g.AddEdge(source, target, weight);
    }
  }
  return g;
}

Status WriteAdjacencyFile(const SimpleGraph& g, const std::string& path) {
  std::string text = WriteAdjacencyText(g);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IOError("short write to: " + path);
  }
  return Status::OK();
}

Result<SimpleGraph> ReadAdjacencyFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ParseAdjacencyText(text);
}

}  // namespace graph
}  // namespace graft
