#ifndef GRAFT_GRAPH_DATASETS_H_
#define GRAFT_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/simple_graph.h"

namespace graft {
namespace graph {

/// Which synthetic family reproduces a dataset's shape.
enum class DatasetFamily {
  kWebGraph,       // power-law, directed (web-BS, sk-2005)
  kSocialNetwork,  // power-law, directed (soc-Epinions, twitter)
  kBipartite,      // d-regular bipartite, undirected
};

/// Registry entry for one of the paper's datasets (Tables 1 and 2). The
/// paper's graphs are proprietary or web-crawl downloads; we regenerate
/// synthetic graphs with the same family, vertex count and average degree
/// (see DESIGN.md substitutions).
struct DatasetSpec {
  std::string name;
  std::string description;
  DatasetFamily family;
  /// Paper-reported sizes (directed edge counts; 0 when not reported).
  uint64_t paper_vertices;
  uint64_t paper_directed_edges;
  uint64_t paper_undirected_edges;
  /// Generator parameters reproducing the shape at scale 1.
  int edges_per_vertex;  // power-law attachment count / bipartite degree
  bool demo_table;       // Table 1 (demo) vs Table 2 (performance)
};

/// All six specs: web-BS, soc-Epinions, bipartite-1M-3M (Table 1) and
/// sk-2005, twitter, bipartite-2B-6B (Table 2).
const std::vector<DatasetSpec>& AllDatasets();

/// Looks a spec up by name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Options controlling dataset materialization.
struct DatasetOptions {
  /// Divide the paper's vertex count by this factor (degree parameters are
  /// preserved, so per-vertex work matches the paper's shape). Table 2
  /// graphs do not fit one machine at scale 1.
  uint64_t scale_denominator = 1;
  /// Generate the undirected (u) variant (symmetrized).
  bool undirected = false;
  uint64_t seed = 42;
};

/// Materializes a dataset.
Result<SimpleGraph> MakeDataset(const std::string& name,
                                const DatasetOptions& options = {});

/// Number of vertices `MakeDataset` will generate for the spec and options.
uint64_t ScaledVertexCount(const DatasetSpec& spec,
                           const DatasetOptions& options);

}  // namespace graph
}  // namespace graft

#endif  // GRAFT_GRAPH_DATASETS_H_
