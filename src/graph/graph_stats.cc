#include "graph/graph_stats.h"

#include <algorithm>

#include "common/string_util.h"

namespace graft {
namespace graph {

GraphStats ComputeGraphStats(const SimpleGraph& g) {
  GraphStats stats;
  stats.num_vertices = g.NumVertices();
  stats.num_directed_edges = g.NumDirectedEdges();
  if (stats.num_vertices == 0) return stats;

  stats.min_out_degree = UINT64_MAX;
  // Sorted adjacency snapshot for reciprocity checks.
  std::vector<std::vector<VertexId>> sorted(g.NumVertices());
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    const auto& edges = g.OutEdges(i);
    sorted[i].reserve(edges.size());
    for (const auto& e : edges) sorted[i].push_back(e.target);
    std::sort(sorted[i].begin(), sorted[i].end());
  }
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    uint64_t degree = g.OutDegree(i);
    stats.min_out_degree = std::min(stats.min_out_degree, degree);
    stats.max_out_degree = std::max(stats.max_out_degree, degree);
    size_t bucket = 0;
    uint64_t d = degree;
    while (d > 1) {
      d >>= 1;
      ++bucket;
    }
    if (stats.degree_histogram.size() <= bucket) {
      stats.degree_histogram.resize(bucket + 1, 0);
    }
    ++stats.degree_histogram[bucket];
    VertexId u = g.IdAt(i);
    for (const auto& e : g.OutEdges(i)) {
      auto idx = g.IndexOf(e.target);
      if (!idx.ok()) continue;
      const auto& rev = sorted[*idx];
      if (std::binary_search(rev.begin(), rev.end(), u)) {
        ++stats.reciprocal_edges;
      }
    }
  }
  stats.avg_out_degree = static_cast<double>(stats.num_directed_edges) /
                         static_cast<double>(stats.num_vertices);
  // In-degree pass.
  std::vector<uint64_t> in_degree(g.NumVertices(), 0);
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    for (const auto& e : g.OutEdges(i)) {
      auto idx = g.IndexOf(e.target);
      if (idx.ok()) ++in_degree[*idx];
    }
  }
  for (uint64_t d : in_degree) {
    stats.max_in_degree = std::max(stats.max_in_degree, d);
    size_t bucket = 0;
    uint64_t v = d;
    while (v > 1) {
      v >>= 1;
      ++bucket;
    }
    if (stats.in_degree_histogram.size() <= bucket) {
      stats.in_degree_histogram.resize(bucket + 1, 0);
    }
    ++stats.in_degree_histogram[bucket];
  }
  return stats;
}

bool IsSymmetricWeighted(const SimpleGraph& g) {
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    VertexId u = g.IdAt(i);
    for (const auto& e : g.OutEdges(i)) {
      auto reverse = g.EdgeWeight(e.target, u);
      if (!reverse.ok() || *reverse != e.weight) return false;
    }
  }
  return true;
}

std::string GraphStats::ToString() const {
  std::string out = StrFormat(
      "vertices=%s directed_edges=%s out_degree[min=%llu avg=%.2f max=%llu] "
      "reciprocal=%s",
      WithThousandsSeparators(num_vertices).c_str(),
      WithThousandsSeparators(num_directed_edges).c_str(),
      static_cast<unsigned long long>(min_out_degree), avg_out_degree,
      static_cast<unsigned long long>(max_out_degree),
      WithThousandsSeparators(reciprocal_edges).c_str());
  return out;
}

}  // namespace graph
}  // namespace graft
