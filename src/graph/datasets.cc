#include "graph/datasets.h"

#include "common/logging.h"
#include "graph/generators.h"

namespace graft {
namespace graph {

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>{
      // Table 1 (demo datasets).
      {"web-BS", "A web graph from 2002", DatasetFamily::kWebGraph,
       685'000, 7'600'000, 12'300'000, /*edges_per_vertex=*/11,
       /*demo_table=*/true},
      {"soc-Epinions", "Epinions.com \"who trusts whom\" network",
       DatasetFamily::kSocialNetwork, 76'000, 500'000, 780'000,
       /*edges_per_vertex=*/7, /*demo_table=*/true},
      {"bipartite-1M-3M", "A 3-regular bipartite graph",
       DatasetFamily::kBipartite, 1'000'000, 0, 6'000'000,
       /*edges_per_vertex=*/3, /*demo_table=*/true},
      // Table 2 (performance datasets).
      {"sk-2005", "Web graph of the .sk domain from 2005",
       DatasetFamily::kWebGraph, 51'000'000, 1'900'000'000, 3'500'000'000,
       /*edges_per_vertex=*/37, /*demo_table=*/false},
      {"twitter", "Twitter \"who is followed by who\" network",
       DatasetFamily::kSocialNetwork, 42'000'000, 1'500'000'000,
       2'700'000'000, /*edges_per_vertex=*/36, /*demo_table=*/false},
      {"bipartite-2B-6B", "A 3-regular bipartite graph",
       DatasetFamily::kBipartite, 2'000'000'000, 0, 12'000'000'000ULL,
       /*edges_per_vertex=*/3, /*demo_table=*/false},
  };
  return *specs;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

uint64_t ScaledVertexCount(const DatasetSpec& spec,
                           const DatasetOptions& options) {
  GRAFT_CHECK(options.scale_denominator >= 1);
  uint64_t n = spec.paper_vertices / options.scale_denominator;
  // Keep enough vertices for the generators to be well-defined.
  uint64_t floor = static_cast<uint64_t>(spec.edges_per_vertex) * 2 + 2;
  if (n < floor) n = floor;
  if (spec.family == DatasetFamily::kBipartite && n % 2 != 0) ++n;
  return n;
}

Result<SimpleGraph> MakeDataset(const std::string& name,
                                const DatasetOptions& options) {
  GRAFT_ASSIGN_OR_RETURN(DatasetSpec spec, FindDataset(name));
  uint64_t n = ScaledVertexCount(spec, options);
  switch (spec.family) {
    case DatasetFamily::kWebGraph:
    case DatasetFamily::kSocialNetwork: {
      SimpleGraph g = GeneratePowerLaw(n, spec.edges_per_vertex, options.seed);
      if (options.undirected) return MakeUndirected(g);
      return g;
    }
    case DatasetFamily::kBipartite: {
      // Already stored as symmetric directed edges (undirected).
      return GenerateRegularBipartite(n, spec.edges_per_vertex, options.seed);
    }
  }
  return Status::Internal("unreachable dataset family");
}

}  // namespace graph
}  // namespace graft
