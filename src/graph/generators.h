#ifndef GRAFT_GRAPH_GENERATORS_H_
#define GRAFT_GRAPH_GENERATORS_H_

#include <array>
#include <cstdint>

#include "common/result.h"
#include "graph/simple_graph.h"

namespace graft {
namespace graph {

/// Synthetic graph families standing in for the paper's datasets (Tables 1
/// and 2) and for the GUI's "premade graphs" menu (§3.4). Every generator is
/// deterministic in its seed.

/// Preferential-attachment (Barabási–Albert) graph: `n` vertices, each new
/// vertex attaching `edges_per_vertex` distinct out-edges to earlier vertices
/// chosen proportional to degree. Produces the heavy-tailed degree shape of
/// web graphs (web-BS, sk-2005) and social networks (soc-Epinions, twitter).
/// Directed; call MakeUndirected() for the (u) variants.
SimpleGraph GeneratePowerLaw(uint64_t n, int edges_per_vertex, uint64_t seed);

/// d-regular bipartite graph over `n` vertices (n even): sides L = [0, n/2)
/// and R = [n/2, n), each L-vertex matched to d R-vertices via d random
/// shifted permutations — the construction behind bipartite-1M-3M and
/// bipartite-2B-6B. Stored undirected (symmetric directed edges).
SimpleGraph GenerateRegularBipartite(uint64_t n, int degree, uint64_t seed);

/// G(n, m) Erdos-Renyi-style graph: m distinct directed edges sampled
/// uniformly (self-loops excluded).
SimpleGraph GenerateErdosRenyi(uint64_t n, uint64_t m, uint64_t seed);

/// rows x cols 4-neighbour grid, undirected. Premade-menu graph.
SimpleGraph GenerateGrid(int rows, int cols);

/// Cycle over n vertices, undirected. Premade-menu graph.
SimpleGraph GenerateRing(uint64_t n);

/// Complete undirected graph on n vertices. Premade-menu graph.
SimpleGraph GenerateComplete(int n);

/// Balanced binary tree with n vertices, undirected. Premade-menu graph.
SimpleGraph GenerateBinaryTree(uint64_t n);

/// Star: vertex 0 connected to 1..n-1, undirected. Premade-menu graph.
SimpleGraph GenerateStar(uint64_t n);

/// Symmetrizes: for every directed edge (u,v) missing its reverse, adds
/// (v,u) with the same weight.
SimpleGraph MakeUndirected(const SimpleGraph& g);

/// Assigns uniform random weights in [lo, hi] to every edge. When
/// `symmetric` is true, (u,v) and (v,u) receive the same weight — the
/// correct encoding of a weighted undirected graph (§4.3).
void AssignRandomWeights(SimpleGraph* g, double lo, double hi, uint64_t seed,
                         bool symmetric);

/// Injects the §4.3 input-graph bug: for `fraction` of the undirected edge
/// pairs, perturbs one direction's weight so the pair becomes asymmetric.
/// Returns the number of corrupted pairs.
uint64_t CorruptSymmetricWeights(SimpleGraph* g, double fraction,
                                 uint64_t seed);

/// The provably non-converging form of the §4.3 corruption: finds a
/// triangle (u, v, w) and overwrites its six directed weights so that each
/// corner's heaviest edge points to the next corner (u prefers v, v prefers
/// w, w prefers u — weights `strong` one way, `strong - 1` the other, both
/// above every honest weight). Under MWM the three vertices propose in a
/// cycle forever, which is how "a small fraction of edges with different
/// weights on their symmetric edges" makes the job loop without ever
/// converging. Returns the triangle's vertex ids, or NotFound when the
/// graph is triangle-free (e.g. bipartite).
Result<std::array<VertexId, 3>> InjectPreferenceCycle(SimpleGraph* g,
                                                      double strong = 1000.0);

}  // namespace graph
}  // namespace graft

#endif  // GRAFT_GRAPH_GENERATORS_H_
