#ifndef GRAFT_GRAPH_BUILDER_H_
#define GRAFT_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/simple_graph.h"

namespace graft {
namespace graph {

/// Programmatic equivalent of the Graft GUI's "offline mode" (§3.4): users
/// construct small test graphs vertex-by-vertex and edge-by-edge, edit
/// weights, pick premade graphs from a menu, and export either the
/// adjacency-list text file or code for an end-to-end test.
///
/// Unlike SimpleGraph (a passive container), the builder validates edits:
/// duplicate edges, edits to missing vertices/edges, and malformed weights
/// are reported instead of silently accepted, because the artifact feeds
/// end-to-end tests where a mistyped graph wastes a debugging session.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Starts from a premade graph (see PremadeGraphMenu()).
  static Result<GraphBuilder> FromPremade(const std::string& name,
                                          int size_hint = 8);

  /// Starts from an existing graph.
  static GraphBuilder FromGraph(const SimpleGraph& g);

  Status AddVertex(VertexId id);
  Status RemoveVertex(VertexId id);
  Status AddEdge(VertexId source, VertexId target, double weight = 1.0);
  Status AddUndirectedEdge(VertexId a, VertexId b, double weight = 1.0);
  Status RemoveEdge(VertexId source, VertexId target);
  Status SetEdgeWeight(VertexId source, VertexId target, double weight);
  /// Sets both (a,b) and (b,a) weights, keeping the graph symmetric.
  Status SetUndirectedEdgeWeight(VertexId a, VertexId b, double weight);

  bool HasVertex(VertexId id) const;
  bool HasEdge(VertexId source, VertexId target) const;
  size_t NumVertices() const;
  uint64_t NumEdges() const;

  /// Materializes the current state.
  SimpleGraph Build() const;

  /// The adjacency-list text file artifact (§3.4 "obtain a text file").
  std::string ToAdjacencyText() const;

 private:
  struct Edge {
    VertexId source;
    VertexId target;
    double weight;
  };

  std::vector<VertexId> vertices_;
  std::vector<Edge> edges_;
};

/// Names accepted by GraphBuilder::FromPremade — the GUI's premade-graph
/// menu: "ring", "grid", "complete", "binary-tree", "star", "triangle".
std::vector<std::string> PremadeGraphMenu();

}  // namespace graph
}  // namespace graft

#endif  // GRAFT_GRAPH_BUILDER_H_
