#ifndef GRAFT_GRAPH_SIMPLE_GRAPH_H_
#define GRAFT_GRAPH_SIMPLE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace graft {

/// Global vertex-identifier type. Giraph is generic over the id Writable;
/// every algorithm in the paper uses LongWritable, so we fix ids to int64
/// throughout (documented simplification, DESIGN.md §2).
using VertexId = int64_t;

namespace graph {

/// Untyped in-memory graph used by loaders, generators, the GUI's offline
/// small-graph construction mode, and as the input handed to the Pregel
/// engine's typed loader. Edges carry a double weight (1.0 when the dataset
/// is unweighted); typed engines map it into their EdgeValue.
///
/// The representation is directed; an "undirected" graph is stored as
/// symmetric directed edges — exactly how the paper encodes soc-Epinions
/// (§4.3), which is what makes the asymmetric-weight input bug expressible.
class SimpleGraph {
 public:
  struct Edge {
    VertexId target;
    double weight;
  };

  SimpleGraph() = default;

  SimpleGraph(const SimpleGraph&) = default;
  SimpleGraph& operator=(const SimpleGraph&) = default;
  SimpleGraph(SimpleGraph&&) noexcept = default;
  SimpleGraph& operator=(SimpleGraph&&) noexcept = default;

  /// Adds a vertex; returns its dense index. Adding an existing id returns
  /// the existing index.
  size_t AddVertex(VertexId id);

  /// True if the id is present.
  bool HasVertex(VertexId id) const { return index_.count(id) > 0; }

  /// Dense index for an id; error if absent.
  Result<size_t> IndexOf(VertexId id) const;

  /// Adds a directed edge; creates endpoints as needed.
  void AddEdge(VertexId source, VertexId target, double weight = 1.0);

  /// Adds the symmetric pair of directed edges.
  void AddUndirectedEdge(VertexId a, VertexId b, double weight = 1.0);

  size_t NumVertices() const { return ids_.size(); }
  uint64_t NumDirectedEdges() const { return num_edges_; }

  VertexId IdAt(size_t index) const { return ids_[index]; }
  const std::vector<VertexId>& ids() const { return ids_; }

  const std::vector<Edge>& OutEdges(size_t index) const {
    return adjacency_[index];
  }
  std::vector<Edge>& MutableOutEdges(size_t index) {
    return adjacency_[index];
  }

  /// Out-edges by vertex id; empty for unknown ids.
  const std::vector<Edge>& OutEdgesOf(VertexId id) const;

  /// True if a directed edge source->target exists (linear scan of the
  /// source's adjacency; fine for test-sized lookups).
  bool HasEdge(VertexId source, VertexId target) const;

  /// Returns the weight of a directed edge, or an error if absent.
  Result<double> EdgeWeight(VertexId source, VertexId target) const;

  /// Out-degree of the vertex at dense `index`.
  size_t OutDegree(size_t index) const { return adjacency_[index].size(); }

  void Reserve(size_t vertices) {
    ids_.reserve(vertices);
    adjacency_.reserve(vertices);
    index_.reserve(vertices);
  }

 private:
  std::vector<VertexId> ids_;
  std::vector<std::vector<Edge>> adjacency_;
  std::unordered_map<VertexId, size_t> index_;
  uint64_t num_edges_ = 0;
};

}  // namespace graph
}  // namespace graft

#endif  // GRAFT_GRAPH_SIMPLE_GRAPH_H_
