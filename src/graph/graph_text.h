#ifndef GRAFT_GRAPH_GRAPH_TEXT_H_
#define GRAFT_GRAPH_GRAPH_TEXT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/simple_graph.h"

namespace graft {
namespace graph {

/// Adjacency-list text format, one vertex per line (the artifact the GUI's
/// offline small-graph construction mode hands to end-to-end tests, §3.4):
///
///   <vertex_id> [<target>[:<weight>]]...
///
/// Weights default to 1. Blank lines and lines starting with '#' are
/// ignored. Example:
///
///   # a weighted triangle
///   1 2:0.5 3:0.25
///   2 1:0.5 3:1.75
///   3 1:0.25 2:1.75
std::string WriteAdjacencyText(const SimpleGraph& g);

/// Parses the format above. Errors identify the offending line.
Result<SimpleGraph> ParseAdjacencyText(std::string_view text);

/// Convenience wrappers over whole files.
Status WriteAdjacencyFile(const SimpleGraph& g, const std::string& path);
Result<SimpleGraph> ReadAdjacencyFile(const std::string& path);

}  // namespace graph
}  // namespace graft

#endif  // GRAFT_GRAPH_GRAPH_TEXT_H_
