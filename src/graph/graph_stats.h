#ifndef GRAFT_GRAPH_GRAPH_STATS_H_
#define GRAFT_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/simple_graph.h"

namespace graft {
namespace graph {

/// Degree-distribution summary for the Table 1 / Table 2 dataset benches.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_directed_edges = 0;
  uint64_t min_out_degree = 0;
  uint64_t max_out_degree = 0;
  double avg_out_degree = 0.0;
  /// In-degree extremes — where preferential-attachment graphs carry their
  /// heavy tail (out-degree is near-constant by construction).
  uint64_t max_in_degree = 0;
  /// Number of (u,v) edges whose reverse (v,u) also exists.
  uint64_t reciprocal_edges = 0;
  /// log2-bucketed out-degree histogram: bucket i counts degrees in
  /// [2^i, 2^(i+1)).
  std::vector<uint64_t> degree_histogram;
  /// log2-bucketed in-degree histogram.
  std::vector<uint64_t> in_degree_histogram;

  std::string ToString() const;
};

GraphStats ComputeGraphStats(const SimpleGraph& g);

/// True when every directed edge has a reverse edge with equal weight — the
/// §4.3 invariant the corrupted soc-Epinions graph violates.
bool IsSymmetricWeighted(const SimpleGraph& g);

}  // namespace graph
}  // namespace graft

#endif  // GRAFT_GRAPH_GRAPH_STATS_H_
