#ifndef GRAFT_COMMON_JSON_WRITER_H_
#define GRAFT_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace graft {

/// Minimal streaming JSON emitter used by the Graft GUI exporters
/// (tabular/node-link/violations views serialize captured traces to JSON so
/// that any front-end — the paper used a browser GUI — can render them).
///
/// The writer validates nesting at runtime via an explicit context stack;
/// misuse (e.g. a value where a key is required) aborts in debug builds.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be inside an object.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices an already-serialized JSON value in verbatim (for nesting a
  /// sub-document another writer produced). The caller owns its validity;
  /// empty input becomes null so the document stays well-formed.
  void Raw(std::string_view json);

  /// Convenience: Key(k) followed by the value.
  void KV(std::string_view key, std::string_view value);
  void KV(std::string_view key, const char* value);
  void KV(std::string_view key, int64_t value);
  void KV(std::string_view key, uint64_t value);
  void KV(std::string_view key, int value) { KV(key, static_cast<int64_t>(value)); }
  void KV(std::string_view key, double value);
  void KV(std::string_view key, bool value);

  /// The finished document. Valid once all containers are closed.
  const std::string& str() const { return out_; }
  std::string&& TakeString() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  enum class Context : uint8_t { kObjectAwaitKey, kObjectAwaitValue, kArray };

  void BeforeValue();

  std::string out_;
  std::vector<Context> stack_;
  std::vector<bool> has_elements_;
};

}  // namespace graft

#endif  // GRAFT_COMMON_JSON_WRITER_H_
